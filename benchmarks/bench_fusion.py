"""Graph-compiler fusion benchmark: threaded channels vs. fused chains.

Two scenarios, each run unfused (one thread per process, full Channel
ring buffers) and fused (``repro.kpn.compile.fuse``: one thread per
chain, lock-free deque pipes, object fast path on matching codecs):

* ``map-chain`` — the small-message stress case: ``Sequence`` ->
  ``Scale`` x4 -> ``Collect`` over LONG-codec channels, drain-mode so
  termination is deterministic.  Per-message work is ~zero, so the run
  is pure channel overhead — exactly what fusion removes.
* ``fig19-pipeline`` — the paper's Figure 19 task farm in pipeline
  mode (producer -> worker -> consumer over pickle-codec channels).

Runs are *paired*: within each repeat the unfused and fused variants
execute back to back, and the speedup is the median of the per-repeat
ratios, which cancels slow-host drift.

Usage::

    PYTHONPATH=src python benchmarks/bench_fusion.py            # full
    PYTHONPATH=src python benchmarks/bench_fusion.py --quick    # ~10s
    PYTHONPATH=src python benchmarks/bench_fusion.py --smoke    # CI-sized
"""

import argparse
import json
import os
import platform
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.kpn.compile import fuse  # noqa: E402
from repro.kpn.network import Network  # noqa: E402
from repro.processes import Collect, Scale, Sequence  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_fusion.json")


def build_map_chain(count, stages):
    """Sequence -> Scale*stages -> Collect on LONG channels, drain-mode."""
    net = Network(name="bench-map-chain")
    chans = net.channels_n(stages + 1, prefix="bench")
    net.add(Sequence(chans[0].get_output_stream(), start=0,
                     iterations=count, name="Src"))
    for i in range(stages):
        net.add(Scale(chans[i].get_input_stream(),
                      chans[i + 1].get_output_stream(), factor=2,
                      name=f"Map-{i}"))
    out = []
    net.add(Collect(chans[-1].get_input_stream(), out, iterations=count,
                    name="Dst"))
    return net, out, count * (stages + 1)  # messages = hops over channels


def build_fig19(tasks):
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    built = build_farm(
        RangeProducerTask(tasks, lambda i: CallableTask(pow, i, 3)),
        n_workers=1, mode="pipeline")
    # producer -> worker and worker -> consumer: two hops per task
    return built.network, built.results, tasks * 2


def run_once(build, optimize, timeout):
    net, out, msgs = build()
    if optimize:
        plan = fuse(net)
        if not plan.chains:
            raise RuntimeError("benchmark network did not fuse")
    t0 = time.perf_counter()
    net.run(timeout=timeout)
    elapsed = time.perf_counter() - t0
    if not out:
        raise RuntimeError("benchmark produced no output")
    return {"seconds": round(elapsed, 4),
            "msgs_per_sec": round(msgs / elapsed, 2),
            "messages": msgs}


def run_scenario(name, build, repeats, timeout):
    """Paired repeats: unfused then fused, ratio per repeat, median."""
    unfused, fused, ratios = [], [], []
    for _ in range(repeats):
        u = run_once(build, optimize=False, timeout=timeout)
        f = run_once(build, optimize=True, timeout=timeout)
        unfused.append(u)
        fused.append(f)
        ratios.append(f["msgs_per_sec"] / u["msgs_per_sec"])
    def median_run(runs):  # median-high by rate; keeps a real run intact
        return sorted(runs, key=lambda r: r["msgs_per_sec"])[len(runs) // 2]

    u_med = median_run(unfused)
    f_med = median_run(fused)
    result = {
        "scenario": name,
        "repeats": repeats,
        "unfused": u_med,
        "fused": f_med,
        "speedup": round(statistics.median(ratios), 3),
    }
    print(f"{name:>16}: unfused {u_med['msgs_per_sec']:>10.0f} msgs/s  "
          f"fused {f_med['msgs_per_sec']:>10.0f} msgs/s  "
          f"speedup x{result['speedup']:.2f}", flush=True)
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller message counts (~10s total)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized: minimal counts, 1 repeat")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args()

    if args.smoke:
        count, stages, tasks, repeats = 2_000, 4, 40, 1
    elif args.quick:
        count, stages, tasks, repeats = 10_000, 4, 150, 2
    else:
        count, stages, tasks, repeats = 40_000, 4, 400, 3
    if args.repeats:
        repeats = args.repeats

    scenarios = [
        ("map-chain", lambda: build_map_chain(count, stages)),
        ("fig19-pipeline", lambda: build_fig19(tasks)),
    ]
    results = [run_scenario(name, build, repeats, timeout=600)
               for name, build in scenarios]

    doc = {
        "benchmark": "graph-compiler-fusion",
        "host": {"cpu_count": os.cpu_count(), "python":
                 platform.python_version(), "platform": platform.platform(),
                 "pid": os.getpid()},
        "config": {"map_chain_count": count, "map_chain_stages": stages,
                   "fig19_tasks": tasks, "repeats": repeats,
                   "smoke": bool(args.smoke), "quick": bool(args.quick)},
        "results": results,
        "note": ("speedup is the median of per-repeat fused/unfused "
                 "msgs_per_sec ratios; map-chain is pure channel overhead "
                 "and shows the full fusion win, fig19 includes real task "
                 "execution"),
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
