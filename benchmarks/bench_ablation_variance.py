"""Ablation: task-duration variance vs load-balancing discipline.

The paper's dynamic-balancing case covers environments "where the amount
of work required by each task may not be uniform".  The main experiment
holds task cost constant (batching fixes it); this ablation varies it:
identical CPUs, lognormal task durations with increasing coefficient of
variation.  Expectation: the static/dynamic elapsed-time ratio starts at
1.0 (cv=0 — the homogeneous control) and grows with cv, isolating the
*task*-heterogeneity component of the dynamic win from the
*CPU*-heterogeneity component shown in Table 2.
"""

import pytest

from repro.simcluster.workload import variance_experiment

from conftest import emit, fmt_row

CVS = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0]


@pytest.mark.benchmark(group="variance-sweep")
def test_variance_sweep(benchmark):
    rows = benchmark(lambda: [variance_experiment(cv, n_workers=8,
                                                  n_tasks=512, seed=17)
                              for cv in CVS])
    lines = ["Ablation: task-duration variance (8 identical CPUs, 512 tasks)",
             fmt_row(("cv", "static", "dynamic", "ratio"), (5, 9, 9, 7))]
    for r in rows:
        lines.append(fmt_row((r["cv"], r["static"], r["dynamic"],
                              r["ratio"]), (5, 9, 9, 7)))
    emit("ablation_variance", lines)

    ratios = [r["ratio"] for r in rows]
    assert ratios[0] == pytest.approx(1.0, abs=1e-6)
    assert ratios[-1] > 1.10          # heavy variance: dynamic clearly wins
    # broadly increasing: the last is the largest up to sampling noise
    assert max(ratios) == pytest.approx(ratios[-1], rel=0.2)


@pytest.mark.benchmark(group="variance-point")
def test_variance_point_cost(benchmark):
    benchmark(variance_experiment, 1.0, 8, 512)
