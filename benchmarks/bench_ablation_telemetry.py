"""Ablation: what the telemetry and profiler layers cost.

Every hot-path instrumentation site guards on one attribute read, and the
profiler rides the same event stream as a subscriber, so the claim to
verify is three-sided:

* **all-off** (the default) must be effectively free — the same farm
  workload the Table 2 real-execution benchmark uses should run within
  noise of its pre-instrumentation cost;
* **telemetry-on** pays for Event allocations and locked counter updates
  — measurable, bounded, and worth knowing before tracing a production
  run;
* **profiler-on** adds the :data:`~repro.telemetry.profile.PROFILER`
  subscriber on top: a category check per event plus a couple of dict
  updates under a leaf lock for kpn events.  The design target is <5%
  over telemetry-on on this fig19-shaped pipeline; the measured number
  is recorded in ``BENCH_profile.json``.

The workload is a real KPN MetaDynamic farm (producer -> 4 workers ->
consumer over bounded byte channels), the same shape as the paper's
evaluation runs, sized to take tens of milliseconds so thread startup
doesn't dominate.

Standalone use (writes the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_ablation_telemetry.py \
        [--smoke] [--repeats N] [--out BENCH_profile.json]
"""

import argparse
import json
import os
import platform
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.parallel import CallableTask, RangeProducerTask, run_farm
from repro.telemetry.core import TELEMETRY
from repro.telemetry.profile import PROFILER

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_profile.json")

N_TASKS = 120
N_WORKERS = 4
REPEATS = 7


def run_workload(n_tasks: int = N_TASKS):
    out = run_farm(
        RangeProducerTask(n_tasks, lambda i: CallableTask(pow, i, 3)),
        n_workers=N_WORKERS, mode="dynamic", timeout=120)
    assert out == [i ** 3 for i in range(n_tasks)]


def timed(repeats: int = REPEATS, n_tasks: int = N_TASKS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_workload(n_tasks)
        samples.append(time.perf_counter() - t0)
    return samples


def measure_ablation(repeats: int = REPEATS, n_tasks: int = N_TASKS) -> dict:
    """Run the three-way ablation; returns the BENCH_profile.json doc.

    The three modes are *interleaved* per repeat (off, telemetry,
    profiler, off, ...) rather than run as three sequential blocks:
    machine drift on a shared host then shifts all three medians
    together instead of biasing whichever block it lands on.
    """
    assert not TELEMETRY.enabled and not PROFILER.enabled
    run_workload(n_tasks)  # warm-up: imports, codegen, thread machinery
    off, telemetry_on, profiler_on = [], [], []
    events = n_counters = profiled_processes = 0
    try:
        for _ in range(repeats):
            TELEMETRY.disable().reset()
            off.extend(timed(1, n_tasks))
            TELEMETRY.reset().enable()
            telemetry_on.extend(timed(1, n_tasks))
            events += TELEMETRY.events_emitted
            n_counters = max(n_counters, len(TELEMETRY.counters()))
            PROFILER.reset().enable()
            profiler_on.extend(timed(1, n_tasks))
            profiled_processes = max(profiled_processes,
                                     len(PROFILER.snapshot()["processes"]))
            PROFILER.disable()
    finally:
        PROFILER.disable().reset()
        TELEMETRY.disable().reset()

    def summary(samples):
        return {"median_s": statistics.median(samples),
                "min_s": min(samples), "max_s": max(samples)}

    # Overheads are medians of *paired* per-iteration ratios, not ratios
    # of medians: the three modes of one iteration run back-to-back, so
    # host drift between iterations cancels out of each ratio.
    def med_ratio(num, den):
        return statistics.median(n / d for n, d in zip(num, den))
    return {
        "benchmark": "profiler-ablation",
        "host": {"cpu_count": os.cpu_count(),
                 "python": platform.python_version(),
                 "platform": platform.platform(), "pid": os.getpid()},
        "config": {"n_tasks": n_tasks, "n_workers": N_WORKERS,
                   "repeats": repeats,
                   "workload": "MetaDynamic farm (fig19 pipeline shape)"},
        "results": {"all_off": summary(off),
                    "telemetry_on": summary(telemetry_on),
                    "profiler_on": summary(profiler_on)},
        "overhead_pct": {
            "telemetry_vs_off": (med_ratio(telemetry_on, off) - 1.0) * 100.0,
            "profiler_vs_telemetry":
                (med_ratio(profiler_on, telemetry_on) - 1.0) * 100.0,
            "profiler_vs_off": (med_ratio(profiler_on, off) - 1.0) * 100.0,
        },
        "events_per_run": events // repeats,
        "counter_series": n_counters,
        "profiled_processes": profiled_processes,
        "note": "profiler_vs_telemetry is the profiler's own cost (it "
                "implies telemetry); design target <5% on this pipeline. "
                "Overheads are medians of paired per-iteration ratios "
                "over `repeats` interleaved runs; single-host wall-clock, "
                "compare only with generous tolerance.",
    }


def _render(doc: dict):
    from conftest import fmt_row

    results = doc["results"]
    overhead = doc["overhead_pct"]
    config = doc["config"]
    lines = [
        f"Ablation: telemetry + profiler cost on a MetaDynamic farm "
        f"({config['n_tasks']} tasks, {config['n_workers']} workers, "
        f"median of {config['repeats']})",
        fmt_row(("mode", "median-s", "min-s", "max-s"), (12, 9, 9, 9)),
    ]
    for mode in ("all_off", "telemetry_on", "profiler_on"):
        r = results[mode]
        lines.append(fmt_row((mode, r["median_s"], r["min_s"], r["max_s"]),
                             (12, 9, 9, 9)))
    lines += [
        f"telemetry overhead vs all-off:   {overhead['telemetry_vs_off']:+.1f}%",
        f"profiler overhead vs telemetry:  "
        f"{overhead['profiler_vs_telemetry']:+.1f}%  (target < 5%)",
        f"events emitted per run: ~{doc['events_per_run']}  "
        f"(counter series: {doc['counter_series']}, "
        f"profiled processes: {doc['profiled_processes']})",
    ]
    return lines


def test_telemetry_and_profiler_overhead(benchmark):
    from conftest import emit

    doc = benchmark.pedantic(measure_ablation, rounds=1, iterations=1)
    emit("ablation_telemetry", _render(doc))
    # One run did emit real data while enabled, and the profiler saw the
    # farm's processes.
    assert doc["events_per_run"] > 0 and doc["counter_series"] > 0
    assert doc["profiled_processes"] > 0
    # Loose sanity bounds, not perf gates: a thread-heavy workload on a
    # loaded CI box is noisy, and with zero-cost tasks every channel op
    # emits events, so the ratios here are worst cases.
    assert (doc["results"]["telemetry_on"]["median_s"]
            < doc["results"]["all_off"]["median_s"] * 5.0)
    assert (doc["results"]["profiler_on"]["median_s"]
            < doc["results"]["telemetry_on"]["median_s"] * 2.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="three-way telemetry/profiler ablation")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else REPEATS)
    n_tasks = 60 if args.smoke else N_TASKS
    doc = measure_ablation(repeats=repeats, n_tasks=n_tasks)
    doc["config"]["smoke"] = args.smoke
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    overhead = doc["overhead_pct"]
    print(f"all-off median      {doc['results']['all_off']['median_s']:.4f}s")
    print(f"telemetry-on median {doc['results']['telemetry_on']['median_s']:.4f}s"
          f"  ({overhead['telemetry_vs_off']:+.1f}%)")
    print(f"profiler-on median  {doc['results']['profiler_on']['median_s']:.4f}s"
          f"  ({overhead['profiler_vs_telemetry']:+.1f}% vs telemetry)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
