"""Ablation: what the telemetry layer costs (observability design choice).

Every hot-path instrumentation site guards on one attribute read, so the
claim to verify is two-sided:

* **disabled** (the default) must be effectively free — the same farm
  workload the Table 2 real-execution benchmark uses should run within
  noise of its pre-instrumentation cost;
* **enabled** pays for Event allocations and locked counter updates —
  measurable, bounded, and worth knowing before tracing a production run.

The workload is a real KPN MetaDynamic farm (producer -> 4 workers ->
consumer over bounded byte channels), the same shape as the paper's
evaluation runs, sized to take tens of milliseconds so thread startup
doesn't dominate.
"""

import statistics
import time

import pytest

from repro.parallel import CallableTask, RangeProducerTask, run_farm
from repro.telemetry.core import TELEMETRY

from conftest import emit, fmt_row

N_TASKS = 120
N_WORKERS = 4
REPEATS = 7


def run_workload():
    out = run_farm(
        RangeProducerTask(N_TASKS, lambda i: CallableTask(pow, i, 3)),
        n_workers=N_WORKERS, mode="dynamic", timeout=120)
    assert out == [i ** 3 for i in range(N_TASKS)]


def timed(repeats: int = REPEATS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_workload()
        samples.append(time.perf_counter() - t0)
    return samples


@pytest.mark.benchmark(group="telemetry-ablation")
def test_telemetry_overhead_disabled_vs_enabled(benchmark):
    def measure():
        assert not TELEMETRY.enabled
        run_workload()  # warm-up: imports, codegen, thread machinery
        disabled = timed()
        TELEMETRY.reset().enable()
        try:
            enabled = timed()
            events = TELEMETRY.events_emitted
            n_counters = len(TELEMETRY.counters())
        finally:
            TELEMETRY.disable().reset()
        return disabled, enabled, events, n_counters

    disabled, enabled, events, n_counters = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    med_off = statistics.median(disabled)
    med_on = statistics.median(enabled)
    overhead = (med_on / med_off - 1.0) * 100.0
    lines = [
        f"Ablation: telemetry cost on a MetaDynamic farm "
        f"({N_TASKS} tasks, {N_WORKERS} workers, median of {REPEATS})",
        fmt_row(("mode", "median-s", "min-s", "max-s"), (10, 9, 9, 9)),
        fmt_row(("disabled", med_off, min(disabled), max(disabled)),
                (10, 9, 9, 9)),
        fmt_row(("enabled", med_on, min(enabled), max(enabled)),
                (10, 9, 9, 9)),
        f"enabled overhead vs disabled: {overhead:+.1f}%",
        f"events emitted per run: ~{events // REPEATS}  "
        f"(counter series: {n_counters})",
    ]
    emit("ablation_telemetry", lines)
    # One run did emit real data while enabled.
    assert events > 0 and n_counters > 0
    # Loose sanity bound, not a perf gate: a thread-heavy workload on a
    # loaded CI box is noisy, and with zero-cost tasks every channel op
    # emits events, so the ratio here is a worst case.
    assert med_on < med_off * 5.0
