"""Table 1 — sequential execution per CPU class.

Regenerates the paper's Table 1 on the simulated lab (model column) next
to the published numbers, and benchmarks the *real* sequential baseline
("directly invoking the run methods of the producer, worker, and consumer
tasks without the use of process networks") at laptop scale.
"""

import pytest

from repro.parallel import factor_search_sequential, make_weak_key
from repro.simcluster import sequential_times

from conftest import emit, fmt_row

WIDTHS = (5, 7, 9, 9, 2)


@pytest.mark.benchmark(group="table1")
def test_table1_regenerate(benchmark):
    rows = benchmark(sequential_times)
    lines = ["Table 1: sequential execution (minutes; speed vs 1 GHz P-III)",
             fmt_row(("class", "speed", "model", "paper", ""), WIDTHS)]
    for r in rows:
        lines.append(fmt_row((r["class"], r["speed"], r["time_model"],
                              r["time_paper"], ""), WIDTHS)
                     + f"  {r['description']}")
    emit("table1", lines)
    for r in rows:
        assert r["time_model"] == pytest.approx(r["time_paper"], rel=0.01)


@pytest.mark.benchmark(group="table1-real-sequential")
def test_sequential_factoring_baseline(benchmark):
    """Real CPU time for the sequential task chain (scaled-down key).

    This is the measurement the paper's Table 1 makes at 1024-bit/2048
    task scale; the per-task cost measured here feeds the real-execution
    load-balancing benchmark.
    """
    n, p, d = make_weak_key(bits=64, found_at_task=31, seed=20)

    def run():
        return factor_search_sequential(n)

    result = benchmark(run)
    assert result.p == p
