"""Ablation: what cross-machine trace propagation costs per RPC.

With telemetry enabled, every ``ServerClient`` request opens a send
span, emits a flow event, and wraps the outgoing pickle in a
``(trace_id, span_id)`` envelope that the server unwraps and continues.
The claim to verify mirrors the telemetry-layer ablation:

* **disabled** (the default): the wire path adds one dict type-check on
  receive and one attribute read on send — the roundtrip should be
  within noise of the pre-tracing protocol;
* **enabled**: two spans + a flow pair + a ~100-byte envelope per RPC —
  small against the socket + pickle cost, and worth knowing before
  tracing a chatty workload.

The workload is the smallest real RPC (``ping`` over a loopback
socket), the worst case for relative overhead: any envelope cost is
maximally visible against a near-empty payload.
"""

import statistics
import time

import pytest

from repro.distributed.server import ComputeServer, ServerClient
from repro.telemetry.core import TELEMETRY

from conftest import emit, fmt_row

N_CALLS = 300
REPEATS = 5


def timed_pings(client, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(N_CALLS):
            client.ping()
        samples.append((time.perf_counter() - t0) / N_CALLS)
    return samples


@pytest.mark.benchmark(group="trace-propagation")
def test_trace_propagation_overhead_per_rpc(benchmark):
    def measure():
        server = ComputeServer(name="bench-trace").start()
        client = ServerClient("127.0.0.1", server.port)
        try:
            assert not TELEMETRY.enabled
            client.ping()  # warm-up: connection, pickler codegen
            disabled = timed_pings(client)
            TELEMETRY.reset().enable()
            try:
                enabled = timed_pings(client)
                events = TELEMETRY.events_emitted
            finally:
                TELEMETRY.disable().reset()
        finally:
            client.close()
            server.stop()
        return disabled, enabled, events

    disabled, enabled, events = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    med_off = statistics.median(disabled) * 1e6
    med_on = statistics.median(enabled) * 1e6
    overhead = (med_on / med_off - 1.0) * 100.0
    lines = [
        f"Ablation: trace-context propagation cost per loopback ping "
        f"({N_CALLS} calls/round, median of {REPEATS})",
        fmt_row(("tracing", "median-us", "min-us", "max-us"),
                (10, 10, 10, 10)),
        fmt_row(("off", med_off, min(disabled) * 1e6, max(disabled) * 1e6),
                (10, 10, 10, 10)),
        fmt_row(("on", med_on, min(enabled) * 1e6, max(enabled) * 1e6),
                (10, 10, 10, 10)),
        f"tracing overhead vs off: {overhead:+.1f}%",
        f"events emitted while on: {events} "
        f"(~{events / (N_CALLS * REPEATS):.1f} per RPC)",
    ]
    emit("ablation_trace_propagation", lines)
    # the traced rounds really did produce spans + flows
    assert events >= N_CALLS * REPEATS * 2
    # loose sanity bound, not a perf gate: a bare ping is the worst case
    # (6 events against a ~40 us roundtrip), and shared boxes are noisy
    assert med_on < med_off * 10.0
