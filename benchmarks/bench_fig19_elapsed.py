"""Figure 19 — elapsed time vs number of workers (1..32).

Regenerates the full curve triplet (ideal line, static diamonds, dynamic
triangles) as a data table; the shape assertions encode what the figure
shows: dynamic hugs ideal, static departs at worker 8 and stays above.
"""

import pytest

from repro.simcluster import sweep_workers

from conftest import emit, fmt_row

WIDTHS = (3, 8, 8, 8)


@pytest.mark.benchmark(group="fig19")
def test_fig19_regenerate(benchmark):
    rows = benchmark(sweep_workers, range(1, 33))
    lines = ["Figure 19: elapsed time (minutes) vs workers",
             fmt_row(("W", "ideal", "static", "dynamic"), WIDTHS)]
    for r in rows:
        lines.append(fmt_row((r.workers, r.ideal_time, r.static_time,
                              r.dynamic_time), WIDTHS))
    emit("fig19", lines)

    by_w = {r.workers: r for r in rows}
    # ideal is the floor everywhere
    for r in rows:
        assert r.ideal_time <= r.dynamic_time + 1e-9
        assert r.ideal_time <= r.static_time + 1e-9
    # dynamic stays within 25% of ideal across the sweep (startup overhead)
    for r in rows:
        assert r.dynamic_time <= r.ideal_time * 1.25
    # static departs sharply once heterogeneity begins (W >= 8)
    assert by_w[8].static_time > by_w[8].ideal_time * 1.6
    # the static curve's bump at W=8 exceeds its value at W=7
    assert by_w[8].static_time > by_w[7].static_time


@pytest.mark.benchmark(group="fig19-sweep")
def test_full_sweep_cost(benchmark):
    """Cost of regenerating the entire figure (64 simulations)."""
    benchmark(lambda: sweep_workers(range(1, 33)))
