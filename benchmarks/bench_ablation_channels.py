"""Ablation: channel throughput vs buffer capacity (design choice #1).

Bounded channels buy fairness and bounded memory at the cost of more
producer/consumer handoffs.  This measures the raw byte throughput of a
two-thread pipe across capacities, and the end-to-end element rate of a
typed pipeline — quantifying what the paper's "default buffer capacities
... are sufficient" remark costs at the extremes.
"""

import threading

import pytest

from repro.kpn import Network
from repro.kpn.buffers import BoundedByteBuffer
from repro.processes import Collect, Sequence

PAYLOAD = 1 << 20  # 1 MiB through the pipe per round


def pump_bytes(capacity: int) -> None:
    buf = BoundedByteBuffer(capacity)
    chunk = b"x" * min(capacity, 64 * 1024)

    def writer():
        sent = 0
        while sent < PAYLOAD:
            buf.write(chunk)
            sent += len(chunk)
        buf.close_write()

    t = threading.Thread(target=writer, daemon=True)
    t.start()
    received = 0
    while True:
        data = buf.read(64 * 1024)
        if not data:
            break
        received += len(data)
    t.join()
    assert received >= PAYLOAD


@pytest.mark.benchmark(group="channel-throughput")
@pytest.mark.parametrize("capacity", [64, 1024, 16 * 1024, 256 * 1024])
def test_byte_throughput_vs_capacity(benchmark, capacity):
    benchmark(pump_bytes, capacity)


def element_pipeline(capacity: int, n: int = 2000) -> list:
    net = Network()
    ch = net.channel(capacity)
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=n))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=120)
    return out


@pytest.mark.benchmark(group="element-rate")
@pytest.mark.parametrize("capacity", [8, 128, 4096])
def test_element_rate_vs_capacity(benchmark, capacity):
    out = benchmark(element_pipeline, capacity)
    assert len(out) == 2000


def drain_prefilled(n_elements: int) -> None:
    """Element reads from one large prefilled buffer.

    Regression guard for a found-and-fixed performance bug: consuming
    via ``del bytearray[:n]`` made each read O(buffered bytes), turning
    this pattern quadratic (~minutes at 200k elements); the read-cursor
    buffer does it in well under a second.
    """
    from repro.kpn.channel import Channel
    from repro.processes.codecs import LONG

    ch = Channel((n_elements + 10) * 8)
    out = ch.get_output_stream()
    inp = ch.get_input_stream()
    block = b"\x00" * 8000
    for _ in range(0, n_elements, 1000):
        out.write(block)
    for _ in range(n_elements):
        LONG.read(inp)


@pytest.mark.benchmark(group="prefilled-drain")
def test_large_prefilled_drain_linear(benchmark):
    benchmark.pedantic(drain_prefilled, args=(200_000,), rounds=2,
                       iterations=1)
    # linearity guard: double the size must stay far under 4x the time
    import time

    t0 = time.perf_counter()
    drain_prefilled(100_000)
    t_small = time.perf_counter() - t0
    t0 = time.perf_counter()
    drain_prefilled(200_000)
    t_large = time.perf_counter() - t0
    assert t_large < t_small * 4 + 0.5
