"""Benchmark-harness helpers: paper-style table rendering + artifacts.

Every benchmark prints the rows the paper reports (model next to the
paper's published value) and appends them to ``benchmarks/out/`` so the
regenerated evaluation survives the pytest run.  Run with ``-s`` to see
the tables live::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, lines: Iterable[str]) -> None:
    """Print a table and persist it under benchmarks/out/<name>.txt."""
    text = "\n".join(lines)
    print(f"\n{text}")
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def fmt_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    out = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            out.append(f"{cell:>{width}.2f}")
        else:
            out.append(f"{str(cell):>{width}}")
    return " ".join(out)
