"""Ablation: KPN (buffered FIFO) vs CSP (rendezvous) — the §6.2 comparison.

The paper's final paragraph promises a factoring shoot-out between its
process-network implementation and a CSP implementation.  Three probes:

* **hand-off latency** — one value through a channel, round-trip: KPN
  pays codec framing + buffer signaling; CSP pays a double rendezvous;
* **pipeline throughput** — N values through a 2-stage pipeline: KPN's
  buffering lets stages overlap; CSP synchronizes every element;
* **the farm itself** — identical factorization tasks under both
  runtimes, equal results required, wall-clock compared.

Numbers land in ``benchmarks/out/ablation_csp.txt``; the structural
expectation (buffering wins throughput as N grows) is asserted, the raw
ratio is reported, not asserted — it is scheduler-dependent.
"""

import time

import pytest

from repro.csp import InlineCSP, ParallelCSP, SyncChannel, csp_farm
from repro.kpn import Network
from repro.parallel import (CallableTask, FactorProducerTask,
                            RangeProducerTask, make_weak_key, run_farm)
from repro.processes import Collect, Scale, Sequence

from conftest import emit

N_PIPE = 5000


def kpn_pipeline(n: int = N_PIPE) -> float:
    net = Network()
    a, b = net.channels_n(2, capacity=1 << 14)
    out = []
    net.add(Sequence(a.get_output_stream(), iterations=n))
    net.add(Scale(a.get_input_stream(), b.get_output_stream(), 2,
                  codec="long"))
    net.add(Collect(b.get_input_stream(), out))
    t0 = time.perf_counter()
    net.run(timeout=300)
    elapsed = time.perf_counter() - t0
    assert len(out) == n
    return elapsed


def csp_pipeline(n: int = N_PIPE) -> float:
    a, b = SyncChannel(), SyncChannel()
    out = []

    def source():
        for i in range(n):
            a.write(i)

    def double():
        while True:
            b.write(a.read() * 2)

    def sink():
        while True:
            out.append(b.read())

    network = ParallelCSP([
        InlineCSP(source, poisons=[a]),
        InlineCSP(double, poisons=[b]),
        InlineCSP(sink),
    ])
    t0 = time.perf_counter()
    assert network.run(timeout=300)
    elapsed = time.perf_counter() - t0
    assert len(out) == n
    return elapsed


@pytest.mark.benchmark(group="csp-vs-kpn-pipeline")
def test_kpn_pipeline_throughput(benchmark):
    benchmark.pedantic(kpn_pipeline, rounds=3, iterations=1)


@pytest.mark.benchmark(group="csp-vs-kpn-pipeline")
def test_csp_pipeline_throughput(benchmark):
    benchmark.pedantic(csp_pipeline, rounds=3, iterations=1)


@pytest.mark.benchmark(group="csp-vs-kpn-farm")
def test_farm_comparison(benchmark):
    n, p, d = make_weak_key(bits=64, found_at_task=60, seed=29)
    n_tasks, workers = 48, 4

    def both():
        t0 = time.perf_counter()
        kpn = run_farm(FactorProducerTask(n, max_tasks=n_tasks),
                       n_workers=workers, mode="dynamic", timeout=300)
        t_kpn = time.perf_counter() - t0
        t0 = time.perf_counter()
        csp = csp_farm(FactorProducerTask(n, max_tasks=n_tasks),
                       n_workers=workers, timeout=300)
        t_csp = time.perf_counter() - t0
        assert [(r.task_index, r.p) for r in kpn] == \
            [(r.task_index, r.p) for r in csp]
        return t_kpn, t_csp

    t_kpn, t_csp = benchmark.pedantic(both, rounds=3, iterations=1)
    emit("ablation_csp", [
        "KPN (buffered FIFO) vs CSP (rendezvous), same Task objects:",
        f"  pipeline {N_PIPE} elems : KPN {kpn_pipeline():.3f}s  "
        f"CSP {csp_pipeline():.3f}s",
        f"  farm {48} factor tasks : KPN {t_kpn * 1e3:.1f}ms  "
        f"CSP {t_csp * 1e3:.1f}ms",
        "  identical results from both runtimes (asserted).",
    ])
