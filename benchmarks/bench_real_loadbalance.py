"""Mechanism validation: real wall-clock load balancing on this machine.

The paper's Table 2 needed 25 computers; this benchmark reproduces its
*mechanism* at laptop scale: four workers with emulated heterogeneous
speeds (per-task slowdowns standing in for CPU classes A/B/C/E) run the
factorization farm under static and dynamic balancing on the real KPN
runtime.  The paper's qualitative result must hold in the measurement:

* dynamic elapsed < static elapsed (heterogeneous workers);
* results are identical, in identical order, across modes;
* dynamic task counts skew toward fast workers, static counts are equal.
"""

import time

import pytest

from repro.parallel import (FactorProducerTask, FactorResult, build_farm,
                            make_weak_key)

from conftest import emit

#: slowdown seconds per task, emulating speeds ~ (fast, 0.5x, 0.25x, 0.2x)
SLOWDOWNS = [0.0, 0.004, 0.012, 0.016]
N_TASKS = 48


def run_mode(mode: str, n):
    handle = build_farm(FactorProducerTask(n, max_tasks=N_TASKS),
                        n_workers=4, mode=mode, slowdowns=SLOWDOWNS)
    t0 = time.perf_counter()
    results = handle.run(timeout=300)
    elapsed = time.perf_counter() - t0
    counts = [w.tasks_processed for w in handle.harness.workers]
    return elapsed, results, counts


@pytest.mark.benchmark(group="real-loadbalance")
def test_real_static_vs_dynamic(benchmark):
    n, p, d = make_weak_key(bits=64, found_at_task=N_TASKS + 10, seed=33)

    static_times, dynamic_times = [], []
    results = {}

    def trial():
        e, results['static_res'], results['static_counts'] = run_mode("static", n)
        static_times.append(e)
        e, results['dynamic_res'], results['dynamic_counts'] = run_mode("dynamic", n)
        dynamic_times.append(e)

    benchmark.pedantic(trial, rounds=3, iterations=1)
    static_res = results['static_res']; dynamic_res = results['dynamic_res']
    static_counts = results['static_counts']; dynamic_counts = results['dynamic_counts']
    static_t = sorted(static_times)[1]
    dynamic_t = sorted(dynamic_times)[1]

    emit("real_loadbalance", [
        "Real execution, 4 heterogeneous workers (threads), "
        f"{N_TASKS} factoring tasks:",
        f"  static : {static_t * 1e3:8.1f} ms  tasks/worker {static_counts}",
        f"  dynamic: {dynamic_t * 1e3:8.1f} ms  tasks/worker {dynamic_counts}",
        f"  dynamic/static elapsed ratio: {dynamic_t / static_t:.2f} "
        "(paper: dynamic wins on heterogeneous workers)",
    ])

    # identical, identically ordered results (the 'equivalent to a single
    # worker' property), across both modes
    assert [r.task_index for r in static_res] == list(range(N_TASKS))
    assert [(r.task_index, r.p, r.d) for r in static_res] == \
        [(r.task_index, r.p, r.d) for r in dynamic_res]
    # static deals evenly; dynamic skews to the fast worker
    assert max(static_counts) - min(static_counts) <= 1
    assert dynamic_counts[0] == max(dynamic_counts)
    assert dynamic_counts[0] > N_TASKS // 4
    # the headline: dynamic beats static on wall clock
    assert dynamic_t < static_t


@pytest.mark.benchmark(group="real-farm")
@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_farm_throughput(benchmark, mode):
    """pytest-benchmark timing of a smaller farm run per mode."""
    n, _, _ = make_weak_key(bits=64, found_at_task=99, seed=7)

    def run():
        handle = build_farm(FactorProducerTask(n, max_tasks=16),
                            n_workers=4, mode=mode, slowdowns=SLOWDOWNS)
        return handle.run(timeout=300)

    results = benchmark(run)
    assert len(results) == 16
