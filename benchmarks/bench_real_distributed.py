"""Distribution overhead on real OS-process servers.

The paper attributes the gap between ideal and measured dynamic speedup
to "constructing the process network and distributing worker processes to
compute servers" plus "Object Serialization and network communication"
(§5.2, ≤6–7 % at one worker).  This benchmark measures our equivalents
directly, with servers as separate OS processes (own interpreters, real
sockets):

* per-call RPC cost (``call`` round trip with a trivial task);
* worker-distribution cost (ship a Worker process, channels and all);
* end-to-end farm overhead: distributed vs purely-local farm on the
  same task list.

NOTE on speedup: this CI machine has **one CPU**, so parallel *speedup*
is structurally unmeasurable here (everything timeshares one core); on a
multicore host the same harness demonstrates real speedup since each
server owns its own GIL.  The overhead numbers below are valid on any
machine and are the quantity the paper's 6–7 % claim concerns.
"""

import time

import pytest

from repro.distributed import LocalCluster
from repro.parallel import (CallableTask, FactorProducerTask, make_weak_key,
                            run_farm)

from conftest import emit

N_TASKS = 24


@pytest.fixture(scope="module")
def process_cluster():
    with LocalCluster(2, mode="process", name_prefix="real") as cluster:
        yield cluster


@pytest.mark.benchmark(group="real-distributed")
def test_rpc_round_trip_cost(benchmark, process_cluster):
    client = process_cluster.client(0)
    result = benchmark(client.call, CallableTask(abs, -1))
    assert result == 1


@pytest.mark.benchmark(group="real-distributed")
def test_distributed_vs_local_farm_overhead(benchmark, process_cluster):
    n, p, d = make_weak_key(bits=64, found_at_task=N_TASKS + 5, seed=41)

    def run_local():
        return run_farm(FactorProducerTask(n, max_tasks=N_TASKS),
                        n_workers=2, mode="dynamic", timeout=300)

    def run_distributed():
        return run_farm(FactorProducerTask(n, max_tasks=N_TASKS),
                        n_workers=2, mode="dynamic", timeout=300,
                        cluster=process_cluster)

    # correctness first: identical results both ways
    local = run_local()
    distributed = run_distributed()
    assert [(r.task_index, r.p) for r in local] == \
        [(r.task_index, r.p) for r in distributed]

    t0 = time.perf_counter()
    run_local()
    t_local = time.perf_counter() - t0

    def timed_distributed():
        return run_distributed()

    benchmark.pedantic(timed_distributed, rounds=3, iterations=1)
    t_dist = benchmark.stats.stats.median

    emit("real_distributed", [
        f"OS-process servers, {N_TASKS} factoring tasks, 2 workers:",
        f"  local farm (threads)      : {t_local * 1e3:8.1f} ms",
        f"  distributed farm (sockets): {t_dist * 1e3:8.1f} ms",
        f"  distribution overhead     : {(t_dist / t_local - 1):+.0%}"
        "  (paper measured 6-7% at scale; small task counts amortize",
        "   worker shipping poorly, so this figure is an upper bound)",
        "  NOTE: single-CPU host - overhead only; speedup needs multicore.",
    ])
