"""Data-plane throughput benchmark: the Producer→Worker→Consumer byte path.

Measures messages/s and MB/s for the three traffic shapes the paper's
evaluation exercises (sections 5–6), over both transports:

* **local** — producer and consumer share one in-memory channel buffer;
* **socket** — producer and consumer are linked by a SenderPump /
  ReceiverPump TCP pair, the configuration every distributed run uses.

plus an **rpc_large** scenario timing ``send_obj``/``recv_obj`` round
trips with a large numpy payload (the compute-server Task path).

Results land in ``BENCH_dataplane.json`` at the repo root so the perf
trajectory survives across PRs::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --record-baseline
    ... optimize ...
    PYTHONPATH=src python benchmarks/bench_dataplane.py

``--record-baseline`` writes the numbers under ``"baseline"`` (done once,
before an optimization lands); a plain run writes ``"current"`` and prints
the speedups.  ``--quick`` shrinks message counts for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import socket
import struct
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.kpn.buffers import BoundedByteBuffer  # noqa: E402
from repro.kpn.objects import ObjectInputStream, ObjectOutputStream  # noqa: E402
from repro.kpn.streams import (BlockingInputStream, LocalInputStream,  # noqa: E402
                               LocalOutputStream)
from repro.distributed.sockets import ReceiverPump, SenderPump  # noqa: E402
from repro.distributed.wire import recv_obj, send_obj  # noqa: E402

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_dataplane.json")

#: channel capacity per traffic shape: a few messages' worth, so the pump
#: (not the bound) is the bottleneck — the configuration a tuned deployment
#: (or the paper's demand-grown bounds, section 3.5) converges to.  Small
#: messages keep a deliberately tight bound to exercise backpressure.
CAPACITIES = {
    "small": 64 * 1024,
    "large": 4 * 1024 * 1024,
    "mixed": 1024 * 1024,
}

SMALL_OBJ = ("task", 12345, 3.14159, b"x" * 64)
LARGE_BYTES = 1 << 20  # 1 MiB payloads for the large-object stream


def _payloads(kind: str, n: int):
    """The message sequence for a traffic shape."""
    if kind == "small":
        return [SMALL_OBJ] * n
    if kind == "large":
        blob = b"L" * LARGE_BYTES
        return [blob] * n
    if kind == "mixed":
        blob = b"M" * (LARGE_BYTES // 4)
        return [blob if i % 8 == 0 else SMALL_OBJ for i in range(n)]
    raise ValueError(kind)


def _approx_bytes(msgs) -> int:
    return sum(len(pickle.dumps(m, protocol=pickle.HIGHEST_PROTOCOL))
               for m in msgs)


#: buffered object-stream batch size (0 on code without buffered mode)
STREAM_BUFFER = 32 * 1024


def _object_streams(src: BoundedByteBuffer, dst: BoundedByteBuffer):
    """Object endpoints, using the buffered stream mode when available."""
    try:
        out = ObjectOutputStream(LocalOutputStream(src),
                                 buffer_bytes=STREAM_BUFFER)
        inp = ObjectInputStream(BlockingInputStream(LocalInputStream(dst)),
                                buffer_bytes=STREAM_BUFFER)
    except TypeError:  # pre-buffered-mode data plane (baseline runs)
        out = ObjectOutputStream(LocalOutputStream(src))
        inp = ObjectInputStream(BlockingInputStream(LocalInputStream(dst)))
    return out, inp


def _run_stream(msgs, src: BoundedByteBuffer, dst: BoundedByteBuffer) -> float:
    """Producer thread writes framed objects into ``src``; this thread
    consumes them from ``dst``.  Returns elapsed seconds."""
    out, inp = _object_streams(src, dst)

    def produce() -> None:
        for m in msgs:
            out.write_object(m)
        out.flush()
        src.close_write()

    t = threading.Thread(target=produce, daemon=True)
    start = time.perf_counter()
    t.start()
    for _ in range(len(msgs)):
        inp.read_object()
    elapsed = time.perf_counter() - start
    t.join(timeout=30)
    return elapsed


def bench_local(kind: str, n: int, repeats: int = 1) -> dict:
    msgs = _payloads(kind, n)
    cap = CAPACITIES[kind]
    elapsed = min(
        _run_stream(msgs, buf, buf)
        for buf in (BoundedByteBuffer(cap, name=f"bench-local-{kind}")
                    for _ in range(repeats)))
    return _result(kind, "local", msgs, elapsed)


def bench_socket(kind: str, n: int, repeats: int = 1) -> dict:
    msgs = _payloads(kind, n)
    cap = CAPACITIES[kind]
    best = None
    for _ in range(repeats):
        src = BoundedByteBuffer(cap, name=f"bench-sock-{kind}-src")
        dst = BoundedByteBuffer(cap, name=f"bench-sock-{kind}-dst")
        sender = SenderPump(src, name=f"bench-{kind}-s")
        host, port = sender.ensure_listener()
        sender.start()
        receiver = ReceiverPump(dst, connect=(host, port),
                                name=f"bench-{kind}-r").start()
        try:
            elapsed = _run_stream(msgs, src, dst)
        finally:
            sender.close()
            receiver.close()
        best = elapsed if best is None else min(best, elapsed)
    return _result(kind, "socket", msgs, best)


def bench_rpc_large(n: int) -> dict:
    """send_obj/recv_obj ping-pong with a large array payload."""
    if _np is not None:
        payload = _np.arange(LARGE_BYTES // 8, dtype=_np.float64)
        nbytes = payload.nbytes
    else:
        payload = bytearray(b"R" * LARGE_BYTES)
        nbytes = len(payload)
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def echo() -> None:
        conn, _ = listener.accept()
        with conn:
            for _ in range(n):
                obj = recv_obj(conn)
                send_obj(conn, {"ok": True, "result": obj["data"]})

    t = threading.Thread(target=echo, daemon=True)
    t.start()
    client = socket.create_connection(("127.0.0.1", port))
    client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    start = time.perf_counter()
    for _ in range(n):
        send_obj(client, {"op": "call", "data": payload})
        recv_obj(client)
    elapsed = time.perf_counter() - start
    client.close()
    listener.close()
    t.join(timeout=30)
    total = 2 * n * nbytes  # payload travels both directions
    return {"scenario": "rpc_large", "messages": n,
            "payload_bytes": total,
            "elapsed_s": round(elapsed, 4),
            "msgs_per_s": round(n / elapsed, 1),
            "mb_per_s": round(total / elapsed / 1e6, 2)}


def _result(kind: str, transport: str, msgs, elapsed: float) -> dict:
    total = _approx_bytes(msgs)
    return {"scenario": f"{transport}_{kind}", "messages": len(msgs),
            "payload_bytes": total,
            "elapsed_s": round(elapsed, 4),
            "msgs_per_s": round(len(msgs) / elapsed, 1),
            "mb_per_s": round(total / elapsed / 1e6, 2)}


def run_all(quick: bool) -> dict:
    scale = 40 if quick else 1
    repeats = 1 if quick else 3  # best-of-N damps scheduler noise
    plan = [
        ("small", 80000 // scale),
        ("large", 384 // scale),
        ("mixed", 8000 // scale),
    ]
    results = {}
    for kind, n in plan:
        r = bench_local(kind, n, repeats)
        results[r["scenario"]] = r
        print(_fmt(r))
        r = bench_socket(kind, n, repeats)
        results[r["scenario"]] = r
        print(_fmt(r))
    r = bench_rpc_large(256 // scale)
    results[r["scenario"]] = r
    print(_fmt(r))
    return results


def _fmt(r: dict) -> str:
    return (f"{r['scenario']:<14} {r['messages']:>7} msgs "
            f"{r['elapsed_s']:>8.3f}s {r['msgs_per_s']:>12.1f} msg/s "
            f"{r['mb_per_s']:>9.2f} MB/s")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="data-plane benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small message counts (CI smoke)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="store results as the pre-optimization baseline")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--merge-best", action="store_true",
                        help="keep the per-scenario best of this run and any "
                             "previously recorded run (damps host-level noise "
                             "when recording baseline/current in rounds)")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)

    doc = {}
    if os.path.exists(args.out):
        with open(args.out) as fh:
            doc = json.load(fh)
    key = "baseline" if args.record_baseline else "current"
    if args.merge_best:
        prior = doc.get(key, {}).get("results", {})
        for name, old in prior.items():
            cur = results.get(name)
            if cur is None or old["mb_per_s"] > cur["mb_per_s"]:
                results[name] = old
    doc[key] = {"quick": args.quick, "results": results}
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {key} results to {args.out}")

    base = doc.get("baseline", {}).get("results")
    if key == "current" and base:
        print("\nspeedup vs baseline:")
        for name, cur in results.items():
            b = base.get(name)
            if not b:
                continue
            print(f"  {name:<14} msgs/s x{cur['msgs_per_s'] / b['msgs_per_s']:.2f}"
                  f"   MB/s x{cur['mb_per_s'] / b['mb_per_s']:.2f}")


if __name__ == "__main__":
    main()
