"""Compare a fresh benchmark JSON against a committed BENCH_* baseline.

Walks both documents, pairs up numeric leaves by their dotted path, and
classifies each metric by its key name: timings (``*_s``, ``*seconds*``,
``median``/``min``/``max``/``*time*``) regress when they go *up*,
throughputs (``*per_sec*``, ``*speedup*``, ``*_rate*``) when they go
*down*.  Keys that are obviously not performance metrics (pids, counts,
versions, configuration) are skipped.

This is a *smoke* comparison for CI: shared runners are far too noisy
for hard perf gates, so the default is warn-only — regressions beyond
the tolerance are listed and the exit code stays 0.  ``--strict`` turns
them into a non-zero exit for local use on a quiet box.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--tolerance 0.5] [--report compare.txt] [--strict]

``--tolerance 0.5`` means "warn when a metric is more than 50% worse
than the baseline".
"""

import argparse
import json
import sys

# substrings that mark a numeric leaf as a performance metric
_LOWER_BETTER = ("_s", "seconds", "median", "min", "max", "time", "latency",
                 "overhead")
_HIGHER_BETTER = ("per_sec", "per_second", "speedup", "rate", "throughput",
                  "msgs_s", "mb_s")
# leaves that are numeric but not comparable performance data
_SKIP = ("pid", "cpu_count", "count", "repeats", "version", "port",
         "tasks", "workers", "bits", "batch", "events", "series",
         "processes", "smoke", "iterations", "capacity", "size")
_SKIP_PREFIXES = ("n_",)  # n_tasks, n_workers, ...


def _leaves(doc, prefix=""):
    """Yield (dotted_path, number) for every numeric leaf in ``doc``."""
    if isinstance(doc, dict):
        for key, value in sorted(doc.items()):
            yield from _leaves(value, f"{prefix}{key}.")
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from _leaves(value, f"{prefix}{i}.")
    elif isinstance(doc, bool):
        return
    elif isinstance(doc, (int, float)):
        yield prefix.rstrip("."), float(doc)


def _direction(path):
    """'down' if lower is better, 'up' if higher is better, None to skip."""
    leaf = path.rsplit(".", 1)[-1].lower()
    if any(tok in leaf for tok in _SKIP) or leaf.startswith(_SKIP_PREFIXES):
        return None
    if any(tok in leaf for tok in _HIGHER_BETTER):
        return "up"
    if any(tok in leaf for tok in _LOWER_BETTER):
        return "down"
    return None


def compare(baseline: dict, current: dict, tolerance: float):
    """Return (rows, regressions): every compared metric, and the bad ones.

    Each row is ``(path, base, cur, ratio, status)`` where ratio is
    current/baseline and status is ``ok`` / ``improved`` / ``REGRESSED``.
    """
    base_leaves = dict(_leaves(baseline))
    cur_leaves = dict(_leaves(current))
    rows, regressions = [], []
    for path in sorted(base_leaves.keys() & cur_leaves.keys()):
        direction = _direction(path)
        if direction is None:
            continue
        base, cur = base_leaves[path], cur_leaves[path]
        if base == 0:  # ratio undefined; absolute jitter around zero is fine
            continue
        ratio = cur / base
        worse = ratio > 1 + tolerance if direction == "down" \
            else ratio < 1 / (1 + tolerance)
        better = ratio < 1.0 if direction == "down" else ratio > 1.0
        status = "REGRESSED" if worse else ("improved" if better else "ok")
        row = (path, base, cur, ratio, status)
        rows.append(row)
        if worse:
            regressions.append(row)
    return rows, regressions


def render(rows, regressions, tolerance: float, baseline_path: str,
           current_path: str):
    lines = [f"benchmark comparison: {current_path} vs baseline "
             f"{baseline_path} (tolerance {tolerance:.0%})",
             f"{'METRIC':<58} {'BASE':>12} {'CURRENT':>12} "
             f"{'RATIO':>7}  STATUS"]
    for path, base, cur, ratio, status in rows:
        lines.append(f"{path:<58} {base:>12.6g} {cur:>12.6g} "
                     f"{ratio:>6.2f}x  {status}")
    if not rows:
        lines.append("(no comparable numeric metrics found)")
    lines.append("")
    if regressions:
        lines.append(f"{len(regressions)} metric(s) beyond tolerance — "
                     "treat as a hint, not a verdict: shared runners are "
                     "noisy, rerun before believing a regression.")
    else:
        lines.append("no regressions beyond tolerance.")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="warn-only benchmark JSON comparison")
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly generated benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown (default 0.5 = 50%%,"
                             " generous on purpose: CI runners are noisy)")
    parser.add_argument("--report", default=None,
                        help="also write the comparison table to this file")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warn-only")
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    rows, regressions = compare(baseline, current, args.tolerance)
    text = render(rows, regressions, args.tolerance,
                  args.baseline, args.current)
    print(text)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(text + "\n")
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
