"""Ablation: struct vs pickle framing (design choice #3).

The paper counts "Object Serialization and network communication
associated with the channels" among its minor overheads.  Here we measure
the cost difference between fixed-width struct codecs and pickle framing
for channel traffic, and the pickle cost of a real worker-task object —
the per-task overhead constant the simulated cluster is calibrated with.
"""

import pickle

import pytest

from repro.kpn.buffers import BoundedByteBuffer
from repro.kpn.streams import LocalInputStream, LocalOutputStream
from repro.parallel import FactorWorkerTask, make_weak_key
from repro.processes.codecs import DOUBLE, LONG, OBJECT

N_ELEMENTS = 5000


def roundtrip(codec, values):
    buf = BoundedByteBuffer(1 << 22)
    out = LocalOutputStream(buf)
    inp = LocalInputStream(buf)
    for v in values:
        codec.write(out, v)
    return [codec.read(inp) for _ in values]


@pytest.mark.benchmark(group="codec")
def test_long_codec(benchmark):
    values = list(range(N_ELEMENTS))
    assert benchmark(roundtrip, LONG, values) == values


@pytest.mark.benchmark(group="codec")
def test_double_codec(benchmark):
    values = [float(i) for i in range(N_ELEMENTS)]
    assert benchmark(roundtrip, DOUBLE, values) == values


@pytest.mark.benchmark(group="codec")
def test_object_codec_ints(benchmark):
    values = list(range(N_ELEMENTS))
    assert benchmark(roundtrip, OBJECT, values) == values


@pytest.mark.benchmark(group="codec")
def test_object_codec_tasks(benchmark):
    n, _, _ = make_weak_key(bits=64, found_at_task=5, seed=2)
    values = [FactorWorkerTask(n, i, 64 * i) for i in range(200)]
    got = benchmark(roundtrip, OBJECT, values)
    assert [t.task_index for t in got] == list(range(200))


@pytest.mark.benchmark(group="task-pickle")
def test_worker_task_pickle_size_and_speed(benchmark):
    """The per-task serialization the dynamic farm pays twice per task."""
    n, _, _ = make_weak_key(bits=512, found_at_task=1000, seed=4)
    task = FactorWorkerTask(n, 1000, 64000)

    def round_trip():
        return pickle.loads(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))

    clone = benchmark(round_trip)
    assert clone.d_start == task.d_start
    size = len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
    assert size < 4096  # a 1024-bit-key task stays well under one packet
