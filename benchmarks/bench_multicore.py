"""Multicore farm benchmark: the first *measured* Fig-20-style curve.

Runs the weak-RSA factorization farm (paper section 5.2) over a fixed
amount of work — ``--tasks`` worker tasks of ``--batch`` even differences
against a key whose factor lies beyond the scanned range, so every run
does identical compute and nothing terminates early — at several worker
counts and with each compute backend:

* ``inline``  — ``task.run()`` on the KPN worker thread (the seed
  behaviour; GIL-bound);
* ``thread``  — a shared ThreadPoolExecutor (GIL-bound, but identical
  submission path to the pool: the honest baseline);
* ``process`` — the :class:`~repro.parallel.executor.ProcessPool` of warm
  child interpreters (real multicore).

Throughput is tasks/s; ``speedup_process_vs_thread`` at each worker count
is the headline number — on an N-core host the process backend at 4
workers should clear 2.5× the thread backend (the GIL caps the latter
near 1-worker throughput regardless of worker count).  The host's
``cpu_count`` is recorded in the JSON: on a 1-core host the ratio is
honestly ≈1 and the curve is flat — the benchmark measures, it does not
simulate.

Results land in ``BENCH_multicore.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_multicore.py
    PYTHONPATH=src python benchmarks/bench_multicore.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.parallel.executor import (InlineExecutor, ProcessPool,  # noqa: E402
                                     ThreadExecutor)
from repro.parallel.factor import FactorProducerTask, make_weak_key  # noqa: E402
from repro.parallel.farm import build_farm  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_multicore.json")


def run_one(n_key: int, batch: int, tasks: int, workers: int,
            executor) -> dict:
    """One farm run over the fixed workload; returns timing facts."""
    handle = build_farm(
        FactorProducerTask(n_key, batch=batch, max_tasks=tasks),
        n_workers=workers, mode="dynamic", executor=executor,
        channel_capacity=1 << 20)
    t0 = time.perf_counter()
    results = handle.run(timeout=3600.0)
    elapsed = time.perf_counter() - t0
    if len(results) != tasks:
        raise RuntimeError(
            f"farm returned {len(results)}/{tasks} results — timed out?")
    if any(r.found for r in results):
        raise RuntimeError("key factored inside the scanned range; the "
                           "workload is no longer fixed-size")
    return {"seconds": round(elapsed, 4),
            "tasks_per_sec": round(tasks / elapsed, 2)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: small key/batches, 1-2 workers")
    parser.add_argument("--bits", type=int, default=None,
                        help="prime size (default 512; smoke: 256)")
    parser.add_argument("--batch", type=int, default=None,
                        help="differences per task (default 4096; smoke: 1024)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="tasks per run (default 96; smoke: 24)")
    parser.add_argument("--workers", type=int, nargs="*", default=None,
                        help="worker counts (default: 1 2 4 + cpu_count)")
    parser.add_argument("--backends", nargs="*", default=None,
                        choices=["inline", "thread", "process"])
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args()

    cpus = os.cpu_count() or 1
    bits = args.bits or (256 if args.smoke else 512)
    batch = args.batch or (1024 if args.smoke else 4096)
    tasks = args.tasks or (24 if args.smoke else 96)
    if args.workers:
        workers_list = sorted(set(args.workers))
    elif args.smoke:
        workers_list = sorted({1, min(2, max(cpus, 2))})
    else:
        workers_list = sorted({1, 2, 4, cpus})
    backends = args.backends or ["inline", "thread", "process"]

    # factor placed far beyond the scanned range: every run is pure search
    n_key, _, _ = make_weak_key(bits=bits, found_at_task=10 * tasks + 7,
                                batch=batch, seed=20260805)

    # one warm executor per backend, shared across worker counts — the
    # deployment shape (one pool per host), and it keeps spawn cost out
    # of the timings
    pool_size = max(max(workers_list), cpus)
    executors = {}
    if "inline" in backends:
        executors["inline"] = InlineExecutor()
    if "thread" in backends:
        executors["thread"] = ThreadExecutor(size=pool_size)
    if "process" in backends:
        executors["process"] = ProcessPool(size=pool_size)
        executors["process"].run_task(
            FactorProducerTask(n_key, batch=1, max_tasks=1).run())  # warm ship path

    results = []
    try:
        for backend in backends:
            for workers in workers_list:
                fact = run_one(n_key, batch, tasks, workers,
                               executors[backend])
                fact.update(backend=backend, workers=workers)
                results.append(fact)
                print(f"{backend:>8} x{workers}: {fact['tasks_per_sec']:8.2f} "
                      f"tasks/s  ({fact['seconds']:.3f}s)", flush=True)
    finally:
        for ex in executors.values():
            ex.close()

    def rate(backend: str, workers: int):
        for r in results:
            if r["backend"] == backend and r["workers"] == workers:
                return r["tasks_per_sec"]
        return None

    speedups = {}
    if "thread" in backends and "process" in backends:
        speedups["process_vs_thread"] = {
            str(w): round(rate("process", w) / rate("thread", w), 3)
            for w in workers_list}
    for backend in backends:
        base = rate(backend, workers_list[0])
        speedups.setdefault("scaling_vs_first", {})[backend] = {
            str(w): round(rate(backend, w) / base, 3) for w in workers_list}

    doc = {
        "benchmark": "multicore-factor-farm",
        "host": {"cpu_count": cpus, "python": platform.python_version(),
                 "platform": platform.platform(), "pid": os.getpid()},
        "config": {"bits": bits, "batch": batch, "tasks": tasks,
                   "workers": workers_list, "backends": backends,
                   "pool_size": pool_size, "smoke": bool(args.smoke)},
        "results": results,
        "speedups": speedups,
        "note": ("process-backend speedup over thread-backend requires "
                 "physical cores; on cpu_count=1 hosts the ratio is ~1 "
                 "by construction"),
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    for key, table in speedups.items():
        print(f"{key}: {table}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
