"""Figure 20 — speedup vs number of workers (1..32).

The vertical axis is "relative to the speed of a 1 GHz Pentium III".
Asserts the figure's two ideal-curve inflection points (first class-C CPU
at worker 8, first class-E CPU at worker 27) and the widening gap between
static and dynamic speedup.
"""

import pytest

from repro.simcluster import ideal_speed, sweep_workers

from conftest import emit, fmt_row

WIDTHS = (3, 8, 8, 8)


@pytest.mark.benchmark(group="fig20")
def test_fig20_regenerate(benchmark):
    rows = benchmark(sweep_workers, range(1, 33))
    lines = ["Figure 20: speedup (speed normalized to 1 GHz P-III) vs workers",
             fmt_row(("W", "ideal", "static", "dynamic"), WIDTHS)]
    for r in rows:
        lines.append(fmt_row((r.workers, r.ideal_speed, r.static_speed,
                              r.dynamic_speed), WIDTHS))
    increments = [ideal_speed(w + 1) - ideal_speed(w) for w in range(1, 34)]
    lines.append("")
    lines.append(f"ideal-speed increment at worker 8 (first class C): "
                 f"{increments[6]:.2f} (was {increments[5]:.2f})")
    lines.append(f"ideal-speed increment at worker 27 (first class E): "
                 f"{increments[25]:.2f} (was {increments[24]:.2f})")
    emit("fig20", lines)

    # increments[k] = speed(k+2) − speed(k+1) = the (k+2)-th worker's CPU.
    # inflection 1: worker 8 is the first class-C CPU: +1.00 after +1.71
    assert increments[5] == pytest.approx(1.71, abs=0.01)   # worker 7 (B)
    assert increments[6] == pytest.approx(1.00, abs=0.01)   # worker 8 (C)
    # inflection 2: worker 27 is the first class-E CPU: +0.80 after +0.99
    assert increments[24] == pytest.approx(0.99, abs=0.01)  # worker 26 (D)
    assert increments[25] == pytest.approx(0.80, abs=0.01)  # worker 27 (E)

    by_w = {r.workers: r for r in rows}
    # dynamic speedup strictly dominates static for all heterogeneous W
    for w in range(8, 33):
        assert by_w[w].dynamic_speed > by_w[w].static_speed
    # and the gap widens with scale (paper: 29.77 vs 22.42 at W=32)
    gap8 = by_w[8].dynamic_speed - by_w[8].static_speed
    gap32 = by_w[32].dynamic_speed - by_w[32].static_speed
    assert gap32 > gap8


@pytest.mark.benchmark(group="fig20-point")
def test_single_point_cost(benchmark):
    from repro.simcluster import run_parallel

    benchmark(lambda: run_parallel(16, "dynamic"))
