"""Ablation: Parks bounded scheduling (design choice #1, Figures 12–13).

Measures what the grow-on-demand scheduler costs and saves: the Hamming
network (whose channel demand is unbounded) run from different initial
capacities, counting growth events and final memory; and the Figure-13
graph showing a single growth unblocks an otherwise-deadlocked acyclic
program.
"""

import pytest

from repro.kpn import Network
from repro.kpn.scheduler import DeadlockPolicy
from repro.processes import hamming, modulo_merge
from repro.semantics import hamming_reference

from conftest import emit, fmt_row


def run_hamming(initial_capacity: int, count: int = 40):
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = hamming(count, network=net, channel_capacity=initial_capacity)
    out = built.run(timeout=300)
    assert out == hamming_reference(count)
    events = net.growth_events()
    final_bytes = sum(ch.capacity for ch in net.channels)
    return len(events), final_bytes


@pytest.mark.benchmark(group="bounded-growth")
def test_growth_vs_initial_capacity(benchmark):
    def sweep():
        rows = []
        for cap in (16, 64, 256, 4096):
            growths, final_bytes = run_hamming(cap)
            rows.append((cap, growths, final_bytes))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: Hamming(40) under Parks bounded scheduling",
             fmt_row(("init-cap", "growths", "total-bytes"), (9, 8, 12))]
    for r in rows:
        lines.append(fmt_row(r, (9, 8, 12)))
    emit("ablation_bounded", lines)
    # more initial capacity -> fewer growth events (monotone)
    growth_counts = [r[1] for r in rows]
    assert growth_counts == sorted(growth_counts, reverse=True)
    # at 4096 bytes/channel no growth is needed for 40 values
    assert growth_counts[-1] == 0


@pytest.mark.benchmark(group="bounded-growth")
def test_fig13_single_growth_sufficiency(benchmark):
    """Figure 13 with divisor N: the lower channel needs ~(N-1) longs;
    doubling from 16 bytes must unblock within a few growths."""
    def run():
        net = Network(policy=DeadlockPolicy(growth_factor=2))
        built = modulo_merge(500, divisor=10, network=net,
                             channel_capacity=16)
        out = built.run(timeout=300)
        return net, out

    net, out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out == list(range(1, 501))
    events = net.growth_events()
    emit("ablation_fig13_growth", [
        f"Figure 13 (divisor 10, 16-byte channels): {len(events)} growths:",
        *(f"  {e.channel_name}: {e.old_capacity} -> {e.new_capacity}"
          for e in events)])
    assert 1 <= len(events) <= 6


@pytest.mark.benchmark(group="bounded-scheduling")
@pytest.mark.parametrize("capacity", [16, 4096])
def test_hamming_cost_with_and_without_growth(benchmark, capacity):
    benchmark(run_hamming, capacity, 30)
