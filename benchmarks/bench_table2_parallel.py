"""Table 2 — parallel execution: ideal / static / dynamic, 1–32 workers.

Regenerates every cell of the paper's Table 2 from the simulated lab and
asserts the section-5.2 claims: static collapses when the first slow CPU
joins, dynamic tracks ideal within startup overhead, and the overhead at
one worker is the paper's 6–7 %.  Also runs the homogeneous-cluster
control ablation (design choice #4 in DESIGN.md): with identical CPUs the
two disciplines tie, proving the dynamic win is heterogeneity, not magic.
"""

import pytest

from repro.simcluster import (TABLE2, homogeneous_control, ideal_time,
                              run_parallel, table2_rows)
from repro.simcluster.paperdata import table2_by_workers

from conftest import emit, fmt_row

WIDTHS = (3, 8, 7, 8, 8, 8, 8)


@pytest.mark.benchmark(group="table2")
def test_table2_regenerate(benchmark):
    paper = table2_by_workers()
    lines = [
        "Table 2: parallel execution (minutes / normalized speed)",
        fmt_row(("W", "ideal-t", "speed", "stat-mdl", "stat-ppr",
                 "dyn-mdl", "dyn-ppr"), WIDTHS),
    ]
    rows = benchmark(table2_rows)
    for row in rows:
        p = paper[row.workers]
        lines.append(fmt_row((row.workers, row.ideal_time, row.ideal_speed,
                              row.static_time, p.static_time,
                              row.dynamic_time, p.dynamic_time), WIDTHS))
    emit("table2", lines)
    for row in rows:
        p = paper[row.workers]
        assert row.dynamic_time == pytest.approx(p.dynamic_time, rel=0.08)
        assert row.static_time == pytest.approx(p.static_time, rel=0.10)


@pytest.mark.benchmark(group="table2")
def test_claim_static_collapse_at_first_class_c(benchmark):
    t7, t8 = benchmark(lambda: tuple(run_parallel(w, "static").elapsed for w in (7, 8)))
    emit("claim_static_collapse", [
        "Static elapsed minutes around the 7->8 worker transition:",
        f"  W=7: {t7:.2f}   W=8: {t8:.2f}   (paper: time INCREASES)"])
    assert t8 > t7


@pytest.mark.benchmark(group="table2")
def test_claim_dynamic_overhead_small(benchmark):
    t1 = benchmark(lambda: run_parallel(1, "dynamic").elapsed)
    overhead = t1 / ideal_time(1) - 1
    emit("claim_overhead", [
        f"Dynamic overhead at 1 worker: {overhead:.1%} "
        "(paper: 'no more than 6% to 7%')"])
    assert 0.05 <= overhead <= 0.08


@pytest.mark.benchmark(group="table2")
def test_ablation_homogeneous_control(benchmark):
    control = benchmark(homogeneous_control, 8)
    emit("ablation_homogeneous", [
        "Ablation: 8 identical class-C CPUs (design choice #4):",
        f"  static  {control['static']:.3f} min",
        f"  dynamic {control['dynamic']:.3f} min",
        "  -> the disciplines tie; dynamic's win comes from heterogeneity."])
    assert control["dynamic"] == pytest.approx(control["static"], rel=0.01)


@pytest.mark.benchmark(group="table2-simulation")
@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_simulation_speed(benchmark, mode):
    """How fast the DES itself runs a 2048-task / 32-worker experiment."""
    benchmark(lambda: run_parallel(32, mode))
