"""Ablation: worker-task batch size (design choice #2).

"The batch size of 32 struck a balance between computation and
communication that prevented the producer and consumer tasks from
creating bottlenecks."  We sweep the batch size on the simulated cluster
(total work held constant, so fewer/larger vs many/smaller tasks) and
verify the U-shape: tiny batches drown in per-task overhead, huge batches
lose load-balance granularity on heterogeneous workers.
"""

import pytest

from repro.simcluster import Calibration, DEFAULT_CALIBRATION
from repro.simcluster.desim import simulate_farm
from repro.simcluster.machine import workers_fastest_first
from repro.simcluster.paperdata import BATCH, TASKS

from conftest import emit, fmt_row

TOTAL_DIFFERENCES = TASKS * BATCH  # the experiment's fixed search space


def elapsed_for_batch(batch: int, workers: int = 16) -> float:
    n_tasks = TOTAL_DIFFERENCES // batch
    cal = DEFAULT_CALIBRATION
    work_per_task = cal.work_per_task * batch / BATCH
    res = simulate_farm(workers_fastest_first(workers), n_tasks,
                        work_per_task, mode="dynamic",
                        per_task_overhead=cal.per_task_overhead,
                        startup_per_worker=cal.startup_per_worker)
    return res.elapsed


@pytest.mark.benchmark(group="batch-sweep")
def test_batch_sweep_shape(benchmark):
    batches = [1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096]
    times = benchmark(lambda: {b: elapsed_for_batch(b) for b in batches})
    lines = ["Ablation: batch size sweep (16 workers, dynamic, minutes)",
             fmt_row(("batch", "tasks", "elapsed"), (6, 8, 9))]
    for b in batches:
        lines.append(fmt_row((b, TOTAL_DIFFERENCES // b, times[b]), (6, 8, 9)))
    best = min(times, key=times.get)
    lines.append(f"best batch in sweep: {best} (paper chose {BATCH})")
    emit("ablation_batchsize", lines)

    # tiny batches pay heavy per-task overhead
    assert times[1] > times[32] * 1.5
    # huge batches lose granularity (tail imbalance on heterogeneous CPUs)
    assert times[4096] > times[32] * 1.2
    # the paper's choice sits in the flat bottom of the U
    assert times[32] <= min(times.values()) * 1.10


@pytest.mark.benchmark(group="batch-point")
def test_batch_point_cost(benchmark):
    benchmark(elapsed_for_batch, 32)
