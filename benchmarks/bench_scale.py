#!/usr/bin/env python
"""Scale benchmark: thread vs. async scheduler backend, paired runs.

Identical topologies at matched process counts on both backends:

* ``ring``   -- Root -> Relay x (n-2) -> Drain.  A handful of tokens
  traverse the whole chain, so every process parks/wakes and run time
  measures per-hop scheduling cost at *depth* n.
* ``fanout`` -- n//3 independent Source -> Relay -> Sink pipelines
  running concurrently: scheduling cost at *width*, with many
  simultaneously runnable actors and no cross-pipeline coupling.

Each case runs in a fresh subprocess (clean interpreter, isolated
memory, enforceable wall-clock budget).  A case that exceeds its budget
or dies -- e.g. ``RuntimeError: can't start new thread`` once the
thread backend exhausts OS limits -- records a DNF instead of aborting
the whole benchmark; DNFs are exactly the data the comparison exists to
collect.

``--probe`` doubles the ring size per backend until the first DNF and
reports the largest count that completed, i.e. the max sustainable
process count within the budget.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke
    PYTHONPATH=src python benchmarks/bench_scale.py --out BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(HERE), "src")

TOKENS = 5
FULL_COUNTS = [100, 1000, 10000]
QUICK_COUNTS = [100, 1000]
SMOKE_COUNTS = [100, 400]
TOPOLOGIES = ["ring", "fanout"]


# ---------------------------------------------------------------- child

def _processes():
    from repro.kpn.process import IterativeProcess
    from repro.processes.codecs import LONG

    class Root(IterativeProcess):
        def __init__(self, out, tokens, **kw):
            super().__init__(iterations=tokens, **kw)
            self.out = out
            self.track(out)
            self.n = 0

        def step(self):
            LONG.write(self.out, self.n)
            self.n += 1

    class Relay(IterativeProcess):
        def __init__(self, src, out, **kw):
            super().__init__(**kw)
            self.src = src
            self.out = out
            self.track(src, out)

        def step(self):
            LONG.write(self.out, LONG.read(self.src))

    class Drain(IterativeProcess):
        def __init__(self, src, **kw):
            super().__init__(**kw)
            self.src = src
            self.track(src)
            self.total = 0

        def step(self):
            self.total += LONG.read(self.src)

    return Root, Relay, Drain


def build_ring(net, n, tokens):
    Root, Relay, Drain = _processes()
    chans = [net.channel(name=f"r{i}") for i in range(n - 1)]
    net.add(Root(chans[0].get_output_stream(), tokens, name="root"))
    for i in range(1, n - 1):
        net.add(Relay(chans[i - 1].get_input_stream(),
                      chans[i].get_output_stream(), name=f"relay-{i}"))
    drains = [net.add(Drain(chans[-1].get_input_stream(), name="drain"))]
    return drains, [sum(range(tokens))]


def build_fanout(net, n, tokens):
    Root, Relay, Drain = _processes()
    k = max(1, n // 3)
    drains = []
    for j in range(k):
        a = net.channel(name=f"a{j}")
        b = net.channel(name=f"b{j}")
        net.add(Root(a.get_output_stream(), tokens, name=f"src-{j}"))
        net.add(Relay(a.get_input_stream(), b.get_output_stream(),
                      name=f"mid-{j}"))
        drains.append(net.add(Drain(b.get_input_stream(), name=f"sink-{j}")))
    return drains, [sum(range(tokens))] * k


def run_case(topology, backend, n, budget, tokens=TOKENS):
    sys.path.insert(0, SRC)
    from repro.kpn.network import Network

    result = {"topology": topology, "backend": backend, "n": n, "ok": False}
    t0 = time.perf_counter()
    net = Network(name=f"scale-{topology}", backend=backend)
    builder = build_ring if topology == "ring" else build_fanout
    drains, expect = builder(net, n, tokens)
    nprocs = len(net.processes)
    result["processes"] = nprocs
    result["build_s"] = round(time.perf_counter() - t0, 4)
    try:
        t1 = time.perf_counter()
        net.start()
        start_s = time.perf_counter() - t1
        t2 = time.perf_counter()
        ok = net.join(timeout=budget)
        run_s = time.perf_counter() - t2
    except RuntimeError as exc:          # e.g. can't start new thread
        result["error"] = str(exc)
        try:
            net.shutdown()
            net.join(timeout=10)
        except Exception:
            pass
        return result
    totals = [d.total for d in drains]
    # the case owns its subprocess, so self maxrss is this case's peak:
    # resident stacks are where one-thread-per-process actually pays
    import resource
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    result.update(
        ok=bool(ok) and totals == expect,
        start_s=round(start_s, 4),
        run_s=round(run_s, 4),
        total_s=round(start_s + run_s, 4),
        startup_us_per_proc=round(start_s / nprocs * 1e6, 2),
        steps_per_s=round(nprocs * tokens / max(start_s + run_s, 1e-9)),
        peak_rss_mb=round(peak_kb / 1024, 1),
    )
    if not ok:
        result["error"] = "timeout"
    elif totals != expect:
        result["error"] = "wrong totals"
    return result


# --------------------------------------------------------------- parent

def spawn_case(topology, backend, n, budget):
    """Run one case in a fresh interpreter; DNF on timeout or crash."""
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_BACKEND", None)
    cmd = [sys.executable, os.path.abspath(__file__), "--case",
           topology, backend, str(n), "--budget", str(budget)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=budget + 60, env=env)
    except subprocess.TimeoutExpired:
        return {"topology": topology, "backend": backend, "n": n,
                "ok": False, "error": f"hard timeout ({budget}s)"}
    for line in reversed(proc.stdout.splitlines()):
        line = line.strip()
        if line.startswith("{"):
            return json.loads(line)
    return {"topology": topology, "backend": backend, "n": n, "ok": False,
            "error": (proc.stderr.strip().splitlines() or ["no output"])[-1]}


def probe_max(backend, budget, start=1000, cap=200_000):
    """Double the ring size until the first DNF; report the last success."""
    n, best = start, 0
    while n <= cap:
        r = spawn_case("ring", backend, n, budget)
        print(f"  probe {backend:6s} n={n}: "
              f"{'ok %.1fs' % r['total_s'] if r.get('ok') else 'DNF (%s)' % r.get('error')}",
              flush=True)
        if not r.get("ok"):
            break
        best = n
        n *= 2
    return best


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--case", nargs=3, metavar=("TOPO", "BACKEND", "N"),
                    help=argparse.SUPPRESS)
    ap.add_argument("--budget", type=float, default=300.0,
                    help="wall-clock budget per case, seconds")
    ap.add_argument("--counts", type=int, nargs="+", default=None)
    ap.add_argument("--quick", action="store_true",
                    help=f"counts {QUICK_COUNTS}")
    ap.add_argument("--smoke", action="store_true",
                    help=f"CI smoke: counts {SMOKE_COUNTS}, ring only")
    ap.add_argument("--probe", action="store_true",
                    help="probe max sustainable ring size per backend")
    ap.add_argument("--out", default=None, help="write JSON report here")
    args = ap.parse_args(argv)

    if args.case:
        topo, backend, n = args.case
        print(json.dumps(run_case(topo, backend, int(n), args.budget)))
        return 0

    counts = args.counts or (SMOKE_COUNTS if args.smoke
                             else QUICK_COUNTS if args.quick else FULL_COUNTS)
    topologies = ["ring"] if args.smoke else TOPOLOGIES
    report = {
        "bench": "scale",
        "tokens": TOKENS,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "budget_s": args.budget,
        "cases": [],
        "pairs": [],
    }
    for topo in topologies:
        for n in counts:
            pair = {"topology": topo, "n": n}
            for backend in ("thread", "async"):
                r = spawn_case(topo, backend, n, args.budget)
                report["cases"].append(r)
                tag = ("%.2fs" % r["total_s"] if r.get("ok")
                       else "DNF (%s)" % r.get("error"))
                print(f"{topo:7s} n={n:<7d} {backend:6s} {tag}", flush=True)
                pair[backend] = r.get("total_s") if r.get("ok") else None
            t, a = pair.get("thread"), pair.get("async")
            pair["ratio_thread_over_async"] = (
                round(t / a, 2) if t and a else None)
            # per-process scheduling cost is the headline number: total
            # time hides it for threads (the ring drains while start()
            # is still spawning, so run_s reads near zero)
            tc = [c for c in report["cases"][-2:] if c.get("ok")]
            by = {c["backend"]: c for c in tc}
            ts, As = by.get("thread", {}), by.get("async", {})
            if ts.get("startup_us_per_proc") and As.get("startup_us_per_proc"):
                pair["startup_ratio_thread_over_async"] = round(
                    ts["startup_us_per_proc"] / As["startup_us_per_proc"], 2)
            if ts.get("peak_rss_mb") and As.get("peak_rss_mb"):
                pair["rss_ratio_thread_over_async"] = round(
                    ts["peak_rss_mb"] / As["peak_rss_mb"], 2)
            report["pairs"].append(pair)
    if args.probe:
        report["max_sustainable"] = {
            b: probe_max(b, args.budget) for b in ("thread", "async")}
        print("max sustainable:", report["max_sustainable"], flush=True)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
