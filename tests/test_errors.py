"""The exception taxonomy: hierarchy and payloads."""

import pickle

import pytest

from repro.errors import (ArtificialDeadlockError, BrokenChannelError,
                          ChannelClosedError, ChannelError, DeadlockError,
                          EndOfStreamError, MigrationError, RegistryError,
                          RemoteError, TrueDeadlockError)


def test_channel_errors_are_ioerrors():
    """Generic code catching OSError/IOError must see channel failures
    (the paper's IOException analogy demands it)."""
    for exc_type in (ChannelError, EndOfStreamError, BrokenChannelError,
                     ChannelClosedError):
        assert issubclass(exc_type, IOError)


def test_channel_error_is_common_base():
    for exc_type in (EndOfStreamError, BrokenChannelError, ChannelClosedError):
        assert issubclass(exc_type, ChannelError)


def test_deadlock_hierarchy():
    assert issubclass(ArtificialDeadlockError, DeadlockError)
    assert issubclass(TrueDeadlockError, DeadlockError)
    assert not issubclass(DeadlockError, ChannelError)


def test_deadlock_error_carries_blocked_names():
    err = TrueDeadlockError("stuck", ("a", "b"))
    assert err.blocked == ("a", "b")


def test_remote_error_str_includes_traceback():
    err = RemoteError("ZeroDivisionError: boom", "Traceback ...\n  line 1")
    text = str(err)
    assert "boom" in text and "remote traceback" in text


def test_remote_error_without_traceback():
    assert str(RemoteError("plain")) == "plain"


def test_errors_pickle_roundtrip():
    for err in (EndOfStreamError("eof"), BrokenChannelError("pipe"),
                MigrationError("move"), RegistryError("name")):
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is type(err)
        assert str(clone) == str(err)
