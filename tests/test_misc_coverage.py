"""Cross-cutting edge cases not covered by the per-module suites."""

import threading
import time

import pytest

from repro.errors import ChannelError
from repro.kpn import Network
from repro.kpn.buffers import BoundedByteBuffer
from repro.kpn.process import CompositeProcess
from repro.kpn.streams import (LocalInputStream, LocalOutputStream,
                               SequenceInputStream)
from repro.processes import Collect, FromIterable, Scale, Sequence

from tests.conftest import start_thread


# ---------------------------------------------------------------------------
# splice-while-blocked (the exact timing window of Figure 10)
# ---------------------------------------------------------------------------

def test_sequence_append_while_reader_blocked():
    """A reader blocked on the current (empty, open) stream must pick up
    a stream appended *during* the block once the current one closes."""
    buf1, buf2 = BoundedByteBuffer(64), BoundedByteBuffer(64)
    seq = SequenceInputStream(LocalInputStream(buf1))
    got = []

    def reader():
        while True:
            chunk = seq.read(16)
            if not chunk:
                return
            got.append(chunk)

    t = start_thread(reader)
    time.sleep(0.05)            # reader is now blocked inside buf1.read
    seq.append(LocalInputStream(buf2))
    buf2.write(b"tail")
    buf2.close_write()
    buf1.write(b"head")         # wake the reader with head data...
    buf1.close_write()          # ...then end the first stream
    t.join(timeout=10)
    assert b"".join(got) == b"headtail"


# ---------------------------------------------------------------------------
# nested composite migration
# ---------------------------------------------------------------------------

def test_nested_composite_migrates_whole(tmp_path):
    from repro.distributed import ComputeServer, ServerClient

    server = ComputeServer(name="nest").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        net = Network()
        inbound, mid, outbound = net.channels_n(3)
        out = []
        inner = CompositeProcess(name="inner")
        inner.add(Scale(inbound.get_input_stream(), mid.get_output_stream(),
                        2, name="n-x2"))
        outer = CompositeProcess(name="outer")
        outer.add(inner)
        outer.add(Scale(mid.get_input_stream(), outbound.get_output_stream(),
                        5, name="n-x5"))
        client.run(outer)
        net.add(FromIterable(inbound.get_output_stream(), [1, 2, 3]))
        net.add(Collect(outbound.get_input_stream(), out))
        net.run(timeout=60)
        assert out == [10, 20, 30]
    finally:
        client.close()
        server.stop()


# ---------------------------------------------------------------------------
# graph export after self-reconfiguration
# ---------------------------------------------------------------------------

def test_graph_reflects_dynamically_inserted_processes():
    from repro.processes import primes

    net = Network()
    built = primes(count=6, network=net)
    built.run(timeout=60)
    g = net.graph()
    modulo_nodes = [n for n in g.nodes if n.startswith("Modulo-")]
    assert len(modulo_nodes) == 6  # one per emitted prime


# ---------------------------------------------------------------------------
# object stream frame cap
# ---------------------------------------------------------------------------

def test_object_stream_rejects_oversized_object():
    from repro.kpn.channel import Channel
    from repro.kpn import objects
    from repro.kpn.objects import ObjectOutputStream

    original = objects.MAX_FRAME_BYTES
    objects.MAX_FRAME_BYTES = 128
    try:
        ch = Channel(1024)
        out = ObjectOutputStream(ch.get_output_stream())
        with pytest.raises(ChannelError, match="exceeds cap"):
            out.write_object("x" * 1024)
    finally:
        objects.MAX_FRAME_BYTES = original


# ---------------------------------------------------------------------------
# farm consumer iteration limits through meta compositions
# ---------------------------------------------------------------------------

def test_farm_consumer_iteration_limit_cuts_cleanly():
    from repro.parallel import CallableTask, RangeProducerTask, run_farm

    got = run_farm(RangeProducerTask(10 ** 6, lambda i: CallableTask(abs, i)),
                   n_workers=3, mode="dynamic", consumer_iterations=9,
                   timeout=120)
    assert got == list(range(9))


def test_farm_pipeline_mode_with_slowdown():
    from repro.parallel import CallableTask, RangeProducerTask, run_farm

    got = run_farm(RangeProducerTask(5, lambda i: CallableTask(abs, i)),
                   mode="pipeline", slowdowns=[0.002], timeout=60)
    assert got == list(range(5))


# ---------------------------------------------------------------------------
# channel adoption + accounting rebind mid-network
# ---------------------------------------------------------------------------

def test_adopted_channel_participates_in_deadlock_management():
    from repro.kpn.channel import Channel
    from repro.processes import ModuloRouter, OrderedMerge

    net = Network()
    loose = Channel(16, name="adopted-lower")  # created outside the network
    net.adopt_channel(loose)
    src = net.channel(16, name="a-src")
    upper = net.channel(16, name="a-upper")
    out_ch = net.channel(name="a-out")
    out = []
    net.add(Sequence(src.get_output_stream(), start=1, iterations=120))
    net.add(ModuloRouter(src.get_input_stream(), upper.get_output_stream(),
                         loose.get_output_stream(), 10))
    net.add(OrderedMerge(upper.get_input_stream(), loose.get_input_stream(),
                         out_ch.get_output_stream()))
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(1, 121))
    # the adopted channel was growable by the monitor like any other
    assert any(e.channel_name == "adopted-lower"
               for e in net.growth_events())


# ---------------------------------------------------------------------------
# wire: every tag is distinct (protocol hygiene)
# ---------------------------------------------------------------------------

def test_wire_tags_distinct():
    from repro.distributed.wire import Tag

    values = [getattr(Tag, n) for n in dir(Tag) if n.isupper()]
    assert len(values) == len(set(values))
