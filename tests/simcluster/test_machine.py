"""Machine inventory invariants (Table 1 / section 5.2)."""

import pytest

from repro.simcluster.machine import (PAPER_CLASSES, homogeneous_inventory,
                                      paper_cpu_inventory,
                                      workers_fastest_first)


def test_inventory_totals_match_paper():
    assert sum(c.computers for c in PAPER_CLASSES) == 25
    assert sum(c.total_cpus for c in PAPER_CLASSES) == 34


def test_inventory_class_counts():
    by_name = {c.name: c for c in PAPER_CLASSES}
    assert by_name["A"].total_cpus == 1
    assert by_name["B"].total_cpus == 6
    assert by_name["C"].total_cpus == 15
    assert by_name["D"].total_cpus == 4  # 2 dual-CPU machines
    assert by_name["E"].total_cpus == 8  # the 8-way Xeon


def test_speeds_normalized_to_class_c():
    by_name = {c.name: c for c in PAPER_CLASSES}
    assert by_name["C"].speed == 1.00
    assert by_name["A"].speed == 1.93
    assert by_name["B"].speed == 1.71
    assert by_name["E"].speed == 0.80


def test_classes_sorted_fastest_first():
    speeds = [c.speed for c in PAPER_CLASSES]
    assert speeds == sorted(speeds, reverse=True)


def test_worker_allocation_order():
    cpus = workers_fastest_first(34)
    names = [c.cpu_class.name for c in cpus]
    assert names[0] == "A"
    assert names[1:7] == ["B"] * 6
    assert names[7:22] == ["C"] * 15       # worker 8 = first class C
    assert names[22:26] == ["D"] * 4
    assert names[26:] == ["E"] * 8         # worker 27 = first class E


def test_worker_allocation_bounds():
    with pytest.raises(ValueError):
        workers_fastest_first(0)
    with pytest.raises(ValueError):
        workers_fastest_first(35)


def test_homogeneous_inventory():
    cpus = homogeneous_inventory(5, speed=1.5)
    assert len(cpus) == 5
    assert all(c.speed == 1.5 for c in cpus)
