"""The regenerated-evaluation report: structure and pinned claims."""

import pytest

from repro.simcluster.report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report()


def test_report_has_all_sections(report):
    for heading in ("## Table 1", "## Table 2", "## Section 5.2 claims",
                    "## Figures 19–20", "## Task-variance ablation"):
        assert heading in report


def test_report_table1_rows(report):
    for cls in "ABCDE":
        assert f"\n| {cls} | " in report


def test_report_table2_all_worker_counts(report):
    for w in (1, 2, 4, 8, 16, 32):
        assert f"\n| {w} | " in report


def test_report_sweep_has_32_rows(report):
    sweep = report.split("## Figures 19–20")[1]
    data_rows = [line for line in sweep.splitlines()
                 if line.startswith("|") and "---" not in line
                 and not line.startswith("| W")]
    assert len(data_rows) >= 32


def test_report_claims_text(report):
    assert "no more than 6% to 7%" in report
    assert "first class-C CPU" in report


def test_report_without_sweep_is_smaller():
    short = generate_report(sweep=False)
    assert "## Figures 19–20" not in short
    assert "## Table 2" in short


def test_report_is_valid_markdown_tables():
    """Every table row has the same cell count as its header."""
    report = generate_report(sweep=False)
    lines = report.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("|") and "---" in line:
            header_cells = lines[i - 1].count("|")
            j = i + 1
            while j < len(lines) and lines[j].startswith("|"):
                assert lines[j].count("|") == header_cells, lines[j]
                j += 1
