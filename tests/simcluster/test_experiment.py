"""The regenerated evaluation vs the paper's published numbers.

Tolerances: the simulator is calibrated from exactly three paper numbers
(class-C sequential time, 1-worker dynamic overhead, 32-worker dynamic
residual); every other cell is a prediction and must land close to the
paper — and every *qualitative* claim of section 5.2 must hold exactly.
"""

import pytest

from repro.simcluster import (TABLE1, TABLE2, homogeneous_control,
                              ideal_speed, ideal_time, run_parallel,
                              sequential_times, speed_of, sweep_workers,
                              table2_rows)
from repro.simcluster.paperdata import table2_by_workers


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def test_table1_within_one_percent():
    for row in sequential_times():
        assert row["time_model"] == pytest.approx(row["time_paper"], rel=0.01), \
            f"class {row['class']}"


def test_table1_speed_time_consistency_in_paper_data():
    """The paper's own rows satisfy time ≈ 22.50 / speed."""
    for row in TABLE1:
        if row.speed is not None:
            assert row.time_min == pytest.approx(22.50 / row.speed, rel=0.01)


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

def test_ideal_columns_match_paper():
    paper = table2_by_workers()
    for w, row in paper.items():
        assert ideal_time(w) == pytest.approx(row.ideal_time, rel=0.01), w
        assert ideal_speed(w) == pytest.approx(row.ideal_speed, rel=0.01), w


def test_dynamic_times_close_to_paper():
    paper = table2_by_workers()
    for row in table2_rows():
        expect = paper[row.workers].dynamic_time
        assert row.dynamic_time == pytest.approx(expect, rel=0.08), \
            f"W={row.workers}: model {row.dynamic_time:.2f} vs paper {expect}"


def test_static_times_close_to_paper():
    paper = table2_by_workers()
    for row in table2_rows():
        expect = paper[row.workers].static_time
        assert row.static_time == pytest.approx(expect, rel=0.10), \
            f"W={row.workers}: model {row.static_time:.2f} vs paper {expect}"


def test_speed_column_definition():
    for row in table2_rows():
        assert row.dynamic_speed == pytest.approx(22.50 / row.dynamic_time)


# ---------------------------------------------------------------------------
# the paper's qualitative claims (section 5.2)
# ---------------------------------------------------------------------------

def test_static_time_increases_when_first_class_c_added():
    """'When the first CPU from class C is added to the computation, the
    elapsed time actually *increases* and the speedup *decreases*.'"""
    t7 = run_parallel(7, "static").elapsed
    t8 = run_parallel(8, "static").elapsed
    assert t8 > t7
    assert speed_of(t8) < speed_of(t7)


def test_dynamic_time_does_not_increase_at_8():
    t7 = run_parallel(7, "dynamic").elapsed
    t8 = run_parallel(8, "dynamic").elapsed
    assert t8 < t7


def test_dynamic_overhead_6_to_7_percent_at_1_worker():
    """'this additional overhead is no more than 6% to 7%'"""
    t1 = run_parallel(1, "dynamic").elapsed
    overhead = t1 / ideal_time(1) - 1.0
    assert 0.05 <= overhead <= 0.08


def test_dynamic_between_ideal_and_static_everywhere():
    for row in sweep_workers(range(2, 33)):
        assert row.ideal_time <= row.dynamic_time <= row.static_time + 1e-9, \
            f"W={row.workers}"


def test_ideal_speed_inflection_points():
    """Figure 20: inflections at 7→8 (first class C) and 26→27 (first E)."""
    increments = [ideal_speed(w + 1) - ideal_speed(w) for w in range(1, 34)]
    # increment drops sharply when the first class-C worker (8th) arrives
    assert increments[6] < increments[5] * 0.7
    # and again when the first class-E worker (27th) arrives:
    # increments[k] is the (k+2)-th worker's CPU speed
    assert increments[24] > increments[25]
    assert increments[25] == pytest.approx(0.80, abs=0.01)


def test_static_speedup_saturates_dynamic_does_not():
    rows = {r.workers: r for r in table2_rows()}
    # paper: static speed 22.42 vs dynamic 29.77 at 32 workers
    assert rows[32].dynamic_speed > rows[32].static_speed * 1.2


def test_static_tasks_evenly_dealt():
    res = run_parallel(8, "static")
    assert max(res.tasks_per_worker) - min(res.tasks_per_worker) <= 1


def test_dynamic_tasks_proportional_to_speed():
    res = run_parallel(8, "dynamic")
    counts = res.tasks_per_worker
    # worker 0 is class A (1.93), worker 7 is class C (1.00)
    assert counts[0] > counts[7] * 1.5


def test_dynamic_workers_all_busy():
    res = run_parallel(16, "dynamic")
    assert all(u > 0.9 for u in res.utilization)


# ---------------------------------------------------------------------------
# ablation: homogeneous control — the dynamic advantage vanishes
# ---------------------------------------------------------------------------

def test_homogeneous_static_equals_dynamic():
    control = homogeneous_control(8)
    assert control["dynamic"] == pytest.approx(control["static"], rel=0.01)


# ---------------------------------------------------------------------------
# full-sweep sanity for the figures
# ---------------------------------------------------------------------------

def test_sweep_monotone_ideal_speed():
    rows = sweep_workers(range(1, 33))
    speeds = [r.ideal_speed for r in rows]
    assert speeds == sorted(speeds)


def test_sweep_elapsed_dynamic_monotone_nonincreasing():
    rows = sweep_workers(range(1, 33))
    times = [r.dynamic_time for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))
