"""Workload models and the task-variance effect on load balancing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simcluster.machine import homogeneous_inventory, paper_cpu_inventory
from repro.simcluster.workload import (background_load_speeds, bimodal_works,
                                       coefficient_of_variation,
                                       lognormal_works, uniform_works,
                                       variance_experiment)


def test_uniform_works():
    assert uniform_works(4, 2.5) == [2.5] * 4


def test_lognormal_mean_approximately_right():
    works = lognormal_works(20000, mean_work=3.0, cv=0.5, seed=1)
    assert sum(works) / len(works) == pytest.approx(3.0, rel=0.05)


def test_lognormal_cv_approximately_right():
    works = lognormal_works(20000, mean_work=1.0, cv=0.8, seed=2)
    assert coefficient_of_variation(works) == pytest.approx(0.8, rel=0.1)


def test_lognormal_cv_zero_is_uniform():
    assert lognormal_works(5, 2.0, 0.0) == [2.0] * 5


def test_lognormal_deterministic_by_seed():
    assert lognormal_works(10, 1.0, 0.5, seed=9) == \
        lognormal_works(10, 1.0, 0.5, seed=9)


def test_bimodal_fraction():
    works = bimodal_works(10000, 1.0, 10.0, long_fraction=0.2, seed=3)
    long_count = sum(1 for w in works if w == 10.0)
    assert long_count == pytest.approx(2000, rel=0.15)


def test_cv_edge_cases():
    assert coefficient_of_variation([]) == 0.0
    assert coefficient_of_variation([5.0, 5.0]) == 0.0
    assert coefficient_of_variation([0.0, 0.0]) == 0.0


@given(st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=20, deadline=None)
def test_variance_dynamic_bounded_loss(cv):
    """Greedy on-demand dispatch is list scheduling — a 2-approximation,
    not an optimum — so a *lucky* static deal can beat it by up to one
    straggler task on the critical path.  The bound: dynamic's makespan
    never exceeds static's by more than the largest single task."""
    from repro.simcluster.workload import lognormal_works

    n_workers, n_tasks = 6, 120
    works = lognormal_works(n_tasks, 1.0, cv, seed=11)
    result = variance_experiment(cv, n_workers=n_workers, n_tasks=n_tasks,
                                 seed=11)
    slack = max(works)
    assert result["dynamic"] <= result["static"] + slack + 1e-9
    if cv == 0.0:
        assert result["ratio"] == pytest.approx(1.0, abs=1e-9)


def test_variance_advantage_grows_with_cv():
    """The dynamic win is a monotone-ish function of task variance: big
    at high cv, nil at cv=0 — quantifying the paper's claim that dynamic
    balancing handles work that 'may not be uniform'."""
    ratios = [variance_experiment(cv, n_workers=8, n_tasks=400, seed=5)["ratio"]
              for cv in (0.0, 1.0, 2.0)]
    assert ratios[0] == pytest.approx(1.0, abs=1e-6)
    assert ratios[1] > 1.03
    assert ratios[2] > ratios[1] * 0.95  # allow sampling noise, trend holds


def test_variance_experiment_reports_realized_cv():
    result = variance_experiment(0.5, n_workers=4, n_tasks=2000, seed=7)
    assert result["realized_cv"] == pytest.approx(0.5, rel=0.15)


def test_background_load_speeds():
    cpus = homogeneous_inventory(3, speed=2.0)
    speeds = background_load_speeds(cpus, [0.0, 0.5, 0.25])
    assert speeds == [2.0, 1.0, 1.5]


def test_background_load_validation():
    cpus = homogeneous_inventory(2)
    with pytest.raises(ValueError):
        background_load_speeds(cpus, [0.5])
    with pytest.raises(ValueError):
        background_load_speeds(cpus, [0.5, 1.0])


def test_variance_experiment_on_paper_inventory():
    """Heterogeneous CPUs *and* heterogeneous tasks: dynamic still wins."""
    cpus = paper_cpu_inventory()[:8]
    result = variance_experiment(1.0, n_tasks=400, seed=13, cpus=cpus)
    assert result["ratio"] > 1.2
