"""Discrete-event simulator: hand-checkable scenarios."""

import pytest

from repro.simcluster.desim import EventQueue, simulate_farm
from repro.simcluster.machine import Cpu, CpuClass, homogeneous_inventory


def cpus_with_speeds(*speeds):
    cls = [CpuClass(f"S{i}", s, "", 1, 1) for i, s in enumerate(speeds)]
    return [Cpu(i, c) for i, c in enumerate(cls)]


# ---------------------------------------------------------------------------
# EventQueue
# ---------------------------------------------------------------------------

def test_event_queue_fires_in_time_order():
    q = EventQueue()
    fired = []
    q.schedule(2.0, lambda: fired.append("b"))
    q.schedule(1.0, lambda: fired.append("a"))
    q.schedule(3.0, lambda: fired.append("c"))
    assert q.run() == 3.0
    assert fired == ["a", "b", "c"]


def test_event_queue_ties_fifo():
    q = EventQueue()
    fired = []
    for tag in ("first", "second", "third"):
        q.schedule(1.0, lambda t=tag: fired.append(t))
    q.run()
    assert fired == ["first", "second", "third"]


def test_event_queue_rejects_past():
    q = EventQueue()
    q.schedule(5.0, lambda: q.schedule(1.0, lambda: None))
    with pytest.raises(ValueError):
        q.run()


def test_event_queue_until_bound():
    q = EventQueue()
    fired = []
    q.schedule(1.0, lambda: fired.append(1))
    q.schedule(10.0, lambda: fired.append(10))
    q.run(until=5.0)
    assert fired == [1]


# ---------------------------------------------------------------------------
# static discipline
# ---------------------------------------------------------------------------

def test_static_single_worker_sum_of_work():
    res = simulate_farm(cpus_with_speeds(2.0), n_tasks=10, work_per_task=1.0,
                        mode="static")
    assert res.elapsed == pytest.approx(10 * 1.0 / 2.0)
    assert res.tasks_per_worker == [10]


def test_static_homogeneous_even_split():
    res = simulate_farm(homogeneous_inventory(4), n_tasks=8, work_per_task=1.0,
                        mode="static")
    assert res.tasks_per_worker == [2, 2, 2, 2]
    assert res.elapsed == pytest.approx(2.0)


def test_static_limited_by_slowest_worker():
    """Speeds 2 and 1, 10 tasks each: slow worker finishes at t=5."""
    res = simulate_farm(cpus_with_speeds(2.0, 1.0), n_tasks=20,
                        work_per_task=0.5, mode="static")
    assert res.elapsed == pytest.approx(10 * 0.5 / 1.0)


def test_static_round_robin_remainder():
    res = simulate_farm(homogeneous_inventory(3), n_tasks=7, work_per_task=1.0,
                        mode="static")
    assert res.tasks_per_worker == [3, 2, 2]
    assert res.elapsed == pytest.approx(3.0)


def test_static_startup_shifts_completion():
    res = simulate_farm(homogeneous_inventory(2), n_tasks=2, work_per_task=1.0,
                        mode="static", startup_per_worker=0.5)
    # worker 0 starts at 0.5, worker 1 at 1.0; both run one task
    assert res.elapsed == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# dynamic discipline
# ---------------------------------------------------------------------------

def test_dynamic_homogeneous_matches_static():
    static = simulate_farm(homogeneous_inventory(4), 100, 0.1, mode="static")
    dynamic = simulate_farm(homogeneous_inventory(4), 100, 0.1, mode="dynamic")
    assert dynamic.elapsed == pytest.approx(static.elapsed)


def test_dynamic_fast_worker_takes_more():
    res = simulate_farm(cpus_with_speeds(3.0, 1.0), n_tasks=40,
                        work_per_task=1.0, mode="dynamic")
    assert res.tasks_per_worker[0] == pytest.approx(30, abs=1)
    assert sum(res.tasks_per_worker) == 40


def test_dynamic_beats_static_on_heterogeneous():
    cpus = cpus_with_speeds(4.0, 1.0)
    static = simulate_farm(cpus, 40, 1.0, mode="static")
    dynamic = simulate_farm(cpus, 40, 1.0, mode="dynamic")
    assert dynamic.elapsed < static.elapsed
    # perfect balance: total work 40 at total speed 5 -> 8.0
    assert dynamic.elapsed == pytest.approx(8.0, rel=0.2)


def test_dynamic_utilization_near_full():
    res = simulate_farm(cpus_with_speeds(2.0, 1.0, 0.5), 200, 1.0,
                        mode="dynamic")
    assert all(u > 0.95 for u in res.utilization)


def test_static_utilization_poor_for_slow_mix():
    res = simulate_farm(cpus_with_speeds(4.0, 1.0), 40, 1.0, mode="static")
    # the fast worker idles 3/4 of the run
    assert res.utilization[0] < 0.5


def test_per_task_overhead_added_unscaled():
    res = simulate_farm(cpus_with_speeds(2.0), 10, 1.0, mode="dynamic",
                        per_task_overhead=0.25)
    assert res.elapsed == pytest.approx(10 * (0.5 + 0.25))


def test_task_works_vector():
    res = simulate_farm(cpus_with_speeds(1.0), 3, 0.0, mode="dynamic",
                        task_works=[1.0, 2.0, 3.0])
    assert res.elapsed == pytest.approx(6.0)


def test_task_works_length_mismatch():
    with pytest.raises(ValueError):
        simulate_farm(cpus_with_speeds(1.0), 3, 1.0, task_works=[1.0])


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        simulate_farm(cpus_with_speeds(1.0), 1, 1.0, mode="quantum")


def test_zero_tasks():
    res = simulate_farm(cpus_with_speeds(1.0, 1.0), 0, 1.0, mode="dynamic")
    assert res.elapsed == 0.0
    assert res.tasks_per_worker == [0, 0]
