"""CLI entry points (python -m repro.cli)."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    return main(list(argv))


def test_version(capsys):
    assert run_cli("version") == 0
    import repro

    assert capsys.readouterr().out.strip() == repro.__version__


@pytest.mark.parametrize("which", ["table1", "table2", "fig19", "fig20"])
def test_experiments_print_tables(which, capsys):
    assert run_cli("experiment", which) == 0
    out = capsys.readouterr().out
    assert "paper" in out or "ideal" in out
    assert len(out.splitlines()) >= 6


def test_check_clean_graph(capsys):
    assert run_cli("check", "fibonacci") == 0
    assert "cycle" in capsys.readouterr().out


def test_check_fig13(capsys):
    assert run_cli("check", "fig13") == 0


def test_example_list(capsys):
    assert run_cli("example", "list") == 0
    assert "fibonacci" in capsys.readouterr().out


def test_example_runs(capsys):
    assert run_cli("example", "newton_sqrt") == 0
    assert "newton sqrt OK" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "table99"])


def test_ping_roundtrip():
    from repro.distributed.server import ComputeServer

    server = ComputeServer(name="cli-ping").start()
    try:
        assert run_cli("ping", f"127.0.0.1:{server.port}") == 0
    finally:
        server.stop()


def test_metrics_command_scrapes_live_server(capsys):
    from repro.distributed.server import ComputeServer
    from repro.telemetry.core import TELEMETRY

    TELEMETRY.reset().enable()
    server = ComputeServer(name="cli-metrics").start()
    try:
        assert run_cli("ping", f"127.0.0.1:{server.port}") == 0
        assert run_cli("metrics", f"127.0.0.1:{server.port}") == 0
    finally:
        server.stop()
        TELEMETRY.disable().reset()
    out = capsys.readouterr().out
    assert "# TYPE repro_wire_frames_received counter" in out
    assert 'repro_wire_frames_received{tag="' in out


def test_metrics_command_raw_output(capsys):
    from repro.distributed.server import ComputeServer
    from repro.telemetry.core import TELEMETRY

    TELEMETRY.reset().enable()
    server = ComputeServer(name="cli-metrics-raw").start()
    try:
        assert run_cli("metrics", f"127.0.0.1:{server.port}", "--raw") == 0
    finally:
        server.stop()
        TELEMETRY.disable().reset()
    assert "wire.frames_received" in capsys.readouterr().out


def test_experiment_trace_out_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.telemetry.core import TELEMETRY

    path = tmp_path / "trace.json"
    try:
        assert run_cli("experiment", "table1", "--trace-out", str(path)) == 0
    finally:
        TELEMETRY.disable().reset()
    assert "trace written to" in capsys.readouterr().err
    doc = json.loads(path.read_text())
    phases = [item["ph"] for item in doc["traceEvents"]]
    assert phases.count("B") == phases.count("E") >= 1
    assert not TELEMETRY.enabled  # --trace-out must not leave the hub on


@pytest.mark.slow
def test_module_invocation_subprocess():
    result = subprocess.run([sys.executable, "-m", "repro.cli", "version"],
                            capture_output=True, text=True, timeout=60)
    assert result.returncode == 0
    assert result.stdout.strip()


# ---------------------------------------------------------------------------
# repro profile
# ---------------------------------------------------------------------------

def test_profile_command_reports_and_writes_spec(tmp_path, capsys):
    spec_path = tmp_path / "fib-capacity.json"
    folded_path = tmp_path / "fib.folded"
    assert run_cli("profile", "fibonacci",
                   "--spec-out", str(spec_path),
                   "--folded-out", str(folded_path)) == 0
    out = capsys.readouterr().out
    assert "bottleneck channels" in out
    assert "process utilization" in out
    assert "root cause" in out or "no blocked time" in out
    import json

    spec = json.loads(spec_path.read_text())
    assert spec["version"] == 1 and spec["channels"]
    for rec in spec["channels"].values():
        assert rec["initial_capacity"] > 0 and rec["reason"]
    assert folded_path.exists()


def test_profile_command_leaves_instrumentation_off(tmp_path):
    from repro.telemetry.core import TELEMETRY
    from repro.telemetry.profile import PROFILER

    assert run_cli("profile", "primes",
                   "--spec-out", str(tmp_path / "p.json")) == 0
    assert not TELEMETRY.enabled
    assert not PROFILER.enabled
    assert not TELEMETRY.events()


def test_profile_rejects_unknown_target():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["profile", "nonsense"])


def test_metrics_command_renders_profile_gauges(capsys):
    from repro.distributed.server import ComputeServer
    from repro.telemetry.core import TELEMETRY
    from repro.telemetry.profile import PROFILER

    TELEMETRY.reset().enable()
    PROFILER.reset().enable()
    server = ComputeServer(name="cli-gauges").start()
    try:
        TELEMETRY.set_gauge("kpn.channel.occupancy_bytes", 5, channel="x")
        assert run_cli("metrics", f"127.0.0.1:{server.port}") == 0
    finally:
        server.stop()
        PROFILER.disable().reset()
        TELEMETRY.disable().reset()
    out = capsys.readouterr().out
    assert 'repro_kpn_channel_occupancy_bytes{channel="x"} 5' in out


# ---------------------------------------------------------------------------
# repro lint
# ---------------------------------------------------------------------------

def test_lint_figure_network_clean(capsys):
    assert run_cli("lint", "fibonacci") == 0
    assert "proved-bounded" in capsys.readouterr().out


def test_lint_self_hosting_exits_zero(capsys):
    # the library's only findings are inside declared-nondeterminate
    # components, which are exempt from the exit code
    assert run_cli("lint", "src/repro/processes") == 0
    out = capsys.readouterr().out
    assert "declared:poll" in out
    assert "Turnstile" in out


def test_lint_json_schema(capsys):
    import json

    from repro.analysis import JSON_SCHEMA_VERSION

    assert run_cli("lint", "--json", "src/repro/processes", "fibonacci") == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == JSON_SCHEMA_VERSION
    assert doc["targets"] == ["src/repro/processes", "fibonacci"]
    assert set(doc["summary"]) == {"error", "warning", "info", "declared",
                                   "failing"}
    assert doc["summary"]["failing"] == 0
    assert doc["findings"], "expected Turnstile declared + proof info rows"
    for row in doc["findings"]:
        assert set(row) == {"rule", "severity", "message", "analysis",
                            "subject", "file", "line"}
        assert row["severity"] in ("error", "warning", "info", "declared")
        assert row["analysis"] in ("astlint", "races", "graph")
    severities = [row["severity"] for row in doc["findings"]]
    # sorted: failing severities first, info last
    assert severities == sorted(
        severities, key=lambda s: {"error": 0, "warning": 1, "declared": 2,
                                   "info": 3}[s])


def test_lint_failing_severity_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad_process.py"
    bad.write_text(
        "from repro.kpn.process import IterativeProcess\n\n\n"
        "class Poller(IterativeProcess):\n"
        "    def step(self):\n"
        "        n = self.source.channel.occupancy()\n")
    assert run_cli("lint", str(bad)) == 1
    out = capsys.readouterr().out
    assert "error:poll" in out


def test_lint_unresolvable_target(capsys):
    assert run_cli("lint", "no.such.module") == 2
    assert "cannot resolve" in capsys.readouterr().err


def test_lint_module_target(capsys):
    assert run_cli("lint", "repro.processes.arithmetic") == 0
    assert "no findings" in capsys.readouterr().out


def test_check_strict_flag(capsys):
    assert run_cli("check", "fibonacci", "--strict") == 0
