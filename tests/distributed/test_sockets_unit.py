"""Unit tests for the socket pumps, without the migration machinery."""

import socket
import threading
import time

import pytest

from repro.errors import BrokenChannelError
from repro.kpn.buffers import BoundedByteBuffer
from repro.distributed.sockets import ReceiverPump, SenderPump
from repro.distributed.wire import Tag, recv_frame, send_frame

from tests.conftest import start_thread


def linked_pumps(sender_cap=1024, receiver_cap=1024, name="unit"):
    """A sender (listen mode) and receiver (connect mode) pair."""
    src = BoundedByteBuffer(sender_cap, name=f"{name}-src")
    dst = BoundedByteBuffer(receiver_cap, name=f"{name}-dst")
    sender = SenderPump(src, name=f"{name}-s")
    host, port = sender.ensure_listener()
    sender.start()
    receiver = ReceiverPump(dst, connect=(host, port), name=f"{name}-r").start()
    return src, dst, sender, receiver


def test_bytes_flow_end_to_end():
    src, dst, sender, receiver = linked_pumps()
    src.write(b"hello across the wire")
    deadline = time.monotonic() + 10
    collected = b""
    while len(collected) < 21 and time.monotonic() < deadline:
        collected += dst.read(64)
    assert collected == b"hello across the wire"


def test_eof_propagates():
    src, dst, sender, receiver = linked_pumps()
    src.write(b"last")
    src.close_write()
    assert dst.read(16) == b"last"
    assert dst.read(16) == b""  # EOF crossed the wire


def test_large_transfer_integrity():
    src, dst, sender, receiver = linked_pumps(sender_cap=4096,
                                              receiver_cap=4096)
    payload = bytes(range(256)) * 512  # 128 KiB
    writer = start_thread(lambda: (src.write(payload), src.close_write()))
    collected = bytearray()
    while True:
        chunk = dst.read(1 << 16)
        if not chunk:
            break
        collected.extend(chunk)
    writer.join(timeout=10)
    assert bytes(collected) == payload


def test_backpressure_bounds_consumer_buffer():
    """The consumer-side buffer respects its bound regardless of how much
    the producer sends.  (The *total* in-flight volume additionally
    includes kernel TCP queues — documented slack, see DESIGN.md — so the
    producer itself only throttles at multi-megabyte scale.)"""
    src, dst, sender, receiver = linked_pumps(sender_cap=64, receiver_cap=64)
    done = threading.Event()
    total = 5000

    def producer():
        data = b"x" * 50
        for _ in range(total // 50):
            src.write(data)
        src.close_write()
        done.set()

    start_thread(producer)
    collected = 0
    while True:
        assert dst.available() <= 64  # the bound under test
        chunk = dst.read(1 << 12)
        if not chunk:
            break
        collected += len(chunk)
    assert collected == total
    assert done.wait(timeout=10)


def test_close_read_propagates_back_to_producer():
    """Consumer closing its buffer breaks producer-side writes — lazily,
    on the next data the link carries, exactly the paper's §3.4 rule
    ("an exception ... the next time the corresponding OutputStream is
    written to")."""
    src, dst, sender, receiver = linked_pumps(sender_cap=64, receiver_cap=64)
    src.write(b"seed")
    time.sleep(0.1)
    dst.close_read()
    # the signal rides the data plane: keep writing until it lands
    deadline = time.monotonic() + 10
    broke = False
    while time.monotonic() < deadline and not broke:
        try:
            src.write(b"more")
        except BrokenChannelError:
            broke = True
        time.sleep(0.01)
    assert broke, "CLOSE_READ never reached the producer side"
    assert src.read_closed


def test_receiver_treats_connection_loss_as_eof():
    src, dst, sender, receiver = linked_pumps()
    src.write(b"pre")
    time.sleep(0.1)
    sender.close()  # simulate producer host death
    assert dst.read(16) == b"pre"
    assert dst.read(16) == b""  # clean EOF, not a hang


def test_sender_listener_reuse_address_info():
    src = BoundedByteBuffer(64)
    sender = SenderPump(src, name="addr")
    host1, port1 = sender.ensure_listener()
    host2, port2 = sender.ensure_listener()
    assert (host1, port1) == (host2, port2)  # idempotent
    sender.close()


def test_frames_multiplex_control_and_data():
    """LISTEN_REQ arriving between DATA frames must not corrupt the
    stream (receiver handles it inline)."""
    dst = BoundedByteBuffer(1024, name="mux-dst")
    receiver = ReceiverPump(dst, name="mux-r")
    host, port = receiver.ensure_listener()
    receiver.start()
    sock = socket.create_connection((host, port))
    send_frame(sock, Tag.DATA, b"one")
    send_frame(sock, Tag.LISTEN_REQ)
    tag, payload = recv_frame(sock)  # the LISTEN_OK reply
    assert tag == Tag.LISTEN_OK
    send_frame(sock, Tag.DATA, b"two")
    send_frame(sock, Tag.EOF)
    collected = b""
    while True:
        chunk = dst.read(64)
        if not chunk:
            break
        collected += chunk
    assert collected == b"onetwo"
    sock.close()
