"""Worker placement policies (§6.1)."""

import pytest

from repro.distributed.balancer import (CalibrationTask, LeastLoadedPlacement,
                                        RoundRobinPlacement, ServerProfile,
                                        SpeedWeightedPlacement, place_workers,
                                        profile_servers, suggest_rebalance)
from repro.distributed.cluster import LocalCluster
from repro.parallel import CallableTask, RangeProducerTask, build_farm


def profiles(*specs):
    """specs: (speed, load) pairs."""
    return [ServerProfile(index=i, name=f"s{i}", speed=s, load=l)
            for i, (s, l) in enumerate(specs)]


# ---------------------------------------------------------------------------
# policies (pure logic)
# ---------------------------------------------------------------------------

def test_round_robin():
    assignment = RoundRobinPlacement().assign(5, profiles((1, 0), (1, 0)))
    assert assignment == [0, 1, 0, 1, 0]


def test_least_loaded_avoids_busy_server():
    assignment = LeastLoadedPlacement().assign(3, profiles((1, 5), (1, 0)))
    assert assignment == [1, 1, 1]


def test_least_loaded_balances_incrementally():
    # server 0 starts with 1 pre-existing unit of load; after placing 4
    # workers the totals must be as even as possible: 3 vs 2
    assignment = LeastLoadedPlacement().assign(4, profiles((1, 1), (1, 0)))
    assert assignment[0] == 1  # first worker avoids the pre-loaded server
    assert sorted(assignment) == [0, 0, 1, 1]


def test_speed_weighted_proportional():
    assignment = SpeedWeightedPlacement().assign(6, profiles((2.0, 0), (1.0, 0)))
    assert assignment.count(0) == 4
    assert assignment.count(1) == 2


def test_speed_weighted_largest_remainder():
    assignment = SpeedWeightedPlacement().assign(5, profiles((1.0, 0), (1.0, 0),
                                                             (1.0, 0)))
    counts = [assignment.count(i) for i in range(3)]
    assert sorted(counts) == [1, 2, 2]


def test_speed_weighted_handles_unmeasured():
    # speed=None -> effective 1.0
    assignment = SpeedWeightedPlacement().assign(4, profiles((None, 0), (None, 0)))
    assert assignment.count(0) == 2 and assignment.count(1) == 2


def test_speed_weighted_extreme_skew():
    assignment = SpeedWeightedPlacement().assign(4, profiles((100.0, 0), (0.001, 0)))
    assert assignment.count(0) == 4


# ---------------------------------------------------------------------------
# rebalance suggestions
# ---------------------------------------------------------------------------

def test_rebalance_moves_from_hot_to_cool():
    moves = suggest_rebalance(profiles((1.0, 6), (1.0, 0)))
    assert moves and all(m == (0, 1) for m in moves)
    assert len(moves) >= 2


def test_rebalance_none_when_even():
    assert suggest_rebalance(profiles((1.0, 3), (1.0, 3))) == []


def test_rebalance_respects_speed():
    # fast server carrying double load of slow one is already fair
    assert suggest_rebalance(profiles((2.0, 4), (1.0, 2))) == []


def test_rebalance_empty_system():
    assert suggest_rebalance(profiles((1.0, 0), (1.0, 0))) == []


# ---------------------------------------------------------------------------
# against a live cluster
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(3, mode="thread", name_prefix="bal") as c:
        yield c


def test_calibration_task_runs(cluster):
    rate = cluster.client(0).call(CalibrationTask(rounds=200))
    assert rate > 0


def test_profile_servers_collects_load(cluster):
    prof = profile_servers(cluster)
    assert [p.name for p in prof] == ["bal-0", "bal-1", "bal-2"]
    assert all(p.speed is None for p in prof)


def test_profile_servers_with_measurement(cluster):
    prof = profile_servers(cluster, measure_speed=True,
                           calibration_rounds=200)
    assert all(p.speed and p.speed > 0 for p in prof)


def test_place_workers_end_to_end(cluster):
    handle = build_farm(RangeProducerTask(12, lambda i: CallableTask(pow, i, 2)),
                        n_workers=3, mode="dynamic", defer_workers=True)
    harness = handle.harness
    assignment = place_workers(harness, cluster, LeastLoadedPlacement())
    assert len(assignment) == 3
    assert harness.workers == []  # shipped
    results = handle.run(timeout=120)
    assert results == [i * i for i in range(12)]


def test_place_workers_speed_weighted_end_to_end(cluster):
    handle = build_farm(RangeProducerTask(8, lambda i: CallableTask(abs, -i)),
                        n_workers=4, mode="static", defer_workers=True)
    assignment = place_workers(handle.harness, cluster,
                               SpeedWeightedPlacement(),
                               profiles=profiles((3.0, 0), (1.0, 0), (1.0, 0)))
    assert assignment.count(0) >= 2  # the "fast" server hosts most workers
    results = handle.run(timeout=120)
    assert results == list(range(8))
