"""Live migration: moving processes after execution has begun (§6.1)."""

import time

import pytest

from repro.errors import MigrationError
from repro.kpn import Network
from repro.kpn.process import IterativeProcess, ProcessControl
from repro.distributed.migration import migrate_live
from repro.distributed.server import ComputeServer, ServerClient
from repro.processes import Collect, Scale, Sequence
from repro.processes.codecs import LONG


@pytest.fixture
def server():
    s = ComputeServer(name="lm").start()
    yield s, ServerClient("127.0.0.1", s.port)
    s.stop()


class Ticker(IterativeProcess):
    """Emits consecutive integers with a small per-step delay, so pause
    requests catch a step boundary quickly."""

    def __init__(self, out, iterations=0, dwell=0.002, name=None):
        super().__init__(iterations=iterations, name=name)
        self.out = out
        self.dwell = dwell
        self.track(out)

    def step(self):
        LONG.write(self.out, self.steps_completed)
        time.sleep(self.dwell)


# ---------------------------------------------------------------------------
# ProcessControl unit behaviour
# ---------------------------------------------------------------------------

def test_control_pause_resume_cycle():
    net = Network()
    ch = net.channel()
    out = []
    ticker = Ticker(ch.get_output_stream(), iterations=200)
    net.add(ticker)
    net.add(Collect(ch.get_input_stream(), out))
    net.start()
    ctrl = ticker.control()
    ctrl.request_pause()
    assert ctrl.wait_parked(timeout=10)
    seen_at_pause = ticker.steps_completed
    time.sleep(0.05)
    assert ticker.steps_completed == seen_at_pause  # really parked
    ctrl.resume()
    assert net.join(timeout=60)
    assert out == list(range(200))  # nothing lost or repeated


def test_control_abandon_skips_stream_close():
    net = Network()
    ch = net.channel()
    ticker = Ticker(ch.get_output_stream(), iterations=0)
    net.add(ticker)
    net.start()
    ctrl = ticker.control()
    ctrl.request_pause()
    assert ctrl.wait_parked(timeout=10)
    ctrl.abandon()
    deadline = time.monotonic() + 10
    while net.live_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert net.live_threads() == []
    assert not ch.buffer.write_closed  # abandon must NOT close the stream
    net.shutdown()


def test_getstate_strips_control():
    ticker = Ticker.__new__(Ticker)
    IterativeProcess.__init__(ticker, iterations=1)
    ticker.control()
    assert ticker.__getstate__()["_ctrl"] is None


# ---------------------------------------------------------------------------
# end-to-end live migration
# ---------------------------------------------------------------------------

def test_live_migration_of_producer(server):
    """A producer mid-stream moves to the server; the consumer sees one
    seamless sequence — neither lost nor repeated elements."""
    _, client = server
    net = Network()
    ch = net.channel(capacity=1 << 16)
    out = []
    total = 400
    ticker = Ticker(ch.get_output_stream(), iterations=total, name="mover")
    net.add(ticker)
    net.add(Collect(ch.get_input_stream(), out, name="stayer"))
    net.start()
    # let it produce a while locally, then move it
    deadline = time.monotonic() + 30
    while ticker.steps_completed < 20 and time.monotonic() < deadline:
        time.sleep(0.005)
    migrate_live(ticker, client, timeout=30)
    assert net.join(timeout=120)
    assert out == list(range(total))


class SlowScale(Scale):
    """Scale with a per-step dwell (module-level: pickles)."""

    def step(self):
        time.sleep(0.002)
        super().step()


def test_live_migration_of_middle_stage(server):
    """Scale moves mid-run; unconsumed input bytes travel with it."""
    _, client = server
    net = Network()
    a, b = net.channels_n(2, capacity=1 << 16)
    out = []
    total = 300

    stage = SlowScale(a.get_input_stream(), b.get_output_stream(), 3,
                      codec="long", name="slow-x3")
    net.add(Sequence(a.get_output_stream(), iterations=total, name="src"))
    net.add(stage)
    net.add(Collect(b.get_input_stream(), out, name="sink"))
    net.start()
    deadline = time.monotonic() + 30
    while stage.steps_completed < 15 and time.monotonic() < deadline:
        time.sleep(0.005)
    migrate_live(stage, client, timeout=30)
    assert net.join(timeout=120)
    assert out == [3 * k for k in range(total)]


def test_live_migration_timeout_on_blocked_process(server):
    """A process blocked on an empty input can't reach a step boundary;
    migrate_live must fail cleanly and leave it runnable."""
    from repro.kpn.scheduler import DeadlockPolicy

    _, client = server
    # the pre-feed phase is an intentional all-readers stall: tell the
    # local monitor not to diagnose it
    net = Network(policy=DeadlockPolicy(on_true="ignore"))
    a, b = net.channels_n(2)
    out = []
    stage = Scale(a.get_input_stream(), b.get_output_stream(), 2,
                  codec="long", name="starved")
    net.add(stage)          # no producer yet: blocked immediately
    net.add(Collect(b.get_input_stream(), out))
    net.start()
    time.sleep(0.1)
    with pytest.raises(MigrationError, match="step boundary"):
        migrate_live(stage, client, timeout=0.3)
    # now feed it: the process must still work after the aborted attempt
    net.spawn(Sequence(a.get_output_stream(), iterations=5, name="late-src"))
    assert net.join(timeout=60)
    assert out == [0, 2, 4, 6, 8]


def test_progress_counter_survives_migration(server):
    """A finite-iteration process must not restart its count remotely."""
    srv, client = server
    net = Network()
    ch = net.channel(capacity=1 << 16)
    out = []
    ticker = Ticker(ch.get_output_stream(), iterations=100, name="counted")
    net.add(ticker)
    net.add(Collect(ch.get_input_stream(), out))
    net.start()
    deadline = time.monotonic() + 30
    while ticker.steps_completed < 30 and time.monotonic() < deadline:
        time.sleep(0.005)
    migrate_live(ticker, client, timeout=30)
    assert net.join(timeout=120)
    assert len(out) == 100          # not 130: the count resumed, not restarted
    assert out == list(range(100))
