"""Compute server RPC: ping/run/call/stats/shutdown, error transport."""

import threading
import time

import pytest

from repro.distributed.registry import RegistryClient, RegistryServer
from repro.distributed.server import ComputeServer, ServerClient
from repro.errors import RemoteError
from repro.kpn.process import IterativeProcess
from repro.parallel import CallableTask


class _Once(IterativeProcess):
    """A do-nothing one-step process (module-level: must pickle)."""

    def step(self):
        pass


@pytest.fixture
def server_client():
    server = ComputeServer(name="test-server").start()
    client = ServerClient("127.0.0.1", server.port)
    yield server, client
    client.close()
    server.stop()


def test_ping(server_client):
    _, client = server_client
    assert client.ping() == "test-server"


def test_call_returns_result(server_client):
    _, client = server_client
    assert client.call(CallableTask(pow, 2, 10)) == 1024


def test_call_many_sequential(server_client):
    _, client = server_client
    assert [client.call(CallableTask(abs, -i)) for i in range(10)] == \
        list(range(10))


def test_call_exception_becomes_remote_error(server_client):
    _, client = server_client
    with pytest.raises(RemoteError, match="ZeroDivisionError") as exc_info:
        client.call(CallableTask(divmod, 1, 0))
    assert "Traceback" in exc_info.value.remote_traceback


def test_run_async_runnable(server_client):
    """run() returns immediately; the runnable executes server-side.
    The observable side effect is a marker file (picklable spy)."""
    server, client = server_client
    client.run(CallableTask(_touch_file_task, _tmp_marker()))
    deadline = time.monotonic() + 10
    import os

    while time.monotonic() < deadline and not os.path.exists(_tmp_marker()):
        time.sleep(0.02)
    assert os.path.exists(_tmp_marker())
    os.unlink(_tmp_marker())


def _tmp_marker() -> str:
    return "/tmp/repro-test-run-marker"


def _touch_file_task(path: str) -> None:
    with open(path, "w") as fh:
        fh.write("ran")


def test_run_process_hosted_on_server_network(server_client):
    server, client = server_client
    client.run(_Once(iterations=1))
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and server.processes_hosted < 1:
        time.sleep(0.02)
    assert server.processes_hosted == 1


def test_run_rejects_non_runnable(server_client):
    _, client = server_client
    with pytest.raises(RemoteError, match="no run"):
        client.run(42)


def test_stats(server_client):
    _, client = server_client
    client.call(CallableTask(abs, -1))
    stats = client.stats()
    assert stats["name"] == "test-server"
    assert stats["tasks_run"] >= 1
    assert stats["uptime_seconds"] >= 0.0
    assert isinstance(stats["telemetry_enabled"], bool)


def test_registry_integration():
    registry = RegistryServer().start()
    server = ComputeServer(name="reg-me",
                           registry=("127.0.0.1", registry.port)).start()
    reg_client = RegistryClient("127.0.0.1", registry.port)
    try:
        client = ServerClient.from_registry(reg_client, "reg-me")
        assert client.ping() == "reg-me"
        server.stop()
        # server unregisters on stop
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and "reg-me" in reg_client.list():
            time.sleep(0.02)
        assert "reg-me" not in reg_client.list()
    finally:
        reg_client.close()
        server.stop()
        registry.stop()


def test_shutdown_via_client():
    server = ComputeServer(name="bye").start()
    client = ServerClient("127.0.0.1", server.port)
    client.shutdown()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and not server._stop.is_set():
        time.sleep(0.02)
    assert server._stop.is_set()
    client.close()


def test_two_clients_concurrently(server_client):
    server, _ = server_client
    results = []

    def hammer():
        c = ServerClient("127.0.0.1", server.port)
        results.extend(c.call(CallableTask(pow, 2, k)) for k in range(5))
        c.close()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert sorted(results) == sorted([2 ** k for k in range(5)] * 4)


def test_call_routes_through_server_executor():
    """A server built with executor="process" executes shipped tasks in
    a pool child, and its stats expose the pool's counters."""
    from repro.parallel.executor import ProcessPool

    pool = ProcessPool(size=1)
    server = ComputeServer(name="exec-server", executor=pool).start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        assert client.call(CallableTask(pow, 3, 4)) == 81
        stats = client.stats()
        assert stats["executor"]["kind"] == "process"
        assert stats["executor"]["resolved"] is True
        assert stats["executor"]["tasks_completed"] >= 1
    finally:
        client.close()
        server.stop()
        pool.close()


def test_stats_report_unresolved_executor_spec():
    server = ComputeServer(name="lazy-server", executor="thread").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        stats = client.stats()
        # no call yet: the spec is reported but nothing was built
        assert stats["executor"] == {"kind": "thread", "resolved": False}
    finally:
        client.close()
        server.stop()
