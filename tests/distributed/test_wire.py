"""Wire protocol: framing, object transport, endpoint helpers."""

import socket
import threading

import pytest

from repro.distributed.wire import (FrameError, Tag, connect_with_retry,
                                    open_listener, recv_frame, recv_obj,
                                    send_frame, send_obj, advertised_host,
                                    set_advertised_host)
from repro.errors import ChannelError


@pytest.fixture
def sock_pair():
    listener = open_listener()
    port = listener.getsockname()[1]
    client = socket.create_connection(("127.0.0.1", port))
    server, _ = listener.accept()
    yield client, server
    client.close()
    server.close()
    listener.close()


def test_frame_roundtrip(sock_pair):
    a, b = sock_pair
    send_frame(a, Tag.DATA, b"payload")
    tag, payload = recv_frame(b)
    assert (tag, payload) == (Tag.DATA, b"payload")


def test_empty_payload_frame(sock_pair):
    a, b = sock_pair
    send_frame(a, Tag.EOF)
    assert recv_frame(b) == (Tag.EOF, b"")


def test_multiple_frames_in_order(sock_pair):
    a, b = sock_pair
    for i in range(20):
        send_frame(a, Tag.DATA, bytes([i]) * i)
    for i in range(20):
        tag, payload = recv_frame(b)
        assert payload == bytes([i]) * i


def test_obj_roundtrip(sock_pair):
    a, b = sock_pair
    send_obj(a, {"op": "ping", "nested": [1, (2, 3)]})
    assert recv_obj(b) == {"op": "ping", "nested": [1, (2, 3)]}


def test_recv_obj_rejects_wrong_tag(sock_pair):
    a, b = sock_pair
    send_frame(a, Tag.DATA, b"raw")
    with pytest.raises(FrameError):
        recv_obj(b)


def test_connection_close_mid_frame_detected(sock_pair):
    a, b = sock_pair
    a.sendall(b"\x02\x00\x00\x00\x10partial")  # claims 16 bytes, sends 7
    a.close()
    # the error names how far the read got and what was promised
    with pytest.raises(FrameError, match=r"mid-frame: got 7 of 16 expected "
                                         r"bytes \(9 missing\)"):
        recv_frame(b)


def test_oversized_outgoing_frame_rejected(sock_pair):
    a, _ = sock_pair
    from repro.distributed import wire

    original = wire.MAX_PAYLOAD
    wire.MAX_PAYLOAD = 8
    try:
        with pytest.raises(FrameError, match="exceeds cap"):
            send_frame(a, Tag.DATA, b"123456789")
    finally:
        wire.MAX_PAYLOAD = original


def test_connect_with_retry_eventual_success():
    listener = open_listener()
    port = listener.getsockname()[1]
    sock = connect_with_retry("127.0.0.1", port, attempts=5)
    sock.close()
    listener.close()


def test_connect_with_retry_gives_up():
    # a port bound but not listening is hard to fabricate portably; use a
    # closed listener's (very likely unoccupied) port
    listener = open_listener()
    port = listener.getsockname()[1]
    listener.close()
    with pytest.raises(ChannelError, match="cannot connect"):
        connect_with_retry("127.0.0.1", port, attempts=2, delay=0.01)


def test_advertised_host_settable():
    original = advertised_host()
    try:
        set_advertised_host("192.0.2.1")
        assert advertised_host() == "192.0.2.1"
    finally:
        set_advertised_host(original)
