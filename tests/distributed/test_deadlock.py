"""Distributed deadlock detection (paper section 6.2, implemented)."""

import time

import pytest

from repro.errors import TrueDeadlockError
from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.kpn.scheduler import DeadlockPolicy
from repro.distributed.deadlock import DistributedDeadlockDetector
from repro.distributed.server import ComputeServer, ServerClient
from repro.processes import Collect, ModuloRouter, OrderedMerge, Sequence


@pytest.fixture
def server():
    s = ComputeServer(name="ddl").start()
    yield s, ServerClient("127.0.0.1", s.port)
    s.stop()


class ReadForever(IterativeProcess):
    def __init__(self, stream, name=None):
        super().__init__(name=name)
        self.stream = stream
        self.track(stream)

    def step(self):
        self.stream.read_exactly(8)


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------

def test_wait_snapshot_shape_local():
    net = Network(policy=DeadlockPolicy(on_true="ignore"))
    ch = net.channel(name="empty")
    net.add(ReadForever(ch.get_input_stream(), name="r"))
    net.start()
    time.sleep(0.1)
    snap = net.wait_snapshot()
    assert snap["live"] == ["r"]
    assert snap["blocked"][0]["mode"] == "read"
    assert snap["blocked"][0]["channel"] == "empty"
    net.shutdown()
    net.join(timeout=10)


def test_wait_snapshot_via_rpc(server):
    srv, client = server
    snap = client.wait_snapshot()
    assert snap["live"] == [] and snap["blocked"] == []


def test_grow_channel_via_rpc(server):
    srv, client = server
    ch = srv.network.channel(16, name="growme")
    assert client.grow_channel("growme", 64) is True
    assert ch.capacity == 64
    assert client.grow_channel("nonesuch", 64) is False


# ---------------------------------------------------------------------------
# detection on purely local participants (unit-level)
# ---------------------------------------------------------------------------

def test_no_stall_reported_while_running():
    net = Network()
    ch = net.channel()
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=200))
    net.add(Collect(ch.get_input_stream(), out))
    net.start()
    detector = DistributedDeadlockDetector([net], settle_s=0.01)
    # may or may not catch a transient; must never declare true deadlock
    detector.check_once()
    net.join(timeout=30)
    assert detector.true_deadlocks == []
    assert out == list(range(200))


def test_true_deadlock_detected_locally():
    net = Network(policy=DeadlockPolicy(on_true="ignore"))  # monitor off
    a, b = net.channels_n(2)
    net.add(ReadForever(a.get_input_stream(), name="ra"))
    net.add(ReadForever(b.get_input_stream(), name="rb"))
    net.start()
    time.sleep(0.1)
    detector = DistributedDeadlockDetector([net], settle_s=0.02)
    report = detector.check_once()
    assert report is not None and not report.artificial
    assert len(report.read_blocked) == 2
    with pytest.raises(TrueDeadlockError):
        detector.raise_on_true_deadlock()
    net.shutdown()
    net.join(timeout=10)


# ---------------------------------------------------------------------------
# the real thing: cross-server artificial deadlock (distributed Figure 13)
# ---------------------------------------------------------------------------

def test_distributed_fig13_resolved_by_global_parks_rule(server):
    """The Figure-13 write-block happens on the client, whose own monitor
    is disabled (``bounded=False``); the computation additionally spans a
    remote stage, so the run stalls *globally* — and only the distributed
    detector's global Parks rule can unwedge it.

    (A cross-link channel itself rarely write-blocks at small scale: TCP
    socket buffers add kilobytes of slack — noted in DESIGN.md.  The
    global detector's job is precisely the mixed case: local stalls in
    networks that have remote links, where local diagnosis stands down.)
    """
    srv, client = server
    net = Network(name="fig13-client", bounded=False)  # no local monitor
    src = net.channel(16, name="d13-src")
    upper = net.channel(16, name="d13-upper")
    lower = net.channel(16, name="d13-lower")
    merged = net.channel(16, name="d13-merged")
    back = net.channel(16, name="d13-back")
    out = []
    n_values = 200
    net.add(Sequence(src.get_output_stream(), start=1, iterations=n_values,
                     name="Source"))
    net.add(ModuloRouter(src.get_input_stream(), upper.get_output_stream(),
                         lower.get_output_stream(), 10, name="Mod"))
    net.add(OrderedMerge(upper.get_input_stream(), lower.get_input_stream(),
                         merged.get_output_stream(), name="Merge"))
    # an identity stage on the server: the network now has remote links
    from repro.processes import Scale

    client.run(Scale(merged.get_input_stream(), back.get_output_stream(), 1,
                     name="RemoteEcho"))
    net.add(Collect(back.get_input_stream(), out, name="Sink"))

    detector = DistributedDeadlockDetector([net, client], settle_s=0.03)
    detector.start(interval_s=0.03)
    try:
        net.start()
        assert net.join(timeout=120)
    finally:
        detector.stop()
    assert out == list(range(1, n_values + 1))
    assert detector.growth_events, "global growth should have been needed"
    assert detector.true_deadlocks == []
    grown_names = {e.channel_name for e in detector.growth_events}
    assert grown_names & {"d13-lower", "d13-upper", "d13-src", "d13-merged"}


def test_distributed_true_deadlock_reported(server):
    """Readers on both sites, no producers anywhere: true global deadlock."""
    srv, client = server
    net = Network(name="true-client", policy=DeadlockPolicy(on_true="ignore"))
    local_ch = net.channel(name="t-local")
    cross = net.channel(name="t-cross")
    net.add(ReadForever(local_ch.get_input_stream(), name="local-reader"))
    client.run(ReadForever(cross.get_input_stream(), name="remote-reader"))
    net.start()
    time.sleep(0.3)

    detector = DistributedDeadlockDetector([net, client], settle_s=0.05)
    deadline = time.monotonic() + 20
    report = None
    while report is None and time.monotonic() < deadline:
        report = detector.check_once()
    assert report is not None and not report.artificial
    sites = {site for site, _ in report.read_blocked}
    assert len(sites) == 2  # both the client and the server are stuck
    net.shutdown()
    srv.network.shutdown()
    net.join(timeout=10)


def test_detector_requires_participants():
    with pytest.raises(ValueError):
        DistributedDeadlockDetector([])


def test_detector_context_manager():
    net = Network()
    with DistributedDeadlockDetector([net]) as detector:
        assert detector._thread is not None and detector._thread.is_alive()
    assert not detector._thread.is_alive()
