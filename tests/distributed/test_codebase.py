"""Source shipping: code travels with the data (paper section 6.2)."""

import io
import pickle
import sys
import textwrap

import pytest

from repro.errors import MigrationError
from repro.distributed.codebase import (SourceShippingPickler, _exec_source,
                                        dumps_shipped, loads_shipped,
                                        register_ship_module, shippable)


def ship_roundtrip(obj):
    return loads_shipped(dumps_shipped(obj))


# A class living in this test module is importable in-process, so it does
# NOT ship by default; the @shippable decorator forces it.
@shippable
class ShipMe:
    def __init__(self, x):
        self.x = x

    def double(self):
        return self.x * 2


@shippable
def shipped_fn(a, b):
    return a + b


class NotShipped:
    pass


def test_shippable_instance_roundtrip():
    clone = ship_roundtrip(ShipMe(21))
    assert clone.double() == 42
    # rebuilt from source: the class lives in a synthetic module
    assert type(clone).__module__.startswith("repro._shipped_")
    assert hasattr(type(clone), "__shipped_source__")


def test_shippable_class_object_roundtrip():
    cls = ship_roundtrip(ShipMe)
    assert cls(5).double() == 10


def test_shippable_function_roundtrip():
    fn = ship_roundtrip(shipped_fn)
    assert fn(2, 3) == 5


def test_unmarked_class_pickles_by_reference():
    clone = ship_roundtrip(NotShipped())
    assert type(clone) is NotShipped  # same class object: by-reference


def test_shipped_class_returns_by_source():
    """Round trip twice: instance of a source-built class must ship back
    by source, not by (dangling) module reference."""
    once = ship_roundtrip(ShipMe(1))
    twice = ship_roundtrip(once)
    assert twice.double() == 2


def test_shipped_identity_cached_per_source():
    a = ship_roundtrip(ShipMe(1))
    b = ship_roundtrip(ShipMe(2))
    assert type(a) is type(b)  # same synthetic module, same class object


def test_lambda_rejected_with_clear_error():
    fn = lambda x: x  # noqa: E731
    shippable(fn)
    with pytest.raises(MigrationError, match="lambda"):
        dumps_shipped(fn)


def test_closure_rejected_with_clear_error():
    def make():
        captured = 5

        def inner(x):
            return x + captured

        return inner

    fn = make()
    shippable(fn)
    with pytest.raises(MigrationError, match="closure"):
        dumps_shipped(fn)


def test_exec_source_caches_by_digest():
    src = "VALUE = 7\n"
    m1 = _exec_source(src)
    m2 = _exec_source(src)
    assert m1 is m2
    assert m1.VALUE == 7


def test_register_ship_module():
    mod_name = "fake_user_module_for_test"
    module = type(sys)(mod_name)
    exec(textwrap.dedent("""
        class UserThing:
            def __init__(self):
                self.tag = "user"
    """), module.__dict__)
    sys.modules[mod_name] = module
    try:
        module.UserThing.__module__ = mod_name
        register_ship_module(mod_name)
        # getsource fails for exec'd classes; expect a clean error message
        with pytest.raises(MigrationError, match="source unavailable"):
            dumps_shipped(module.UserThing())
    finally:
        del sys.modules[mod_name]


def test_shipped_state_preserved():
    obj = ShipMe(99)
    obj.extra = [1, 2, 3]
    clone = ship_roundtrip(obj)
    assert clone.x == 99 and clone.extra == [1, 2, 3]


def test_plain_data_unaffected():
    assert ship_roundtrip({"a": [1, 2], "b": (3,)}) == {"a": [1, 2], "b": (3,)}
