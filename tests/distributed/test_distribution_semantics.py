"""The paper's headline semantic claims, under distribution.

1. "the results of a computation are unique and correct whether the
   program is executed on a computer with a single processor, a computer
   with multiple processors, or many computers distributed across a
   network" — the same graph run locally, split two ways, and split three
   ways must produce identical histories.
2. "In our system the program can be self-modifying, so reconfigurations
   occur locally rather than centrally" (vs the CORBA system's central
   console) — a Sift shipped to a compute server must perform its
   self-reconfiguration *on that server*, inserting Modulo processes into
   the server's network with no involvement from the client.
"""

import time

import pytest

from repro.kpn import Network
from repro.distributed import ComputeServer, ServerClient
from repro.processes import Collect, FromIterable, Scale, Sequence, Sift
from repro.semantics import primes_reference


@pytest.fixture
def servers():
    s1 = ComputeServer(name="ds1").start()
    s2 = ComputeServer(name="ds2").start()
    yield (s1, ServerClient("127.0.0.1", s1.port)), \
        (s2, ServerClient("127.0.0.1", s2.port))
    s1.stop()
    s2.stop()


def build_three_stage(net):
    """source → ×3 → ×5 → collect, returning the stage processes."""
    a, b, c = net.channels_n(3, capacity=256)
    out = []
    src = FromIterable(a.get_output_stream(), list(range(40)), name="src")
    st1 = Scale(a.get_input_stream(), b.get_output_stream(), 3, name="x3")
    st2 = Scale(b.get_input_stream(), c.get_output_stream(), 5, name="x5")
    sink = Collect(c.get_input_stream(), out, name="sink")
    return src, st1, st2, sink, out


def test_same_results_local_and_distributed(servers):
    (s1, c1), (s2, c2) = servers
    expected = [15 * k for k in range(40)]

    # single machine
    net = Network(name="local")
    src, st1, st2, sink, out_local = build_three_stage(net)
    for p in (src, st1, st2, sink):
        net.add(p)
    net.run(timeout=60)
    assert out_local == expected

    # two machines
    net = Network(name="split2")
    src, st1, st2, sink, out2 = build_three_stage(net)
    c1.run(st1)
    for p in (src, st2, sink):
        net.add(p)
    net.run(timeout=60)
    assert out2 == expected

    # three machines (client + two servers)
    net = Network(name="split3")
    src, st1, st2, sink, out3 = build_three_stage(net)
    c1.run(st1)
    time.sleep(0.1)
    c2.run(st2)
    time.sleep(0.1)
    for p in (src, sink):
        net.add(p)
    net.run(timeout=60)
    assert out3 == expected

    assert out_local == out2 == out3  # the determinacy claim, distributed


def test_self_reconfiguration_happens_on_the_server(servers):
    (s1, c1), _ = servers
    net = Network(name="sieve-client")
    feed = net.channel(name="sieve-feed")
    found = net.channel(name="sieve-found")
    out = []
    # ship the Sift: its self-reconfiguration (new channels + Modulo
    # processes per prime) must happen inside the server's network
    sift = Sift(feed.get_input_stream(), found.get_output_stream(),
                name="remote-sift")
    c1.run(sift)
    net.add(Sequence(feed.get_output_stream(), start=2, iterations=40,
                     name="feeder"))
    net.add(Collect(found.get_input_stream(), out, name="collector"))
    net.run(timeout=120)
    assert out == primes_reference(below=42)

    # evidence of *local* (server-side) reconfiguration:
    modulos = [p for p in s1.network.processes
               if type(p).__name__ == "ModuloFilter"]
    assert len(modulos) == len(out)  # one inserted filter per prime
    dynamic_channels = [ch for ch in s1.network.channels
                        if "mod" in ch.name]
    assert len(dynamic_channels) == len(out)
    # and the client network gained none of them
    assert not any("mod" in ch.name for ch in net.channels)


def test_distributed_sieve_matches_local_sieve(servers):
    (s1, c1), _ = servers

    def run_local():
        net = Network()
        feed, found = net.channels_n(2)
        out = []
        net.add(Sequence(feed.get_output_stream(), start=2, iterations=60))
        net.add(Sift(feed.get_input_stream(), found.get_output_stream()))
        net.add(Collect(found.get_input_stream(), out))
        net.run(timeout=120)
        return out

    def run_remote():
        net = Network()
        feed, found = net.channels_n(2)
        out = []
        c1.run(Sift(feed.get_input_stream(), found.get_output_stream(),
                    name="sift-2"))
        net.add(Sequence(feed.get_output_stream(), start=2, iterations=60))
        net.add(Collect(found.get_input_stream(), out))
        net.run(timeout=120)
        return out

    assert run_local() == run_remote() == primes_reference(below=62)
