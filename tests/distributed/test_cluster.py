"""LocalCluster and the Figure 14/15 partitioned workflow."""

import sys

import pytest

from repro.kpn import Network
from repro.distributed import LocalCluster, run_partitioned
from repro.parallel import CallableTask
from repro.processes import Collect, FromIterable, Scale, Sequence


@pytest.fixture(scope="module")
def thread_cluster():
    with LocalCluster(3, mode="thread") as cluster:
        yield cluster


def test_ping_all(thread_cluster):
    assert thread_cluster.ping_all() == ["server-0", "server-1", "server-2"]


def test_registry_lists_servers(thread_cluster):
    assert set(thread_cluster.registry.list()) >= {
        "server-0", "server-1", "server-2"}


def test_calls_round_robin(thread_cluster):
    results = [thread_cluster.client(i % 3).call(CallableTask(pow, i, 2))
               for i in range(9)]
    assert results == [i * i for i in range(9)]


def test_stats_all(thread_cluster):
    stats = thread_cluster.stats()
    assert set(stats) == {"server-0", "server-1", "server-2"}


def test_run_partitioned_pipeline(thread_cluster):
    net = Network(name="client-side")
    a, b, c = net.channels_n(3)
    out = []
    # remote stages on two different servers; source and sink stay local
    stage1 = Scale(a.get_input_stream(), b.get_output_stream(), 2, name="x2")
    stage2 = Scale(b.get_input_stream(), c.get_output_stream(), 3, name="x3")
    net.add(FromIterable(a.get_output_stream(), [1, 2, 3, 4]))
    net.add(Collect(c.get_input_stream(), out))
    run_partitioned(None, [stage1, stage2], thread_cluster, network=net,
                    timeout=60)
    assert out == [6, 12, 18, 24]


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        LocalCluster(1, mode="carrier-pigeon")


@pytest.mark.slow
def test_process_mode_cluster_real_parallelism():
    """Servers as separate OS processes (own GILs).  Slow: interpreter
    startup; exercised once here and in the real-execution benchmark."""
    with LocalCluster(2, mode="process") as cluster:
        assert sorted(cluster.ping_all()) == ["server-0", "server-1"]
        results = [cluster.client(i % 2).call(CallableTask(pow, i, 3))
                   for i in range(4)]
        assert results == [0, 1, 8, 27]
        # distributed KPN across OS processes
        net = Network(name="xp")
        a, b = net.channels_n(2)
        out = []
        cluster.client(0).run(Scale(a.get_input_stream(),
                                    b.get_output_stream(), 5, name="x5"))
        net.add(Sequence(a.get_output_stream(), start=1, iterations=6))
        net.add(Collect(b.get_input_stream(), out))
        net.run(timeout=60)
        assert out == [5, 10, 15, 20, 25, 30]
