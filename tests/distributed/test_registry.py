"""Name registry (the RMI-registry analogue, section 4.1)."""

import pytest

from repro.distributed.registry import RegistryClient, RegistryServer
from repro.errors import RegistryError


@pytest.fixture
def registry():
    server = RegistryServer().start()
    client = RegistryClient("127.0.0.1", server.port)
    yield server, client
    client.close()
    server.stop()


def test_register_and_lookup(registry):
    _, client = registry
    client.register("alpha", "10.0.0.1", 9001)
    assert client.lookup("alpha") == ("10.0.0.1", 9001)


def test_lookup_unknown_raises(registry):
    _, client = registry
    with pytest.raises(RegistryError, match="unknown name"):
        client.lookup("ghost")


def test_reregister_overwrites(registry):
    _, client = registry
    client.register("a", "h1", 1)
    client.register("a", "h2", 2)
    assert client.lookup("a") == ("h2", 2)


def test_unregister(registry):
    _, client = registry
    client.register("gone", "h", 5)
    client.unregister("gone")
    with pytest.raises(RegistryError):
        client.lookup("gone")


def test_unregister_unknown_is_noop(registry):
    _, client = registry
    client.unregister("never-was")


def test_list_sorted(registry):
    _, client = registry
    for name in ("zeta", "alpha", "mid"):
        client.register(name, "h", 1)
    assert client.list() == ["alpha", "mid", "zeta"]


def test_multiple_clients_share_state(registry):
    server, client = registry
    client.register("shared", "h", 7)
    other = RegistryClient("127.0.0.1", server.port)
    assert other.lookup("shared") == ("h", 7)
    other.close()


def test_entries_inproc_view(registry):
    server, client = registry
    client.register("x", "h", 1)
    assert server.entries() == {"x": ("h", 1)}


def test_unreachable_registry_raises():
    client = RegistryClient("127.0.0.1", 1)  # almost certainly closed
    with pytest.raises(RegistryError):
        client.register("x", "h", 1)
