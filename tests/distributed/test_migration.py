"""Migration: automatic connection establishment (sections 4.2–4.3).

These tests exercise the four channel-boundary cases plus internal
channels, using in-process compute servers (full socket protocol, one
interpreter — fast and deterministic).
"""

import time

import pytest

from repro.errors import MigrationError
from repro.kpn import Network
from repro.kpn.process import CompositeProcess
from repro.distributed.migration import (dumps_migration, import_network,
                                         loads_migration, owned_endpoints)
from repro.distributed.server import ComputeServer, ServerClient
from repro.processes import Collect, FromIterable, Scale, Sequence


@pytest.fixture
def server():
    s = ComputeServer(name="mig").start()
    yield s, ServerClient("127.0.0.1", s.port)
    s.stop()


# ---------------------------------------------------------------------------
# serialization plumbing without a server (local loopback)
# ---------------------------------------------------------------------------

def test_internal_channel_travels_whole():
    """Both endpoints inside the migrating composite: the channel is
    rebuilt fresh on the other side, buffered bytes included."""
    net = Network()
    inner = net.channel(name="inner")
    inner.get_output_stream().write(b"\x00" * 8 + b"\x00" * 7 + b"\x2a")
    out = []
    comp = CompositeProcess(name="whole")
    comp.add(Sequence(inner.get_output_stream(), start=1, iterations=0,
                      name="src"))
    comp.add(Collect(inner.get_input_stream(), out, iterations=3,
                     name="dst"))
    data = dumps_migration(comp)

    target_net = Network(name="target")
    clone = loads_migration(data, network=target_net)
    # the original channel must NOT be the one inside the clone
    cloned_collect = clone.processes[1]
    assert cloned_collect.source.channel is not inner
    # buffered bytes (two longs: 0 and 42) preceded the sequence's output
    target_net.spawn(clone)
    target_net.join(timeout=30)
    assert cloned_collect.into[:2] == [0, 42]


def test_owned_endpoints_cover_members():
    net = Network()
    ch = net.channel()
    comp = CompositeProcess()
    src = Sequence(ch.get_output_stream(), iterations=1)
    comp.add(src)
    owned = owned_endpoints(comp)
    assert id(ch.get_output_stream()) in owned
    assert id(ch.get_input_stream()) not in owned


def test_spliced_input_cannot_migrate():
    net = Network()
    a, b = net.channels_n(2)
    b.get_input_stream().splice_from(a.get_input_stream())
    out = []
    c = Collect(b.get_input_stream(), out)
    with pytest.raises(MigrationError, match="spliced"):
        dumps_migration(c)


class _Naughty(CompositeProcess):
    """Holds a raw channel buffer — illegal for migration."""

    def __init__(self, buffer):
        super().__init__()
        self.buffer = buffer


class _HoldsChannel(CompositeProcess):
    """Holds a Channel object directly instead of endpoint streams."""

    def __init__(self, ch):
        super().__init__()
        self.ch = ch


def test_direct_buffer_reference_rejected():
    net = Network()
    ch = net.channel()
    with pytest.raises(MigrationError, match="raw channel buffer"):
        dumps_migration(_Naughty(ch.buffer))


def test_boundary_channel_direct_reference_rejected():
    net = Network()
    ch = net.channel()
    ch.get_output_stream()  # endpoint exists but is not owned
    with pytest.raises(MigrationError, match="boundary channel"):
        dumps_migration(_HoldsChannel(ch))


# ---------------------------------------------------------------------------
# boundary migrations through a real server
# ---------------------------------------------------------------------------

def test_producer_migrates_consumer_stays(server):
    _, client = server
    net = Network()
    ch = net.channel(name="case2")
    out = []
    client.run(Sequence(ch.get_output_stream(), start=0, iterations=20,
                        name="remote-src"))
    net.add(Collect(ch.get_input_stream(), out, name="local-sink"))
    net.run(timeout=60)
    assert out == list(range(20))


def test_consumer_migrates_producer_stays(server):
    _, client = server
    net = Network()
    outbound = net.channel(name="case1-out")
    inbound = net.channel(name="case1-in")
    out = []
    # remote: reads outbound, scales, writes inbound (round trip)
    client.run(Scale(outbound.get_input_stream(), inbound.get_output_stream(),
                     3, name="remote-x3"))
    net.add(FromIterable(outbound.get_output_stream(), [1, 2, 3, 4]))
    net.add(Collect(inbound.get_input_stream(), out))
    net.run(timeout=60)
    assert out == [3, 6, 9, 12]


def test_backpressure_crosses_network(server):
    """Tiny remote-side channel: the local producer must be throttled by
    end-to-end backpressure, not buffer unboundedly."""
    _, client = server
    net = Network()
    ch = net.channel(capacity=64, name="narrow")
    out = []
    client.run(Scale(ch.get_input_stream(),
                     (back := net.channel(capacity=64, name="narrow-back"))
                     .get_output_stream(), 1, name="echo"))
    net.add(Sequence(ch.get_output_stream(), iterations=500))
    net.add(Collect(back.get_input_stream(), out))
    net.run(timeout=120)
    assert out == list(range(500))


def test_termination_cascade_crosses_network_downstream(server):
    """Remote producer stops → local consumer drains then ends."""
    _, client = server
    net = Network()
    ch = net.channel()
    out = []
    client.run(Sequence(ch.get_output_stream(), iterations=5, name="finite"))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == [0, 1, 2, 3, 4]


def test_termination_cascade_crosses_network_upstream(server):
    """Local consumer hits its limit → remote producer must stop too
    ('No remote processes are left running, consuming resources')."""
    srv, client = server
    net = Network()
    ch = net.channel(capacity=64)
    out = []
    client.run(Sequence(ch.get_output_stream(), iterations=0,
                        name="infinite-remote"))
    net.add(Collect(ch.get_input_stream(), out, iterations=5))
    net.run(timeout=60)
    assert out == [0, 1, 2, 3, 4]
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline and srv.network.live_threads():
        time.sleep(0.05)
    assert srv.network.live_threads() == [], \
        "remote producer still running after local termination"


def test_composite_with_internal_and_boundary_channels(server):
    """A composite spanning both kinds: internal channel migrates whole,
    boundary channels become socket links."""
    _, client = server
    net = Network()
    inbound = net.channel(name="to-remote")
    outbound = net.channel(name="from-remote")
    internal = net.channel(name="mid")
    comp = CompositeProcess(name="two-stage")
    comp.add(Scale(inbound.get_input_stream(), internal.get_output_stream(),
                   2, name="x2"))
    comp.add(Scale(internal.get_input_stream(), outbound.get_output_stream(),
                   5, name="x5"))
    out = []
    client.run(comp)
    net.add(FromIterable(inbound.get_output_stream(), [1, 2, 3]))
    net.add(Collect(outbound.get_input_stream(), out))
    net.run(timeout=60)
    assert out == [10, 20, 30]


def test_remigration_producer_fig15(server):
    """A → B, then the upstream producer A → C: C must connect to B."""
    serverC = ComputeServer(name="C").start()
    clientC = ServerClient("127.0.0.1", serverC.port)
    try:
        _, clientB = server
        net = Network()
        ch1 = net.channel(name="p-to-m")
        ch2 = net.channel(name="m-to-s")
        out = []
        clientB.run(Scale(ch1.get_input_stream(), ch2.get_output_stream(),
                          7, name="middle"))
        time.sleep(0.1)
        clientC.run(Sequence(ch1.get_output_stream(), start=1, iterations=6,
                             name="moved-producer"))
        time.sleep(0.1)
        net.add(Collect(ch2.get_input_stream(), out))
        net.run(timeout=60)
        assert out == [7 * k for k in range(1, 7)]
        # the origin's pumps wound down: channel ch1 on A is fully closed
        assert ch1.buffer.write_closed
    finally:
        clientC.close()
        serverC.stop()


def test_remigration_consumer(server):
    """Consumer hops twice: local → B; unconsumed bytes travel along."""
    serverC = ComputeServer(name="C2").start()
    clientC = ServerClient("127.0.0.1", serverC.port)
    try:
        _, clientB = server
        net = Network()
        ch = net.channel(name="hop")
        back = net.channel(name="hop-back")
        out = []
        # stage 1: consumer to B
        scale = Scale(ch.get_input_stream(), back.get_output_stream(), 10,
                      name="hopper")
        clientB.run(scale)
        time.sleep(0.1)
        net.add(FromIterable(ch.get_output_stream(), [1, 2, 3]))
        net.add(Collect(back.get_input_stream(), out))
        net.run(timeout=60)
        assert out == [10, 20, 30]
    finally:
        clientC.close()
        serverC.stop()


def test_import_network_context_adopts_channels():
    net = Network()
    inner = net.channel(name="adopt-me")
    comp = CompositeProcess()
    comp.add(Sequence(inner.get_output_stream(), iterations=1))
    comp.add(Collect(inner.get_input_stream(), [], iterations=1))
    data = dumps_migration(comp)
    target = Network(name="importer")
    loads_migration(data, network=target)
    assert any(ch.name == "adopt-me" for ch in target.channels)
