"""Wire-level data-plane tests: scatter-gather frame sends, the buffered
FrameReader, and out-of-band (protocol 5) object transport."""

import pickle
import socket
import struct

import pytest

from repro.telemetry.core import TELEMETRY
from repro.distributed.wire import (FrameError, FrameReader, OutOfBand, Tag,
                                    recv_frame, recv_obj, send_frame,
                                    send_frame_views, send_obj)

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None


def _pair():
    a, b = socket.socketpair()
    a.settimeout(10)
    b.settimeout(10)
    return a, b


def _send_async(fn):
    """Run blocking sends off-thread (payloads can exceed the kernel's
    socketpair buffer, so sending and receiving inline would deadlock)."""
    from tests.conftest import start_thread
    return start_thread(fn)


# ---------------------------------------------------------------------------
# send_frame_views
# ---------------------------------------------------------------------------

def test_send_frame_views_equals_joined_send_frame():
    a, b = _pair()
    parts = [b"head", bytearray(b"-mid-"), memoryview(b"tail")]
    send_frame_views(a, Tag.DATA, parts)
    send_frame(a, Tag.DATA, b"head-mid-tail")
    first = recv_frame(b)
    second = recv_frame(b)
    assert first[0] == second[0] == Tag.DATA
    assert bytes(first[1]) == bytes(second[1]) == b"head-mid-tail"
    a.close(), b.close()


def test_send_frame_views_many_segments():
    a, b = _pair()
    parts = [bytes([i]) * 3 for i in range(200)]  # above the sendmsg cap
    send_frame_views(a, Tag.DATA, parts)
    tag, payload = recv_frame(b)
    assert bytes(payload) == b"".join(parts)
    a.close(), b.close()


# ---------------------------------------------------------------------------
# FrameReader
# ---------------------------------------------------------------------------

def test_frame_reader_parses_a_burst_of_small_frames():
    a, b = _pair()
    for i in range(50):
        send_frame(a, Tag.DATA, b"m%d" % i)
    reader = FrameReader(b)
    for i in range(50):
        tag, payload = reader.recv_frame()
        assert tag == Tag.DATA
        assert bytes(payload) == b"m%d" % i
    a.close(), b.close()


def test_frame_reader_bulk_payload_and_empty_frames():
    a, b = _pair()
    bulk = bytes(range(256)) * 1024  # 256 KiB >> readahead
    sender = _send_async(lambda: (send_frame(a, Tag.DATA, b"small"),
                                  send_frame(a, Tag.DATA, bulk),
                                  send_frame(a, Tag.EOF)))
    reader = FrameReader(b)
    assert bytes(reader.recv_frame()[1]) == b"small"
    tag, payload = reader.recv_frame()
    assert bytes(payload) == bulk
    tag, payload = reader.recv_frame()
    assert tag == Tag.EOF and payload == b""
    sender.join(timeout=10)
    a.close(), b.close()


def test_frame_reader_interleaves_bulk_and_small():
    a, b = _pair()
    frames = [b"x" * (100000 if i % 3 == 0 else 7) for i in range(12)]
    sender = _send_async(lambda: [send_frame(a, Tag.DATA, f) for f in frames])
    reader = FrameReader(b)
    for f in frames:
        assert bytes(reader.recv_frame()[1]) == f
    sender.join(timeout=10)
    a.close(), b.close()


def test_frame_reader_raises_on_mid_frame_close():
    a, b = _pair()
    header = struct.pack(">BI", Tag.DATA, 1000)
    a.sendall(header + b"only-some-bytes")
    a.close()
    reader = FrameReader(b)
    with pytest.raises(FrameError, match="mid-frame"):
        reader.recv_frame()
    b.close()


def test_frame_reader_counters_match_module_recv_frame():
    a, b = _pair()
    frames = [b"tiny", b"L" * 90000, b"", b"end"]
    TELEMETRY.reset().enable()
    try:
        sender = _send_async(lambda: [send_frame(a, Tag.DATA, f)
                                      for f in frames])
        reader = FrameReader(b)
        for f in frames:
            reader.recv_frame()
        sender.join(timeout=10)
        reader_counts = (TELEMETRY.counter("wire.frames_received", tag="DATA"),
                         TELEMETRY.counter("wire.bytes_received", tag="DATA"))
        TELEMETRY.reset()
        sender = _send_async(lambda: [send_frame(a, Tag.DATA, f)
                                      for f in frames])
        for f in frames:
            recv_frame(b)
        sender.join(timeout=10)
        module_counts = (TELEMETRY.counter("wire.frames_received", tag="DATA"),
                         TELEMETRY.counter("wire.bytes_received", tag="DATA"))
        assert reader_counts == module_counts
    finally:
        TELEMETRY.disable().reset()
    a.close(), b.close()


# ---------------------------------------------------------------------------
# out-of-band object transport
# ---------------------------------------------------------------------------

def test_plain_objects_still_use_obj_frames():
    a, b = _pair()
    send_obj(a, {"op": "ping", "n": 7})
    assert recv_obj(b) == {"op": "ping", "n": 7}
    a.close(), b.close()


def test_out_of_band_wrapper_roundtrip():
    a, b = _pair()
    blob = bytes(range(256)) * 4096  # 1 MiB
    sender = _send_async(
        lambda: send_obj(a, {"op": "call", "data": OutOfBand(blob)}))
    got = recv_obj(b)
    sender.join(timeout=10)
    assert bytes(got["data"].data) == blob
    a.close(), b.close()


def test_out_of_band_frame_tag_on_the_wire():
    a, b = _pair()
    send_obj(a, OutOfBand(bytearray(b"payload" * 100)))
    tag, _ = recv_frame(b)
    assert tag == Tag.OBJ_OOB
    a.close(), b.close()


@pytest.mark.skipif(np is None, reason="numpy unavailable")
def test_numpy_array_travels_out_of_band():
    a, b = _pair()
    arr = np.arange(65536, dtype=np.float64)
    sender = _send_async(lambda: send_obj(a, {"result": arr}))
    got = recv_obj(b)
    sender.join(timeout=10)
    assert np.array_equal(got["result"], arr)
    # and it really took the OOB path: a second send, observed raw
    sender = _send_async(lambda: send_obj(a, {"result": arr}))
    tag, _ = recv_frame(b)
    sender.join(timeout=10)
    assert tag == Tag.OBJ_OOB
    a.close(), b.close()


def test_obj_oob_interoperates_with_frame_reader():
    """RPC frames and the buffered reader share one framing layer."""
    a, b = _pair()
    blob = b"Q" * 50000
    send_obj(a, OutOfBand(blob))
    reader = FrameReader(b)
    tag, payload = reader.recv_frame()
    assert tag == Tag.OBJ_OOB
    a.close(), b.close()


# ---------------------------------------------------------------------------
# LISTEN_OK encoding
# ---------------------------------------------------------------------------

def test_listen_ok_payload_is_pickled_host_port_tuple():
    """The LISTEN_OK reply documents its payload as a pickled (host, port)
    tuple of the reconnect listener — pin the encoding, since migrating
    ends unpickle it blind."""
    from repro.kpn.buffers import BoundedByteBuffer
    from repro.distributed.sockets import ReceiverPump

    dst = BoundedByteBuffer(256, name="listen-ok")
    receiver = ReceiverPump(dst, name="listen-ok")
    host, port = receiver.ensure_listener()
    receiver.start()
    sock = socket.create_connection((host, port))
    sock.settimeout(10)
    try:
        send_frame(sock, Tag.LISTEN_REQ)
        tag, payload = recv_frame(sock)
        assert tag == Tag.LISTEN_OK
        reply = pickle.loads(payload)
        assert isinstance(reply, tuple) and len(reply) == 2
        reply_host, reply_port = reply
        assert isinstance(reply_host, str)
        assert isinstance(reply_port, int) and 0 < reply_port < 65536
    finally:
        sock.close()
        receiver.close()
