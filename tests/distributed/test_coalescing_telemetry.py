"""Telemetry accuracy under frame coalescing.

Coalescing packs many buffer reads into one DATA frame; the byte counters
must describe the *bytes*, not the framing — totals have to come out
identical whether coalescing is on or off, while the frame counters are
the only thing allowed to differ."""

import time

import pytest

from repro.kpn.buffers import BoundedByteBuffer
from repro.telemetry.core import TELEMETRY
from repro.distributed.sockets import ReceiverPump, SenderPump

from tests.conftest import start_thread


@pytest.fixture
def hub():
    TELEMETRY.reset().enable()
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.disable().reset()


def _pump_bytes(name, coalesce, payload_writes):
    """Push ``payload_writes`` through a linked pump pair; return the
    (bytes_out, bytes_in, chunks_out, chunks_in) counters for the link."""
    src = BoundedByteBuffer(1 << 16, name=f"{name}-src")
    dst = BoundedByteBuffer(1 << 16, name=f"{name}-dst")
    sender = SenderPump(src, name=name, coalesce=coalesce)
    host, port = sender.ensure_listener()
    sender.start()
    receiver = ReceiverPump(dst, connect=(host, port), name=name).start()
    total = sum(len(p) for p in payload_writes)
    try:
        writer = start_thread(lambda: ([src.write(p) for p in payload_writes],
                                       src.close_write()))
        got = 0
        while True:
            chunk = dst.read(1 << 16)
            if not chunk:
                break
            got += len(chunk)
        writer.join(timeout=10)
        assert got == total
        # the counters are bumped by the pump threads right around the
        # frame sends; EOF has crossed, so one short grace poll suffices
        deadline = time.monotonic() + 5
        while (TELEMETRY.counter("link.bytes_in", link=name) < total
               and time.monotonic() < deadline):
            time.sleep(0.01)
    finally:
        sender.close()
        receiver.close()
    return (TELEMETRY.counter("link.bytes_out", link=name),
            TELEMETRY.counter("link.bytes_in", link=name),
            TELEMETRY.counter("link.chunks_out", link=name),
            TELEMETRY.counter("link.chunks_in", link=name))


def test_byte_counters_identical_with_and_without_coalescing(hub):
    writes = [b"%04d" % i * 11 for i in range(300)]  # bursty small writes
    total = sum(len(w) for w in writes)

    out0, in0, chunks_out0, chunks_in0 = _pump_bytes("no-coal", 0, writes)
    out1, in1, chunks_out1, chunks_in1 = _pump_bytes("coal", 256 * 1024, writes)

    # bytes describe the data: exact and framing-independent
    assert out0 == in0 == total
    assert out1 == in1 == total
    # frames describe the transport: coalescing may only reduce them
    assert chunks_out0 == chunks_in0
    assert chunks_out1 == chunks_in1
    assert chunks_out1 <= chunks_out0


def test_frame_and_byte_counters_agree_between_ends(hub):
    writes = [bytes([i % 256]) * 513 for i in range(100)]
    out, inn, chunks_out, chunks_in = _pump_bytes("parity", 64 * 1024, writes)
    assert out == inn == sum(len(w) for w in writes)
    assert chunks_out == chunks_in
