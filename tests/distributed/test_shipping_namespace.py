"""Shipped-source namespace: library + stdlib names must resolve remotely.

Regression for a failure found by examples/cluster_operations.py: a
``__main__``-defined process whose methods reference ``time`` or library
names (``IterativeProcess``, codecs) raised NameError after source
shipping, because ``inspect.getsource`` captures the definition but not
its module's imports.
"""

import subprocess
import sys
import textwrap

import pytest


SCRIPT = textwrap.dedent("""
    import time
    from repro.kpn import Network
    from repro.kpn.process import IterativeProcess
    from repro.distributed import ComputeServer, ServerClient
    from repro.processes import Collect
    from repro.processes.codecs import LONG


    class StdlibUser(IterativeProcess):
        '''References time, math, LONG — all must resolve after shipping.'''

        def __init__(self, out, iterations, name=None):
            super().__init__(iterations=iterations, name=name)
            self.out = out
            self.track(out)

        def step(self):
            import_free = math.isqrt(self.steps_completed * self.steps_completed)
            time.sleep(0)
            LONG.write(self.out, import_free)


    server = ComputeServer(name="ns").start()
    client = ServerClient("127.0.0.1", server.port)
    net = Network()
    ch = net.channel()
    out = []
    client.run(StdlibUser(ch.get_output_stream(), iterations=10))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=60)
    stats = client.stats()
    assert stats["failures"] == [], stats["failures"]
    assert out == list(range(10)), out
    server.stop()
    print("NAMESPACE_OK")
""")


def test_main_class_with_stdlib_refs_ships(tmp_path):
    script = tmp_path / "ship_ns.py"
    script.write_text(SCRIPT)
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "NAMESPACE_OK" in result.stdout


from repro.kpn.process import IterativeProcess


class Exploder(IterativeProcess):
    """Fails immediately (module-level: pickles by reference)."""

    def step(self):
        raise RuntimeError("remote kaboom")


def test_server_stats_report_remote_failures():
    from repro.distributed import ComputeServer, ServerClient
    import time

    server = ComputeServer(name="failstats").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        client.run(Exploder(iterations=1, name="bomb"))
        deadline = time.monotonic() + 10
        failures = []
        while time.monotonic() < deadline and not failures:
            failures = client.stats()["failures"]
            time.sleep(0.02)
        assert failures and failures[0]["process"] == "bomb"
        assert "remote kaboom" in failures[0]["error"]
    finally:
        client.close()
        server.stop()
