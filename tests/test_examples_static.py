"""Every bundled figure network passes the static gates.

Parametrized over the ``repro check`` targets: the consistency checker in
strict mode (graph construction rules + deadlock proofs) and the full
``repro lint`` pass (AST rules + race detection + boundedness proofs)
must both exit cleanly for every network the CLI can build.
"""

import pytest

from repro.cli import CHECKABLE, main

#: networks whose feedback loops the static pass proves bounded; the
#: others (hamming's OrderedMerge, fig13's modulo imbalance) are genuinely
#: unbounded at fixed capacities and must stay unproved
PROVED_BOUNDED = {"fibonacci", "primes", "newton"}


@pytest.mark.parametrize("which", CHECKABLE)
def test_check_strict_passes(which, capsys):
    assert main(["check", which, "--strict"]) == 0
    out = capsys.readouterr().out
    assert "error" not in out


@pytest.mark.parametrize("which", CHECKABLE)
def test_lint_passes(which, capsys):
    assert main(["lint", which]) == 0
    out = capsys.readouterr().out
    if which in PROVED_BOUNDED:
        assert "proved-bounded" in out
    else:
        assert "cycle-unproved" in out


@pytest.mark.parametrize("which", sorted(PROVED_BOUNDED))
def test_proof_discharges_blanket_cycle_flag(which, capsys):
    assert main(["check", which]) == 0
    out = capsys.readouterr().out
    assert "cycle-unbounded-monitorless" not in out
    # a discharged proof replaces the blanket flag (primes is acyclic and
    # prints nothing at all)
    assert "cycle-proved-bounded" in out or "graph is clean" in out
