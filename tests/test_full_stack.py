"""Full-stack integration: the paper's complete workflow, end to end.

One test per deployment story:

* thread-mode: registry + servers + speed-profiled placement + dynamic
  farm + early stop + orderly global shutdown;
* process-mode (slow-marked): the same through real OS processes.
"""

import time

import pytest

from repro.errors import RemoteError
from repro.kpn import Network, check_network
from repro.distributed import (LocalCluster, RegistryClient, ServerClient,
                               profile_servers)
from repro.parallel import (FactorConsumerResult, FactorProducerTask,
                            FactorResult, build_farm, make_weak_key)


def run_paper_workflow(cluster: LocalCluster) -> None:
    """Build → check → distribute → run → verify → confirm cleanup."""
    # 1. locate servers through the registry, like the paper's RMI registry
    names = cluster.registry.list()
    assert len(names) == len(cluster.clients)
    client0 = ServerClient.from_registry(cluster.registry, names[0])
    assert client0.ping() == names[0]

    # 2. profile and build the farm
    profiles = profile_servers(cluster)
    assert all(p.load == 0 for p in profiles)
    n, p, d = make_weak_key(bits=64, found_at_task=12, seed=77)
    handle = build_farm(FactorProducerTask(n, max_tasks=500), n_workers=4,
                        mode="dynamic",
                        stop_when=FactorConsumerResult.stop_when,
                        cluster=cluster)

    # 3. static validation before running
    issues = check_network(handle.network)
    assert not any(i.severity == "error" for i in issues)

    # 4. run; the answer must come back in task order with the hit last
    results = handle.run(timeout=300)
    assert results[-1].found and results[-1].p == p
    assert [r.task_index for r in results] == list(range(len(results)))

    # 5. early stop must leave no remote workers running (paper: "No
    # remote processes are left running, consuming resources")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        stats = cluster.stats()
        if all(s["live_threads"] == 0 for s in stats.values()):
            break
        time.sleep(0.05)
    stats = cluster.stats()
    assert all(s["live_threads"] == 0 for s in stats.values()), stats
    assert all(s["failures"] == [] for s in stats.values()), stats


def test_full_workflow_thread_cluster():
    with LocalCluster(3, mode="thread", name_prefix="full") as cluster:
        run_paper_workflow(cluster)


@pytest.mark.slow
def test_full_workflow_process_cluster():
    with LocalCluster(2, mode="process", name_prefix="fullp") as cluster:
        run_paper_workflow(cluster)


def test_two_farms_back_to_back_same_cluster():
    """Server reuse: a second computation on the same servers must not
    inherit state from the first."""
    with LocalCluster(2, mode="thread", name_prefix="reuse") as cluster:
        for round_index in range(2):
            n, p, d = make_weak_key(bits=64, found_at_task=6,
                                    seed=100 + round_index)
            handle = build_farm(FactorProducerTask(n, max_tasks=200),
                                n_workers=3, mode="dynamic",
                                stop_when=FactorConsumerResult.stop_when,
                                cluster=cluster)
            results = handle.run(timeout=300)
            assert results[-1].p == p
        stats = cluster.stats()
        assert all(s["processes_hosted"] == 6 for s in stats.values()) or \
            sum(s["processes_hosted"] for s in stats.values()) == 6
