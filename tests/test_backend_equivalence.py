"""Trace equivalence: every bundled example, thread vs. async backend.

The scheduler backend is pure mechanism: cooperative tasks on event
loops instead of one OS thread per process.  Kahn semantics say the
choice must be unobservable in channel histories, so the comparison
regimes mirror tests/test_fusion_equivalence.py:

* **Drain-mode** examples terminate by source exhaustion: complete runs
  are determinate, histories must be byte-identical across backends.

* **Sink-limited** examples end in a cascading shutdown whose cut point
  depends on scheduling; exact sink outputs plus byte-prefix equality
  on every channel (merge tails included -- abort-propagating close
  keeps them prefix-deterministic).

The async backend is exercised both bare and composed with the graph
compiler (a fused chain runs as a single cooperative task).
"""

import os

import pytest

from repro.kpn.history import HistoryCapture
from repro.kpn.network import resolve_backend
from repro.processes import (fibonacci, hamming, modulo_merge, newton_sqrt,
                             primes)


def farm_pipeline():
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    return build_farm(
        RangeProducerTask(25, lambda i: CallableTask(pow, i, 3)),
        n_workers=1, mode="pipeline")


DRAIN = {
    # primes-below keeps a FromIterable custom run loop and dynamic Sift
    # splicing: those host on helper threads even under backend="async",
    # exercising the hybrid thread+task network
    "primes-below": lambda: primes(below=30),
    "fig13": lambda: modulo_merge(60, 10),
    "fig19-pipeline": farm_pipeline,
}
SINK_LIMITED = {
    "fibonacci": lambda: fibonacci(15),
    "primes-count": lambda: primes(count=8),
    "hamming": lambda: hamming(15),
    "newton": lambda: newton_sqrt(2.0),
}


def norm(name):
    if name.startswith("farm-"):
        return "farm-" + name.split("-", 2)[-1]
    return name


def run_on(builder, backend, optimize=False, capture=True):
    """Build and run an example under REPRO_BACKEND=backend."""
    prev = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = backend
    try:
        built = builder()
    finally:
        if prev is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = prev
    net = getattr(built, "network", built)
    assert net.backend == backend
    cap = HistoryCapture(net) if capture else None
    if optimize:
        net.optimize()
    net.run(timeout=120)
    histories = {}
    if cap is not None:
        cap.refresh()
        histories = {norm(k): v for k, v in cap.raw().items()}
    results = getattr(built, "results", None)
    return histories, list(results) if results is not None else None


@pytest.mark.parametrize("name", sorted(DRAIN))
def test_drain_mode_backends_byte_identical(name):
    h0, o0 = run_on(DRAIN[name], "thread")
    h1, o1 = run_on(DRAIN[name], "async")
    assert o1 == o0
    assert set(h1) == set(h0)
    for ch in h0:
        assert h1[ch] == h0[ch], f"{name}: history of {ch} diverged"


@pytest.mark.parametrize("name", sorted(SINK_LIMITED))
def test_sink_limited_backends_outputs_exact_histories_prefix(name):
    h0, o0 = run_on(SINK_LIMITED[name], "thread")
    h1, o1 = run_on(SINK_LIMITED[name], "async")
    assert o1 == o0, f"{name}: sink outputs diverged"
    assert set(h1) == set(h0)
    for ch in h0:
        n = min(len(h0[ch]), len(h1[ch]))
        assert h1[ch][:n] == h0[ch][:n], \
            f"{name}: history prefix of {ch} diverged across backends"


@pytest.mark.parametrize("name", ["fibonacci", "hamming", "newton"])
def test_async_composes_with_graph_compiler(name):
    """Fused chains must run as cooperative tasks: compiled-async output
    equals plain thread output."""
    builders = dict(SINK_LIMITED)
    _, o0 = run_on(builders[name], "thread", capture=False)
    _, o1 = run_on(builders[name], "async", optimize=True, capture=False)
    assert o1 == o0


def test_fig13_fused_async_histories_identical():
    h0, o0 = run_on(DRAIN["fig13"], "thread")
    h1, o1 = run_on(DRAIN["fig13"], "async", optimize=True)
    assert o1 == o0
    for ch in h0:
        assert h1[ch] == h0[ch]


def test_dynamic_farm_result_set_stable_across_backends():
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    def build():
        return build_farm(
            RangeProducerTask(20, lambda i: CallableTask(pow, i, 2)),
            n_workers=2, mode="dynamic")

    _, o0 = run_on(build, "thread", capture=False)
    _, o1 = run_on(build, "async", capture=False)
    assert sorted(map(repr, o1)) == sorted(map(repr, o0))


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None) == "thread"
    monkeypatch.setenv("REPRO_BACKEND", "async")
    assert resolve_backend(None) == "async"
    assert resolve_backend("thread") == "thread"  # arg beats env
    with pytest.raises(ValueError):
        resolve_backend("fibers")
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError):
        resolve_backend(None)
