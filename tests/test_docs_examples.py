"""The code in docs/extending.md must actually work."""

import zlib

import pytest

from repro.kpn import IterativeProcess, Network
from repro.processes import Collect, FromIterable
from repro.processes.codecs import get_codec
from repro.semantics.closed import CStream
from repro.semantics.compile import compile_network, register_kernel
from repro.parallel import run_farm
from repro.distributed.balancer import PlacementPolicy


# -- section 1 + 2: custom process with a registered kernel -----------------

class ClampAbove(IterativeProcess):
    """Passes values through, clamping anything above `limit`."""

    def __init__(self, source, out, limit, iterations=0, codec="long",
                 name=None):
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.limit = limit
        self.codec = get_codec(codec)
        self.track(source, out)

    def step(self):
        value = self.codec.read(self.source)
        self.codec.write(self.out, min(value, self.limit))


@register_kernel(ClampAbove)
def _clamp_kernel(p, ctx):
    limit = p.limit

    def kernel(inputs):
        (s,) = inputs
        return (CStream(tuple(min(x, limit) for x in s.elems), s.closed),)

    ctx.node(p, kernel, [p.source], [p.out])


def test_custom_process_and_kernel_roundtrip():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), [1, 99, 5, 42]))
    net.add(ClampAbove(a.get_input_stream(), b.get_output_stream(), 10))
    net.add(Collect(b.get_input_stream(), out))
    predicted = compile_network(net).predict("ch-1")
    net.run(timeout=30)
    assert out == [1, 10, 5, 10]
    assert list(predicted) == out


# -- section 3: custom task workload -----------------------------------------

class Crc32Task:
    def __init__(self, index, blob):
        self.index = index
        self.blob = blob

    def run(self):
        return (self.index, zlib.crc32(self.blob))


class Crc32ProducerTask:
    def __init__(self, blobs):
        self.blobs = list(blobs)
        self.i = 0

    def run(self):
        if self.i >= len(self.blobs):
            return None
        task = Crc32Task(self.i, self.blobs[self.i])
        self.i += 1
        return task


def test_custom_workload_through_farm():
    blobs = [bytes([i]) * 100 for i in range(12)]
    results = run_farm(Crc32ProducerTask(blobs), n_workers=3, mode="dynamic",
                       timeout=120)
    assert results == [(i, zlib.crc32(b)) for i, b in enumerate(blobs)]


# -- section 4: custom placement policy ---------------------------------------

class PinnedPlacement(PlacementPolicy):
    def __init__(self, pins):
        self.pins = pins

    def assign(self, n_workers, profiles):
        return [self.pins[i % len(self.pins)] for i in range(n_workers)]


def test_pinned_placement():
    from repro.distributed.balancer import ServerProfile

    profiles = [ServerProfile(i, f"s{i}") for i in range(3)]
    assert PinnedPlacement([0, 0, 1]).assign(5, profiles) == [0, 0, 1, 0, 0]


# -- README quickstart ----------------------------------------------------------

def test_readme_quickstart():
    from repro.processes import MapProcess, Sequence

    net = Network()
    raw, squared = net.channels_n(2)
    out = []
    net.add(Sequence(raw.get_output_stream(), start=1, iterations=10))
    net.add(MapProcess(raw.get_input_stream(), squared.get_output_stream(),
                       lambda x: x * x))
    net.add(Collect(squared.get_input_stream(), out))
    net.run()
    assert out == [k * k for k in range(1, 11)]
