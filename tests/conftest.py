"""Shared test helpers.

Networks in tests always run under a timeout so a regression that
deadlocks (ironically, in a deadlock-management library) fails fast
instead of hanging CI.
"""

from __future__ import annotations

import threading

import pytest

#: default per-network timeout for tests (seconds)
NET_TIMEOUT = 60.0


@pytest.fixture
def net_timeout() -> float:
    return NET_TIMEOUT


def run_network(net, timeout: float = NET_TIMEOUT):
    """Run a network, failing the test on timeout instead of hanging."""
    finished = net.run(timeout=timeout)
    assert finished, f"network {net.name!r} did not finish within {timeout}s"
    return net


def start_thread(fn, *args, name: str = "test-helper") -> threading.Thread:
    t = threading.Thread(target=fn, args=args, name=name, daemon=True)
    t.start()
    return t
