"""Closed-stream domain: order laws and kernel behaviour at end-of-stream."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.closed import (CBOTTOM, CStream, ClosedEquationNetwork,
                                    ck_binary, ck_cons, ck_duplicate,
                                    ck_filter, ck_guard, ck_identity, ck_map,
                                    ck_ordered_merge, ck_router, ck_sieve,
                                    ck_source, cprefix_le)

elems = st.lists(st.integers(min_value=-20, max_value=20), max_size=10)
cstreams = st.builds(lambda e, c: CStream(tuple(e), c), elems, st.booleans())


def approximants(s: CStream):
    """All prefixes of s in the information order (open prefixes + s)."""
    out = [CStream(s.elems[:n], False) for n in range(len(s.elems) + 1)]
    out.append(s)
    return out


# ---------------------------------------------------------------------------
# the order
# ---------------------------------------------------------------------------

@given(cstreams)
def test_reflexive(s):
    assert cprefix_le(s, s)


@given(cstreams, cstreams)
def test_antisymmetric(x, y):
    if cprefix_le(x, y) and cprefix_le(y, x):
        assert x == y


@given(cstreams, cstreams, cstreams)
def test_transitive(x, y, z):
    if cprefix_le(x, y) and cprefix_le(y, z):
        assert cprefix_le(x, z)


@given(cstreams)
def test_bottom_below_everything(s):
    assert cprefix_le(CBOTTOM, s)


@given(cstreams)
def test_closed_streams_are_maximal(s):
    closed = CStream(s.elems, True)
    extended = CStream(s.elems + (99,), True)
    assert not cprefix_le(closed, extended)


@given(cstreams)
def test_open_prefix_below_closed_whole(s):
    open_prefix = CStream(s.elems[: len(s.elems) // 2], False)
    assert cprefix_le(open_prefix, s)


def test_take_drops_closedness():
    s = CStream((1, 2, 3), True)
    assert s.take(2) == CStream((1, 2), False)
    assert s.take(5) is s


# ---------------------------------------------------------------------------
# kernel monotonicity on approximant chains
# ---------------------------------------------------------------------------

KERNELS_1 = [
    ("identity", ck_identity),
    ("map", ck_map(lambda x: x * 2)),
    ("filter", ck_filter(lambda x: x % 2 == 0)),
    ("dup0", lambda ins: (ck_duplicate(2)(ins))[:1]),
]


@pytest.mark.parametrize("name,kernel", KERNELS_1)
@given(cstreams)
@settings(max_examples=40, deadline=None)
def test_unary_kernels_monotonic(name, kernel, s):
    chain = approximants(s)
    outputs = [kernel((a,))[0] for a in chain]
    for x, y in zip(outputs, outputs[1:]):
        assert cprefix_le(x, y), name


@given(cstreams, cstreams)
@settings(max_examples=40, deadline=None)
def test_binary_kernel_monotonic(a, b):
    kernel = ck_binary(lambda x, y: x + y)
    for aa in approximants(a):
        for bb in approximants(b):
            small = kernel((aa, bb))[0]
            large = kernel((a, b))[0]
            assert cprefix_le(small, large)


@given(cstreams, cstreams)
@settings(max_examples=40, deadline=None)
def test_cons_monotonic(head, tail):
    for hh in approximants(head):
        for tt in approximants(tail):
            small = ck_cons((hh, tt))[0]
            large = ck_cons((head, tail))[0]
            assert cprefix_le(small, large)


sorted_cstreams = st.builds(lambda e, c: CStream(tuple(sorted(set(e))), c),
                            elems, st.booleans())


@given(sorted_cstreams, sorted_cstreams)
@settings(max_examples=40, deadline=None)
def test_merge_monotonic(a, b):
    kernel = ck_ordered_merge(True)
    for aa in approximants(a):
        for bb in approximants(b):
            small = kernel((aa, bb))[0]
            large = kernel((a, b))[0]
            assert cprefix_le(small, large)


# ---------------------------------------------------------------------------
# end-of-stream behaviours the plain domain cannot express
# ---------------------------------------------------------------------------

def test_merge_drains_survivor_after_close():
    a = CStream((1, 5), True)       # exhausted and CLOSED
    b = CStream((2, 7, 9), True)
    merged = ck_ordered_merge(True)((a, b))[0]
    assert merged == CStream((1, 2, 5, 7, 9), True)


def test_merge_waits_while_other_side_open():
    a = CStream((1,), False)        # open: more may come
    b = CStream((2, 7), True)
    merged = ck_ordered_merge(True)((a, b))[0]
    # after emitting 1 the merge must stop: a's NEXT element could be
    # anything ≥ 1 (say 1.5), so even b's 2 cannot be emitted yet
    assert merged.elems == (1,)
    assert not merged.closed


def test_cons_switches_only_after_head_closes():
    open_head = ck_cons((CStream((1,), False), CStream((9,), True)))[0]
    assert open_head == CStream((1,), False)
    closed_head = ck_cons((CStream((1,), True), CStream((9,), True)))[0]
    assert closed_head == CStream((1, 9), True)


def test_binary_closes_on_shorter_closed_side():
    out = ck_binary(lambda x, y: x + y)((CStream((1,), True),
                                         CStream((10, 20, 30), False)))[0]
    assert out == CStream((11,), True)  # no second pair can ever form


def test_binary_open_when_both_sides_may_grow():
    out = ck_binary(lambda x, y: x + y)((CStream((1,), False),
                                         CStream((10,), False)))[0]
    assert out == CStream((11,), False)


def test_guard_stop_after_true_closes_output():
    out = ck_guard(True)((CStream((5, 6, 7), False),
                          CStream((False, True, True), False)))[0]
    assert out == CStream((6,), True)


def test_router_splits_and_propagates_close():
    yes, no = ck_router(lambda x: x > 0)((CStream((1, -2, 3), True),))
    assert yes == CStream((1, 3), True)
    assert no == CStream((-2,), True)


def test_sieve_closedness():
    out = ck_sieve((CStream(tuple(range(2, 20)), True),))[0]
    assert out == CStream((2, 3, 5, 7, 11, 13, 17, 19), True)


# ---------------------------------------------------------------------------
# solver
# ---------------------------------------------------------------------------

def test_closed_solver_feedback_with_termination():
    """x = cons(seed, inc(x)) with a *bounded* sink-side effect: the loop
    runs to max_len, streams stay open (infinite behaviour)."""
    eq = ClosedEquationNetwork(max_len=10)
    eq.node("seed", ck_source((0,)), [], ["head"])
    eq.node("inc", ck_map(lambda v: v + 1), ["x"], ["xi"])
    eq.node("cons", ck_cons, ["head", "xi"], ["x"])
    res = eq.solve()
    assert res["x"].elems == tuple(range(10))
    assert not res.converged  # truncated


def test_closed_solver_terminating_network_converges():
    eq = ClosedEquationNetwork(max_len=100)
    eq.node("src", ck_source((3, 1, 2)), [], ["a"])
    eq.node("sq", ck_map(lambda v: v * v), ["a"], ["b"])
    res = eq.solve()
    assert res["b"] == CStream((9, 1, 4), True)
    assert res.converged


def test_closed_solver_duplicate_producer_rejected():
    eq = ClosedEquationNetwork()
    eq.node("a", ck_source((1,)), [], ["s"])
    with pytest.raises(ValueError, match="already has a producer"):
        eq.node("b", ck_source((2,)), [], ["s"])


def test_closed_solver_detects_retraction():
    calls = {"n": 0}

    def flaky(inputs):
        calls["n"] += 1
        return (CStream((1, 2), True) if calls["n"] == 1
                else CStream((9,), True),)

    eq = ClosedEquationNetwork()
    eq.node("flaky", flaky, [], ["s"])
    from repro.semantics.closed import NonMonotonicClosedError

    with pytest.raises(NonMonotonicClosedError):
        eq.solve()
