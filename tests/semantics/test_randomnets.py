"""Property-based determinacy over *generated* networks.

Three independent evaluators of every generated graph must agree:
1. the threaded runtime (any channel capacity, any thread interleaving),
2. the compiled Kleene least fixed point,
3. a direct single-pass reference evaluator.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.compile import compile_network
from repro.semantics.randomnets import (NetSpec, build_operational,
                                        random_spec, reference_evaluate)

specs = st.integers(min_value=0, max_value=10 ** 9).map(
    lambda seed: random_spec(random.Random(seed), max_nodes=9))


def stream_channel_name(idx: int) -> str:
    return f"rn-{idx}"


def run_and_collect(spec: NetSpec, capacity=None):
    net, sinks = build_operational(spec, capacity=capacity)
    compiled = compile_network(net, max_len=500)
    net.run(timeout=120)
    return net, sinks, compiled


@given(specs)
@settings(max_examples=40, deadline=None)
def test_runtime_equals_fixed_point_equals_reference(spec):
    net, sinks, compiled = run_and_collect(spec)
    reference = reference_evaluate(spec)
    for idx, collected in sinks.items():
        predicted = list(compiled.predict(stream_channel_name(idx)))
        assert collected == predicted, f"runtime != fixpoint on stream {idx}"
        assert collected == reference[idx], f"runtime != reference on {idx}"


@given(specs, st.sampled_from([16, 64, 4096]))
@settings(max_examples=25, deadline=None)
def test_runtime_capacity_independent(spec, capacity):
    _, sinks_a, _ = run_and_collect(spec, capacity=capacity)
    _, sinks_b, _ = run_and_collect(spec, capacity=1 << 16)
    assert {k: v for k, v in sinks_a.items()} == \
        {k: v for k, v in sinks_b.items()}


@given(specs)
@settings(max_examples=25, deadline=None)
def test_reference_evaluator_covers_all_streams(spec):
    reference = reference_evaluate(spec)
    assert len(reference) == spec.n_streams()


def test_generator_produces_wellformed_specs():
    rng = random.Random(42)
    for _ in range(200):
        spec = random_spec(rng)
        consumed = [i for node in spec.nodes for i in node.inputs]
        assert len(consumed) == len(set(consumed)), "stream consumed twice"
        created = spec.n_streams()
        assert all(i < created for i in consumed)
        # inputs always reference streams created by EARLIER nodes
        seen = 0
        for node in spec.nodes:
            assert all(i < seen for i in node.inputs)
            seen += 2 if node.kind == "dup" else 1


def test_generator_deterministic_by_seed():
    assert random_spec(random.Random(7)) == random_spec(random.Random(7))


def test_single_source_spec():
    spec = random_spec(random.Random(0), max_nodes=1)
    assert spec.nodes[0].kind == "source"
    net, sinks, compiled = run_and_collect(spec)
    assert list(sinks.values())[0] == list(spec.nodes[0].param)
