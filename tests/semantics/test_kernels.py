"""Monotonicity of every kernel (the property continuity rests on, §2.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.kernels import (k_add, k_binary, k_cons, k_duplicate,
                                     k_guard, k_identity, k_map,
                                     k_modulo_filter, k_ordered_merge,
                                     k_scale, k_sieve)
from repro.semantics.streams import prefix_le

ints = st.integers(min_value=-50, max_value=50)
stream = st.lists(ints, max_size=15).map(tuple)
cut = st.integers(min_value=0, max_value=15)


def check_monotone_1(kernel, full, n):
    """f(prefix) ⊑ f(full) for a unary kernel."""
    small = (full[:n],)
    large = (full,)
    fs, fl = kernel(small), kernel(large)
    assert all(prefix_le(a, b) for a, b in zip(fs, fl))


def check_monotone_2(kernel, a, b, na, nb):
    small = (a[:na], b[:nb])
    large = (a, b)
    fs, fl = kernel(small), kernel(large)
    assert all(prefix_le(x, y) for x, y in zip(fs, fl))


@given(stream, cut)
def test_identity_monotonic(s, n):
    check_monotone_1(k_identity, s, n)


@given(stream, cut)
def test_duplicate_monotonic(s, n):
    check_monotone_1(k_duplicate(3), s, n)


@given(stream, cut)
def test_scale_monotonic(s, n):
    check_monotone_1(k_scale(7), s, n)


@given(stream, cut)
def test_map_monotonic(s, n):
    check_monotone_1(k_map(lambda x: x * x - 1), s, n)


@given(stream, cut)
def test_modulo_filter_monotonic(s, n):
    shifted = tuple(abs(v) + 1 for v in s)
    check_monotone_1(k_modulo_filter(3), shifted, n)


@given(stream, cut)
def test_sieve_monotonic(s, n):
    positive = tuple(abs(v) + 2 for v in s)
    check_monotone_1(k_sieve, positive, n)


@given(stream, stream, cut, cut)
def test_add_monotonic(a, b, na, nb):
    check_monotone_2(k_add, a, b, na, nb)


@given(stream, stream, cut, cut)
def test_binary_generic_monotonic(a, b, na, nb):
    check_monotone_2(k_binary(lambda x, y: x * y), a, b, na, nb)


@given(st.lists(ints, max_size=15).map(lambda v: tuple(sorted(v))),
       st.lists(ints, max_size=15).map(lambda v: tuple(sorted(v))),
       cut, cut)
def test_ordered_merge_monotonic_on_sorted(a, b, na, nb):
    check_monotone_2(k_ordered_merge(True), a, b, na, nb)


@given(stream, st.lists(st.booleans(), max_size=15).map(tuple), cut, cut)
def test_guard_monotonic(data, control, nd, nc):
    check_monotone_2(k_guard(False), data, control, nd, nc)


@given(stream, st.lists(st.booleans(), max_size=15).map(tuple), cut, cut)
def test_guard_stop_after_true_monotonic(data, control, nd, nc):
    check_monotone_2(k_guard(True), data, control, nd, nc)


@given(stream, stream, cut)
def test_cons_monotonic_in_tail(head, tail, n):
    """Cons is monotonic in its tail for a fixed (complete) head — the
    property feedback loops rely on."""
    small = (head, tail[:n])
    large = (head, tail)
    fs, fl = k_cons(small), k_cons(large)
    assert prefix_le(fs[0], fl[0])


# -- correctness spot checks ------------------------------------------------

def test_merge_kernel_waits_for_both_heads():
    """On partial input the merge may not emit from the survivor — that
    output could be retracted when the other stream's next element is
    smaller."""
    merged = k_ordered_merge(True)(((1, 5), (2,)))[0]
    assert merged == (1, 2)  # 5 must NOT be emitted yet


def test_guard_kernel_zip_semantics():
    out = k_guard(False)(((1, 2, 3), (True, False, True)))[0]
    assert out == (1, 3)


def test_sieve_kernel_primes():
    out = k_sieve((tuple(range(2, 30)),))[0]
    assert out == (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)
