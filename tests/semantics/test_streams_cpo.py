"""Order-theoretic laws of the stream CPO (paper section 2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.streams import (BOTTOM, cons, first, glb, is_chain, lub,
                                     prefix_le, rest, take, tuple_prefix_le,
                                     tuples_lub)

streams = st.lists(st.integers(min_value=-100, max_value=100),
                   max_size=12).map(tuple)


# ---------------------------------------------------------------------------
# the prefix relation is a partial order
# ---------------------------------------------------------------------------

@given(streams)
def test_reflexive(x):
    assert prefix_le(x, x)


@given(streams, streams)
def test_antisymmetric(x, y):
    if prefix_le(x, y) and prefix_le(y, x):
        assert x == y


@given(streams, streams, streams)
def test_transitive(x, y, z):
    if prefix_le(x, y) and prefix_le(y, z):
        assert prefix_le(x, z)


@given(streams)
def test_bottom_below_everything(x):
    assert prefix_le(BOTTOM, x)


@given(streams, st.integers(min_value=0, max_value=12))
def test_take_is_a_prefix(x, n):
    assert prefix_le(take(x, n), x)


# ---------------------------------------------------------------------------
# chains and least upper bounds
# ---------------------------------------------------------------------------

@given(streams)
def test_prefix_chain_of_takes_is_chain(x):
    chain = [take(x, n) for n in range(len(x) + 1)]
    assert is_chain(chain)
    assert lub(chain) == x


@given(streams, streams)
def test_lub_rejects_non_chains(x, y):
    if not (prefix_le(x, y) or prefix_le(y, x)):
        with pytest.raises(ValueError):
            lub([x, y])


def test_lub_empty_chain_is_bottom():
    assert lub([]) == BOTTOM


@given(streams, streams)
def test_glb_is_lower_bound_and_greatest(x, y):
    g = glb(x, y)
    assert prefix_le(g, x) and prefix_le(g, y)
    # one element longer is no longer a common prefix (greatestness)
    longer_x = take(x, len(g) + 1)
    longer_y = take(y, len(g) + 1)
    if longer_x != g and longer_y != g:
        assert not (prefix_le(longer_x, y) and prefix_le(longer_y, x))


@given(streams)
def test_glb_idempotent(x):
    assert glb(x, x) == x


# ---------------------------------------------------------------------------
# first / rest / cons with the paper's bottom conventions
# ---------------------------------------------------------------------------

def test_first_of_bottom_is_bottom():
    assert first(BOTTOM) == BOTTOM


def test_rest_of_bottom_is_bottom():
    assert rest(BOTTOM) == BOTTOM


def test_cons_of_bottom_element_is_bottom():
    assert cons(BOTTOM, (1, 2)) == BOTTOM


def test_cons_onto_bottom_is_singleton():
    assert cons(5, BOTTOM) == (5,)


@given(streams)
def test_cons_first_rest_roundtrip(x):
    if x:
        assert cons(x[0], rest(x)) == x
        assert first(x) == (x[0],)


@given(streams, streams)
def test_first_rest_monotonic(x, y):
    if prefix_le(x, y):
        assert prefix_le(first(x), first(y))
        assert prefix_le(rest(x), rest(y))


# ---------------------------------------------------------------------------
# p-tuples (S^p)
# ---------------------------------------------------------------------------

@given(streams, streams)
def test_tuple_prefix_pointwise(x, y):
    assert tuple_prefix_le((x, x), (x, x))
    if prefix_le(x, y):
        assert tuple_prefix_le((x, x), (y, y))


def test_tuple_prefix_arity_mismatch():
    with pytest.raises(ValueError):
        tuple_prefix_le(((1,),), ((1,), (2,)))


@given(streams)
def test_tuples_lub_pointwise(x):
    chain = [(take(x, n), take(x, max(0, n - 1))) for n in range(len(x) + 1)]
    result = tuples_lub(chain)
    assert result[0] == x
    assert result[1] == take(x, max(0, len(x) - 1))
