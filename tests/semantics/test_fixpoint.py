"""The Kleene least-fixed-point solver (paper section 2.2)."""

import pytest

from repro.semantics.fixpoint import EquationNetwork, NonMonotonicError
from repro.semantics.kernels import (k_add, k_cons, k_constant, k_duplicate,
                                     k_identity, k_map, k_sequence)
from repro.semantics.streams import prefix_le


def test_single_source_converges():
    eq = EquationNetwork(max_len=100)
    eq.node("src", k_sequence(0, 5), [], ["s"])
    res = eq.solve()
    assert res["s"] == (0, 1, 2, 3, 4)
    assert res.converged


def test_pipeline_composition():
    eq = EquationNetwork(max_len=100)
    eq.node("src", k_sequence(1, 4), [], ["a"])
    eq.node("sq", k_map(lambda x: x * x), ["a"], ["b"])
    assert eq.solve()["b"] == (1, 4, 9, 16)


def test_feedback_loop_counts_up():
    """x = cons(0, map(+1, x)) — the canonical feedback equation."""
    eq = EquationNetwork(max_len=10)
    eq.node("seed", k_constant(0, 1), [], ["head"])
    eq.node("inc", k_map(lambda v: v + 1), ["x"], ["xi"])
    eq.node("cons", k_cons, ["head", "xi"], ["x"])
    res = eq.solve()
    assert res["x"] == tuple(range(10))
    assert not res.converged  # infinite stream truncated at max_len


def test_iterates_form_increasing_chain():
    """Each Kleene sweep extends streams — checked via successive solves
    with growing iteration budgets."""
    prefixes = []
    for max_iter in (1, 2, 3, 5, 8):
        eq = EquationNetwork(max_len=50, max_iterations=max_iter)
        eq.node("seed", k_constant(0, 1), [], ["head"])
        eq.node("inc", k_map(lambda v: v + 1), ["x"], ["xi"])
        eq.node("cons", k_cons, ["head", "xi"], ["x"])
        prefixes.append(eq.solve()["x"])
    for a, b in zip(prefixes, prefixes[1:]):
        assert prefix_le(a, b)


def test_mutual_recursion_fibonacci_style():
    eq = EquationNetwork(max_len=12)
    eq.node("seed-b", k_constant(1, 1), [], ["sb"])
    eq.node("seed-f", k_constant(1, 1), [], ["sf"])
    eq.node("cons-b", k_cons, ["sb", "g"], ["b"])
    eq.node("cons-f", k_cons, ["sf", "b"], ["f"])
    eq.node("add", k_add, ["b", "f"], ["g"])
    res = eq.solve()
    assert res["f"][:8] == (1, 1, 2, 3, 5, 8, 13, 21)


def test_unconnected_stream_stays_bottom():
    eq = EquationNetwork()
    eq.stream("floating")
    eq.node("src", k_sequence(0, 3), [], ["s"])
    res = eq.solve()
    assert res["floating"] == ()


def test_duplicate_producer_rejected():
    eq = EquationNetwork()
    eq.node("a", k_sequence(0, 3), [], ["s"])
    with pytest.raises(ValueError, match="already has a producer"):
        eq.node("b", k_sequence(9, 3), [], ["s"])


def test_wrong_output_arity_detected():
    eq = EquationNetwork()
    eq.node("bad", lambda inputs: ((1,), (2,)), [], ["only-one"])
    with pytest.raises(ValueError, match="returned 2 streams"):
        eq.solve()


def test_non_monotonic_kernel_detected():
    calls = {"n": 0}

    def flaky(inputs):
        calls["n"] += 1
        # first sweep emits (1, 2); later sweeps retract to (9,)
        return ((1, 2) if calls["n"] == 1 else (9,),)

    eq = EquationNetwork()
    eq.node("flaky", flaky, [], ["s"])
    with pytest.raises(NonMonotonicError):
        eq.solve()


def test_shorter_but_consistent_output_kept():
    """A kernel that (harmlessly) reports a shorter prefix later must not
    lose the longer history."""
    calls = {"n": 0}

    def shrinking(inputs):
        calls["n"] += 1
        return ((1, 2, 3) if calls["n"] == 1 else (1, 2),)

    eq = EquationNetwork()
    eq.node("s", shrinking, [], ["out"])
    assert eq.solve()["out"] == (1, 2, 3)


def test_max_iterations_bound_respected():
    eq = EquationNetwork(max_len=10 ** 6, max_iterations=3)
    eq.node("seed", k_constant(0, 1), [], ["head"])
    eq.node("inc", k_map(lambda v: v + 1), ["x"], ["xi"])
    eq.node("cons", k_cons, ["head", "xi"], ["x"])
    res = eq.solve()
    assert res.iterations == 3
    assert not res.converged


def test_solve_stream_shortcut():
    eq = EquationNetwork()
    eq.node("src", k_sequence(5, 3), [], ["s"])
    assert eq.solve_stream("s") == (5, 6, 7)


def test_identity_chain_propagates_through_layers():
    eq = EquationNetwork()
    eq.node("src", k_sequence(0, 4), [], ["l0"])
    for i in range(6):
        eq.node(f"id{i}", k_identity, [f"l{i}"], [f"l{i + 1}"])
    assert eq.solve()["l6"] == (0, 1, 2, 3)
