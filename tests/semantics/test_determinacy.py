"""Determinacy: Kahn's central claim, tested operationally (section 2).

Two angles:
1. operational histories are identical across wildly different channel
   capacities (different schedules, same fixed point);
2. operational histories equal the denotationally solved least fixed
   point.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kpn import Network
from repro.processes import fibonacci, hamming, primes
from repro.semantics import (fibonacci_equations, fibonacci_reference,
                             hamming_equations, hamming_reference,
                             histories_under_capacities, primes_reference,
                             sieve_equations)

CAPACITIES = (16, 64, 1024, 1 << 16)


# ---------------------------------------------------------------------------
# schedule independence
# ---------------------------------------------------------------------------

def test_fibonacci_schedule_independent():
    runs = histories_under_capacities(
        lambda cap: fibonacci(15, network=Network(default_capacity=cap)),
        CAPACITIES)
    assert all(r == runs[0] for r in runs)
    assert runs[0] == fibonacci_reference(15)


def test_hamming_schedule_independent():
    runs = histories_under_capacities(
        lambda cap: hamming(25, network=Network(), channel_capacity=cap),
        CAPACITIES, timeout=120)
    assert all(r == runs[0] for r in runs)
    assert runs[0] == hamming_reference(25)


def test_sieve_schedule_independent():
    runs = histories_under_capacities(
        lambda cap: primes(count=15, network=Network(),
                           channel_capacity=cap),
        CAPACITIES, timeout=120)
    assert all(r == runs[0] for r in runs)


def test_repeated_runs_identical():
    """Same build, many runs: thread scheduling noise must not matter."""
    results = [fibonacci(12).run(timeout=60) for _ in range(8)]
    assert all(r == results[0] for r in results)


@given(st.integers(min_value=1, max_value=25),
       st.sampled_from([8, 32, 256, 4096]))
@settings(max_examples=12, deadline=None)
def test_fibonacci_determinate_property(count, capacity):
    out = fibonacci(count, network=Network(default_capacity=capacity)).run(
        timeout=60)
    assert out == fibonacci_reference(count)


# ---------------------------------------------------------------------------
# operational == denotational
# ---------------------------------------------------------------------------

def test_fibonacci_operational_equals_fixed_point():
    solution = fibonacci_equations(max_len=30).solve()
    operational = fibonacci(25).run(timeout=60)
    assert list(solution["fh"][:25]) == operational


def test_hamming_operational_equals_fixed_point():
    solution = hamming_equations(max_len=50).solve()
    operational = hamming(40).run(timeout=120)
    assert list(solution["hout"][:40]) == operational


def test_sieve_operational_equals_fixed_point():
    solution = sieve_equations(below=80).solve()
    operational = primes(below=80).run(timeout=120)
    assert list(solution["primes"]) == operational


def test_fixed_point_internal_streams_consistent():
    """Not just the output: every stream of the Fibonacci system matches
    its defining equation at the solution."""
    eq = fibonacci_equations(max_len=30)
    res = eq.solve()
    b, f, g = res["b"], res["f"], res["gb"]
    # G = B + F elementwise (up to computed length)
    n = len(g)
    assert g[:n] == tuple(x + y for x, y in zip(b, f))[:n]
    # B = 1 : G
    assert b[:1] == (1,)
    assert b[1:len(g) + 1] == g[:len(b) - 1]
