"""The network compiler: derived equations must predict operational runs."""

import math

import pytest

from repro.kpn import Network
from repro.kpn.process import CompositeProcess, IterativeProcess
from repro.processes import (Add, Collect, Cons, Duplicate, FromIterable,
                             Guard, MapProcess, OrderedMerge, Scale, Sequence,
                             fibonacci, hamming, modulo_merge, newton_sqrt,
                             primes)
from repro.semantics.compile import (CompiledNetwork, UncompilableProcessError,
                                     compile_network, register_kernel)


def check_prediction(built, channel_name, max_len=1000, limit=None,
                     timeout=120.0):
    compiled = compile_network(built.network, max_len=max_len)
    predicted = compiled.predict(channel_name, limit=limit)
    operational = built.run(timeout=timeout)
    assert list(predicted) == operational
    return compiled


# ---------------------------------------------------------------------------
# the paper's figure networks, compiled automatically
# ---------------------------------------------------------------------------

def test_compile_fibonacci():
    check_prediction(fibonacci(20), "fib-7", max_len=30)


def test_compile_sieve_below():
    check_prediction(primes(below=60), "sieve-out")


def test_compile_sieve_recursive():
    check_prediction(primes(below=40, recursive=True), "sieve-out")


def test_compile_hamming():
    check_prediction(hamming(30), "ham-out", max_len=80, limit=30)


def test_compile_fig13_full_drain():
    """The closed-stream semantics lets the merge drain its survivor:
    the prediction covers all 60 values, not just up to the last multiple."""
    check_prediction(modulo_merge(60, divisor=7), "f13-out")


def test_compile_newton_sqrt():
    """Unbounded source + feedback + data-dependent Guard termination."""
    built = newton_sqrt(2.0)
    compiled = compile_network(built.network, max_len=200)
    predicted = compiled.predict("newton2-4")
    operational = built.run(timeout=60)
    assert list(predicted) == operational
    assert predicted[0] == pytest.approx(math.sqrt(2.0))


# ---------------------------------------------------------------------------
# hand-built networks
# ---------------------------------------------------------------------------

def test_compile_pipeline():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), [3, 1, 4]))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(),
                       lambda x: x + 10))
    net.add(Collect(b.get_input_stream(), out))
    compiled = compile_network(net)
    assert compiled.predict("ch-1") == (13, 11, 14)
    net.run(timeout=30)
    assert out == [13, 11, 14]


def test_compile_diamond():
    net = Network()
    a, left, right, merged = net.channels_n(4)
    out = []
    net.add(Sequence(a.get_output_stream(), start=1, iterations=5))
    net.add(Duplicate(a.get_input_stream(),
                      [left.get_output_stream(), right.get_output_stream()]))
    net.add(Add(left.get_input_stream(), right.get_input_stream(),
                merged.get_output_stream()))
    net.add(Collect(merged.get_input_stream(), out))
    compiled = compile_network(net)
    assert compiled.predict("ch-3") == (2, 4, 6, 8, 10)
    net.run(timeout=30)
    assert out == [2, 4, 6, 8, 10]


def test_compile_inside_composites():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    comp = CompositeProcess()
    comp.add(FromIterable(a.get_output_stream(), [5]))
    comp.add(Scale(a.get_input_stream(), b.get_output_stream(), 3))
    net.add(comp)
    net.add(Collect(b.get_input_stream(), out))
    compiled = compile_network(net)
    assert compiled.predict("ch-1") == (15,)


def test_predict_all_exposes_internal_streams():
    built = fibonacci(10)
    compiled = compile_network(built.network, max_len=15)
    streams = compiled.predict_all()
    assert set(streams) >= {f"fib-{i}" for i in range(9)}
    # internal consistency: gb = be + df elementwise
    gb, be, df = streams["fib-8"], streams["fib-1"], streams["fib-3"]
    n = len(gb)
    assert gb == tuple(x + y for x, y in zip(be, df))[:n]


def test_sink_limits_recorded_and_applied():
    built = fibonacci(7)
    compiled = compile_network(built.network, max_len=30)
    assert compiled.sinks["fib-7"][1] == 7
    assert len(compiled.predict("fib-7")) == 7


# ---------------------------------------------------------------------------
# extensibility and failure modes
# ---------------------------------------------------------------------------

class Tripler(IterativeProcess):
    """A custom user process (no registered kernel by default)."""

    def __init__(self, source, out):
        super().__init__()
        self.source = source
        self.out = out
        self.track(source, out)

    def step(self):
        from repro.processes.codecs import LONG

        LONG.write(self.out, LONG.read(self.source) * 3)


def test_unknown_process_rejected_by_name():
    net = Network()
    a, b = net.channels_n(2)
    net.add(FromIterable(a.get_output_stream(), [1]))
    net.add(Tripler(a.get_input_stream(), b.get_output_stream()))
    with pytest.raises(UncompilableProcessError, match="Tripler"):
        compile_network(net)


def test_register_kernel_for_custom_process():
    from repro.semantics.closed import ck_map
    from repro.semantics import compile as C

    @register_kernel(Tripler)
    def _tripler(p, ctx):
        ctx.node(p, ck_map(lambda x: x * 3), [p.source], [p.out])

    try:
        net = Network()
        a, b = net.channels_n(2)
        out = []
        net.add(FromIterable(a.get_output_stream(), [2, 4]))
        net.add(Tripler(a.get_input_stream(), b.get_output_stream()))
        net.add(Collect(b.get_input_stream(), out))
        compiled = compile_network(net)
        assert compiled.predict("ch-1") == (6, 12)
        net.run(timeout=30)
        assert out == [6, 12]
    finally:
        C._COMPILERS.pop(Tripler, None)


def test_turnstile_is_uncompilable():
    from repro.processes import Turnstile

    net = Network()
    w0, pairs, idx = net.channels_n(3)
    net.add(Turnstile([w0.get_input_stream()], pairs.get_output_stream(),
                      idx.get_output_stream()))
    with pytest.raises(UncompilableProcessError):
        compile_network(net)


def test_subclass_inherits_base_kernel():
    class MyScale(Scale):
        pass

    net = Network()
    a, b = net.channels_n(2)
    net.add(FromIterable(a.get_output_stream(), [1, 2]))
    net.add(MyScale(a.get_input_stream(), b.get_output_stream(), 10))
    net.add(Collect(b.get_input_stream(), []))
    compiled = compile_network(net)
    assert compiled.predict("ch-1") == (10, 20)
