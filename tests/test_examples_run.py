"""Every bundled example must run clean (examples are executable docs).

Each example self-asserts its results and prints a final "... OK" line;
this runner executes them as real subprocesses (their own interpreters,
like a user would) and checks both.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

ALL_EXAMPLES = sorted(
    name[:-3] for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_example_inventory_matches_cli():
    from repro.cli import EXAMPLES

    assert sorted(EXAMPLES) == ALL_EXAMPLES


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs_clean(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, f"{name}.py")],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, \
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    assert "OK" in result.stdout.splitlines()[-1]
