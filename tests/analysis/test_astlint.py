"""AST lint pass: Kahn-semantics rules over process bodies."""

import textwrap

from repro.analysis.astlint import lint_callable, lint_class, lint_source
from repro.analysis.markers import nondeterminate


def lint(body: str):
    """Lint a module defining process classes; returns findings."""
    return lint_source(textwrap.dedent(body), filename="<test>")


def rules(findings):
    return [f.rule for f in findings]


PRELUDE = """\
from repro.kpn.process import IterativeProcess, Process
"""


# ---------------------------------------------------------------------------
# poll: non-blocking channel inspection
# ---------------------------------------------------------------------------

def test_occupancy_poll_flagged():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        if self.source.channel.occupancy() > 0:
            self.out.write(self.source.read(8))
""")
    assert rules(findings) == ["poll"]
    assert findings[0].severity == "error"
    assert findings[0].subject == "P.step"


def test_read_with_timeout_flagged():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        chunk = self.source.read(8, timeout=0.5)
""")
    assert rules(findings) == ["poll"]


def test_plain_blocking_read_clean():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        self.out.write(self.source.read(8))
""")
    assert findings == []


def test_wait_any_readable_flagged():
    findings = lint(PRELUDE + """
from repro.kpn.channel import wait_any_readable

class P(IterativeProcess):
    def step(self):
        ready = wait_any_readable(self.inputs)
""")
    assert rules(findings) == ["poll"]


# ---------------------------------------------------------------------------
# time / random
# ---------------------------------------------------------------------------

def test_clock_read_flagged_but_sleep_allowed():
    findings = lint(PRELUDE + """
import time

class P(IterativeProcess):
    def step(self):
        time.sleep(0.01)            # pacing is allowed
        stamp = time.monotonic()    # clock-dependent output is not
""")
    assert rules(findings) == ["time"]


def test_unseeded_random_flagged():
    findings = lint(PRELUDE + """
import random

class P(IterativeProcess):
    def step(self):
        self.out.write(random.random())
""")
    assert rules(findings) == ["random"]


def test_explicitly_seeded_random_allowed():
    findings = lint(PRELUDE + """
import random

class P(IterativeProcess):
    def on_start(self):
        random.seed(self.seed)

    def step(self):
        self.out.write(random.random())
""")
    assert findings == []


# ---------------------------------------------------------------------------
# select: data-dependent input selection
# ---------------------------------------------------------------------------

def test_data_dependent_input_selection_flagged():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        which = self.control.read(1)[0]
        value = self.inputs[which].read(8)
""")
    assert "select" in rules(findings)


def test_data_dependent_output_selection_allowed():
    # routing *outputs* by data is determinate (ModuloRouter, Direct)
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        value = self.source.read(8)
        self.outputs[value[0] % 2].write(value)
""")
    assert findings == []


# ---------------------------------------------------------------------------
# global-write / io
# ---------------------------------------------------------------------------

def test_global_rebind_flagged():
    findings = lint(PRELUDE + """
COUNTER = 0

class P(IterativeProcess):
    def step(self):
        global COUNTER
        COUNTER += 1
""")
    assert "global-write" in rules(findings)


def test_module_level_mutation_flagged():
    findings = lint(PRELUDE + """
RESULTS = []

class P(IterativeProcess):
    def step(self):
        RESULTS.append(self.source.read(8))
""")
    assert "global-write" in rules(findings)


def test_self_state_mutation_allowed():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        self.buffer.append(self.source.read(8))
""")
    assert findings == []


def test_codec_write_not_mistaken_for_mutation():
    # LONG.write(self.out, v) targets the stream argument, not the codec
    findings = lint(PRELUDE + """
from repro.processes.codecs import LONG

class P(IterativeProcess):
    def step(self):
        LONG.write(self.out, 1)
""")
    assert findings == []


def test_blocking_io_flagged_print_allowed():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        print(self.source.read(8))          # Print-process idiom: fine
        with open("/tmp/x", "w") as fh:     # hidden side channel: not
            fh.write("x")
""")
    assert rules(findings) == ["io"]


def test_socket_use_flagged():
    findings = lint(PRELUDE + """
import socket

class P(IterativeProcess):
    def step(self):
        s = socket.create_connection(("host", 1))
""")
    assert rules(findings) == ["io"]


# ---------------------------------------------------------------------------
# suppression and the @nondeterminate escape hatch
# ---------------------------------------------------------------------------

def test_line_suppression_with_rule():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        n = self.source.channel.occupancy()  # repro: lint-ok[poll]
""")
    assert findings == []


def test_bare_suppression():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        n = self.source.channel.occupancy()  # repro: lint-ok
""")
    assert findings == []


def test_suppression_for_other_rule_does_not_apply():
    findings = lint(PRELUDE + """
class P(IterativeProcess):
    def step(self):
        n = self.source.channel.occupancy()  # repro: lint-ok[io]
""")
    assert rules(findings) == ["poll"]


def test_nondeterminate_decorator_downgrades_to_declared():
    findings = lint(PRELUDE + """
from repro.analysis.markers import nondeterminate

@nondeterminate("fairness experiment")
class P(IterativeProcess):
    def step(self):
        n = self.source.channel.occupancy()
""")
    assert rules(findings) == ["poll"]
    assert findings[0].severity == "declared"
    assert "fairness experiment" in findings[0].message


def test_nondeterminate_requires_reason():
    import pytest

    with pytest.raises(TypeError):
        @nondeterminate("")
        class P:  # noqa: F811
            pass


# ---------------------------------------------------------------------------
# live-object entry points
# ---------------------------------------------------------------------------

def test_lint_class_on_live_turnstile():
    from repro.processes.routing import Turnstile

    findings = lint_class(Turnstile)
    assert findings, "Turnstile's wait_any_readable must be reported"
    assert all(f.severity == "declared" for f in findings)
    assert all(f.subject.startswith("Turnstile") for f in findings)


def test_lint_class_on_clean_process():
    from repro.processes.arithmetic import Add

    assert lint_class(Add) == []


def test_lint_callable_farm_function():
    def task(x):
        import random
        return x * random.random()

    findings = lint_callable(task)
    assert rules(findings) == ["random"]


def test_lint_callable_pure_function():
    def task(x):
        return x * x

    assert lint_callable(task) == []


def test_non_process_classes_ignored():
    findings = lint(PRELUDE + """
class Helper:
    def poll_loop(self):
        return self.ch.occupancy()
""")
    assert findings == []


def test_process_subclass_chain_resolved():
    # B derives from a same-module Process subclass: still linted
    findings = lint(PRELUDE + """
class A(IterativeProcess):
    def step(self):
        pass

class B(A):
    def step(self):
        n = self.source.channel.occupancy()
""")
    assert rules(findings) == ["poll"]
