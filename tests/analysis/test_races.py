"""Shared-state race detector: object-capture graph over live processes."""

import threading
from dataclasses import dataclass

from repro.analysis.races import detect_races, race_findings
from repro.kpn.network import Network
from repro.processes.sinks import Collect
from repro.processes.sources import FromIterable
from repro.processes.transforms import MapProcess


def two_collectors(into_a, into_b):
    net = Network(name="race-test")
    c1 = net.channel(name="c1")
    c2 = net.channel(name="c2")
    net.add(Collect(c1.get_input_stream(), into_a, name="k1"))
    net.add(Collect(c2.get_input_stream(), into_b, name="k2"))
    return net


# ---------------------------------------------------------------------------
# true positives
# ---------------------------------------------------------------------------

def test_shared_list_reported():
    shared = []
    races = detect_races(two_collectors(shared, shared))
    assert len(races) == 1
    race = races[0]
    assert race.type_name == "list"
    assert set(race.processes) == {"k1", "k2"}
    assert race.paths["k1"] == "k1.into"


def test_shared_dict_reported_through_closure():
    table = {}
    net = Network()
    ch1, ch2, o1, o2 = (net.channel(name=n) for n in "abcd")

    def memo1(x):
        return table.setdefault(x, x * 2)

    def memo2(x):
        return table.setdefault(x, x * 3)

    net.add(MapProcess(ch1.get_input_stream(), o1.get_output_stream(),
                       memo1, name="m1"))
    net.add(MapProcess(ch2.get_input_stream(), o2.get_output_stream(),
                       memo2, name="m2"))
    net.add(FromIterable(ch1.get_output_stream(), [1], name="s1"))
    net.add(FromIterable(ch2.get_output_stream(), [2], name="s2"))
    net.add(Collect(o1.get_input_stream(), [], name="k1"))
    net.add(Collect(o2.get_input_stream(), [], name="k2"))
    races = detect_races(net)
    assert len(races) == 1
    assert races[0].type_name == "dict"
    assert set(races[0].processes) == {"m1", "m2"}


def test_shared_mutable_instance_reported():
    class Counter:
        def __init__(self):
            self.n = 0

    shared = Counter()
    net = Network()
    ch1, ch2, o1, o2 = (net.channel(name=n) for n in "abcd")

    def bump1(x):
        shared.n += 1
        return x

    def bump2(x):
        shared.n += 1
        return x

    net.add(MapProcess(ch1.get_input_stream(), o1.get_output_stream(),
                       bump1, name="m1"))
    net.add(MapProcess(ch2.get_input_stream(), o2.get_output_stream(),
                       bump2, name="m2"))
    races = detect_races(net)
    assert any(r.type_name == "Counter" for r in races)


def test_race_findings_are_errors():
    shared = []
    findings = race_findings(two_collectors(shared, shared))
    assert len(findings) == 1
    assert findings[0].rule == "shared-state"
    assert findings[0].severity == "error"
    assert findings[0].analysis == "races"
    assert "k1" in findings[0].message and "k2" in findings[0].message


# ---------------------------------------------------------------------------
# true negatives
# ---------------------------------------------------------------------------

def test_separate_lists_clean():
    assert detect_races(two_collectors([], [])) == []


def test_channels_and_streams_exempt():
    # every real network shares channel infrastructure by design
    net = Network()
    ch = net.channel(name="c")
    net.add(FromIterable(ch.get_output_stream(), [1, 2, 3], name="src"))
    net.add(Collect(ch.get_input_stream(), [], name="snk"))
    assert detect_races(net) == []


def test_locks_exempt():
    lock = threading.Lock()
    net = Network()
    ch1, ch2, o1, o2 = (net.channel(name=n) for n in "abcd")

    def f1(x):
        with lock:
            return x

    def f2(x):
        with lock:
            return x

    net.add(MapProcess(ch1.get_input_stream(), o1.get_output_stream(),
                       f1, name="m1"))
    net.add(MapProcess(ch2.get_input_stream(), o2.get_output_stream(),
                       f2, name="m2"))
    assert detect_races(net) == []


def test_frozen_dataclass_and_tuple_exempt():
    @dataclass(frozen=True)
    class Config:
        scale: int

    cfg = Config(3)
    table = (1, 2, 3)
    net = Network()
    ch1, ch2, o1, o2 = (net.channel(name=n) for n in "abcd")

    def f1(x):
        return x * cfg.scale + table[0]

    def f2(x):
        return x * cfg.scale + table[1]

    net.add(MapProcess(ch1.get_input_stream(), o1.get_output_stream(),
                       f1, name="m1"))
    net.add(MapProcess(ch2.get_input_stream(), o2.get_output_stream(),
                       f2, name="m2"))
    assert detect_races(net) == []


def test_shared_codec_singletons_exempt():
    # every LONG-typed process holds the same module-level codec: that is
    # fine (codecs are stateless and marked __kpn_shared_ok__)
    net = Network()
    ch = net.channel(name="c")
    mid = net.channel(name="m")
    net.add(FromIterable(ch.get_output_stream(), [1], name="src"))
    net.add(MapProcess(ch.get_input_stream(), mid.get_output_stream(),
                       abs, name="map"))
    net.add(Collect(mid.get_input_stream(), [], name="snk"))
    assert detect_races(net) == []


def test_shared_ok_marker_exempts_custom_class():
    class Registry:
        __kpn_shared_ok__ = True

        def __init__(self):
            self.entries = {}

    shared = Registry()
    net = Network()
    ch1, ch2, o1, o2 = (net.channel(name=n) for n in "abcd")

    def f1(x):
        return shared.entries.get(x, x)

    def f2(x):
        return shared.entries.get(x, x)

    net.add(MapProcess(ch1.get_input_stream(), o1.get_output_stream(),
                       f1, name="m1"))
    net.add(MapProcess(ch2.get_input_stream(), o2.get_output_stream(),
                       f2, name="m2"))
    assert detect_races(net) == []


def test_farm_cloned_state_clean():
    # the parallel-farm idiom: every worker gets its OWN copy of the
    # mutable state, so nothing is reachable from two processes
    net = Network()
    chans = [net.channel(name=f"c{i}") for i in range(3)]
    outs = [net.channel(name=f"o{i}") for i in range(3)]
    for i, (ci, oi) in enumerate(zip(chans, outs)):
        state = {"seen": 0}  # cloned per worker

        def work(x, state=state):
            state["seen"] += 1
            return x

        net.add(MapProcess(ci.get_input_stream(), oi.get_output_stream(),
                           work, name=f"w{i}"))
    assert detect_races(net) == []
