"""Static deadlock and boundedness proofs over built networks."""

import pytest

from repro.analysis.graphproofs import graph_findings, prove_graph
from repro.kpn.checker import GraphConsistencyError, check_network
from repro.kpn.network import Network
from repro.processes.networks import (fibonacci, hamming, modulo_merge,
                                      newton_sqrt, primes)
from repro.processes.sinks import Collect
from repro.processes.sources import FromIterable
from repro.processes.transforms import Cons, Scale


def zero_token_loop():
    """Two Scales feeding each other: strict reads, no initial tokens."""
    net = Network(name="dead-loop")
    a = net.channel(name="a")
    b = net.channel(name="b")
    net.add(Scale(a.get_input_stream(), b.get_output_stream(), 2, name="s1"))
    net.add(Scale(b.get_input_stream(), a.get_output_stream(), 3, name="s2"))
    return net


def seeded_loop():
    """The same loop broken by a Cons whose deferred tail is the feedback."""
    net = Network(name="seeded-loop")
    seed = net.channel(name="seed")
    joined = net.channel(name="joined")
    fb = net.channel(name="fb")
    net.add(FromIterable(seed.get_output_stream(), [1], name="seed-src"))
    net.add(Cons(seed.get_input_stream(), fb.get_input_stream(),
                 joined.get_output_stream(), name="cons"))
    net.add(Scale(joined.get_input_stream(), fb.get_output_stream(), 2,
                  name="scale"))
    return net


# ---------------------------------------------------------------------------
# deadlock proofs
# ---------------------------------------------------------------------------

def test_zero_token_cycle_proved_deadlocked():
    proof = prove_graph(zero_token_loop())
    assert proof.has_directed_cycle
    assert proof.proved_deadlocks, "strict zero-token loop must be proved dead"
    cycle = proof.proved_deadlocks[0]
    assert set(cycle.processes) == {"s1", "s2"}


def test_deadlock_reported_as_error_finding():
    findings = graph_findings(zero_token_loop())
    dead = [f for f in findings if f.rule == "proved-deadlock"]
    assert len(dead) == 1
    assert dead[0].severity == "error"


def test_checker_surfaces_proved_deadlock():
    issues = check_network(zero_token_loop())
    assert any(i.code == "proved-deadlock" and i.severity == "error"
               for i in issues)
    with pytest.raises(GraphConsistencyError):
        check_network(zero_token_loop(), strict=True)


def test_deferred_tail_breaks_deadlock():
    proof = prove_graph(seeded_loop())
    assert proof.has_directed_cycle
    assert not proof.proved_deadlocks
    assert all(c.verdict == "live" for c in proof.cycles)


# ---------------------------------------------------------------------------
# boundedness proofs over the paper's figure networks
# ---------------------------------------------------------------------------

def test_fibonacci_proved_bounded():
    proof = prove_graph(fibonacci(10).network)
    assert proof.has_undirected_cycle
    assert proof.bounded, proof.bounded_reason
    assert "token" in proof.bounded_reason


def test_newton_proved_bounded():
    proof = prove_graph(newton_sqrt(2.0).network)
    assert proof.bounded, proof.bounded_reason


def test_primes_proved_bounded_acyclic():
    proof = prove_graph(primes(count=10).network)
    assert not proof.has_undirected_cycle
    assert proof.bounded
    assert "section 3.5" in proof.bounded_reason


def test_hamming_honestly_unproved():
    # OrderedMerge carries no rate-balance declaration because its relative
    # input occupancies genuinely grow: a proof here would be unsound
    proof = prove_graph(hamming(10).network)
    assert proof.has_undirected_cycle
    assert not proof.bounded
    assert "rate-balance" in proof.bounded_reason


def test_fig13_honestly_unproved():
    # the modulo-merge graph deadlocks at small fixed capacities (the
    # paper's Figure 13 motivation), so it must not be proved bounded
    proof = prove_graph(modulo_merge(50, 10).network)
    assert not proof.bounded


def test_seeded_loop_proved_bounded():
    proof = prove_graph(seeded_loop())
    assert proof.bounded, proof.bounded_reason


def test_bounded_findings_are_info():
    findings = graph_findings(fibonacci(10).network)
    assert [f.rule for f in findings] == ["proved-bounded"]
    assert findings[0].severity == "info"


# ---------------------------------------------------------------------------
# Network.start(lint=True) pre-flight
# ---------------------------------------------------------------------------

def test_preflight_rejects_proved_deadlock():
    with pytest.raises(GraphConsistencyError, match="proved-deadlock"):
        zero_token_loop().start(lint=True)


def test_preflight_rejects_shared_state():
    shared = []
    net = Network()
    c1 = net.channel(name="c1")
    c2 = net.channel(name="c2")
    net.add(FromIterable(c1.get_output_stream(), [1], name="s1"))
    net.add(FromIterable(c2.get_output_stream(), [2], name="s2"))
    net.add(Collect(c1.get_input_stream(), shared, name="k1"))
    net.add(Collect(c2.get_input_stream(), shared, name="k2"))
    with pytest.raises(GraphConsistencyError, match="shared-state"):
        net.start(lint=True)


def test_preflight_passes_clean_network_and_runs():
    built = fibonacci(5)
    assert built.network.run(timeout=60, lint=True)
    assert built.results == [1, 1, 2, 3, 5]
