"""The linter self-hosted over this repo's own process library.

The CI gate: ``repro lint src/repro/processes examples`` must be
*clean and sharp* — findings appear exactly inside the components the
library explicitly declares ``@nondeterminate`` (today: Turnstile's
arrival-order merge) and nowhere else.  A new polling loop, clock read,
or module-global mutation anywhere in the library turns this red.
"""

import os

from repro.analysis.astlint import lint_paths

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
PROCESSES = os.path.join(REPO, "src", "repro", "processes")
EXAMPLES = os.path.join(REPO, "examples")


def test_process_library_clean_and_sharp():
    findings = lint_paths([PROCESSES])
    assert findings, "the declared-nondeterminate Turnstile must be reported"
    for f in findings:
        assert f.severity == "declared", f
        assert f.subject.startswith("Turnstile"), f
    assert {f.rule for f in findings} == {"poll"}


def test_examples_clean():
    findings = lint_paths([EXAMPLES])
    failing = [f for f in findings if f.severity in ("error", "warning")]
    assert failing == []


def test_analysis_package_itself_clean():
    # the analyzer contains no process classes, so linting it is vacuous —
    # but it must not crash on its own source (visitor edge cases)
    analysis = os.path.join(REPO, "src", "repro", "analysis")
    assert lint_paths([analysis]) == []
