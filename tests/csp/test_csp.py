"""CSP runtime: rendezvous, ALT, poison propagation, and the farm."""

import threading
import time

import pytest

from repro.csp import (Alternation, CSPProcess, InlineCSP, ParallelCSP,
                       PoisonError, SyncChannel, csp_farm)
from repro.parallel import (CallableTask, FactorConsumerResult,
                            FactorProducerTask, RangeProducerTask,
                            make_weak_key, run_farm)

from tests.conftest import start_thread


# ---------------------------------------------------------------------------
# SyncChannel rendezvous semantics
# ---------------------------------------------------------------------------

def test_rendezvous_transfers_value():
    ch = SyncChannel()
    got = []
    t = start_thread(lambda: got.append(ch.read()))
    ch.write(42)
    t.join(timeout=10)
    assert got == [42]


def test_write_blocks_until_read():
    ch = SyncChannel()
    done = threading.Event()

    def writer():
        ch.write("x")
        done.set()

    start_thread(writer)
    time.sleep(0.05)
    assert not done.is_set(), "write completed without a rendezvous"
    assert ch.read() == "x"
    assert done.wait(timeout=10)


def test_read_blocks_until_write():
    ch = SyncChannel()
    got = []
    t = start_thread(lambda: got.append(ch.read()))
    time.sleep(0.05)
    assert got == []
    ch.write(1)
    t.join(timeout=10)
    assert got == [1]


def test_fifo_order_across_rendezvous():
    ch = SyncChannel()
    got = []

    def reader():
        for _ in range(50):
            got.append(ch.read())

    t = start_thread(reader)
    for i in range(50):
        ch.write(i)
    t.join(timeout=10)
    assert got == list(range(50))
    assert ch.transfers == 50


# ---------------------------------------------------------------------------
# poison
# ---------------------------------------------------------------------------

def test_poison_wakes_blocked_reader():
    ch = SyncChannel()
    errors = []

    def reader():
        try:
            ch.read()
        except PoisonError as exc:
            errors.append(exc)

    t = start_thread(reader)
    time.sleep(0.05)
    ch.poison()
    t.join(timeout=10)
    assert len(errors) == 1


def test_poison_wakes_blocked_writer():
    ch = SyncChannel()
    errors = []

    def writer():
        try:
            ch.write(1)
        except PoisonError as exc:
            errors.append(exc)

    t = start_thread(writer)
    time.sleep(0.05)
    ch.poison()
    t.join(timeout=10)
    assert len(errors) == 1


def test_operations_after_poison_raise():
    ch = SyncChannel()
    ch.poison()
    with pytest.raises(PoisonError):
        ch.write(1)
    with pytest.raises(PoisonError):
        ch.read()
    ch.poison()  # idempotent


# ---------------------------------------------------------------------------
# Alternation
# ---------------------------------------------------------------------------

def test_alt_returns_ready_channel():
    a, b = SyncChannel("a"), SyncChannel("b")
    start_thread(lambda: b.write("bee"))
    time.sleep(0.05)
    alt = Alternation([a, b])
    assert alt.select(timeout=5) == 1
    assert b.read() == "bee"
    alt.close()


def test_alt_timeout():
    alt = Alternation([SyncChannel()])
    assert alt.select(timeout=0.05) is None
    alt.close()


def test_alt_fair_rotation():
    """Two always-ready channels must both get selected."""
    a, b = SyncChannel("a"), SyncChannel("b")

    def feeder(ch):
        try:
            for i in range(100):
                ch.write(i)
        except PoisonError:
            pass

    start_thread(feeder, a)
    start_thread(feeder, b)
    alt = Alternation([a, b])
    picks = []
    for _ in range(20):
        i = alt.select(timeout=5)
        picks.append(i)
        [a, b][i].read()
    assert set(picks) == {0, 1}
    a.poison()
    b.poison()
    alt.close()


def test_alt_sees_poison_as_ready():
    ch = SyncChannel()
    ch.poison()
    alt = Alternation([ch])
    assert alt.select(timeout=5) == 0
    alt.close()


def test_alt_requires_channels():
    with pytest.raises(ValueError):
        Alternation([])


# ---------------------------------------------------------------------------
# processes
# ---------------------------------------------------------------------------

def test_parallel_pipeline():
    a, b = SyncChannel(), SyncChannel()
    out = []

    def source():
        for i in range(10):
            a.write(i)

    def double():
        while True:
            b.write(a.read() * 2)

    def sink():
        while True:
            out.append(b.read())

    network = ParallelCSP([
        InlineCSP(source, poisons=[a], name="src"),
        InlineCSP(double, poisons=[b], name="mid"),
        InlineCSP(sink, name="snk"),
    ])
    assert network.run(timeout=60)
    assert out == [2 * i for i in range(10)]


def test_process_failure_surfaces():
    def bad():
        raise RuntimeError("csp boom")

    with pytest.raises(RuntimeError, match="csp boom"):
        ParallelCSP([InlineCSP(bad)]).run(timeout=30)


def test_join_timeout_returns_false():
    stuck = SyncChannel()
    network = ParallelCSP([InlineCSP(lambda: stuck.read(), name="stuck")])
    network.start()
    assert network.join(timeout=0.1) is False
    stuck.poison()
    assert network.join(timeout=10)


# ---------------------------------------------------------------------------
# the farm, and KPN equivalence
# ---------------------------------------------------------------------------

def test_csp_farm_order_preserved():
    results = csp_farm(RangeProducerTask(25, lambda i: CallableTask(pow, i, 2)),
                       n_workers=4, timeout=120)
    assert results == [i * i for i in range(25)]


def test_csp_farm_early_stop():
    n, p, d = make_weak_key(bits=48, found_at_task=6, seed=13)
    results = csp_farm(FactorProducerTask(n, max_tasks=10 ** 6), n_workers=4,
                       stop_when=FactorConsumerResult.stop_when, timeout=120)
    assert results[-1].found and results[-1].p == p
    assert [r.task_index for r in results] == list(range(len(results)))


def test_csp_farm_matches_kpn_farm():
    n, p, d = make_weak_key(bits=48, found_at_task=4, seed=21)
    producer = lambda: FactorProducerTask(n, max_tasks=15)  # noqa: E731
    kpn = run_farm(producer(), n_workers=3, mode="dynamic", timeout=120)
    csp = csp_farm(producer(), n_workers=3, timeout=120)
    assert [(r.task_index, r.p, r.d) for r in kpn] == \
        [(r.task_index, r.p, r.d) for r in csp]


def test_csp_farm_single_worker():
    results = csp_farm(RangeProducerTask(8, lambda i: CallableTask(abs, -i)),
                       n_workers=1, timeout=120)
    assert results == list(range(8))


def test_csp_farm_zero_tasks():
    assert csp_farm(RangeProducerTask(0, CallableTask), n_workers=3,
                    timeout=60) == []


def test_csp_farm_with_slowdowns_balances_on_demand():
    producer = RangeProducerTask(30, lambda i: CallableTask(abs, i))
    tasks = SyncChannel  # silence linters

    # run via internals to inspect per-worker counts
    from repro.csp import farm as F

    tasks_ch = F.SyncChannel()
    requests = [F.SyncChannel() for _ in range(3)]
    replies = [F.SyncChannel() for _ in range(3)]
    results = [F.SyncChannel() for _ in range(3)]
    out = []
    workers = [F._Worker(i, requests[i], replies[i], results[i],
                         slowdown=[0.0, 0.01, 0.01][i]) for i in range(3)]
    network = F.ParallelCSP([
        F._Producer(producer, tasks_ch),
        F._Distributor(tasks_ch, requests, replies),
        *workers,
        F._Collector(results, out, None, replies),
    ])
    assert network.run(timeout=120)
    assert out == list(range(30))
    counts = [w.tasks_processed for w in workers]
    assert counts[0] == max(counts)  # the fast worker took the most
