"""Generic Producer/Worker/Consumer semantics (paper section 5.1)."""

import pytest

from repro.kpn import Network
from repro.parallel import (STOP, CallableTask, Consumer, Producer,
                            RangeProducerTask, ResultTask, Worker)


class CountdownProducerTask:
    """Emits ResultTask(k) for k = n-1 .. 0, then None."""

    def __init__(self, n):
        self.remaining = n

    def run(self):
        if self.remaining <= 0:
            return None
        self.remaining -= 1
        return ResultTask(self.remaining)


class StopAtTask:
    """Consumer task returning STOP at a trigger value."""

    def __init__(self, value, trigger):
        self.value = value
        self.trigger = trigger

    def run(self):
        return STOP if self.value == self.trigger else self.value


def farm(producer_task, producer_iterations=0, consumer_kwargs=None,
         worker=True):
    net = Network()
    t, r = net.channels_n(2)
    out = []
    kwargs = dict(collect_into=out)
    kwargs.update(consumer_kwargs or {})
    net.add(Producer(producer_task, t.get_output_stream(),
                     iterations=producer_iterations))
    if worker:
        net.add(Worker(t.get_input_stream(), r.get_output_stream()))
        net.add(Consumer(r.get_input_stream(), **kwargs))
    else:
        net.add(Consumer(t.get_input_stream(), **kwargs))
    net.run(timeout=60)
    return net, out


def test_producer_stops_on_none():
    _, out = farm(CountdownProducerTask(5), worker=False)
    # consumer runs the ResultTasks; collected values are their payloads
    assert out == [4, 3, 2, 1, 0]


def test_producer_iteration_limit():
    _, out = farm(RangeProducerTask(1000, ResultTask), producer_iterations=6,
                  worker=False)
    assert out == [0, 1, 2, 3, 4, 5]


def test_worker_runs_tasks_and_counts():
    net = Network()
    t, r = net.channels_n(2)
    out = []
    net.add(Producer(RangeProducerTask(9, lambda i: CallableTask(pow, i, 2)),
                     t.get_output_stream()))
    w = Worker(t.get_input_stream(), r.get_output_stream())
    net.add(w)
    net.add(Consumer(r.get_input_stream(), collect_into=out))
    net.run(timeout=60)
    assert out == [i * i for i in range(9)]
    assert w.tasks_processed == 9


def test_consumer_stop_sentinel_terminates_network():
    producer = RangeProducerTask(10 ** 9, lambda i: StopAtTask(i, trigger=4))
    net, out = farm(producer, worker=False)
    assert out[-1] == STOP
    assert out[:-1] == [0, 1, 2, 3]


def test_consumer_stop_when_predicate():
    producer = RangeProducerTask(10 ** 9, ResultTask)
    _, out = farm(producer, consumer_kwargs={"stop_when": lambda v: v >= 7},
                  worker=False)
    assert out == [0, 1, 2, 3, 4, 5, 6, 7]


def test_consumer_iteration_limit():
    producer = RangeProducerTask(10 ** 9, ResultTask)
    _, out = farm(producer, consumer_kwargs={"iterations": 5}, worker=False)
    assert out == [0, 1, 2, 3, 4]


class Bare:
    """A value object with no run() method."""

    def __init__(self, i):
        self.i = i

    def __eq__(self, other):
        return isinstance(other, Bare) and other.i == self.i


def test_consumer_accepts_bare_values():
    """Objects without run() are their own result."""
    producer = RangeProducerTask(3, Bare)
    _, out = farm(producer, worker=False)
    assert out == [Bare(0), Bare(1), Bare(2)]


def test_worker_slowdown_delays_but_preserves_results():
    import time

    net = Network()
    t, r = net.channels_n(2)
    out = []
    net.add(Producer(RangeProducerTask(5, ResultTask), t.get_output_stream()))
    net.add(Worker(t.get_input_stream(), r.get_output_stream(),
                   slowdown=0.01))
    net.add(Consumer(r.get_input_stream(), collect_into=out))
    t0 = time.perf_counter()
    net.run(timeout=60)
    assert time.perf_counter() - t0 >= 0.05
    # ResultTask.run returns the payload; worker result is the payload,
    # which has no run() -> consumer collects it bare
    assert out == [0, 1, 2, 3, 4]


def test_worker_getstate_resets_counter():
    net = Network()
    t, r = net.channels_n(2)
    w = Worker(t.get_input_stream(), r.get_output_stream())
    w.tasks_processed = 7
    assert w.__getstate__()["tasks_processed"] == 0


def test_early_stop_cascades_to_producer_and_worker():
    """Consumer STOP must terminate the whole farm ('unnecessary
    computation ... but all of the processes do terminate')."""
    net = Network()
    t, r = net.channels_n(2, capacity=256)
    out = []
    net.add(Producer(RangeProducerTask(10 ** 9, lambda i: CallableTask(abs, i)),
                     t.get_output_stream(), name="P"))
    net.add(Worker(t.get_input_stream(), r.get_output_stream(), name="W"))
    net.add(Consumer(r.get_input_stream(), collect_into=out,
                     stop_when=lambda v: v >= 3, name="C"))
    assert net.run(timeout=60)  # must not hang on the "infinite" producer
    assert out[:4] == [0, 1, 2, 3]
