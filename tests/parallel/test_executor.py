"""The multicore compute plane: executor resolution, the process pool's
frame protocol and crash-retry contract, and farm integration.

Pool tests run real child interpreters; they use size-1/2 pools to keep
CI cheap and are spawn-safe (children are fresh ``python -m`` processes,
so nothing here depends on pytest state — these tests pass under
``-p no:cacheprovider`` too, which the CI smoke job uses).
"""

import os
import time

import pytest

from repro.errors import RemoteError
from repro.parallel.executor import (EXECUTOR_KINDS, InlineExecutor,
                                     ProcessPool, TaskExecutor,
                                     ThreadExecutor, default_pool_size,
                                     resolve_executor, shared_executor)
from repro.parallel.tasks import CallableTask, RangeProducerTask
from repro.parallel.farm import run_farm
from repro.telemetry.core import TELEMETRY


def square_producer(n):
    return RangeProducerTask(n, lambda i: CallableTask(pow, i, 2))


# ---------------------------------------------------------------------------
# spec resolution and env knobs
# ---------------------------------------------------------------------------

def test_resolve_default_is_inline():
    assert resolve_executor(None).kind == "inline"
    assert resolve_executor("inline") is resolve_executor(None)


def test_resolve_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "thread")
    assert resolve_executor(None).kind == "thread"
    monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
    with pytest.raises(ValueError, match="bogus"):
        resolve_executor(None)


def test_resolve_instance_passthrough():
    ex = InlineExecutor()
    assert resolve_executor(ex) is ex


def test_shared_executors_are_singletons():
    a = shared_executor("thread")
    b = shared_executor("thread", size=99)  # size ignored after creation
    assert a is b and isinstance(a, ThreadExecutor)


def test_pool_size_env(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_SIZE", "3")
    assert default_pool_size() == 3
    monkeypatch.setenv("REPRO_POOL_SIZE", "0")
    with pytest.raises(ValueError):
        default_pool_size()
    monkeypatch.delenv("REPRO_POOL_SIZE")
    assert default_pool_size() == (os.cpu_count() or 1)


def test_inline_and_thread_run_task():
    assert InlineExecutor().run_task(CallableTask(pow, 2, 10)) == 1024
    ex = ThreadExecutor(size=1)
    try:
        assert ex.run_task(CallableTask(pow, 2, 10)) == 1024
        with pytest.raises(ZeroDivisionError):
            ex.run_task(CallableTask(lambda: 1 // 0))
    finally:
        ex.close()


# ---------------------------------------------------------------------------
# the process pool
# ---------------------------------------------------------------------------

@pytest.fixture
def pool():
    p = ProcessPool(size=2)
    yield p
    p.close()


def test_pool_round_trip(pool):
    assert pool.run_task(CallableTask(pow, 7, 3)) == 343
    futures = [pool.submit(CallableTask(pow, i, 2)) for i in range(2)]
    assert [f.result() for f in futures] == [0, 1]
    assert [pool.run_task(CallableTask(pow, i, 2)) for i in range(6)] \
        == [i * i for i in range(6)]
    stats = pool.stats()
    assert stats["kind"] == "process" and stats["tasks_completed"] == 9
    assert stats["respawns"] == 0 and stats["idle"] == 2


class _TripleTask:
    def __init__(self, x):
        self.x = x

    def run(self):
        return self.x * 3


def test_pool_ships_test_module_tasks(pool):
    # the source-shipping pickler carries this test module's classes to
    # the children without any pre-installed code (paper section 6.2)
    assert pool.run_task(_TripleTask(14)) == 42


def _boom():
    raise ValueError("kaboom")


def test_pool_error_propagates_as_remote_error(pool):
    with pytest.raises(RemoteError, match="kaboom") as info:
        pool.run_task(CallableTask(_boom))
    assert "Traceback" in str(info.value)  # remote traceback included
    # the child survives a task error: next task works
    assert pool.run_task(CallableTask(pow, 2, 2)) == 4


def test_pool_large_out_of_band_payload(pool):
    np = pytest.importorskip("numpy")
    arr = np.arange(1 << 16, dtype=np.float64)
    out = pool.run_task(CallableTask(np.multiply, arr, 2.0))
    assert out.dtype == arr.dtype and np.array_equal(out, arr * 2.0)


def _sentinel_task(sentinel):
    """Sleeps forever on the first run; returns fast once ``sentinel``
    exists — so a killed-and-retried execution is distinguishable."""
    import os
    import time

    if not os.path.exists(sentinel):
        time.sleep(120)
        return "first-run"
    return "retried"


def test_pool_survives_child_killed_mid_task(tmp_path):
    sentinel = str(tmp_path / "retry-sentinel")
    pool = ProcessPool(size=1)
    try:
        with TELEMETRY.enabled_scope():
            before = TELEMETRY.counter("parallel.pool_respawns")
            future = pool.submit(CallableTask(_sentinel_task, sentinel))
            time.sleep(0.5)  # let the child enter the task
            open(sentinel, "w").close()
            os.kill(pool.child_pids()[0], 9)
            assert future.result() == "retried"
            assert TELEMETRY.counter("parallel.pool_respawns") == before + 1
        assert pool.respawns == 1
        # the pool is fully serviceable afterwards
        assert pool.run_task(CallableTask(pow, 3, 3)) == 27
    finally:
        pool.close()


def test_pool_survives_child_killed_while_idle():
    pool = ProcessPool(size=1)
    try:
        assert pool.run_task(CallableTask(pow, 2, 3)) == 8
        os.kill(pool.child_pids()[0], 9)
        time.sleep(0.2)
        assert pool.run_task(CallableTask(pow, 2, 4)) == 16
        assert pool.respawns == 1
    finally:
        pool.close()


def test_pool_close_is_idempotent_and_kills_children():
    pool = ProcessPool(size=2)
    pids = pool.child_pids()
    pool.close()
    pool.close()
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)  # ESRCH: child really gone


# ---------------------------------------------------------------------------
# farm integration
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
def test_farm_equivalent_across_backends(backend):
    got = run_farm(square_producer(12), n_workers=2, mode="dynamic",
                   executor=backend, timeout=120)
    assert got == [i * i for i in range(12)]


def test_farm_with_explicit_pool_instance():
    pool = ProcessPool(size=1)
    try:
        got = run_farm(square_producer(6), n_workers=2, mode="static",
                       executor=pool, timeout=120)
        assert got == [i * i for i in range(6)]
        assert pool.stats()["tasks_completed"] == 6
    finally:
        pool.close()


def test_worker_getstate_drops_resolved_executor():
    from repro.kpn.channel import Channel
    from repro.parallel.generic import Worker

    ch_in, ch_out = Channel(64), Channel(64)
    w = Worker(ch_in.get_input_stream(), ch_out.get_output_stream(),
               executor=InlineExecutor())
    w.on_start()
    state = w.__getstate__()
    assert state["_exec"] is None
    # a live instance does not travel — its kind (a resolvable spec) does
    assert state["executor"] == "inline"
    w2 = Worker(ch_in.get_input_stream(), ch_out.get_output_stream(),
                executor="process")
    assert w2.__getstate__()["executor"] == "process"


def test_executor_kinds_constant():
    assert set(EXECUTOR_KINDS) == {"inline", "thread", "process"}
    assert isinstance(resolve_executor("inline"), TaskExecutor)
