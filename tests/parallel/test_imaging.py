"""Block image compression workload (paper section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.imaging import (BLOCK, BlockTask, CompressedBlock,
                                    ImageProducerTask, compress_block,
                                    decompress_block, join_blocks,
                                    random_image, reassemble, split_blocks)
from repro.parallel import run_farm


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------

def test_block_codec_lossless():
    tile = random_image(BLOCK, BLOCK, seed=5)
    assert np.array_equal(decompress_block(compress_block(tile)), tile)


@given(st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_block_codec_lossless_property(seed):
    tile = random_image(BLOCK, BLOCK, seed=seed)
    assert np.array_equal(decompress_block(compress_block(tile)), tile)


def test_codec_compresses_smooth_blocks():
    smooth = np.full((BLOCK, BLOCK), 128, dtype=np.uint8)
    assert len(compress_block(smooth)) < smooth.nbytes // 4


def test_codec_handles_extreme_values():
    tile = np.zeros((BLOCK, BLOCK), dtype=np.uint8)
    tile[:, ::2] = 255
    assert np.array_equal(decompress_block(compress_block(tile)), tile)


# ---------------------------------------------------------------------------
# tiling
# ---------------------------------------------------------------------------

def test_split_join_roundtrip_exact_multiple():
    img = random_image(64, 48, seed=2)
    blocks = split_blocks(img)
    assert len(blocks) == (64 // 16) * (48 // 16)
    assert np.array_equal(join_blocks(blocks, 64, 48), img)


@given(st.integers(min_value=1, max_value=70),
       st.integers(min_value=1, max_value=70))
@settings(max_examples=30, deadline=None)
def test_split_join_roundtrip_any_shape(h, w):
    img = random_image(max(h, 8), max(w, 8), seed=h * 100 + w)[:h, :w]
    blocks = split_blocks(img)
    assert np.array_equal(join_blocks(blocks, h, w), img)


def test_blocks_are_padded_to_full_size():
    img = random_image(20, 20, seed=1)
    for tile in split_blocks(img):
        assert tile.shape == (BLOCK, BLOCK)


# ---------------------------------------------------------------------------
# tasks and producer
# ---------------------------------------------------------------------------

def test_block_task_chain():
    img = random_image(16, 16, seed=4)
    task = BlockTask(0, img)
    compressed = task.run()
    assert isinstance(compressed, CompressedBlock)
    index, payload = compressed.run()
    assert index == 0
    assert np.array_equal(decompress_block(payload), img)


def test_producer_emits_all_blocks_then_none():
    img = random_image(32, 48, seed=6)
    producer = ImageProducerTask(img)
    tasks = []
    while (t := producer.run()) is not None:
        tasks.append(t)
    assert [t.index for t in tasks] == list(range(2 * 3))


# ---------------------------------------------------------------------------
# parallel end-to-end
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode,n_workers", [
    ("pipeline", 1), ("static", 3), ("dynamic", 4)])
def test_parallel_compression_lossless(mode, n_workers):
    img = random_image(48, 64, seed=8)
    collected = run_farm(ImageProducerTask(img), n_workers=n_workers,
                         mode=mode, timeout=120)
    restored = reassemble(collected, *img.shape)
    assert np.array_equal(restored, img)


def test_reassemble_rejects_out_of_order():
    img = random_image(32, 32, seed=9)
    collected = run_farm(ImageProducerTask(img), n_workers=2, mode="dynamic",
                         timeout=120)
    swapped = [collected[1], collected[0]] + collected[2:]
    with pytest.raises(AssertionError, match="out of order"):
        reassemble(swapped, *img.shape)


def test_parallel_matches_sequential_compression():
    img = random_image(48, 48, seed=10)
    sequential = [(i, compress_block(b))
                  for i, b in enumerate(split_blocks(img))]
    parallel = run_farm(ImageProducerTask(img), n_workers=3, mode="dynamic",
                        timeout=120)
    assert parallel == sequential
