"""``FarmHandle.run(timeout=...)``: a farm that cannot finish in time is
torn down, not abandoned — the timeout fires, the network shuts down into
the normal cascading-termination path, and neither KPN threads nor pool
children leak past the handle."""

import os
import time

from repro.parallel.executor import ProcessPool
from repro.parallel.farm import build_farm
from repro.parallel.tasks import CallableTask, RangeProducerTask


def _sleep_producer(n, seconds):
    return RangeProducerTask(n, lambda i: CallableTask(time.sleep, seconds))


def _wait_threads_gone(network, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if not network.live_threads():
            return True
        time.sleep(0.05)
    return False


def test_timeout_fires_and_network_shuts_down():
    handle = build_farm(_sleep_producer(8, 1.0), n_workers=1, mode="dynamic")
    t0 = time.monotonic()
    results = handle.run(timeout=0.3)
    elapsed = time.monotonic() - t0
    # the run returned promptly (not after the ~8s the farm would need)
    assert elapsed < 5.0
    assert len(results) < 8
    # every process thread terminated through the shutdown cascade
    assert _wait_threads_gone(handle.network), \
        f"leaked threads: {[t.name for t in handle.network.live_threads()]}"


def test_timeout_with_process_pool_leaves_pool_serviceable():
    pool = ProcessPool(size=1)
    try:
        handle = build_farm(_sleep_producer(8, 1.0), n_workers=1,
                            mode="dynamic", executor=pool)
        handle.run(timeout=0.3)
        assert _wait_threads_gone(handle.network)
        # the farm's teardown must not close a shared/caller-owned pool:
        # its child is alive and still takes work
        (pid,) = pool.child_pids()
        os.kill(pid, 0)  # raises if the child leaked/died
        assert pool.run_task(CallableTask(pow, 2, 5)) == 32
    finally:
        pool.close()
    # ... and closing the pool reaps the child
    with_pid_gone = False
    for _ in range(50):
        try:
            os.kill(pid, 0)
        except OSError:
            with_pid_gone = True
            break
        time.sleep(0.05)
    assert with_pid_gone


def test_completed_run_is_unaffected_by_timeout_path():
    handle = build_farm(
        RangeProducerTask(6, lambda i: CallableTask(pow, i, 2)),
        n_workers=2, mode="static")
    results = handle.run(timeout=60)
    assert results == [i * i for i in range(6)]
    assert _wait_threads_gone(handle.network)
