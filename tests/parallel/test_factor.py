"""Number theory and factorization tasks (paper section 5.2)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.factor import (DEFAULT_BATCH, FactorProducerTask,
                                   FactorResult, FactorWorkerTask,
                                   factor_search_sequential, is_probable_prime,
                                   make_weak_key, random_prime,
                                   solve_difference)

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                59, 61, 67, 71, 73, 79, 83, 89, 97]


# ---------------------------------------------------------------------------
# primality
# ---------------------------------------------------------------------------

def test_small_primes_accepted():
    for p in SMALL_PRIMES:
        assert is_probable_prime(p), p


def test_small_composites_rejected():
    composites = sorted(set(range(4, 100)) - set(SMALL_PRIMES))
    for c in composites:
        assert not is_probable_prime(c), c


def test_edge_cases():
    assert not is_probable_prime(0)
    assert not is_probable_prime(1)
    assert not is_probable_prime(-7)


@given(st.integers(min_value=2, max_value=10 ** 6))
@settings(max_examples=200, deadline=None)
def test_miller_rabin_matches_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        return all(n % d for d in range(2, math.isqrt(n) + 1))

    assert is_probable_prime(n) == trial(n)


def test_carmichael_numbers_rejected():
    for c in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
        assert not is_probable_prime(c), c


@pytest.mark.parametrize("bits", [8, 16, 32, 64, 128])
def test_random_prime_bit_length(bits):
    import random

    p = random_prime(bits, random.Random(1))
    assert p.bit_length() == bits
    assert is_probable_prime(p)


# ---------------------------------------------------------------------------
# solve_difference
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=10 ** 9),
       st.integers(min_value=0, max_value=10 ** 4).map(lambda d: 2 * d))
@settings(max_examples=100, deadline=None)
def test_solve_difference_finds_planted_factor(p, d):
    n = p * (p + d)
    assert solve_difference(n, d) == p


def test_solve_difference_rejects_wrong_difference():
    p, d = 101, 4
    n = p * (p + d)
    assert solve_difference(n, d + 2) is None
    assert solve_difference(n, d - 2) is None


def test_solve_difference_non_square_discriminant():
    assert solve_difference(7, 0) is None  # 7 is prime, not a square


def test_solve_difference_exact_square_n():
    assert solve_difference(49, 0) == 7


@given(st.integers(min_value=2, max_value=10 ** 6),
       st.integers(min_value=0, max_value=100).map(lambda d: 2 * d))
@settings(max_examples=100, deadline=None)
def test_solve_difference_never_false_positive(n, d):
    p = solve_difference(n, d)
    if p is not None:
        assert p * (p + d) == n


# ---------------------------------------------------------------------------
# make_weak_key placement
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("task_index", [0, 1, 5, 17])
def test_weak_key_lands_in_requested_task(task_index):
    n, p, d = make_weak_key(bits=40, found_at_task=task_index, seed=3)
    assert p * (p + d) == n
    assert d // (2 * DEFAULT_BATCH) == task_index


def test_weak_key_even_difference():
    _, _, d = make_weak_key(bits=32, found_at_task=2, seed=9)
    assert d % 2 == 0


def test_weak_key_deterministic_with_seed():
    assert make_weak_key(bits=32, found_at_task=1, seed=5) == \
        make_weak_key(bits=32, found_at_task=1, seed=5)


# ---------------------------------------------------------------------------
# tasks
# ---------------------------------------------------------------------------

def test_worker_task_finds_factor_in_batch():
    n, p, d = make_weak_key(bits=40, found_at_task=0, seed=1)
    result = FactorWorkerTask(n, 0, d_start=0).run()
    assert result.found and result.p == p and result.d == d


def test_worker_task_misses_outside_batch():
    n, p, d = make_weak_key(bits=40, found_at_task=3, seed=1)
    result = FactorWorkerTask(n, 0, d_start=0).run()
    assert not result.found


def test_producer_emits_contiguous_batches():
    producer = FactorProducerTask(1234567, batch=8, max_tasks=4)
    tasks = []
    while (t := producer.run()) is not None:
        tasks.append(t)
    assert [t.d_start for t in tasks] == [0, 16, 32, 48]
    assert all(t.d_count == 8 for t in tasks)


def test_producer_unlimited_keeps_going():
    producer = FactorProducerTask(99, batch=4)
    for _ in range(100):
        assert producer.run() is not None


def test_sequential_search_finds_planted_key():
    n, p, d = make_weak_key(bits=48, found_at_task=7, seed=11)
    result = factor_search_sequential(n)
    assert result.found and result.p == p and result.task_index == 7


def test_sequential_search_respects_max_tasks():
    n, p, d = make_weak_key(bits=48, found_at_task=10, seed=11)
    assert factor_search_sequential(n, max_tasks=5) is None


def test_factor_result_consumer_role():
    r = FactorResult(0, 0, 32, p=7, d=0)
    assert r.run() is r
    assert r.found
    assert not FactorResult(1, 64, 32).found
