"""MetaDynamic under stress: many workers, jittered speeds, volume."""

import random

import pytest

from repro.parallel import (CallableTask, RangeProducerTask, build_farm,
                            run_farm)


def test_dynamic_16_workers_200_tasks_ordered():
    got = run_farm(RangeProducerTask(200, lambda i: CallableTask(pow, i, 2)),
                   n_workers=16, mode="dynamic", timeout=300)
    assert got == [i * i for i in range(200)]


def test_dynamic_random_jitter_still_ordered():
    rng = random.Random(7)
    slowdowns = [rng.uniform(0, 0.004) for _ in range(8)]
    got = run_farm(RangeProducerTask(80, lambda i: CallableTask(abs, -i)),
                   n_workers=8, mode="dynamic", slowdowns=slowdowns,
                   timeout=300)
    assert got == list(range(80))


def test_static_vs_dynamic_same_results_at_scale():
    outs = {}
    for mode in ("static", "dynamic"):
        outs[mode] = run_farm(
            RangeProducerTask(150, lambda i: CallableTask(pow, i, 3)),
            n_workers=12, mode=mode, timeout=300)
    assert outs["static"] == outs["dynamic"] == [i ** 3 for i in range(150)]


def test_dynamic_utilizes_every_worker_at_volume():
    handle = build_farm(RangeProducerTask(120, lambda i: CallableTask(abs, i)),
                        n_workers=10, mode="dynamic")
    handle.run(timeout=300)
    counts = [w.tasks_processed for w in handle.harness.workers]
    assert sum(counts) == 120
    assert all(c >= 1 for c in counts)


def test_repeated_dynamic_runs_identical():
    results = []
    for _ in range(4):
        results.append(run_farm(
            RangeProducerTask(40, lambda i: CallableTask(pow, i, 2)),
            n_workers=6, mode="dynamic", timeout=300))
    assert all(r == results[0] for r in results)


@pytest.mark.parametrize("capacity", [256, 4096])
def test_dynamic_small_channels_no_deadlock(capacity):
    got = run_farm(RangeProducerTask(60, lambda i: CallableTask(abs, i)),
                   n_workers=5, mode="dynamic", timeout=300,
                   channel_capacity=capacity)
    assert got == list(range(60))
