"""MetaStatic / MetaDynamic equivalence and load-balancing behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kpn import Network
from repro.parallel import (CallableTask, FactorConsumerResult,
                            FactorProducerTask, FactorResult,
                            RangeProducerTask, build_farm, make_weak_key,
                            run_farm)


def tag_producer(n):
    return RangeProducerTask(n, lambda i: CallableTask(pow, i, 2))


# ---------------------------------------------------------------------------
# equivalence: "from the point of view of the producer and consumer
# processes, equivalent to a single worker"
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["static", "dynamic"])
@pytest.mark.parametrize("n_workers", [1, 2, 3, 5])
def test_meta_equals_pipeline(mode, n_workers):
    expected = run_farm(tag_producer(20), mode="pipeline", timeout=60)
    got = run_farm(tag_producer(20), n_workers=n_workers, mode=mode,
                   timeout=60)
    assert got == expected == [i * i for i in range(20)]


@given(st.integers(min_value=0, max_value=40),
       st.integers(min_value=1, max_value=6),
       st.sampled_from(["static", "dynamic"]))
@settings(max_examples=15, deadline=None)
def test_meta_order_preservation_property(n_tasks, n_workers, mode):
    got = run_farm(tag_producer(n_tasks), n_workers=n_workers, mode=mode,
                   timeout=120)
    assert got == [i * i for i in range(n_tasks)]


def test_meta_with_heterogeneous_slowdowns_still_ordered():
    slow = [0.0, 0.01, 0.002, 0.02]
    for mode in ("static", "dynamic"):
        got = run_farm(tag_producer(24), n_workers=4, mode=mode,
                       slowdowns=slow, timeout=120)
        assert got == [i * i for i in range(24)]


# ---------------------------------------------------------------------------
# load balancing: dynamic gives fast workers more tasks
# ---------------------------------------------------------------------------

def test_static_task_counts_equal():
    handle = build_farm(tag_producer(20), n_workers=4, mode="static")
    handle.run(timeout=120)
    counts = [w.tasks_processed for w in handle.harness.workers]
    assert counts == [5, 5, 5, 5]


def test_dynamic_favours_fast_workers():
    handle = build_farm(tag_producer(60), n_workers=3, mode="dynamic",
                        slowdowns=[0.0, 0.03, 0.03])
    handle.run(timeout=120)
    counts = [w.tasks_processed for w in handle.harness.workers]
    assert sum(counts) == 60
    assert counts[0] > counts[1] and counts[0] > counts[2]


def test_dynamic_all_workers_get_initial_task():
    handle = build_farm(tag_producer(12), n_workers=4, mode="dynamic")
    handle.run(timeout=120)
    counts = [w.tasks_processed for w in handle.harness.workers]
    assert sum(counts) == 12
    assert all(c >= 1 for c in counts)


def test_fewer_tasks_than_workers():
    for mode in ("static", "dynamic"):
        got = run_farm(tag_producer(2), n_workers=5, mode=mode, timeout=60)
        assert got == [0, 1]


def test_zero_tasks():
    for mode in ("static", "dynamic"):
        assert run_farm(tag_producer(0), n_workers=3, mode=mode,
                        timeout=60) == []


# ---------------------------------------------------------------------------
# early termination through the meta compositions
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_factor_early_stop_through_meta(mode):
    n, p, d = make_weak_key(bits=48, found_at_task=6, seed=13)
    results = run_farm(FactorProducerTask(n, max_tasks=500), n_workers=4,
                       mode=mode, stop_when=FactorConsumerResult.stop_when,
                       timeout=120)
    hits = [r for r in results if isinstance(r, FactorResult) and r.found]
    assert hits and hits[0].p == p
    # results arrive in task order; the hit is the last collected value
    assert results[-1].found
    assert [r.task_index for r in results] == list(range(len(results)))


def test_farm_rejects_unknown_mode():
    with pytest.raises(ValueError):
        build_farm(tag_producer(1), mode="quantum")


def test_distribute_ships_workers_to_cluster():
    from repro.distributed import LocalCluster

    with LocalCluster(2, mode="thread") as cluster:
        got = run_farm(tag_producer(15), n_workers=3, mode="dynamic",
                       cluster=cluster, timeout=120)
        assert got == [i * i for i in range(15)]
        stats = cluster.stats()
        hosted = sum(s["processes_hosted"] for s in stats.values())
        assert hosted == 3  # all three workers went remote


def test_distribute_static_mode_through_cluster():
    from repro.distributed import LocalCluster

    with LocalCluster(2, mode="thread") as cluster:
        got = run_farm(tag_producer(10), n_workers=2, mode="static",
                       cluster=cluster, timeout=120)
        assert got == [i * i for i in range(10)]


def test_two_farms_on_one_network_get_distinct_channel_names():
    # fixed "farm-tasks"/"farm-results" names used to collide in
    # telemetry/trace labels when farms shared a Network
    net = Network(name="shared")
    build_farm(tag_producer(1), network=net)
    build_farm(tag_producer(1), network=net)
    names = [ch.name for ch in net.channels
             if "-tasks" in ch.name or "-results" in ch.name]
    assert len(names) == 4
    assert len(set(names)) == 4, f"colliding farm channel names: {names}"
