"""Task protocol helpers."""

import pickle

from repro.parallel.tasks import (STOP, CallableTask, RangeProducerTask,
                                  ResultTask, Task)


def test_callable_task_runs_with_args():
    assert CallableTask(divmod, 17, 5).run() == (3, 2)


def test_callable_task_kwargs():
    assert CallableTask(int, "ff", base=16).run() == 255


def test_callable_task_pickles():
    clone = pickle.loads(pickle.dumps(CallableTask(pow, 2, 8)))
    assert clone.run() == 256


def test_range_producer_emits_then_none():
    producer = RangeProducerTask(3, ResultTask)
    emitted = [producer.run() for _ in range(5)]
    assert [e.value for e in emitted[:3]] == [0, 1, 2]
    assert emitted[3] is None and emitted[4] is None


def test_range_producer_zero():
    assert RangeProducerTask(0, ResultTask).run() is None


def test_result_task_returns_value():
    assert ResultTask({"k": 1}).run() == {"k": 1}


def test_result_task_pickles():
    assert pickle.loads(pickle.dumps(ResultTask(9))).run() == 9


def test_task_protocol_structural():
    class Quacks:
        def run(self):
            return 1

    assert isinstance(Quacks(), Task)
    assert not isinstance(object(), Task)


def test_stop_sentinel_is_stable_across_pickle():
    assert pickle.loads(pickle.dumps(STOP)) == STOP
