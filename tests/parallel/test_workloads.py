"""Extra workloads: pi, Mandelbrot, matmul — through every farm mode."""

import math

import numpy as np
import pytest

from repro.parallel import run_farm
from repro.parallel.workloads import (MandelbrotProducerTask,
                                      MandelbrotRowTask, MatmulProducerTask,
                                      PiBatchTask, PiProducerTask,
                                      assemble_mandelbrot, assemble_matmul,
                                      estimate_pi_from_results)


# ---------------------------------------------------------------------------
# Monte Carlo pi
# ---------------------------------------------------------------------------

def test_pi_single_task_deterministic():
    a = PiBatchTask(3, 1000, seed=7).run()
    b = PiBatchTask(3, 1000, seed=7).run()
    assert (a.hits, a.samples) == (b.hits, b.samples)


def test_pi_estimate_reasonable():
    results = run_farm(PiProducerTask(20, 5000, seed=1), n_workers=4,
                       mode="dynamic", timeout=120)
    estimate = estimate_pi_from_results(results)
    assert abs(estimate - math.pi) < 0.05


def test_pi_identical_across_modes():
    outs = {}
    for mode in ("pipeline", "static", "dynamic"):
        results = run_farm(PiProducerTask(12, 2000, seed=5), n_workers=3,
                           mode=mode, timeout=120)
        outs[mode] = [(r.batch_index, r.hits) for r in results]
    assert outs["pipeline"] == outs["static"] == outs["dynamic"]


def test_pi_empty():
    assert estimate_pi_from_results([]) != estimate_pi_from_results([])  # nan


# ---------------------------------------------------------------------------
# Mandelbrot
# ---------------------------------------------------------------------------

def test_mandelbrot_row_inside_point_maxes_out():
    row_task = MandelbrotRowTask(0, 1, 1, x_range=(0.0, 0.0),
                                 y_range=(0.0, 0.0), max_iter=50)
    assert row_task.run().counts == (50,)


def test_mandelbrot_row_outside_point_escapes_fast():
    row_task = MandelbrotRowTask(0, 1, 1, x_range=(2.0, 2.0),
                                 y_range=(2.0, 2.0), max_iter=50)
    assert row_task.run().counts[0] <= 2


@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_mandelbrot_parallel_matches_sequential(mode):
    w, h = 40, 24
    sequential = [MandelbrotRowTask(r, w, h, max_iter=40).run()
                  for r in range(h)]
    parallel = run_farm(MandelbrotProducerTask(w, h, max_iter=40),
                        n_workers=4, mode=mode, timeout=180)
    img_seq = assemble_mandelbrot(sequential, w, h)
    img_par = assemble_mandelbrot(parallel, w, h)
    assert np.array_equal(img_seq, img_par)


def test_mandelbrot_missing_row_detected():
    w, h = 8, 4
    rows = [MandelbrotRowTask(r, w, h).run() for r in range(h - 1)]
    with pytest.raises(AssertionError, match="missing rows"):
        assemble_mandelbrot(rows, w, h)


def test_mandelbrot_cost_is_nonuniform():
    """Rows near the real axis take more iterations in total — the
    heterogeneous-task-cost property dynamic balancing exploits."""
    w, h = 60, 21
    totals = [sum(MandelbrotRowTask(r, w, h, max_iter=100).run().counts)
              for r in range(h)]
    assert max(totals) > 2 * min(totals)


# ---------------------------------------------------------------------------
# block matmul
# ---------------------------------------------------------------------------

def test_matmul_exact():
    rng = np.random.default_rng(3)
    a = rng.integers(-5, 5, size=(48, 40)).astype(np.int64)
    b = rng.integers(-5, 5, size=(40, 56)).astype(np.int64)
    results = run_farm(MatmulProducerTask(a, b, block=16), n_workers=4,
                       mode="dynamic", timeout=180)
    c = assemble_matmul(results, (48, 56), block=16)
    assert np.array_equal(c, a @ b)


def test_matmul_non_multiple_shapes():
    rng = np.random.default_rng(4)
    a = rng.standard_normal((37, 23))
    b = rng.standard_normal((23, 29))
    results = run_farm(MatmulProducerTask(a, b, block=16), n_workers=3,
                       mode="static", timeout=180)
    c = assemble_matmul(results, (37, 29), block=16)
    assert np.allclose(c, a @ b)


def test_matmul_dimension_mismatch():
    with pytest.raises(ValueError):
        MatmulProducerTask(np.zeros((2, 3)), np.zeros((4, 5)))


def test_matmul_task_count():
    producer = MatmulProducerTask(np.zeros((64, 8)), np.zeros((8, 48)),
                                  block=32)
    tasks = []
    while (t := producer.run()) is not None:
        tasks.append(t)
    assert len(tasks) == 2 * 2  # ceil(64/32) * ceil(48/32)
