"""TelemetryHub unit behaviour: no-op when off, thread-safe when on."""

import threading

from repro.telemetry.core import (TELEMETRY, HistogramData, TelemetryHub,
                                  parse_key, render_key)


# ---------------------------------------------------------------------------
# enable / disable
# ---------------------------------------------------------------------------

def test_disabled_hub_records_nothing():
    h = TelemetryHub()
    h.begin("x")
    h.end("x")
    h.instant("x")
    h.inc("c", 5)
    h.observe("h", 0.1)
    assert h.events() == []
    assert h.counters() == {}
    assert h.events_emitted == 0


def test_enable_disable_toggle_recording():
    h = TelemetryHub()
    h.enable()
    h.inc("c")
    h.disable()
    h.inc("c")
    assert h.counter("c") == 1


def test_enabled_scope_restores_prior_state():
    h = TelemetryHub()
    with h.enabled_scope():
        assert h.enabled
        h.inc("c")
    assert not h.enabled
    assert h.counter("c") == 1
    h.enable()
    with h.enabled_scope(reset=True):
        pass
    assert h.enabled  # restored to the enabled it had before the scope
    assert h.counter("c") == 0  # reset=True wiped it


def test_reset_keeps_enabled_flag():
    h = TelemetryHub().enable()
    h.inc("c")
    h.reset()
    assert h.enabled
    assert h.counters() == {}
    assert h.events_emitted == 0


def test_global_hub_disabled_by_default():
    # tier-1 runs without REPRO_TELEMETRY; the _no_leak fixture keeps it so
    assert not TELEMETRY.enabled


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------

def test_span_emits_matched_begin_end_on_one_thread():
    h = TelemetryHub().enable()
    with h.span("work", category="test", detail=1):
        h.instant("tick", category="test")
    phases = [(e.phase, e.name) for e in h.events()]
    assert phases == [("B", "work"), ("i", "tick"), ("E", "work")]
    b, i, e = h.events()
    assert b.tid == e.tid == threading.get_ident()
    assert b.ts <= i.ts <= e.ts
    assert b.args == {"detail": 1}


def test_ring_buffer_bounds_memory_but_counts_everything():
    h = TelemetryHub(max_events=10).enable()
    for k in range(25):
        h.instant(f"e{k}")
    assert len(h.events()) == 10
    assert h.events_emitted == 25
    assert h.events()[0].name == "e15"  # oldest kept is the 16th


def test_subscriber_sees_events_and_unsubscribe_stops_them():
    h = TelemetryHub().enable()
    seen = []
    cb = h.subscribe(seen.append)
    h.instant("one")
    h.unsubscribe(cb)
    h.instant("two")
    assert [e.name for e in seen] == ["one"]


def test_broken_subscriber_does_not_break_emission():
    h = TelemetryHub().enable()

    def boom(event):
        raise RuntimeError("subscriber bug")

    h.subscribe(boom)
    h.instant("still-recorded")
    assert [e.name for e in h.events()] == ["still-recorded"]


def test_concurrent_emit_from_many_threads_loses_nothing():
    h = TelemetryHub().enable()
    n_threads, per_thread = 8, 200

    def work():
        for _ in range(per_thread):
            h.instant("evt")
            h.inc("total")

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.events_emitted == n_threads * per_thread
    assert h.counter("total") == n_threads * per_thread


# ---------------------------------------------------------------------------
# counters / snapshot consistency
# ---------------------------------------------------------------------------

def test_counters_are_labelled_independently():
    h = TelemetryHub().enable()
    h.inc("wire.frames", 2, tag="DATA")
    h.inc("wire.frames", 1, tag="OBJ")
    assert h.counter("wire.frames", tag="DATA") == 2
    assert h.counter("wire.frames", tag="OBJ") == 1
    assert h.counter("wire.frames") == 0  # unlabelled is a distinct series


def test_counter_snapshots_are_internally_consistent_under_races():
    """Each thread bumps ``first`` strictly before ``second``; any
    lock-consistent snapshot must therefore show first >= second."""
    h = TelemetryHub().enable()
    stop = threading.Event()
    violations = []

    def writer():
        while not stop.is_set():
            h.inc("first")
            h.inc("second")

    def reader():
        while not stop.is_set():
            snap = h.counters()
            a, b = snap.get("first", 0), snap.get("second", 0)
            if a < b:
                violations.append((a, b))

    threads = [threading.Thread(target=writer) for _ in range(4)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    stop.wait(0.3)
    stop.set()
    for t in threads:
        t.join()
    assert not violations


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------

def test_histogram_summary_stats():
    hist = HistogramData()
    for v in (0.001, 0.002, 0.009):
        hist.observe(v)
    assert hist.count == 3
    assert abs(hist.total - 0.012) < 1e-12
    assert hist.min == 0.001
    assert hist.max == 0.009
    assert abs(hist.mean() - 0.004) < 1e-12
    assert sum(hist.buckets) == 3
    d = hist.as_dict()
    assert d["count"] == 3 and d["max"] == 0.009


def test_histograms_fold_into_counter_snapshot():
    h = TelemetryHub().enable()
    h.observe("task_seconds", 0.5, worker="w0")
    h.observe("task_seconds", 1.5, worker="w0")
    snap = h.counters()
    assert snap["task_seconds.count{worker=w0}"] == 2
    assert snap["task_seconds.sum{worker=w0}"] == 2.0
    assert snap["task_seconds.max{worker=w0}"] == 1.5


# ---------------------------------------------------------------------------
# key rendering
# ---------------------------------------------------------------------------

def test_render_parse_key_roundtrip():
    key = render_key("kpn.channel.bytes", (("channel", "fib-out"),))
    assert key == "kpn.channel.bytes{channel=fib-out}"
    assert parse_key(key) == ("kpn.channel.bytes", (("channel", "fib-out"),))
    assert parse_key("plain") == ("plain", ())
