"""Trace-context propagation: envelopes on the wire, flow-linked spans."""

import os
import pickle
import threading
import time

from repro.distributed.server import ComputeServer, ServerClient
from repro.parallel import CallableTask
from repro.telemetry.distributed import (TraceContext, activate,
                                         current_context,
                                         set_current_context)
from repro.telemetry.export import chrome_trace


# ---------------------------------------------------------------------------
# TraceContext itself
# ---------------------------------------------------------------------------

def test_context_roundtrips_wire_form_and_pickle():
    ctx = TraceContext.new_root()
    assert TraceContext.from_wire(ctx.to_wire()) == ctx
    assert pickle.loads(pickle.dumps(ctx.to_wire())) == ctx.to_wire()


def test_child_keeps_trace_id_changes_span_id():
    root = TraceContext.new_root()
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.span_id != root.span_id
    assert child.flow_id != root.flow_id


def test_flow_id_is_a_nonnegative_int():
    ctx = TraceContext.new_root()
    assert isinstance(ctx.flow_id, int)
    assert 0 <= ctx.flow_id < 2 ** 63


def test_activation_is_per_thread_and_restores():
    outer = TraceContext.new_root()
    seen = {}
    set_current_context(outer)
    try:
        with activate(outer.child()) as inner:
            assert current_context() is inner

            def worker():
                seen["in_thread"] = current_context()

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert current_context() is outer
        assert seen["in_thread"] is None  # contexts do not leak across threads
    finally:
        set_current_context(None)


# ---------------------------------------------------------------------------
# propagation across the RPC wire (thread-mode: client + server share a hub)
# ---------------------------------------------------------------------------

def test_rpc_call_produces_flow_linked_send_execute_spans(hub):
    server = ComputeServer(name="ctx-server").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        assert client.call(CallableTask(pow, 2, 5)) == 32
    finally:
        client.close()
        server.stop()
    events = hub.events()
    sends = [e for e in events if e.name == "rpc.send" and e.phase == "B"]
    executes = [e for e in events if e.name == "rpc.execute" and e.phase == "B"]
    assert sends and executes
    # every send span roots or continues a trace, recorded in its args
    call_send = next(e for e in sends if e.args.get("op") == "call")
    call_exec = next(e for e in executes if e.args.get("op") == "call")
    assert call_send.args["trace"] == call_exec.args["trace"]
    # the flow start (client side) and flow end (server side) share an id
    starts = {e.args["flow_id"] for e in events if e.phase == "s"}
    ends = {e.args["flow_id"] for e in events if e.phase == "f"}
    assert starts and starts == ends


class TouchFile:
    """Module-level so the source-shipping pickler can serialise it."""

    def __init__(self, path):
        self.path = path

    def run(self):
        with open(self.path, "w") as fh:
            fh.write("ran")


def test_run_op_continues_trace_into_task_thread(hub, tmp_path):
    server = ComputeServer(name="runnable-server").start()
    client = ServerClient("127.0.0.1", server.port)
    marker = str(tmp_path / "touched")
    try:
        client.run(TouchFile(marker))
        deadline = time.monotonic() + 10
        while not os.path.exists(marker):
            assert time.monotonic() < deadline, "task never ran"
            time.sleep(0.01)
    finally:
        client.close()
        server.stop()
    events = hub.events()
    send = next(e for e in events
                if e.name == "rpc.send" and e.phase == "B"
                and e.args.get("op") == "run")
    task = next(e for e in events if e.name == "task.run" and e.phase == "B")
    assert task.args["trace"] == send.args["trace"]


def test_disabled_telemetry_sends_no_envelope_and_still_works():
    server = ComputeServer(name="plain-server").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        assert client.ping() == "plain-server"
        assert client.call(CallableTask(pow, 2, 3)) == 8
    finally:
        client.close()
        server.stop()


# ---------------------------------------------------------------------------
# flow events in the Chrome export
# ---------------------------------------------------------------------------

def test_chrome_trace_renders_flow_events_with_ids(hub):
    ctx = TraceContext.new_root()
    with hub.span("send-side"):
        hub.flow("s", "rpc", flow_id=ctx.flow_id)
    with hub.span("exec-side"):
        hub.flow("f", "rpc", flow_id=ctx.flow_id)
    doc = chrome_trace(hub.events())
    start = next(i for i in doc["traceEvents"] if i["ph"] == "s")
    end = next(i for i in doc["traceEvents"] if i["ph"] == "f")
    assert start["id"] == end["id"] == ctx.flow_id
    assert end["bp"] == "e"  # binds to the enclosing slice
    assert "flow_id" not in start.get("args", {})
