"""Exporters: Chrome trace JSON, Prometheus text, cluster aggregation."""

import json

import pytest

from repro.telemetry.core import HistogramData, TelemetryHub
from repro.telemetry.export import (chrome_trace, cluster_report,
                                    merge_counters, prometheus_text,
                                    write_chrome_trace)


def _sample_hub():
    h = TelemetryHub().enable()
    with h.span("outer", category="test", step=1):
        h.instant("blip", category="test", channel="c0")
    return h


# ---------------------------------------------------------------------------
# Chrome trace
# ---------------------------------------------------------------------------

def test_chrome_trace_structure():
    h = _sample_hub()
    doc = chrome_trace(h.events(), pid=42, process_name="unit")
    assert json.loads(json.dumps(doc)) == doc  # JSON-serialisable
    items = doc["traceEvents"]
    metas = [i for i in items if i["ph"] == "M"]
    assert {"process_name", "thread_name"} <= {m["name"] for m in metas}
    assert all(m["pid"] == 42 for m in metas)
    begins = [i for i in items if i["ph"] == "B"]
    ends = [i for i in items if i["ph"] == "E"]
    instants = [i for i in items if i["ph"] == "i"]
    assert len(begins) == len(ends) == len(instants) == 1
    assert instants[0]["s"] == "t"
    assert instants[0]["args"] == {"channel": "c0"}
    # timestamps are microseconds, ordered B <= i <= E
    assert begins[0]["ts"] <= instants[0]["ts"] <= ends[0]["ts"]
    assert begins[0]["args"] == {"step": 1}


def test_write_chrome_trace_roundtrip(tmp_path):
    h = _sample_hub()
    path = str(tmp_path / "trace.json")
    assert write_chrome_trace(path, h.events()) == path
    with open(path) as fh:
        doc = json.load(fh)
    phases = [i["ph"] for i in doc["traceEvents"]]
    assert phases.count("B") == phases.count("E") == 1
    assert doc["displayTimeUnit"] == "ms"


def test_chrome_trace_defaults_to_global_hub(hub):
    hub.instant("global-blip")
    doc = chrome_trace()
    assert any(i["name"] == "global-blip" for i in doc["traceEvents"])


# ---------------------------------------------------------------------------
# Prometheus text
# ---------------------------------------------------------------------------

def test_prometheus_text_format():
    counters = {
        "wire.frames_sent{tag=DATA}": 7,
        "wire.frames_sent{tag=OBJ}": 2,
        "kpn.process.started": 3,
    }
    text = prometheus_text(counters)
    lines = text.splitlines()
    assert "# TYPE repro_wire_frames_sent counter" in lines
    assert 'repro_wire_frames_sent{tag="DATA"} 7' in lines
    assert 'repro_wire_frames_sent{tag="OBJ"} 2' in lines
    assert "repro_kpn_process_started 3" in lines
    assert text.endswith("\n")
    # every non-comment line is "name[{labels}] value"
    for line in lines:
        if not line.startswith("#"):
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name[0].isalpha()


def test_prometheus_text_empty_snapshot():
    assert prometheus_text({}) == ""


# ---------------------------------------------------------------------------
# quantiles and summary blocks
# ---------------------------------------------------------------------------

def test_histogram_quantiles_bracket_the_distribution():
    hist = HistogramData()
    for ms in range(1, 101):            # 1..100 ms, uniform
        hist.observe(ms / 1000.0)
    p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
    assert p50 <= p95 <= p99
    # log2 buckets are coarse: allow a bucket's worth of slack, but the
    # estimates must stay inside the observed range and roughly ordered
    assert 0.001 <= p50 <= 0.1
    assert p50 == pytest.approx(0.05, rel=1.0)
    assert p99 == pytest.approx(0.099, rel=1.0)
    assert hist.quantile(0.0) == pytest.approx(0.001)
    assert hist.quantile(1.0) == pytest.approx(0.1)


def test_histogram_quantile_of_empty_is_zero():
    assert HistogramData().quantile(0.5) == 0.0


def test_histogram_snapshot_roundtrip_preserves_quantiles():
    hist = HistogramData()
    for v in (0.002, 0.004, 0.008, 0.016, 0.2):
        hist.observe(v)
    clone = HistogramData.from_snapshot(hist.snapshot())
    for q in (0.5, 0.95, 0.99):
        assert clone.quantile(q) == hist.quantile(q)
    assert clone.count == hist.count and clone.total == hist.total


def test_prometheus_text_renders_summary_with_quantiles():
    hist = HistogramData()
    for v in (0.001, 0.002, 0.004, 0.008):
        hist.observe(v)
    text = prometheus_text({"rpc.latency.count": 4},
                           histograms={"rpc.latency{op=call}": hist.snapshot()})
    lines = text.splitlines()
    assert "# TYPE repro_rpc_latency summary" in lines
    for q in ("0.5", "0.95", "0.99"):
        assert any(l.startswith(f'repro_rpc_latency{{op="call",quantile="{q}"}} ')
                   for l in lines), f"missing quantile {q}"
    assert 'repro_rpc_latency_sum{op="call"} 0.015' in lines
    assert 'repro_rpc_latency_count{op="call"} 4' in lines
    # the folded flat counter for the same histogram is suppressed
    assert not any("rpc_latency_count 4" == l for l in lines)


def test_prometheus_text_defaults_include_hub_histograms(hub):
    hub.observe("kpn.step", 0.003, stage="map")
    text = prometheus_text()
    assert "# TYPE repro_kpn_step summary" in text
    assert 'quantile="0.99"' in text


# ---------------------------------------------------------------------------
# cluster aggregation
# ---------------------------------------------------------------------------

def test_merge_counters_sums_key_by_key():
    merged = merge_counters([
        {"a": 1, "b{x=1}": 2},
        {"a": 3, "c": 5},
    ])
    assert merged == {"a": 4, "b{x=1}": 2, "c": 5}


def test_cluster_report_lists_totals_and_breakdown():
    report = cluster_report({
        "alpha": {"wire.bytes_sent{tag=DATA}": 100},
        "beta": {"wire.bytes_sent{tag=DATA}": 50, "only.beta": 1},
    })
    assert "2 server(s)" in report
    assert "wire.bytes_sent{tag=DATA} = 150" in report
    assert "alpha=100" in report and "beta=50" in report
    assert "only.beta = 1" in report


def test_cluster_report_top_limits_rows():
    per = {"one": {f"k{i}": i for i in range(10)}}
    report = cluster_report(per, top=3)
    body = report.splitlines()[1:]
    assert len(body) == 3


# ---------------------------------------------------------------------------
# gauges (profiler surface)
# ---------------------------------------------------------------------------

def test_prometheus_text_renders_gauges():
    text = prometheus_text(
        counters={},
        gauges={"kpn.channel.occupancy_bytes{channel=pipe}": 96.0,
                "kpn.process.utilization{process=Sink}": 0.25})
    assert "# TYPE repro_kpn_channel_occupancy_bytes gauge" in text
    assert 'repro_kpn_channel_occupancy_bytes{channel="pipe"} 96' in text
    assert 'repro_kpn_process_utilization{process="Sink"} 0.25' in text


def test_prometheus_text_defaults_include_hub_gauges(hub):
    hub.set_gauge("kpn.channel.occupancy_bytes", 7, channel="c")
    text = prometheus_text()
    assert 'repro_kpn_channel_occupancy_bytes{channel="c"} 7' in text


def test_profile_gauges_from_snapshot():
    from repro.telemetry.export import profile_gauges

    snap = {"node": "n", "pid": 1, "t": 10.0,
            "processes": {"P": {"kind": "k", "state": "done",
                                "channel": None, "running_s": 5.0,
                                "blocked": {"read:c": 5.0},
                                "started": 0.0, "finished": 10.0}},
            "channels": {"c": {"initial_capacity": 64, "grown_to": None,
                               "grow_events": 0, "growers": [],
                               "buffered": 16, "capacity": 64,
                               "high_watermark": 48}}}
    gauges = profile_gauges(snap)
    assert gauges["kpn.channel.occupancy_bytes{channel=c}"] == 16.0
    assert gauges["kpn.channel.capacity_bytes{channel=c}"] == 64.0
    assert gauges["kpn.channel.high_watermark_bytes{channel=c}"] == 48.0
    assert gauges["kpn.process.utilization{process=P}"] == 0.5
    # renders straight through the text exporter
    text = prometheus_text(counters={}, gauges=gauges)
    assert 'repro_kpn_channel_high_watermark_bytes{channel="c"} 48' in text
