"""connect_with_retry: jittered exponential backoff + connection counters."""

import socket

import pytest

from repro.distributed.wire import connect_with_retry, retry_delays
from repro.errors import ChannelError


def _free_unbound_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


# ---------------------------------------------------------------------------
# the deterministic schedule (jitter is applied on top of this)
# ---------------------------------------------------------------------------

def test_retry_delays_double_up_to_the_cap():
    assert retry_delays(1) == []
    assert retry_delays(2, base=0.05) == [0.05]
    assert retry_delays(5, base=0.05, factor=2.0, max_delay=0.4) == \
        [0.05, 0.1, 0.2, 0.4]
    # once capped, the schedule stays flat — no unbounded waits
    sched = retry_delays(12, base=0.05, max_delay=0.4)
    assert len(sched) == 11
    assert max(sched) == 0.4
    assert sched[-3:] == [0.4, 0.4, 0.4]


def test_retry_delays_zero_attempts():
    assert retry_delays(0) == []


# ---------------------------------------------------------------------------
# live behaviour + telemetry
# ---------------------------------------------------------------------------

def test_connect_success_increments_counters(hub):
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    try:
        sock = connect_with_retry("127.0.0.1", port, attempts=3)
        sock.close()
    finally:
        listener.close()
    assert hub.counter("wire.connect.attempts") >= 1
    assert hub.counter("wire.connect.success") == 1
    assert hub.counter("wire.connect.failures") == 0


def test_connect_exhaustion_raises_and_counts_failures(hub):
    port = _free_unbound_port()
    with pytest.raises(ChannelError, match="cannot connect"):
        connect_with_retry("127.0.0.1", port, attempts=2, delay=0.01)
    assert hub.counter("wire.connect.attempts") == 2
    assert hub.counter("wire.connect.failures") == 1
    assert hub.counter("wire.connect.success") == 0


def test_connect_retry_after_late_listener(hub):
    """The server comes up between attempts: success after >=1 retry."""
    import threading
    import time

    port = _free_unbound_port()
    listener = socket.socket()

    def bind_late():
        time.sleep(0.1)
        listener.bind(("127.0.0.1", port))
        listener.listen(1)

    t = threading.Thread(target=bind_late)
    t.start()
    try:
        sock = connect_with_retry("127.0.0.1", port, attempts=12, delay=0.05)
        sock.close()
    finally:
        t.join()
        listener.close()
    assert hub.counter("wire.connect.success") == 1
    assert hub.counter("wire.connect.retried") == 1
    assert hub.counter("wire.connect.attempts") >= 2
