"""Merged cluster traces: one timeline, one lane per node, linked flows."""

import json
import os

import pytest

from repro.distributed.cluster import LocalCluster
from repro.parallel import CallableTask
from repro.telemetry.clock import ProbeSample, estimate_offset
from repro.telemetry.distributed import merge_node_traces, write_merged_trace


# ---------------------------------------------------------------------------
# merging fake nodes (pure, no sockets)
# ---------------------------------------------------------------------------

def fake_event(ts, ph="i", name="e", tid=1, thread="t", args=None):
    return {"ts": ts, "ph": ph, "name": name, "cat": "test", "tid": tid,
            "thread": thread, "args": args}


def test_merge_two_skewed_nodes_yields_single_monotone_timeline():
    """Two nodes whose hub clocks differ by known skews: after applying
    the estimated offsets, the merged trace is one monotone timeline that
    matches the ground-truth event order."""
    # ground truth: events happen at wall times 1.0 .. 6.0, alternating nodes
    skew_a, skew_b = 100.0, -40.0   # node clock = wall - skew
    wall_times = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    node_a = [fake_event(w - skew_a, name=f"a{i}")
              for i, w in enumerate(wall_times) if i % 2 == 0]
    node_b = [fake_event(w - skew_b, name=f"b{i}")
              for i, w in enumerate(wall_times) if i % 2 == 1]
    # probes as the observer (whose clock IS wall time) would take them
    est_a = estimate_offset([ProbeSample(sent=w, remote=w + 0.001 - skew_a,
                                         received=w + 0.002)
                             for w in (0.1, 0.2, 0.3)])
    est_b = estimate_offset([ProbeSample(sent=w, remote=w + 0.001 - skew_b,
                                         received=w + 0.002)
                             for w in (0.1, 0.2, 0.3)])
    assert est_a.offset == pytest.approx(skew_a, abs=1e-6)
    assert est_b.offset == pytest.approx(skew_b, abs=1e-6)
    doc = merge_node_traces([
        {"name": "alpha", "events": node_a, "offset": est_a.offset},
        {"name": "beta", "events": node_b, "offset": est_b.offset},
    ])
    items = [i for i in doc["traceEvents"] if i["ph"] != "M"]
    by_time = sorted(items, key=lambda i: i["ts"])
    assert [i["name"] for i in by_time] == ["a0", "b1", "a2", "b3", "a4", "b5"]
    # aligned timestamps recover wall time (microseconds)
    assert [i["ts"] for i in by_time] == pytest.approx(
        [w * 1e6 for w in wall_times], abs=1.0)
    # one lane per node, in the order given
    names = {i["pid"]: i["args"]["name"] for i in doc["traceEvents"]
             if i["name"] == "process_name"}
    assert names == {1: "alpha", 2: "beta"}


def test_merge_preserves_flow_ids_and_thread_metadata(tmp_path):
    nodes = [
        {"name": "client", "offset": 0.0, "events": [
            fake_event(0.1, ph="B", name="rpc.send", tid=7, thread="main"),
            fake_event(0.2, ph="s", name="rpc", tid=7, thread="main",
                       args={"flow_id": 99}),
            fake_event(0.4, ph="E", name="rpc.send", tid=7, thread="main"),
        ]},
        {"name": "server", "offset": -0.05, "events": [
            fake_event(0.3, ph="B", name="rpc.execute", tid=9, thread="conn"),
            fake_event(0.35, ph="f", name="rpc", tid=9, thread="conn",
                       args={"flow_id": 99}),
            fake_event(0.5, ph="E", name="rpc.execute", tid=9, thread="conn"),
        ]},
    ]
    path = str(tmp_path / "merged.json")
    assert write_merged_trace(path, nodes) == path
    with open(path) as fh:
        doc = json.load(fh)
    start = next(i for i in doc["traceEvents"] if i["ph"] == "s")
    end = next(i for i in doc["traceEvents"] if i["ph"] == "f")
    assert start["id"] == end["id"] == 99
    assert start["pid"] != end["pid"]       # the flow crosses lanes
    assert end["bp"] == "e"
    threads = [i for i in doc["traceEvents"] if i["name"] == "thread_name"]
    assert {(t["pid"], t["args"]["name"]) for t in threads} == {
        (1, "main"), (2, "conn")}


def test_merge_empty_and_unnamed_nodes():
    doc = merge_node_traces([{"events": []}])
    names = [i["args"]["name"] for i in doc["traceEvents"]
             if i["name"] == "process_name"]
    assert names == ["node-1"]


# ---------------------------------------------------------------------------
# against real clusters
# ---------------------------------------------------------------------------

def test_thread_mode_cluster_dedupes_shared_hub_to_one_lane(hub):
    with LocalCluster(2, mode="thread") as cluster:
        cluster.ping_all()
        doc = cluster.merged_trace()
    lanes = [i for i in doc["traceEvents"] if i["name"] == "process_name"]
    assert len(lanes) == 1          # servers share this interpreter's hub
    assert lanes[0]["args"]["name"].startswith("client:")
    assert any(i["ph"] == "s" for i in doc["traceEvents"])


def test_process_mode_merged_trace_links_dispatch_across_lanes(hub, tmp_path):
    """The acceptance flow: a LocalCluster run with telemetry enabled
    produces ONE merged Chrome trace where a remote task dispatch appears
    as a flow-linked send→execute span pair across two node lanes, with
    all timestamps on one aligned timeline.

    When REPRO_TRACE_ARTIFACT is set (CI), the merged trace is also
    written there and uploaded as a build artifact.
    """
    artifact = os.environ.get("REPRO_TRACE_ARTIFACT")
    path = artifact or str(tmp_path / "merged-trace.json")
    with LocalCluster(1, mode="process", telemetry=True) as cluster:
        client = cluster.client(0)
        assert client.ping() == "server-0"
        assert client.call(CallableTask(pow, 2, 10)) == 1024
        doc = cluster.merged_trace(path)
    with open(path) as fh:
        assert json.load(fh) == doc
    lanes = {i["pid"]: i["args"]["name"] for i in doc["traceEvents"]
             if i["name"] == "process_name"}
    assert len(lanes) == 2          # client lane + one true server process
    assert "server-0" in lanes.values()
    client_pid = next(p for p, n in lanes.items() if n.startswith("client:"))
    server_pid = next(p for p, n in lanes.items() if n == "server-0")
    starts = {i["id"]: i for i in doc["traceEvents"] if i["ph"] == "s"}
    ends = {i["id"]: i for i in doc["traceEvents"] if i["ph"] == "f"}
    linked = [(starts[fid], ends[fid]) for fid in starts if fid in ends]
    assert linked, "no flow-linked send→execute pair crossed the wire"
    for start, end in linked:
        assert start["pid"] == client_pid
        assert end["pid"] == server_pid
        # aligned single timeline: the execute follows the send (the
        # estimator's error is bounded by half the loopback RTT)
        assert end["ts"] >= start["ts"] - 10_000  # 10 ms slack in µs
    # the execute span for the call is on the server lane and carries op
    assert any(i["ph"] == "B" and i["name"] == "rpc.execute"
               and i["pid"] == server_pid
               and i.get("args", {}).get("op") == "call"
               for i in doc["traceEvents"])
