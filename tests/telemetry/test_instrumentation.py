"""Telemetry wired into the KPN runtime, the Tracer, and the farm."""

import time

from repro.kpn import IterativeProcess, Network
from repro.kpn.scheduler import DeadlockPolicy
from repro.kpn.tracing import Tracer
from repro.parallel import CallableTask, RangeProducerTask, build_farm
from repro.processes import Collect, MapProcess, Sequence
from repro.processes.codecs import LONG
from repro.processes.networks import modulo_merge

from tests.conftest import run_network


class _SlowCollect(IterativeProcess):
    """Reads one long per step with a delay — forces writers to block."""

    def __init__(self, source, into, delay):
        super().__init__()
        self.source = source
        self.into = into
        self.delay = delay
        self.track(source)

    def step(self):
        self.into.append(LONG.read(self.source))
        time.sleep(self.delay)


def _build_pipeline(net, n=10):
    raw, squared = net.channels_n(2)
    out = []
    net.add(Sequence(raw.get_output_stream(), start=1, iterations=n))
    net.add(MapProcess(raw.get_input_stream(), squared.get_output_stream(),
                       lambda x: x * x))
    net.add(Collect(squared.get_input_stream(), out))
    return out


# ---------------------------------------------------------------------------
# KPN pipeline: byte counters and span ordering
# ---------------------------------------------------------------------------

def test_pipeline_byte_counters_match_buffer_totals(hub):
    net = Network(name="telemetry-pipe")
    out = _build_pipeline(net, n=10)
    run_network(net)
    assert out == [k * k for k in range(1, 11)]
    for ch in net.channels:
        written = hub.counter("kpn.channel.bytes_written", channel=ch.name)
        read = hub.counter("kpn.channel.bytes_read", channel=ch.name)
        assert written == ch.buffer.total_written
        assert read == written  # fully drained pipeline
        assert written > 0
    assert hub.counter("kpn.channel.created") >= 2


def test_pipeline_process_spans_are_ordered_and_balanced(hub):
    net = Network(name="telemetry-spans")
    _build_pipeline(net, n=10)
    run_network(net)
    spans = [e for e in hub.events() if e.category == "kpn.process"]
    by_name = {}
    for e in spans:
        by_name.setdefault(e.name, []).append(e)
    assert len(by_name) == 3  # Sequence, MapProcess, Collect
    for name, events in by_name.items():
        phases = [e.phase for e in events]
        assert phases == ["B", "E"], f"{name}: {phases}"
        begin, end = events
        assert begin.ts <= end.ts
        assert begin.tid == end.tid  # a process lives on one thread
        assert "reason" in end.args and "steps" in end.args
    assert hub.counter("kpn.process.started") == 3
    terminated = sum(v for k, v in hub.counters().items()
                     if k.startswith("kpn.process.terminated"))
    assert terminated == 3


def test_blocking_spans_appear_when_capacity_is_tight(hub):
    net = Network(name="telemetry-block")
    src = net.channel(8, name="tight")  # one long: the writer must block
    out = []
    net.add(Sequence(src.get_output_stream(), start=1, iterations=10))
    net.add(_SlowCollect(src.get_input_stream(), out, delay=0.001))
    run_network(net)
    assert out == list(range(1, 11))
    assert hub.counter("kpn.channel.write_blocks", channel="tight") > 0
    blocks = [e for e in hub.events() if e.name == "block.write"]
    assert blocks and blocks[0].phase == "B"
    assert [e.phase for e in blocks].count("B") == \
        [e.phase for e in blocks].count("E")


# ---------------------------------------------------------------------------
# Parks scheduling: growth instants + deadlock counters
# ---------------------------------------------------------------------------

def test_growth_emits_instants_and_counters(hub):
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    assert built.run(timeout=60) == list(range(1, 201))
    grows = [e for e in hub.events() if e.name == "channel.grow"]
    assert grows, "expected channel.grow instants"
    for e in grows:
        assert e.phase == "i"
        assert e.args["new"] > e.args["old"]
    assert hub.counter("kpn.scheduler.artificial_deadlocks") >= 1
    grown_total = sum(v for k, v in hub.counters().items()
                      if k.startswith("kpn.channel.grow_events"))
    assert grown_total == len(grows)


# ---------------------------------------------------------------------------
# Tracer: bus-fed growth events + stop() sampling order (satellite fix)
# ---------------------------------------------------------------------------

def test_tracer_collects_growths_from_event_bus(hub):
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    with Tracer(net, period=0.002) as tracer:
        assert built.run(timeout=60) == list(range(1, 201))
    report = tracer.report()
    assert report.growth_events
    known = {ch.name for ch in net.channels}
    assert all(g["channel"] in known for g in report.growth_events)


def test_tracer_final_sample_lands_before_frozen_duration():
    """stop() must take its last census *before* freezing _elapsed, and no
    sample timestamp may exceed the reported duration (the old ordering
    produced timeline points past the end of the trace)."""
    net = Network(name="tracer-order")
    _build_pipeline(net, n=50)
    tracer = Tracer(net, period=0.001).start()
    run_network(net)
    time.sleep(0.02)  # let a few idle samples land
    tracer.stop()
    report = tracer.report()
    assert report.duration > 0
    for t, _r, _w in report.blocked_timeline:
        assert t <= report.duration + 1e-9
    for ch in report.channels.values():
        for t, _occ in ch.occupancy:
            assert t <= report.duration + 1e-9
        # stop()'s final sample sees the post-run totals
        assert ch.total_bytes == net.channel_by_name(ch.name).buffer.total_written


# ---------------------------------------------------------------------------
# parallel farm: per-worker counts, shares, latencies
# ---------------------------------------------------------------------------

def test_farm_load_accounting_and_latencies(hub):
    n_tasks, n_workers = 24, 3
    handle = build_farm(
        RangeProducerTask(n_tasks, lambda i: CallableTask(pow, i, 2)),
        n_workers=n_workers, mode="dynamic")
    assert handle.run(timeout=60) == [i * i for i in range(n_tasks)]
    harness = handle.harness
    counts = harness.task_counts()
    assert set(counts) == {f"Worker-{i}" for i in range(n_workers)}
    assert sum(counts.values()) == n_tasks
    shares = harness.load_shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    latencies = harness.latency_report()
    for name, stats in latencies.items():
        assert stats["count"] == counts[name]
        assert stats["max"] >= stats["min"] >= 0
    assert sum(s["count"] for s in latencies.values()) == n_tasks
    assert hub.counter("parallel.tasks_produced", producer="Producer") == n_tasks
    assert hub.counter("parallel.results_consumed", consumer="Consumer") == n_tasks


def test_farm_task_counts_from_explicit_snapshot(hub):
    n_tasks = 12
    handle = build_farm(
        RangeProducerTask(n_tasks, lambda i: CallableTask(abs, -i)),
        n_workers=2, mode="static")
    handle.run(timeout=60)
    snapshot = hub.counters()
    hub.reset()  # live hub wiped: only the snapshot can answer now
    counts = handle.harness.task_counts(snapshot)
    assert sum(counts.values()) == n_tasks
