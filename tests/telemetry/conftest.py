"""Telemetry test helpers.

The hub is process-wide, so every test here must leave it exactly as it
found it (disabled, empty) or the rest of the suite would silently start
paying for instrumentation — and counters would leak between tests.
"""

from __future__ import annotations

import pytest

from repro.telemetry.core import TELEMETRY


@pytest.fixture
def hub():
    """The global hub, reset and enabled; disabled and wiped afterwards."""
    TELEMETRY.reset().enable()
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.disable().reset()


@pytest.fixture(autouse=True)
def _no_leak():
    """Safety net: whatever a test does, the hub ends up off and empty."""
    yield
    TELEMETRY.disable().reset()
