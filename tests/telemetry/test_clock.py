"""Clock-offset estimation: the RTT-midpoint math under skew and noise."""

import pytest

from repro.telemetry.clock import OffsetEstimate, ProbeSample, estimate_offset


def probe(true_offset: float, sent: float, out_leg: float, back_leg: float
          ) -> ProbeSample:
    """Simulate one probe against a remote clock = local clock - offset.

    The remote samples its clock when the request arrives (after
    ``out_leg`` seconds of network); the reply takes ``back_leg`` more.
    """
    remote_at_arrival = (sent + out_leg) - true_offset
    return ProbeSample(sent=sent, remote=remote_at_arrival,
                       received=sent + out_leg + back_leg)


# ---------------------------------------------------------------------------
# single-sample math
# ---------------------------------------------------------------------------

def test_zero_rtt_recovers_offset_exactly():
    sample = probe(true_offset=3.5, sent=10.0, out_leg=0.0, back_leg=0.0)
    assert sample.rtt == 0.0
    assert sample.offset == pytest.approx(3.5)


def test_symmetric_rtt_recovers_offset_exactly():
    sample = probe(true_offset=-2.0, sent=5.0, out_leg=0.01, back_leg=0.01)
    assert sample.rtt == pytest.approx(0.02)
    assert sample.offset == pytest.approx(-2.0)


def test_asymmetric_rtt_error_bounded_by_half_rtt():
    """A fully one-sided path is the worst case: |error| <= rtt / 2."""
    for out_leg, back_leg in [(0.1, 0.0), (0.0, 0.1), (0.08, 0.02)]:
        sample = probe(true_offset=1.0, sent=0.0,
                       out_leg=out_leg, back_leg=back_leg)
        assert abs(sample.offset - 1.0) <= sample.rtt / 2 + 1e-12


def test_negative_skew_remote_clock_ahead():
    """Remote hub booted earlier -> its clock reads larger -> negative
    offset (subtract to land remote events on our timeline)."""
    sample = probe(true_offset=-7.25, sent=1.0, out_leg=0.001, back_leg=0.001)
    assert sample.offset == pytest.approx(-7.25)
    remote_event_ts = 9.0   # on the remote clock
    assert remote_event_ts + sample.offset == pytest.approx(1.75)


def test_probe_rejects_time_running_backwards():
    with pytest.raises(ValueError, match="before sent"):
        ProbeSample(sent=2.0, remote=1.0, received=1.0)


# ---------------------------------------------------------------------------
# combining a probe series
# ---------------------------------------------------------------------------

def test_estimate_picks_minimum_rtt_sample():
    noisy = probe(true_offset=4.0, sent=0.0, out_leg=0.5, back_leg=0.0)
    clean = probe(true_offset=4.0, sent=1.0, out_leg=0.001, back_leg=0.001)
    est = estimate_offset([noisy, clean])
    assert isinstance(est, OffsetEstimate)
    assert est.offset == pytest.approx(clean.offset)
    assert est.rtt == pytest.approx(clean.rtt)
    assert est.n == 2
    assert est.error_bound == pytest.approx(clean.rtt / 2)


def test_estimate_offset_stability_across_repeated_probes():
    """Jittered asymmetric probes: every estimate stays within the
    half-RTT bound of truth, and the spread reports the sample scatter."""
    true_offset = 12.0
    legs = [(0.004, 0.006), (0.010, 0.002), (0.003, 0.003),
            (0.001, 0.009), (0.005, 0.005)]
    samples = [probe(true_offset, sent=float(i), out_leg=o, back_leg=b)
               for i, (o, b) in enumerate(legs)]
    est = estimate_offset(samples)
    assert abs(est.offset - true_offset) <= est.rtt / 2 + 1e-12
    # the min-RTT filter chose the tightest bound available
    assert est.rtt == pytest.approx(min(s.rtt for s in samples))
    assert est.spread == pytest.approx(
        max(s.offset for s in samples) - min(s.offset for s in samples))
    # repeated estimation over fresh jitter stays near truth
    for shift in (0.0, 0.3, 0.9):
        again = estimate_offset(
            probe(true_offset, sent=shift + i, out_leg=o, back_leg=b)
            for i, (o, b) in enumerate(legs))
        assert abs(again.offset - est.offset) <= 0.01


def test_estimate_offset_requires_samples():
    with pytest.raises(ValueError, match="at least one"):
        estimate_offset([])
