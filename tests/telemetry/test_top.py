"""`repro top`: the render function and the CLI against a live server."""

from repro.cli import main as cli_main
from repro.distributed.server import ComputeServer
from repro.telemetry.distributed import render_top


def test_render_top_columns_and_blocked_details():
    rows = [{
        "name": "alpha",
        "stats": {"uptime_seconds": 125.0, "tasks_run": 7,
                  "processes_hosted": 2, "live_threads": 3, "channels": 4,
                  "telemetry_enabled": True, "failures": []},
        "snapshot": {"blocked": [
            {"thread": "Worker-1", "mode": "read", "channel": "tasks",
             "capacity": 1024, "buffered": 0},
            {"thread": "Worker-2", "mode": "write", "channel": "results",
             "capacity": 1024, "buffered": 1024},
        ]},
        "counters": {"parallel.tasks_processed{worker=Worker-1}": 30,
                     "parallel.tasks_processed{worker=Worker-2}": 10},
    }]
    screen = render_top(rows)
    header = screen.splitlines()[0]
    for column in ("SERVER", "UP", "TASKS", "BLK-R", "BLK-W", "TELEM"):
        assert column in header
    assert "alpha" in screen
    assert "2m05s" in screen                      # formatted uptime
    assert "Worker-1 blocked-read on tasks (0/1024B)" in screen
    assert "Worker-2 blocked-write on results (1024/1024B)" in screen
    # load shares: 30/40 and 10/40
    assert "75.0%" in screen and "25.0%" in screen


def test_render_top_tolerates_missing_replies():
    screen = render_top([{"name": "dead", "stats": None, "snapshot": None,
                          "counters": None}])
    assert "dead" in screen
    assert "?" in screen            # unknown fields render as placeholders


def test_render_top_surfaces_remote_failures():
    rows = [{"name": "beta",
             "stats": {"uptime_seconds": 1, "tasks_run": 0,
                       "processes_hosted": 1, "live_threads": 0,
                       "channels": 0, "telemetry_enabled": False,
                       "failures": [{"process": "Sieve-3",
                                     "error": "ValueError('boom')"}]},
             "snapshot": {"blocked": []}, "counters": {}}]
    screen = render_top(rows)
    assert "FAILED Sieve-3" in screen and "boom" in screen


def test_cli_top_once_against_live_server(capsys):
    server = ComputeServer(name="top-server").start()
    try:
        rc = cli_main(["top", f"127.0.0.1:{server.port}", "--once"])
    finally:
        server.stop()
    assert rc == 0
    out = capsys.readouterr().out
    assert "SERVER" in out and "top-server" not in out  # column header...
    assert f"127.0.0.1:{server.port}" in out            # ...rows keyed by target


def test_cli_top_iterations_refresh(capsys):
    server = ComputeServer(name="top-loop").start()
    try:
        rc = cli_main(["top", f"127.0.0.1:{server.port}",
                       "--interval", "0.01", "--iterations", "2"])
    finally:
        server.stop()
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("repro top —") == 2      # two refreshes, cleared screen


def test_cli_top_marks_unreachable_servers(capsys):
    rc = cli_main(["top", "127.0.0.1:1", "--once"])
    assert rc == 0
    err = capsys.readouterr().err
    assert "UNREACHABLE" in err


def test_render_top_shows_profile_state_column():
    rows = [{
        "name": "gamma",
        "stats": {"uptime_seconds": 10.0, "tasks_run": 0,
                  "processes_hosted": 2, "live_threads": 2, "channels": 1,
                  "telemetry_enabled": True, "failures": []},
        "snapshot": {"blocked": []},
        "counters": {},
        "profile": {
            "node": "gamma", "pid": 1, "t": 10.0,
            "processes": {
                "Fast": {"kind": "k", "state": "running", "channel": None,
                         "running_s": 9.0, "blocked": {},
                         "started": 0.0, "finished": None},
                "Stuck": {"kind": "k", "state": "write-blocked",
                          "channel": "out", "running_s": 1.0,
                          "blocked": {"write:out": 9.0},
                          "started": 0.0, "finished": None}},
            "channels": {}},
    }]
    screen = render_top(rows)
    assert "proc Fast" in screen and "running" in screen
    assert "proc Stuck" in screen
    assert "write-blocked on out" in screen
    assert "90.0%" in screen and "10.0%" in screen   # per-process utilization


def test_render_top_without_profile_row_unchanged():
    rows = [{"name": "delta",
             "stats": {"uptime_seconds": 1, "tasks_run": 0,
                       "processes_hosted": 0, "live_threads": 0,
                       "channels": 0, "telemetry_enabled": False,
                       "failures": []},
             "snapshot": {"blocked": []}, "counters": {}, "profile": None}]
    assert "proc " not in render_top(rows)
