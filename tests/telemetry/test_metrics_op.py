"""The ``metrics`` RPC op and cluster-wide aggregation, end to end."""

import pytest

from repro.distributed.cluster import LocalCluster
from repro.distributed.server import ComputeServer, ServerClient
from repro.parallel import CallableTask


@pytest.fixture
def server_client():
    server = ComputeServer(name="metrics-server").start()
    client = ServerClient("127.0.0.1", server.port)
    yield server, client
    client.close()
    server.stop()


def test_metrics_op_reports_live_wire_counters(hub, server_client):
    """The acceptance flow: talk to a live server with telemetry on, then
    scrape it — wire counters must be non-zero and self-describing."""
    _, client = server_client
    assert client.ping() == "metrics-server"
    client.call(CallableTask(pow, 2, 8))
    reply = client.metrics()
    assert reply["ok"] and reply["telemetry_enabled"]
    assert reply["name"] == "metrics-server"
    counters = reply["counters"]
    # thread-mode server shares this process's hub: both directions visible
    sent = sum(v for k, v in counters.items()
               if k.startswith("wire.frames_sent"))
    received = sum(v for k, v in counters.items()
                   if k.startswith("wire.frames_received"))
    assert sent > 0 and received > 0
    assert sum(v for k, v in counters.items()
               if k.startswith("wire.pickle_bytes_out")) > 0
    # the reply is a snapshot taken mid-RPC: the rpc.send/rpc.execute end
    # spans land after it, so the hub total can only be >= the reading
    assert 0 < reply["events_emitted"] <= hub.events_emitted
    assert isinstance(reply["tasks_run"], int) and reply["tasks_run"] >= 1


def test_metrics_op_when_telemetry_disabled(server_client):
    _, client = server_client
    reply = client.metrics()
    assert reply["ok"]
    assert reply["telemetry_enabled"] is False


def test_metrics_counters_are_plain_picklable_types(hub, server_client):
    _, client = server_client
    client.ping()
    counters = client.metrics()["counters"]
    assert counters  # the metrics request itself produced wire traffic
    for key, value in counters.items():
        assert isinstance(key, str)
        assert isinstance(value, (int, float))


def test_cluster_metrics_fanout_and_merge(hub):
    cluster = LocalCluster(2).start()
    try:
        for c in cluster.clients:
            c.ping()
        per_server = cluster.metrics()
        assert set(per_server) == set(cluster.names)
        for snap in per_server.values():
            assert snap["ok"] and snap["telemetry_enabled"]
        merged = cluster.merged_metrics()
        assert merged
        assert any(k.startswith("wire.frames_received") for k in merged)
        # thread mode dedupes to one shared hub, so the merged totals are a
        # plain (later) snapshot: every counter monotonically >= the first
        # fan-out's reading, never a double-counted sum.
        first = list(per_server.values())[0]["counters"]
        for key, value in first.items():
            assert merged.get(key, 0) >= value
    finally:
        cluster.stop()


# ---------------------------------------------------------------------------
# profiler snapshots over the metrics op
# ---------------------------------------------------------------------------

def test_metrics_op_profile_absent_when_profiler_off(hub, server_client):
    _, client = server_client
    assert client.metrics()["profile"] is None


def test_metrics_op_ships_profile_snapshot(hub, server_client):
    from repro.parallel import RangeProducerTask, run_farm
    from repro.telemetry.profile import PROFILER

    _, client = server_client
    PROFILER.reset().enable()
    try:
        # thread-mode server shares this interpreter's profiler: local KPN
        # activity must show up in the snapshot the op ships
        out = run_farm(RangeProducerTask(5, lambda i: CallableTask(pow, i, 2)),
                       n_workers=1, mode="pipeline", timeout=60)
        assert out == [i ** 2 for i in range(5)]
        snap = client.metrics()["profile"]
    finally:
        PROFILER.disable().reset()
    assert snap is not None
    assert snap["node"] and snap["pid"]
    assert "Producer" in snap["processes"]
    assert snap["processes"]["Producer"]["running_s"] >= 0.0


def test_cluster_merged_profile_thread_mode(hub):
    from repro.parallel import RangeProducerTask, run_farm
    from repro.telemetry.profile import PROFILER, analyze

    cluster = LocalCluster(2).start()
    try:
        PROFILER.reset().enable()
        try:
            run_farm(RangeProducerTask(5, lambda i: CallableTask(pow, i, 2)),
                     n_workers=1, mode="pipeline", timeout=60)
            profiles = cluster.profiles()
            merged = cluster.merged_profile()
        finally:
            PROFILER.disable().reset()
    finally:
        cluster.stop()
    # both servers answered, sharing one interpreter-wide profiler
    assert set(profiles) == set(cluster.names)
    assert all(p is not None for p in profiles.values())
    # pid-dedupe: one snapshot contributes, process names stay unprefixed
    assert merged["nodes"] and len(merged["nodes"]) == 1
    assert "Producer" in merged["processes"]
    report = analyze(merged)
    assert report["processes"]
