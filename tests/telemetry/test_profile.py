"""The continuous profiler: blocked-time attribution, analyzer, advisor."""

import json
import threading

import pytest

from repro.kpn import Network
from repro.kpn.scheduler import DeadlockPolicy
from repro.parallel import CallableTask, RangeProducerTask, build_farm
from repro.processes.networks import modulo_merge
from repro.telemetry.core import Event
from repro.telemetry.profile import (PROFILER, Profiler, analyze, fold_stacks,
                                     merge_profiles, process_utilization,
                                     render_profile, write_capacity_spec)


@pytest.fixture
def profiler(hub):
    """The global profiler over the enabled hub; detached afterwards."""
    PROFILER.reset().enable()
    try:
        yield PROFILER
    finally:
        PROFILER.disable().reset()


# ---------------------------------------------------------------------------
# the state machine, on a hand-crafted deterministic timeline
# ---------------------------------------------------------------------------

def _ev(ts, phase, name, category, tid=1, args=None):
    return Event(ts, phase, name, category, tid, f"thread-{tid}", args)


def test_blocked_time_accumulates_then_freezes_after_growth():
    """The Parks-growth acceptance story on synthetic events: a write
    block charges its channel while open, keeps accumulating between
    snapshots, and stops the instant the span ends (the grown channel no
    longer blocks anyone)."""
    prof = Profiler()
    prof._on_event(_ev(0.0, "B", "P", "kpn.process",
                       args={"kind": "iterative", "process": "P"}))
    prof._on_event(_ev(1.0, "B", "block.write", "kpn.block",
                       args={"channel": "c", "process": "P"}))

    snap = prof.snapshot(now=3.0)
    assert snap["processes"]["P"]["state"] == "write-blocked"
    assert snap["processes"]["P"]["channel"] == "c"
    assert snap["processes"]["P"]["blocked"]["write:c"] == pytest.approx(2.0)
    # still blocked: the open interval keeps growing snapshot to snapshot
    snap = prof.snapshot(now=5.0)
    assert snap["processes"]["P"]["blocked"]["write:c"] == pytest.approx(4.0)

    # the scheduler grows the channel and the write completes
    prof._on_event(_ev(5.5, "i", "channel.grow", "kpn.channel",
                       args={"channel": "c", "old": 64, "new": 128,
                             "process": "P"}))
    prof._on_event(_ev(6.0, "E", "block.write", "kpn.block"))

    for now, running in ((7.0, 2.0), (9.0, 4.0)):
        snap = prof.snapshot(now=now)
        p = snap["processes"]["P"]
        assert p["blocked"]["write:c"] == pytest.approx(5.0)  # frozen
        assert p["running_s"] == pytest.approx(running)       # accumulating
        assert p["state"] == "running"
    chan = snap["channels"]["c"]
    assert chan["grown_to"] == 128
    assert chan["grow_events"] == 1
    assert chan["growers"] == ["P"]


def test_snapshot_charges_without_closing_and_exit_finishes():
    prof = Profiler()
    prof._on_event(_ev(0.0, "B", "P", "kpn.process", args={"kind": "k"}))
    prof._on_event(_ev(2.0, "B", "block.read", "kpn.block",
                       args={"channel": "in", "process": "P"}))
    prof._on_event(_ev(3.0, "E", "block.read", "kpn.block"))
    prof._on_event(_ev(4.0, "E", "P", "kpn.process"))
    snap = prof.snapshot(now=10.0)
    p = snap["processes"]["P"]
    assert p["state"] == "done"
    assert p["finished"] == pytest.approx(4.0)
    # 0-2 running, 2-3 read-blocked, 3-4 running; nothing after the exit
    assert p["running_s"] == pytest.approx(3.0)
    assert p["blocked"]["read:in"] == pytest.approx(1.0)
    assert process_utilization(snap)["P"] == pytest.approx(0.75)


def test_fold_stacks_format():
    prof = Profiler()
    prof._on_event(_ev(0.0, "B", "P", "kpn.process", args={}))
    prof._on_event(_ev(1.0, "B", "block.write", "kpn.block",
                       args={"channel": "c", "process": "P"}))
    prof._on_event(_ev(3.0, "E", "block.write", "kpn.block"))
    prof._on_event(_ev(3.5, "E", "P", "kpn.process"))
    snap = prof.snapshot(now=4.0)
    node = snap["node"]
    lines = fold_stacks(snap)
    assert f"{node};P;running 1500000" in lines
    assert f"{node};P;write-blocked;c 2000000" in lines


# ---------------------------------------------------------------------------
# a real skewed pipeline: attribution + analyzer + advisor
# ---------------------------------------------------------------------------

def test_advisor_on_known_skewed_pipeline(profiler, tmp_path):
    """Producer floods a slow worker through a small channel: the tasks
    channel must rank first, its writers' blocked time must dominate, and
    the advisor must recommend more capacity for it."""
    handle = build_farm(
        RangeProducerTask(40, lambda i: CallableTask(pow, i, 2)),
        n_workers=1, mode="pipeline", slowdowns=[0.004],
        channel_capacity=256)
    assert handle.run(timeout=120) == [i ** 2 for i in range(40)]
    snap = profiler.snapshot(network=handle.network)
    report = analyze(snap, handle.network.channel_map())

    tasks_name = next(ch.name for ch in handle.network.channels
                      if ch.name.endswith("-tasks"))
    # the flooded tasks channel and the consumer's results channel soak
    # up all the blocked time; the tasks channel must be at the top and
    # carry the write pressure
    ranked_names = [e["name"] for e in report["channels"]]
    assert tasks_name in ranked_names[:2]
    top = next(e for e in report["channels"] if e["name"] == tasks_name)
    assert top["write_blocked_s"] > 0
    assert top["producer"] == "Producer"
    assert "Producer" in top["writers"]
    # writers blocked most of the run => advise more than current capacity
    assert top["recommended_capacity"] > 256
    assert "blocked" in top["reason"]
    # the slow worker is the root cause and the producer is mostly blocked
    utils = {p["name"]: p["utilization"] for p in report["processes"]}
    assert utils["Worker"] > utils["Producer"]
    assert report["root_cause"] is not None
    assert report["root_cause"]["process"] == "Worker"
    assert report["chain"], "expected a backpressure chain to the root"

    path = write_capacity_spec(report, str(tmp_path / "spec.json"))
    spec = json.loads(open(path).read())
    assert spec["version"] == 1
    assert spec["channels"][tasks_name]["initial_capacity"] > 256
    text = render_profile(report)
    assert "bottleneck channels" in text and tasks_name in text
    assert "root cause" in text


def test_occupancy_sampling_and_gauges(profiler, hub):
    net = Network(name="gauged")
    ch = net.channel(64, name="g-chan")
    snap = profiler.snapshot(network=net)
    entry = snap["channels"]["g-chan"]
    assert entry["capacity"] == 64
    assert entry["buffered"] == 0
    gauges = hub.gauges()
    assert gauges["kpn.channel.capacity_bytes{channel=g-chan}"] == 64
    assert gauges["kpn.channel.occupancy_bytes{channel=g-chan}"] == 0


# ---------------------------------------------------------------------------
# Parks growth, for real (fig13), plus the event-args audit
# ---------------------------------------------------------------------------

def test_parks_growth_recorded_and_block_events_joinable(profiler, hub):
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    assert built.run(timeout=60) == list(range(1, 201))

    snap = profiler.snapshot(network=net)
    grown = {name: c for name, c in snap["channels"].items()
             if c.get("grown_to")}
    assert grown, "expected at least one grown channel"
    for name, c in grown.items():
        assert c["grow_events"] >= 1
        assert c["growers"], f"{name} grew without an attributed process"

    # audit: every block span begin and every grow instant carries the
    # channel AND process names, so traces join across event families
    known_procs = {p.name for p in net.processes} | \
        {t.name for t in threading.enumerate()}
    block_begins = [e for e in hub.events()
                    if e.category == "kpn.block" and e.phase == "B"]
    assert block_begins
    for e in block_begins:
        assert e.args["channel"]
        assert e.args["process"]
    for e in hub.events():
        if e.name == "channel.grow":
            assert e.args["channel"]
            assert "process" in e.args

    # the advisor pre-sizes grown channels to their final capacity
    report = analyze(snap, net.channel_map())
    for name, c in grown.items():
        rec = report["spec"]["channels"][name]
        assert rec["initial_capacity"] >= c["grown_to"]
        assert "grew" in rec["reason"]


# ---------------------------------------------------------------------------
# merging (the cluster path) and farm label uniqueness
# ---------------------------------------------------------------------------

def test_merge_profiles_disambiguates_and_sums():
    a = {"node": "srv-0", "pid": 10, "t": 2.0, "network": "farm",
         "processes": {"P": {"kind": "k", "state": "done", "channel": None,
                             "running_s": 1.0, "blocked": {"read:c": 0.5},
                             "started": 0.0, "finished": 2.0}},
         "channels": {"c": {"initial_capacity": 64, "grown_to": 128,
                            "grow_events": 1, "growers": ["P"]}}}
    b = {"node": "srv-1", "pid": 11, "t": 3.0,
         "processes": {"P": {"kind": "k", "state": "done", "channel": None,
                             "running_s": 2.0, "blocked": {},
                             "started": 0.0, "finished": 3.0}},
         "channels": {"c": {"initial_capacity": 64, "grown_to": 256,
                            "grow_events": 2, "growers": ["Q"]}}}
    merged = merge_profiles({"srv-0": a, "srv-1": b})
    assert merged["nodes"] == ["srv-0", "srv-1"]
    assert merged["network"] == "farm"
    assert set(merged["processes"]) == {"P", "srv-1/P"}
    assert merged["processes"]["P"]["node"] == "srv-0"
    chan = merged["channels"]["c"]
    assert chan["grown_to"] == 256          # max wins
    assert chan["grow_events"] == 3         # events sum
    assert sorted(chan["growers"]) == ["P", "Q"]
    # merged snapshots flow straight into the analyzer
    report = analyze(merged)
    assert {e["name"] for e in report["channels"]} == {"c"}


def test_farm_channels_carry_per_farm_prefix():
    h1 = build_farm(RangeProducerTask(1, lambda i: CallableTask(pow, i, 2)),
                    n_workers=2, mode="dynamic")
    h2 = build_farm(RangeProducerTask(1, lambda i: CallableTask(pow, i, 2)),
                    n_workers=2, mode="dynamic")
    names1 = {ch.name for ch in h1.network.channels}
    names2 = {ch.name for ch in h2.network.channels}
    assert all(n.startswith("farm-") for n in names1 | names2)
    assert not names1 & names2, "two farms must not share channel labels"
    # run one to make sure renamed plumbing still works end to end
    assert h1.run(timeout=60) == [0]
    assert h2.run(timeout=60) == [0]
