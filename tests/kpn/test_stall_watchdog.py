"""The stall watchdog: wait-graph snapshots for no-progress windows."""

import time

from repro.kpn import Network
from repro.kpn.scheduler import DeadlockPolicy
from repro.processes.networks import modulo_merge
from repro.telemetry.core import TELEMETRY


def test_watchdog_snapshots_induced_artificial_deadlock():
    """Figure 13 with tiny channels stalls on a full buffer; with the
    resolution delayed past the watchdog window, the stall becomes an
    inspectable wait-graph snapshot *before* Parks growth resumes it."""
    policy = DeadlockPolicy(growth_factor=2, settle_ms=600,
                            stall_watchdog_s=0.05)
    net = Network(policy=policy)
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    assert built.run(timeout=60) == list(range(1, 201))
    snapshots = net.monitor.stall_snapshots
    assert snapshots, "stall watchdog never fired"
    snap = snapshots[0]
    assert snap["stalled_for"] >= 0.05
    assert snap["blocked"], "wait-graph must name the blocked parties"
    modes = {b["mode"] for b in snap["blocked"]}
    assert "write" in modes         # the artificial-deadlock signature
    for entry in snap["blocked"]:
        assert {"thread", "mode", "channel", "capacity",
                "buffered"} <= set(entry)
    # the stall eventually resolved by growth, as usual
    assert net.growth_events()


def test_watchdog_emits_telemetry_instant():
    policy = DeadlockPolicy(growth_factor=2, settle_ms=600,
                            stall_watchdog_s=0.05)
    TELEMETRY.reset().enable()
    try:
        net = Network(policy=policy)
        built = modulo_merge(100, divisor=10, network=net,
                             channel_capacity=16)
        built.run(timeout=60)
        events = [e for e in TELEMETRY.events()
                  if e.name == "stall.wait_graph"]
        assert events
        assert events[0].args["blocked"]
        assert TELEMETRY.counter("kpn.scheduler.stall_snapshots") >= 1
    finally:
        TELEMETRY.disable().reset()


def test_watchdog_snapshots_once_per_stall():
    """One stall -> one snapshot, even though the monitor keeps polling
    while the (deliberately slow) settle window delays resolution."""
    policy = DeadlockPolicy(growth_factor=4, settle_ms=400,
                            stall_watchdog_s=0.02)
    net = Network(policy=policy)
    built = modulo_merge(120, divisor=10, network=net, channel_capacity=16)
    built.run(timeout=60)
    snapshots = net.monitor.stall_snapshots
    assert snapshots
    # never more snapshots than distinct stalls (growths + final verdicts)
    assert len(snapshots) <= len(net.growth_events()) + 1


def test_watchdog_disabled_by_default_and_quiet_when_progressing():
    net = Network()     # default policy: stall_watchdog_s=None
    built = modulo_merge(50, divisor=5, network=net, channel_capacity=1 << 16)
    built.run(timeout=60)
    assert net.monitor.stall_snapshots == []

    fast = Network(policy=DeadlockPolicy(stall_watchdog_s=5.0))
    built = modulo_merge(50, divisor=5, network=fast,
                         channel_capacity=1 << 16)
    start = time.monotonic()
    built.run(timeout=60)
    assert time.monotonic() - start < 5.0
    assert fast.monitor.stall_snapshots == []
