"""Parks bounded scheduling: deadlock detection + buffer growth (§3.5)."""

import pytest

from repro.errors import ArtificialDeadlockError, TrueDeadlockError
from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.kpn.scheduler import DeadlockPolicy
from repro.processes import Collect, Sequence
from repro.processes.networks import hamming, modulo_merge
from repro.semantics import hamming_reference


# ---------------------------------------------------------------------------
# Figure 13: acyclic graph that deadlocks with small capacities
# ---------------------------------------------------------------------------

def test_fig13_needs_growth_with_tiny_capacity():
    """divisor=10 → 9 elements pile up on the lower channel per upper
    element; a 16-byte (2-long) channel must deadlock without growth."""
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    out = built.run(timeout=60)
    assert out == list(range(1, 201))
    grown = net.growth_events()
    assert grown, "expected at least one capacity growth"
    assert any("lower" in e.channel_name for e in grown)


def test_fig13_growth_disabled_reports_artificial_deadlock():
    net = Network(policy=DeadlockPolicy(grow=False))
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    with pytest.raises(ArtificialDeadlockError):
        built.run(timeout=60)


def test_fig13_large_capacity_needs_no_growth():
    net = Network()
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=1 << 16)
    out = built.run(timeout=60)
    assert out == list(range(1, 201))
    assert net.growth_events() == []


def test_fig13_capacity_cap_turns_growth_into_error():
    net = Network(policy=DeadlockPolicy(growth_factor=2, max_capacity=32))
    built = modulo_merge(2000, divisor=100, network=net, channel_capacity=16)
    with pytest.raises(ArtificialDeadlockError, match="max capacity"):
        built.run(timeout=60)


# ---------------------------------------------------------------------------
# Figure 12: the unbounded Hamming network
# ---------------------------------------------------------------------------

def test_hamming_runs_under_growth():
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = hamming(40, network=net, channel_capacity=16)
    out = built.run(timeout=120)
    assert out == hamming_reference(40)
    assert net.growth_events(), "tiny channels must have grown"


def test_hamming_growth_chooses_smallest_full_channel():
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = hamming(30, network=net, channel_capacity=16)
    built.run(timeout=120)
    for e in net.growth_events():
        assert e.new_capacity == 2 * e.old_capacity


def test_hamming_results_identical_with_and_without_growth():
    grown = hamming(25, network=Network(), channel_capacity=16).run(timeout=120)
    roomy = hamming(25, network=Network(), channel_capacity=1 << 16).run(timeout=120)
    assert grown == roomy == hamming_reference(25)


# ---------------------------------------------------------------------------
# true deadlock
# ---------------------------------------------------------------------------

class ReadForever(IterativeProcess):
    def __init__(self, stream, name=None):
        super().__init__(name=name)
        self.stream = stream
        self.track(stream)

    def step(self):
        self.stream.read_exactly(8)


def test_true_deadlock_detected_and_raised():
    """Two processes each waiting for the other's (never-produced) data."""
    net = Network(policy=DeadlockPolicy(on_true="raise"))
    a, b = net.channels_n(2)
    net.add(ReadForever(a.get_input_stream(), name="ra"))
    net.add(ReadForever(b.get_input_stream(), name="rb"))
    with pytest.raises(TrueDeadlockError):
        net.run(timeout=30)


def test_true_deadlock_stop_policy_silent():
    net = Network(policy=DeadlockPolicy(on_true="stop"))
    ch = net.channel()
    net.add(ReadForever(ch.get_input_stream()))
    assert net.run(timeout=30)  # shut down, no exception


def test_no_false_positive_while_producer_computes():
    """A busy (unblocked) producer must never be diagnosed as deadlock."""
    net = Network(policy=DeadlockPolicy(on_true="raise", settle_ms=5))

    class SlowSource(IterativeProcess):
        def __init__(self, out_stream):
            super().__init__(iterations=20)
            self.out = out_stream
            self.track(out_stream)

        def step(self):
            import time

            time.sleep(0.01)  # compute, unblocked
            from repro.processes.codecs import LONG

            LONG.write(self.out, self.steps_completed)

    ch = net.channel()
    out = []
    net.add(SlowSource(ch.get_output_stream()))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(20))


def test_growth_event_records_details():
    net = Network(policy=DeadlockPolicy(growth_factor=4))
    built = modulo_merge(200, divisor=10, network=net, channel_capacity=16)
    built.run(timeout=60)
    e = net.growth_events()[0]
    assert e.new_capacity == 4 * e.old_capacity
    assert e.blocked_processes  # names captured for diagnosis


def test_capacity1_pipeline_still_correct():
    """Absurdly small capacity just serializes; results unchanged."""
    net = Network()
    ch = net.channel(capacity=1)
    out = []
    net.add(Sequence(ch.get_output_stream(), start=0, iterations=50))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(50))
