"""Cascading termination (paper section 3.4): both modes, full graphs."""

import time

import pytest

from repro.errors import BrokenChannelError, EndOfStreamError
from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.processes import Collect, MapProcess, Print, Sequence
from repro.processes.networks import newton_sqrt, primes
from repro.semantics import primes_reference


def test_downstream_limit_cuts_upstream():
    """Sink-limited: upstream writes break once the sink closes (the
    'first 100 primes' mode) — producers stop 'almost immediately'."""
    net = Network()
    ch = net.channel()
    out = []
    src = Sequence(ch.get_output_stream(), start=0, iterations=0)  # infinite
    net.add(src)
    net.add(Collect(ch.get_input_stream(), out, iterations=7))
    assert net.run(timeout=30)  # terminates despite the infinite source
    assert out == list(range(7))


def test_upstream_limit_drains_fully():
    """Source-limited: every produced element is consumed before the
    network winds down (the 'all primes below 100' mode)."""
    net = Network()
    ch = net.channel()
    out = []
    net.add(Sequence(ch.get_output_stream(), start=0, iterations=100))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=30)
    assert out == list(range(100))  # nothing lost


def test_cascade_through_long_pipeline():
    net = Network()
    stages = 8
    chans = net.channels_n(stages + 1)
    out = []
    net.add(Sequence(chans[0].get_output_stream(), start=1, iterations=0))
    for i in range(stages):
        net.add(MapProcess(chans[i].get_input_stream(),
                           chans[i + 1].get_output_stream(),
                           lambda x: x + 1, name=f"inc{i}"))
    net.add(Collect(chans[-1].get_input_stream(), out, iterations=5))
    net.run(timeout=30)
    assert out == [1 + stages + k for k in range(5)]


def test_sieve_count_mode_vs_below_mode_equal_results():
    by_count = primes(count=25).run(timeout=60)
    by_bound = primes(below=by_count[-1] + 1).run(timeout=60)
    assert by_count == by_bound == primes_reference(count=25)


def test_below_mode_consumes_all_data():
    """Source-limited sieve: no unconsumed elements remain anywhere."""
    net = Network()
    built = primes(below=60, network=net)
    built.run(timeout=60)
    assert net.total_buffered_bytes() == 0


def test_guard_data_dependent_termination():
    result = newton_sqrt(49.0).run(timeout=30)
    assert result == [7.0]


def test_fanout_termination_reaches_all_branches():
    """One stopping branch kills the shared Duplicate, then the other
    branch drains and stops."""
    from repro.processes import Duplicate

    net = Network()
    src, left, right = net.channels_n(3)
    out_left, out_right = [], []
    net.add(Sequence(src.get_output_stream(), start=0, iterations=0))
    net.add(Duplicate(src.get_input_stream(),
                      [left.get_output_stream(), right.get_output_stream()]))
    net.add(Collect(left.get_input_stream(), out_left, iterations=5))
    net.add(Collect(right.get_input_stream(), out_right))
    net.run(timeout=30)
    assert out_left == list(range(5))
    # the right branch got a prefix of the same stream (drained after the
    # duplicate died), at least as long as the left's consumption
    assert out_right == list(range(len(out_right)))
    assert len(out_right) >= 5


def test_print_iteration_limit(capsys):
    net = Network()
    ch = net.channel()
    net.add(Sequence(ch.get_output_stream(), start=3, iterations=0))
    net.add(Print(ch.get_input_stream(), iterations=4, prefix="p="))
    net.run(timeout=30)
    captured = capsys.readouterr().out
    assert captured.splitlines() == ["p=3", "p=4", "p=5", "p=6"]


def test_all_threads_exit_after_termination():
    net = Network()
    built = primes(count=10, network=net)
    built.run(timeout=60)
    deadline = time.monotonic() + 10
    while net.live_threads() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert net.live_threads() == [], "processes left running after termination"


class WriteForever(IterativeProcess):
    def __init__(self, out_stream):
        super().__init__()
        self.out = out_stream
        self.track(out_stream)
        self.hits = 0

    def step(self):
        from repro.processes.codecs import LONG

        LONG.write(self.out, self.hits)
        self.hits += 1


def test_writer_sees_broken_channel_not_hang():
    net = Network()
    ch = net.channel(capacity=32)
    w = WriteForever(ch.get_output_stream())
    net.add(w)
    net.add(Collect(ch.get_input_stream(), [], iterations=3))
    assert net.run(timeout=30)
    assert w.failure is None  # BrokenChannelError handled as termination
