"""Failure injection: crashes must not hang the network.

The paper's cascading-termination design (section 3.4) has a safety
corollary: because ``onStop`` closes a process's streams *whatever the
reason it stopped*, a crashing process looks to its neighbours exactly
like a terminating one — the network drains and shuts down instead of
hanging, and the failure surfaces from ``Network.join``.
"""

import time

import pytest

from repro.errors import ChannelError
from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.processes import Collect, MapProcess, Scale, Sequence
from repro.processes.codecs import LONG


class CrashAfter(IterativeProcess):
    """Forwards n elements, then raises."""

    def __init__(self, source, out, crash_after: int, exc=RuntimeError,
                 name=None):
        super().__init__(name=name)
        self.source = source
        self.out = out
        self.crash_after = crash_after
        self.exc = exc
        self.track(source, out)

    def step(self):
        if self.steps_completed >= self.crash_after:
            raise self.exc("injected failure")
        LONG.write(self.out, LONG.read(self.source))


def test_mid_pipeline_crash_terminates_everything():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(Sequence(a.get_output_stream(), iterations=0, name="src"))
    net.add(CrashAfter(a.get_input_stream(), b.get_output_stream(), 5,
                       name="crasher"))
    net.add(Collect(b.get_input_stream(), out, name="sink"))
    with pytest.raises(RuntimeError, match="injected failure"):
        net.run(timeout=60)
    assert out == [0, 1, 2, 3, 4]  # everything before the crash delivered


def test_crash_in_source_lets_consumers_drain():
    net = Network()
    ch = net.channel()

    class CrashySource(IterativeProcess):
        def __init__(self, out_stream):
            super().__init__()
            self.out = out_stream
            self.track(out_stream)

        def step(self):
            if self.steps_completed >= 3:
                raise ValueError("source died")
            LONG.write(self.out, self.steps_completed)

    out = []
    net.add(CrashySource(ch.get_output_stream()))
    net.add(Collect(ch.get_input_stream(), out))
    with pytest.raises(ValueError):
        net.run(timeout=60)
    assert out == [0, 1, 2]


def test_crash_in_sink_breaks_upstream():
    net = Network()
    a, b = net.channels_n(2, capacity=64)

    class CrashySink(IterativeProcess):
        def __init__(self, source):
            super().__init__()
            self.source = source
            self.track(source)

        def step(self):
            LONG.read(self.source)
            if self.steps_completed >= 2:
                raise KeyError("sink died")

    net.add(Sequence(a.get_output_stream(), iterations=0, name="src"))
    net.add(Scale(a.get_input_stream(), b.get_output_stream(), 1, name="mid"))
    net.add(CrashySink(b.get_input_stream()))
    with pytest.raises(KeyError):
        net.run(timeout=60)  # infinite source must still terminate


def test_crash_in_one_branch_frees_sibling():
    from repro.processes import Duplicate

    net = Network()
    src, left, right = net.channels_n(3, capacity=128)
    out = []
    net.add(Sequence(src.get_output_stream(), iterations=0))
    net.add(Duplicate(src.get_input_stream(),
                      [left.get_output_stream(), right.get_output_stream()]))
    net.add(CrashAfter(left.get_input_stream(),
                       (dead_end := net.channel()).get_output_stream(), 3,
                       name="branch-crasher"))
    net.add(Collect(dead_end.get_input_stream(), []))
    net.add(Collect(right.get_input_stream(), out))
    with pytest.raises(RuntimeError):
        net.run(timeout=60)
    assert out == list(range(len(out)))  # a clean prefix, then shutdown


def test_multiple_failures_first_reported():
    net = Network()
    chans = net.channels_n(4)

    class Boom(IterativeProcess):
        def __init__(self, tag):
            super().__init__(iterations=1)
            self.tag = tag

        def step(self):
            raise RuntimeError(f"boom-{self.tag}")

    for i in range(4):
        net.add(Boom(i))
    with pytest.raises(RuntimeError, match="boom-"):
        net.run(timeout=60)


def test_failures_do_not_mask_collected_data():
    """Failure cleanup must not clear data already collected."""
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(Sequence(a.get_output_stream(), iterations=0))
    net.add(CrashAfter(a.get_input_stream(), b.get_output_stream(), 10))
    net.add(Collect(b.get_input_stream(), out))
    with pytest.raises(RuntimeError):
        net.run(timeout=60)
    assert out == list(range(10))


def test_all_threads_exit_after_crash():
    net = Network()
    a, b = net.channels_n(2)
    net.add(Sequence(a.get_output_stream(), iterations=0))
    net.add(CrashAfter(a.get_input_stream(), b.get_output_stream(), 2))
    net.add(Collect(b.get_input_stream(), []))
    with pytest.raises(RuntimeError):
        net.run(timeout=60)
    deadline = time.monotonic() + 10
    while net.live_threads() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert net.live_threads() == []


# ---------------------------------------------------------------------------
# remote failure: server-side crash and server death
# ---------------------------------------------------------------------------

def test_remote_process_crash_cascades_home():
    from repro.distributed import ComputeServer, ServerClient
    from repro.processes import FromIterable

    server = ComputeServer(name="crashy").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        net = Network()
        a, b = net.channels_n(2)
        out = []
        client.run(CrashAfter(a.get_input_stream(), b.get_output_stream(), 3,
                              name="remote-crasher"))
        net.add(FromIterable(a.get_output_stream(), list(range(100))))
        net.add(Collect(b.get_input_stream(), out))
        assert net.run(timeout=60)  # local side terminates cleanly
        assert out == [0, 1, 2]     # the prefix before the remote crash
    finally:
        client.close()
        server.stop()


class SlowSource(IterativeProcess):
    """Unbounded source with a per-element delay (module-level: pickles)."""

    def __init__(self, out_stream, name=None):
        super().__init__(name=name)
        self.out = out_stream
        self.track(out_stream)

    def step(self):
        import time as _t

        LONG.write(self.out, self.steps_completed)
        _t.sleep(0.01)


def test_server_death_midstream_ends_consumer():
    """Killing the server mid-stream must end (not hang) the local
    consumer: the link reports end-of-stream on connection loss."""
    from repro.distributed import ComputeServer, ServerClient

    server = ComputeServer(name="mortal").start()
    client = ServerClient("127.0.0.1", server.port)
    net = Network()
    ch = net.channel(capacity=64)
    out = []

    client.run(SlowSource(ch.get_output_stream()))
    net.add(Collect(ch.get_input_stream(), out))
    net.start()
    time.sleep(0.3)
    server.stop()          # kill the producer's host
    client.close()
    assert net.join(timeout=60)
    assert out == list(range(len(out)))  # clean prefix, no hang
    assert len(out) >= 1
