"""Unit tests for the zero-copy data-plane primitives of BoundedByteBuffer
(write_vectored / write_donate / drain_up_to / read_available / readinto)
and the stream-level ``read_view`` API built on them."""

import threading
import time

import pytest

from repro.errors import BrokenChannelError, ChannelClosedError
from repro.kpn.buffers import BoundedByteBuffer
from repro.kpn.streams import (BlockingInputStream, LocalInputStream,
                               SequenceInputStream)

from tests.conftest import start_thread


# ---------------------------------------------------------------------------
# write_vectored
# ---------------------------------------------------------------------------

def test_write_vectored_matches_sequential_writes():
    buf = BoundedByteBuffer(64)
    buf.write_vectored([b"ab", b"", bytearray(b"cd"), memoryview(b"ef")])
    assert buf.read(64) == b"abcdef"
    assert buf.total_written == 6


def test_write_vectored_empty_batch_is_noop():
    buf = BoundedByteBuffer(64)
    buf.write_vectored([])
    buf.write_vectored([b"", b""])
    assert buf.available() == 0


def test_write_vectored_blocks_on_capacity_and_chunks():
    buf = BoundedByteBuffer(4)
    collected = bytearray()

    def reader():
        while True:
            chunk = buf.read(3)
            if not chunk:
                return
            collected.extend(chunk)

    t = start_thread(reader)
    buf.write_vectored([b"abcdef", b"ghij"])  # 10 bytes through a 4-byte pipe
    buf.close_write()
    t.join(timeout=10)
    assert bytes(collected) == b"abcdefghij"


def test_write_vectored_raises_when_reader_closed():
    buf = BoundedByteBuffer(64)
    buf.close_read()
    with pytest.raises(BrokenChannelError):
        buf.write_vectored([b"xy"])


# ---------------------------------------------------------------------------
# write_donate
# ---------------------------------------------------------------------------

def test_write_donate_adopts_storage_without_copy():
    buf = BoundedByteBuffer(64)
    donated = bytearray(b"take my storage")
    buf.write_donate(donated)
    # a full drain steals the ring storage back: the very same object
    view = buf.drain_up_to(64)
    assert view.obj is donated
    assert bytes(view) == b"take my storage"


def test_write_donate_falls_back_to_copy_when_not_empty():
    buf = BoundedByteBuffer(64)
    buf.write(b"head-")
    buf.write_donate(bytearray(b"tail"))
    assert buf.read(64) == b"head-tail"


def test_write_donate_oversized_chunks_like_write():
    buf = BoundedByteBuffer(4)
    collected = bytearray()

    def reader():
        while True:
            chunk = buf.read(64)
            if not chunk:
                return
            collected.extend(chunk)

    r = start_thread(reader)
    buf.write_donate(bytearray(b"0123456789"))  # larger than capacity
    buf.close_write()
    r.join(timeout=10)
    assert bytes(collected) == b"0123456789"


def test_write_donate_respects_history_recording():
    buf = BoundedByteBuffer(64)
    buf.record_history()
    buf.write_donate(bytearray(b"logged"))
    assert buf.read(64) == b"logged"
    assert buf.history_bytes() == b"logged"


def test_write_donate_raises_when_reader_closed():
    buf = BoundedByteBuffer(64)
    buf.close_read()
    with pytest.raises(BrokenChannelError):
        buf.write_donate(bytearray(b"xy"))


# ---------------------------------------------------------------------------
# drain_up_to / read_available
# ---------------------------------------------------------------------------

def test_drain_up_to_returns_owned_view_and_eof():
    buf = BoundedByteBuffer(64)
    buf.write(b"abc")
    view = buf.drain_up_to(64)
    assert bytes(view) == b"abc"
    buf.close_write()
    assert len(buf.drain_up_to(64)) == 0  # empty view == EOF


def test_drain_up_to_view_survives_later_writes_and_grow():
    buf = BoundedByteBuffer(8)
    buf.write(b"stable!!")
    view = buf.drain_up_to(8)  # steals the storage
    buf.grow(32)
    buf.write(b"XXXXXXXX")  # fresh storage, must not touch the view
    assert bytes(view) == b"stable!!"


def test_drain_up_to_partial_take_copies_safely():
    buf = BoundedByteBuffer(64)
    buf.write(b"abcdef")
    view = buf.drain_up_to(3)  # partial: copy path
    buf.write(b"ghi")
    assert bytes(view) == b"abc"
    assert buf.read(64) == b"defghi"


def test_drain_up_to_blocks_until_data():
    buf = BoundedByteBuffer(64)
    got = []

    def drain():
        got.append(bytes(buf.drain_up_to(64)))

    t = start_thread(drain)
    time.sleep(0.05)
    assert not got  # still blocked
    buf.write(b"late")
    t.join(timeout=10)
    assert got == [b"late"]


def test_read_available_never_blocks():
    buf = BoundedByteBuffer(64)
    assert len(buf.read_available(16)) == 0  # empty, not EOF, no block
    buf.write(b"now")
    assert bytes(buf.read_available(16)) == b"now"
    buf.close_write()
    assert len(buf.read_available(16)) == 0  # EOF also reads as empty


def test_drain_and_available_raise_after_close_read():
    buf = BoundedByteBuffer(64)
    buf.close_read()
    with pytest.raises(ChannelClosedError):
        buf.drain_up_to(8)
    with pytest.raises(ChannelClosedError):
        buf.read_available(8)


# ---------------------------------------------------------------------------
# readinto
# ---------------------------------------------------------------------------

def test_readinto_fills_caller_buffer():
    buf = BoundedByteBuffer(64)
    buf.write(b"abcdef")
    target = bytearray(4)
    assert buf.readinto(target) == 4
    assert bytes(target) == b"abcd"
    assert buf.readinto(target) == 2
    assert bytes(target[:2]) == b"ef"


def test_readinto_zero_at_eof():
    buf = BoundedByteBuffer(64)
    buf.close_write()
    assert buf.readinto(bytearray(4)) == 0


def test_readinto_empty_target_returns_zero():
    buf = BoundedByteBuffer(64)
    assert buf.readinto(bytearray()) == 0


# ---------------------------------------------------------------------------
# _compact edge cases
# ---------------------------------------------------------------------------

def test_compact_threshold_boundary():
    """Compaction fires only once consumed bytes pass the fixed floor AND
    dominate the storage — neither condition alone may trigger it."""
    buf = BoundedByteBuffer(1 << 20)
    buf.write(b"x" * 10000)
    buf.read(4096)
    # floor passed? no: read_pos == 4096 is not > 4096
    assert buf._read_pos == 4096
    buf.read(1)
    # floor passed (4097 > 4096) but 4097*2 < 10000: not dominating yet
    assert buf._read_pos == 4097
    buf.read(1000)
    # 5097 > 4096 and 5097*2 >= 10000: compaction resets the origin
    assert buf._read_pos == 0
    assert buf.read(1 << 20) == b"x" * (10000 - 5097)


def test_compact_does_not_fire_below_floor():
    buf = BoundedByteBuffer(1 << 20)
    buf.write(b"y" * 4096)
    buf.read(4000)  # dominates (4000*2 >= 4096) but under the 4096 floor
    assert buf._read_pos == 4000
    assert buf.read(1 << 20) == b"y" * 96


def test_grow_while_reader_holds_pending_view():
    """Views handed out by the drain APIs own their storage, so growing
    (which may enlarge the ring's bytearray) can never invalidate them or
    raise BufferError on resize."""
    buf = BoundedByteBuffer(16)
    buf.write(b"0123456789abcdef")
    partial = buf.read_available(6)   # copy path
    rest = buf.drain_up_to(16)        # steal path
    buf.grow(1 << 16)
    buf.write(b"Z" * 1000)            # storage regrows under the views
    assert bytes(partial) == b"012345"
    assert bytes(rest) == b"6789abcdef"
    assert buf.read(2000) == b"Z" * 1000


def test_interleaved_close_write_during_drain():
    """EOF arriving while a reader drains: remaining bytes are delivered
    first, then the empty-view EOF signal — never a lost tail."""
    buf = BoundedByteBuffer(1 << 16)
    total = 200 * 1000
    writer = start_thread(lambda: (buf.write(b"d" * total), buf.close_write()))
    seen = 0
    while True:
        view = buf.drain_up_to(777)  # odd size: exercise partial takes
        if len(view) == 0:
            break
        assert bytes(view) == b"d" * len(view)
        seen += len(view)
    writer.join(timeout=10)
    assert seen == total


def test_interleaved_close_read_breaks_blocked_writer():
    buf = BoundedByteBuffer(8)
    failed = threading.Event()

    def writer():
        try:
            buf.write(b"w" * 1000)  # blocks on the tiny capacity
        except BrokenChannelError:
            failed.set()

    t = start_thread(writer)
    time.sleep(0.05)
    buf.drain_up_to(4)   # consume a little, writer refills and re-blocks
    buf.close_read()     # now break it mid-write
    assert failed.wait(timeout=10)
    t.join(timeout=10)


# ---------------------------------------------------------------------------
# read_view on the stream stack
# ---------------------------------------------------------------------------

def test_local_read_view_is_zero_copy_on_full_drain():
    buf = BoundedByteBuffer(64)
    donated = bytearray(b"straight through")
    buf.write_donate(donated)
    view = LocalInputStream(buf).read_view(64)
    assert view.obj is donated


def test_blocking_stream_forwards_read_view():
    buf = BoundedByteBuffer(64)
    buf.write(b"fwd")
    stream = BlockingInputStream(LocalInputStream(buf))
    assert bytes(stream.read_view(16)) == b"fwd"
    buf.close_write()
    assert len(stream.read_view(16)) == 0


def test_sequence_read_view_advances_across_streams():
    first, second = BoundedByteBuffer(64), BoundedByteBuffer(64)
    first.write(b"one")
    first.close_write()
    second.write(b"two")
    second.close_write()
    seq = SequenceInputStream(LocalInputStream(first))
    seq.append(LocalInputStream(second))
    assert bytes(seq.read_view(16)) == b"one"
    assert bytes(seq.read_view(16)) == b"two"
    assert len(seq.read_view(16)) == 0
    assert seq.at_eof()
