"""DeadlockMonitor unit behaviours beyond the integration tests."""

import threading
import time

import pytest

from repro.errors import ArtificialDeadlockError
from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.kpn.scheduler import DeadlockPolicy, GrowthEvent
from repro.processes import Collect, Sequence
from repro.processes.codecs import LONG
from repro.processes.networks import modulo_merge


def test_growth_event_callback_invoked():
    seen = []
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    net.monitor.on_event = seen.append
    built = modulo_merge(150, divisor=10, network=net, channel_capacity=16)
    built.run(timeout=60)
    assert seen
    assert all(isinstance(e, GrowthEvent) for e in seen)
    assert all(e.new_capacity == 2 * e.old_capacity for e in seen)


def test_growth_factor_three():
    net = Network(policy=DeadlockPolicy(growth_factor=3))
    built = modulo_merge(150, divisor=10, network=net, channel_capacity=16)
    built.run(timeout=60)
    for e in net.growth_events():
        assert e.new_capacity == 3 * e.old_capacity


def test_growth_chooses_smallest_full_channel():
    """With mixed capacities, Parks' rule targets the smallest one."""
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    # build fig-13 by hand with asymmetric capacities
    from repro.processes import ModuloRouter, OrderedMerge

    src = net.channel(1024, name="gs-src")
    upper = net.channel(1024, name="gs-upper")
    lower = net.channel(16, name="gs-lower")   # the deliberate bottleneck
    out_ch = net.channel(1024, name="gs-out")
    out = []
    net.add(Sequence(src.get_output_stream(), start=1, iterations=300))
    net.add(ModuloRouter(src.get_input_stream(), upper.get_output_stream(),
                         lower.get_output_stream(), 10))
    net.add(OrderedMerge(upper.get_input_stream(), lower.get_input_stream(),
                         out_ch.get_output_stream()))
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(1, 301))
    grown = {e.channel_name for e in net.growth_events()}
    assert grown == {"gs-lower"}


def test_settle_window_filters_transient_stalls():
    """A brief all-blocked moment while data is in flight must not grow
    anything: a producer/consumer pair at capacity crosses through
    transient all-blocked states constantly."""
    net = Network(policy=DeadlockPolicy(settle_ms=10))
    ch = net.channel(capacity=8)
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=2000))
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(2000))
    assert net.growth_events() == []  # never a real deadlock


def test_monitor_stop_idempotent():
    net = Network()
    net.monitor.start()
    net.monitor.stop()
    net.monitor.stop()


def test_kick_before_start_harmless():
    net = Network()
    net.monitor.kick()  # no thread yet: must not explode
    net.monitor.start()
    net.monitor.stop()


def test_blocked_processes_recorded_in_diagnosis():
    net = Network(policy=DeadlockPolicy(grow=False))
    built = modulo_merge(150, divisor=10, network=net, channel_capacity=16)
    with pytest.raises(ArtificialDeadlockError) as info:
        built.run(timeout=60)
    assert info.value.blocked  # names of the stuck processes
    assert any("Mod" in n or "Merge" in n for n in info.value.blocked)
