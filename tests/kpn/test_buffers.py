"""Unit tests for BoundedByteBuffer: the contract everything rests on."""

import threading
import time

import pytest

from repro.errors import BrokenChannelError, ChannelClosedError
from repro.kpn.buffers import BlockAccounting, BoundedByteBuffer

from tests.conftest import start_thread


# ---------------------------------------------------------------------------
# basic FIFO behaviour
# ---------------------------------------------------------------------------

def test_write_then_read_roundtrip():
    buf = BoundedByteBuffer(64)
    buf.write(b"hello")
    assert buf.read(5) == b"hello"


def test_fifo_order_preserved_across_chunks():
    buf = BoundedByteBuffer(8)
    collected = []

    def reader():
        while True:
            chunk = buf.read(3)
            if not chunk:
                return
            collected.append(chunk)

    t = start_thread(reader)
    buf.write(b"abcdefghijklmnopqrstuvwxyz")
    buf.close_write()
    t.join(timeout=10)
    assert b"".join(collected) == b"abcdefghijklmnopqrstuvwxyz"


def test_read_returns_at_most_max_bytes():
    buf = BoundedByteBuffer(64)
    buf.write(b"abcdef")
    assert buf.read(4) == b"abcd"
    assert buf.read(4) == b"ef"


def test_read_zero_bytes_is_empty():
    buf = BoundedByteBuffer(64)
    assert buf.read(0) == b""


def test_write_empty_is_noop():
    buf = BoundedByteBuffer(64)
    buf.write(b"")
    assert buf.available() == 0


def test_available_and_free_space():
    buf = BoundedByteBuffer(10)
    buf.write(b"abc")
    assert buf.available() == 3
    assert buf.free_space() == 7


def test_counters_track_totals():
    buf = BoundedByteBuffer(64)
    buf.write(b"abcd")
    buf.read(2)
    assert buf.total_written == 4
    assert buf.total_read == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedByteBuffer(0)


# ---------------------------------------------------------------------------
# blocking semantics
# ---------------------------------------------------------------------------

def test_read_blocks_until_data_arrives():
    buf = BoundedByteBuffer(64)
    result = []
    t = start_thread(lambda: result.append(buf.read(3)))
    time.sleep(0.05)
    assert not result, "read returned before any data was written"
    buf.write(b"xyz")
    t.join(timeout=10)
    assert result == [b"xyz"]


def test_write_blocks_when_full():
    buf = BoundedByteBuffer(4)
    buf.write(b"abcd")
    done = threading.Event()

    def writer():
        buf.write(b"e")
        done.set()

    start_thread(writer)
    time.sleep(0.05)
    assert not done.is_set(), "write completed despite full buffer"
    assert buf.read(2) == b"ab"
    assert done.wait(timeout=10)


def test_oversized_write_delivered_in_chunks():
    buf = BoundedByteBuffer(4)
    received = []

    def reader():
        while True:
            chunk = buf.read(100)
            if not chunk:
                return
            received.append(chunk)

    t = start_thread(reader)
    buf.write(b"0123456789" * 10)  # 100 bytes through a 4-byte pipe
    buf.close_write()
    t.join(timeout=10)
    assert b"".join(received) == b"0123456789" * 10


# ---------------------------------------------------------------------------
# close semantics (paper section 3.4)
# ---------------------------------------------------------------------------

def test_close_write_lets_reader_drain_then_eof():
    buf = BoundedByteBuffer(64)
    buf.write(b"tail")
    buf.close_write()
    assert buf.read(2) == b"ta"     # drains buffered data first
    assert buf.read(2) == b"il"
    assert buf.read(2) == b""       # only then end of stream


def test_close_read_breaks_subsequent_writes_immediately():
    buf = BoundedByteBuffer(64)
    buf.write(b"unread")
    buf.close_read()
    with pytest.raises(BrokenChannelError):
        buf.write(b"more")


def test_close_read_wakes_blocked_writer():
    buf = BoundedByteBuffer(2)
    buf.write(b"ab")
    errors = []

    def writer():
        try:
            buf.write(b"c")
        except BrokenChannelError as exc:
            errors.append(exc)

    t = start_thread(writer)
    time.sleep(0.05)
    buf.close_read()
    t.join(timeout=10)
    assert len(errors) == 1


def test_close_write_wakes_blocked_reader_with_eof():
    buf = BoundedByteBuffer(64)
    result = []
    t = start_thread(lambda: result.append(buf.read(3)))
    time.sleep(0.05)
    buf.close_write()
    t.join(timeout=10)
    assert result == [b""]


def test_read_after_close_read_raises():
    buf = BoundedByteBuffer(64)
    buf.close_read()
    with pytest.raises(ChannelClosedError):
        buf.read(1)


def test_write_after_close_write_raises():
    buf = BoundedByteBuffer(64)
    buf.close_write()
    with pytest.raises(ChannelClosedError):
        buf.write(b"x")


def test_double_close_is_idempotent():
    buf = BoundedByteBuffer(64)
    buf.close_write()
    buf.close_write()
    buf.close_read()
    buf.close_read()


def test_at_eof_reflects_drain_state():
    buf = BoundedByteBuffer(64)
    buf.write(b"x")
    buf.close_write()
    assert not buf.at_eof()
    buf.read(1)
    assert buf.at_eof()


# ---------------------------------------------------------------------------
# growth (Parks bounded scheduling)
# ---------------------------------------------------------------------------

def test_grow_increases_capacity():
    buf = BoundedByteBuffer(4)
    buf.grow(16)
    assert buf.capacity == 16
    buf.write(b"0123456789")  # would have blocked at 4


def test_grow_wakes_blocked_writer():
    buf = BoundedByteBuffer(2)
    buf.write(b"ab")
    done = threading.Event()

    def writer():
        buf.write(b"cdef")
        done.set()

    start_thread(writer)
    time.sleep(0.05)
    assert not done.is_set()
    buf.grow(16)
    assert done.wait(timeout=10)
    assert buf.available() == 6


def test_shrink_rejected():
    buf = BoundedByteBuffer(16)
    with pytest.raises(ValueError):
        buf.grow(8)


# ---------------------------------------------------------------------------
# drain (migration support)
# ---------------------------------------------------------------------------

def test_drain_returns_everything_and_unblocks_writers():
    buf = BoundedByteBuffer(4)
    buf.write(b"abcd")
    done = threading.Event()

    def writer():
        buf.write(b"ef")
        done.set()

    start_thread(writer)
    time.sleep(0.05)
    assert buf.drain() == b"abcd"
    assert done.wait(timeout=10)
    assert buf.drain() == b"ef"


# ---------------------------------------------------------------------------
# accounting (deadlock-monitor feed)
# ---------------------------------------------------------------------------

def test_accounting_records_blocked_reader():
    acct = BlockAccounting()
    buf = BoundedByteBuffer(64, accounting=acct)
    t = start_thread(lambda: buf.read(1))
    time.sleep(0.05)
    assert acct.read_blocked == 1
    snap = acct.snapshot()
    assert list(snap.values())[0] == (buf, "read")
    buf.write(b"x")
    t.join(timeout=10)
    assert acct.total_blocked == 0


def test_accounting_records_blocked_writer():
    acct = BlockAccounting()
    buf = BoundedByteBuffer(1, accounting=acct)
    buf.write(b"a")
    t = start_thread(lambda: buf.write(b"b"))
    time.sleep(0.05)
    assert acct.write_blocked == 1
    buf.read(1)
    t.join(timeout=10)
    assert acct.total_blocked == 0


def test_accounting_generation_bumps_on_transitions():
    acct = BlockAccounting()
    buf = BoundedByteBuffer(64, accounting=acct)
    g0 = acct.generation
    t = start_thread(lambda: buf.read(1))
    time.sleep(0.05)
    assert acct.generation > g0
    buf.write(b"x")
    t.join(timeout=10)


def test_accounting_on_change_callback_fires():
    calls = []
    acct = BlockAccounting(on_change=lambda: calls.append(1))
    buf = BoundedByteBuffer(64, accounting=acct)
    t = start_thread(lambda: buf.read(1))
    time.sleep(0.05)
    buf.write(b"x")
    t.join(timeout=10)
    assert len(calls) >= 2  # enter + exit at least


# ---------------------------------------------------------------------------
# listeners (Turnstile wait-any feed)
# ---------------------------------------------------------------------------

def test_listener_fires_on_data_and_eof():
    buf = BoundedByteBuffer(64)
    event = threading.Event()
    buf.add_listener(event.set)
    buf.write(b"x")
    assert event.is_set()
    event.clear()
    buf.close_write()
    assert event.is_set()


def test_remove_listener():
    buf = BoundedByteBuffer(64)
    event = threading.Event()
    buf.add_listener(event.set)
    buf.remove_listener(event.set)
    buf.write(b"x")
    assert not event.is_set()
    buf.remove_listener(event.set)  # removing twice is harmless
