"""Channel-history capture and the full-history determinacy check."""

import random

import pytest

from repro.kpn import Network
from repro.kpn.history import HistoryCapture, decode_bytes, infer_codecs
from repro.processes import (Collect, Duplicate, FromIterable, MapProcess,
                             Scale, Sequence, fibonacci)
from repro.processes.codecs import DOUBLE, LONG
from repro.semantics.compile import compile_network


def test_decode_bytes_roundtrip():
    data = b"".join(LONG.encode(v) for v in (1, -2, 3))
    assert decode_bytes(data, LONG) == (1, -2, 3)
    assert decode_bytes(b"", LONG) == ()


def test_decode_bytes_partial_element_raises():
    from repro.errors import EndOfStreamError

    with pytest.raises(EndOfStreamError):
        decode_bytes(b"\x00\x01", LONG)


def test_capture_simple_pipeline():
    net = Network()
    a, b = net.channels_n(2)
    capture = HistoryCapture(net)
    net.add(FromIterable(a.get_output_stream(), [5, 6, 7]))
    net.add(Scale(a.get_input_stream(), b.get_output_stream(), 10))
    net.add(Collect(b.get_input_stream(), []))
    net.run(timeout=30)
    histories = capture.decode()
    assert histories["ch-0"] == (5, 6, 7)
    assert histories["ch-1"] == (50, 60, 70)


def test_infer_codecs_through_byte_level_chain():
    net = Network()
    a, b, c = net.channels_n(3)
    net.add(FromIterable(a.get_output_stream(), [1.5], codec=DOUBLE))
    net.add(Duplicate(a.get_input_stream(), [b.get_output_stream()]))
    from repro.processes import Identity

    net.add(Identity(b.get_input_stream(), c.get_output_stream()))
    net.add(Collect(c.get_input_stream(), [], codec=DOUBLE))
    codecs = infer_codecs(net)
    assert codecs["ch-0"] is codecs["ch-1"] is codecs["ch-2"] is DOUBLE


def test_capture_includes_unconsumed_bytes():
    """History = everything *written*, even bytes no one read."""
    net = Network()
    ch = net.channel(name="over")
    capture = HistoryCapture(net)
    net.add(Sequence(ch.get_output_stream(), iterations=0))
    net.add(Collect(ch.get_input_stream(), [], iterations=3))
    net.run(timeout=30)
    history = capture.decode()["over"]
    assert history[:3] == (0, 1, 2)
    assert len(history) >= 3  # over-production before the cut is recorded


def test_fibonacci_internal_histories_equal_fixed_point():
    """The full Kahn claim: EVERY channel's history equals its stream in
    the least fixed point (up to the prefix actually produced)."""
    built = fibonacci(15)
    net = built.network
    capture = HistoryCapture(net)
    compiled = compile_network(net, max_len=40)
    predicted = compiled.predict_all()
    built.run(timeout=60)
    histories = capture.decode()
    assert len(histories) >= 8
    for name, history in histories.items():
        expect = predicted[name]
        # operational history is a prefix of the fixed point (downstream
        # cut can stop producers early), and covers what sinks consumed
        assert history == expect[: len(history)], name


def test_random_networks_full_history_determinacy():
    """Random graphs: every internal channel equals the fixed point."""
    from repro.semantics.randomnets import build_operational, random_spec

    for seed in (5, 77, 1234, 98765):
        spec = random_spec(random.Random(seed), max_nodes=8)
        net, sinks = build_operational(spec)
        capture = HistoryCapture(net)
        compiled = compile_network(net, max_len=500)
        predicted = compiled.predict_all()
        net.run(timeout=60)
        for name, history in capture.decode().items():
            assert history == predicted[name][: len(history)], (seed, name)
            # sources are finite and nothing cuts upstream here: exact
            assert history == predicted[name], (seed, name)


def test_histories_identical_across_capacities():
    def run(capacity):
        net = Network(default_capacity=capacity)
        built = fibonacci(12, network=net)
        capture = HistoryCapture(net)
        built.run(timeout=60)
        return capture.decode()

    a, b = run(32), run(1 << 16)
    shared = set(a) & set(b)
    assert len(shared) >= 8
    for name in shared:
        # modulo the over-production tail (cut timing differs), the
        # consumed prefixes agree; compare the common prefix
        n = min(len(a[name]), len(b[name]))
        assert a[name][:n] == b[name][:n], name


def test_capture_refresh_picks_up_dynamic_channels():
    from repro.processes import primes

    net = Network()
    built = primes(count=8, network=net)
    capture = HistoryCapture(net)
    built.run(timeout=60)
    capture.refresh()          # arm any channels created mid-run
    raw = capture.raw()
    assert any("mod" in name for name in raw)  # sieve-inserted channels seen
