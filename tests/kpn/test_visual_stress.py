"""Graph rendering + scale/stress tests."""

import time

import pytest

from repro.kpn import Network
from repro.kpn.tracing import Tracer
from repro.kpn.visual import to_ascii, to_dot
from repro.processes import (Collect, Duplicate, MapProcess, Scale, Sequence,
                             fibonacci)


# ---------------------------------------------------------------------------
# visual export
# ---------------------------------------------------------------------------

def test_dot_export_structure():
    built = fibonacci(5)
    dot = to_dot(built.network, title="fibonacci")
    assert dot.startswith("digraph kpn {")
    assert dot.rstrip().endswith("}")
    assert '"Cons-b"' in dot and '"Add-g"' in dot
    assert "->" in dot
    assert "fibonacci" in dot


def test_dot_role_colors_differ():
    built = fibonacci(5)
    dot = to_dot(built.network)
    # sink (Collect) and routing (Duplicate) nodes get distinct fills
    assert "#fde9e7" in dot and "#e7eefb" in dot


def test_dot_with_trace_annotations():
    net = Network()
    ch = net.channel(name="annotated")
    net.add(Sequence(ch.get_output_stream(), iterations=100, name="s"))
    net.add(Collect(ch.get_input_stream(), [], name="c"))
    with Tracer(net, period=0.001) as tracer:
        net.run(timeout=30)
    dot = to_dot(net, trace=tracer.report())
    assert "800B" in dot  # 100 longs through the annotated channel


def test_dot_marks_remote_links():
    from repro.distributed import ComputeServer, ServerClient

    server = ComputeServer(name="viz").start()
    client = ServerClient("127.0.0.1", server.port)
    try:
        net = Network()
        ch = net.channel(name="outbound")
        out = []
        client.run(Sequence(ch.get_output_stream(), iterations=3, name="r"))
        net.add(Collect(ch.get_input_stream(), out, name="c"))
        net.run(timeout=30)
        dot = to_dot(net)
        assert "(remote)" in dot and "dashed" in dot
    finally:
        client.close()
        server.stop()


def test_ascii_export():
    built = fibonacci(5)
    text = to_ascii(built.network)
    assert "processes" in text.splitlines()[0]
    assert "--fib-" in text


# ---------------------------------------------------------------------------
# stress / scale
# ---------------------------------------------------------------------------

def test_deep_pipeline_100_stages():
    net = Network()
    stages = 100
    chans = net.channels_n(stages + 1)
    out = []
    net.add(Sequence(chans[0].get_output_stream(), iterations=50))
    for i in range(stages):
        net.add(MapProcess(chans[i].get_input_stream(),
                           chans[i + 1].get_output_stream(),
                           lambda x: x + 1, name=f"st{i}"))
    net.add(Collect(chans[-1].get_input_stream(), out))
    net.run(timeout=120)
    assert out == [stages + k for k in range(50)]


def test_wide_fanout_32_branches():
    net = Network()
    src = net.channel()
    branches = net.channels_n(32, prefix="fan")
    outs = [[] for _ in range(32)]
    net.add(Sequence(src.get_output_stream(), iterations=40))
    net.add(Duplicate(src.get_input_stream(),
                      [b.get_output_stream() for b in branches]))
    for b, o in zip(branches, outs):
        net.add(Collect(b.get_input_stream(), o))
    net.run(timeout=120)
    assert all(o == list(range(40)) for o in outs)


def test_high_volume_throughput():
    """100k elements through a three-stage pipeline in bounded time."""
    net = Network()
    a, b = net.channels_n(2, capacity=1 << 16)
    out = []
    n = 100_000
    net.add(Sequence(a.get_output_stream(), iterations=n))
    net.add(Scale(a.get_input_stream(), b.get_output_stream(), 2))
    net.add(Collect(b.get_input_stream(), out))
    t0 = time.perf_counter()
    net.run(timeout=300)
    elapsed = time.perf_counter() - t0
    assert len(out) == n
    assert out[-1] == 2 * (n - 1)
    assert elapsed < 120  # generous; typical is a few seconds


def test_many_small_networks_sequentially():
    """Churn: create/run/destroy 50 networks; no cross-talk, no leak."""
    for k in range(50):
        net = Network(name=f"churn-{k}")
        ch = net.channel()
        out = []
        net.add(Sequence(ch.get_output_stream(), start=k, iterations=5))
        net.add(Collect(ch.get_input_stream(), out))
        net.run(timeout=30)
        assert out == list(range(k, k + 5))


def test_sieve_at_depth():
    """A few hundred dynamically inserted processes (one per prime)."""
    from repro.processes import primes
    from repro.semantics import primes_reference

    out = primes(below=1000).run(timeout=300)
    assert out == primes_reference(below=1000)
    assert len(out) == 168
