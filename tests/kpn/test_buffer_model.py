"""Model-based testing of BoundedByteBuffer against a reference deque.

A hypothesis state machine drives the buffer through arbitrary
interleavings of writes, partial reads, drains, growth, and closes, and
checks every observable against a trivially correct byte-list model.
Blocking operations are exercised non-blockingly by bounding each write
to the free space and each read to the available bytes — the blocking
paths themselves are covered by tests/kpn/test_buffers.py.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)
from hypothesis import strategies as st

from repro.errors import BrokenChannelError, ChannelClosedError
from repro.kpn.buffers import BoundedByteBuffer


class BufferMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.capacity = 32
        self.buf = BoundedByteBuffer(self.capacity)
        self.model = bytearray()
        self.read_closed = False
        self.write_closed = False

    # -- rules ----------------------------------------------------------

    @rule(data=st.binary(min_size=1, max_size=16))
    def write(self, data):
        space = self.capacity - len(self.model)
        chunk = data[:space]  # stay under capacity: no blocking
        if not chunk:
            return
        # precedence mirrors the implementation: your own closed end
        # errors before the peer's
        if self.write_closed:
            with pytest.raises(ChannelClosedError):
                self.buf.write(chunk)
        elif self.read_closed:
            with pytest.raises(BrokenChannelError):
                self.buf.write(chunk)
        else:
            self.buf.write(chunk)
            self.model.extend(chunk)

    @rule(n=st.integers(min_value=1, max_value=16))
    def read(self, n):
        if self.read_closed:
            with pytest.raises(ChannelClosedError):
                self.buf.read(n)
            return
        if not self.model:
            if self.write_closed:
                assert self.buf.read(n) == b""
            return  # would block
        got = self.buf.read(n)
        expect = bytes(self.model[:n])
        assert got == expect
        del self.model[: len(got)]

    @rule()
    def drain(self):
        if self.read_closed:
            got = self.buf.drain()
            assert got == b""
            return
        got = self.buf.drain()
        assert got == bytes(self.model)
        self.model.clear()

    @rule(extra=st.integers(min_value=1, max_value=64))
    def grow(self, extra):
        self.capacity += extra
        self.buf.grow(self.capacity)

    @rule()
    def close_write(self):
        self.buf.close_write()
        self.write_closed = True

    @rule()
    def close_read(self):
        self.buf.close_read()
        self.read_closed = True
        self.model.clear()  # close_read discards buffered data

    # -- invariants ----------------------------------------------------------

    @invariant()
    def available_matches_model(self):
        if not self.read_closed:
            assert self.buf.available() == len(self.model)

    @invariant()
    def capacity_matches(self):
        assert self.buf.capacity == self.capacity

    @invariant()
    def totals_consistent(self):
        assert self.buf.total_written >= self.buf.total_read
        if not self.read_closed:
            assert self.buf.total_written - self.buf.total_read == \
                len(self.model)

    @invariant()
    def eof_state_correct(self):
        if not self.read_closed:
            assert self.buf.at_eof() == (self.write_closed and not self.model)


BufferModelTest = BufferMachine.TestCase
BufferModelTest.settings = settings(max_examples=60,
                                    stateful_step_count=40,
                                    deadline=None)
