"""Typed layers over byte channels: Data*Stream, Object*Stream, codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChannelError, EndOfStreamError
from repro.kpn.channel import Channel
from repro.kpn.data import DataInputStream, DataOutputStream
from repro.kpn.objects import ObjectInputStream, ObjectOutputStream, dumps_framed
from repro.processes.codecs import (BOOL, DOUBLE, INT, LONG, OBJECT,
                                    StructCodec, get_codec)


def fresh():
    ch = Channel(1 << 16)
    return (DataOutputStream(ch.get_output_stream()),
            DataInputStream(ch.get_input_stream()), ch)


# ---------------------------------------------------------------------------
# DataOutputStream / DataInputStream
# ---------------------------------------------------------------------------

def test_primitive_roundtrip_each_type():
    out, inp, _ = fresh()
    out.write_bool(True)
    out.write_byte(-5)
    out.write_int(-123456)
    out.write_long(1 << 40)
    out.write_float(1.5)
    out.write_double(3.141592653589793)
    out.write_utf("héllo ✓")
    assert inp.read_bool() is True
    assert inp.read_byte() == -5
    assert inp.read_int() == -123456
    assert inp.read_long() == 1 << 40
    assert inp.read_float() == 1.5
    assert inp.read_double() == 3.141592653589793
    assert inp.read_utf() == "héllo ✓"


@given(st.lists(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
                max_size=50))
@settings(max_examples=50, deadline=None)
def test_long_stream_roundtrip_property(values):
    out, inp, _ = fresh()
    for v in values:
        out.write_long(v)
    assert [inp.read_long() for _ in values] == values


@given(st.lists(st.floats(allow_nan=False), max_size=50))
@settings(max_examples=50, deadline=None)
def test_double_stream_roundtrip_property(values):
    out, inp, _ = fresh()
    for v in values:
        out.write_double(v)
    assert [inp.read_double() for _ in values] == values


def test_utf_too_long_rejected():
    out, _, _ = fresh()
    with pytest.raises(ValueError):
        out.write_utf("x" * 70000)


def test_eof_mid_value_raises():
    out, inp, ch = fresh()
    ch.get_output_stream().write(b"\x00\x01")  # half an int
    out.close()
    with pytest.raises(EndOfStreamError):
        inp.read_int()


def test_interleaved_types_preserve_framing():
    out, inp, _ = fresh()
    for k in range(10):
        out.write_int(k)
        out.write_utf(f"v{k}")
    for k in range(10):
        assert inp.read_int() == k
        assert inp.read_utf() == f"v{k}"


# ---------------------------------------------------------------------------
# ObjectOutputStream / ObjectInputStream
# ---------------------------------------------------------------------------

def test_object_roundtrip_various():
    ch = Channel(1 << 16)
    out = ObjectOutputStream(ch.get_output_stream())
    inp = ObjectInputStream(ch.get_input_stream())
    samples = [None, 42, "text", [1, 2, {"a": (3, 4)}], {"k": b"bytes"}]
    for obj in samples:
        out.write_object(obj)
    for obj in samples:
        assert inp.read_object() == obj


@given(st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=20))
@settings(max_examples=40, deadline=None)
def test_object_roundtrip_property(obj):
    ch = Channel(1 << 20)
    ObjectOutputStream(ch.get_output_stream()).write_object(obj)
    assert ObjectInputStream(ch.get_input_stream()).read_object() == obj


def test_corrupted_length_prefix_detected():
    ch = Channel(64)
    ch.get_output_stream().write(b"\xff\xff\xff\xff")  # 4 GiB frame claim
    inp = ObjectInputStream(ch.get_input_stream())
    with pytest.raises(ChannelError, match="exceeds cap"):
        inp.read_object()


def test_dumps_framed_standalone():
    frame = dumps_framed({"x": 1})
    import pickle
    import struct

    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert pickle.loads(frame[4:]) == {"x": 1}


# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("codec,value", [
    (LONG, -(1 << 62)), (INT, 2 ** 31 - 1), (DOUBLE, 2.5), (BOOL, True),
    (OBJECT, {"nested": [1, 2]}),
])
def test_codec_roundtrip(codec, value):
    ch = Channel(1 << 16)
    codec.write(ch.get_output_stream(), value)
    assert codec.read(ch.get_input_stream()) == value


def test_codec_encode_matches_write():
    ch = Channel(64)
    LONG.write(ch.get_output_stream(), 7)
    assert ch.get_input_stream().read_exactly(8) == LONG.encode(7)


def test_get_codec_by_name_and_instance():
    assert get_codec("long") is LONG
    assert get_codec(LONG) is LONG
    with pytest.raises(ValueError):
        get_codec("nope")


def test_named_codecs_pickle_to_singletons():
    import pickle

    assert pickle.loads(pickle.dumps(LONG)) is LONG
    assert pickle.loads(pickle.dumps(OBJECT)) is OBJECT


def test_adhoc_struct_codec_pickles_by_format():
    import pickle

    c = StructCodec(">h", "short")
    c2 = pickle.loads(pickle.dumps(c))
    assert c2.encode(-7) == c.encode(-7)


def test_byte_level_process_between_typed_ends():
    """A type-blind copier between typed ends must preserve framing."""
    from repro.kpn import Network
    from repro.processes import Collect, Identity, Sequence

    net = Network()
    a, b = net.channels_n(2)
    out: list[int] = []
    net.add(Sequence(a.get_output_stream(), start=5, iterations=20))
    net.add(Identity(a.get_input_stream(), b.get_output_stream()))
    net.add(Collect(b.get_input_stream(), out))
    net.run(timeout=30)
    assert out == list(range(5, 25))
