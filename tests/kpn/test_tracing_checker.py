"""Tracer and graph consistency checker."""

import json

import pytest

from repro.kpn import Network
from repro.kpn.checker import GraphConsistencyError, Issue, check_network
from repro.kpn.scheduler import DeadlockPolicy
from repro.kpn.tracing import Tracer
from repro.processes import (Collect, Duplicate, FromIterable, MapProcess,
                             Sequence, fibonacci, hamming, primes)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_tracer_collects_channel_stats():
    net = Network()
    ch = net.channel(name="traced")
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=500))
    net.add(Collect(ch.get_input_stream(), out))
    with Tracer(net, period=0.001) as tracer:
        net.run(timeout=60)
    report = tracer.report()
    assert report.samples >= 1
    assert report.channels["traced"].total_bytes == 500 * 8
    # high-water is sampling-dependent: bounded by capacity, and usually
    # (but not provably, under scheduler load) nonzero
    assert 0 <= report.channels["traced"].high_water <= 1024
    assert report.total_bytes_moved() == 500 * 8


def test_tracer_sees_dynamic_channels():
    net = Network()
    built = primes(count=10, network=net)
    with Tracer(net, period=0.001) as tracer:
        built.run(timeout=60)
    report = tracer.report()
    # one channel per inserted Modulo filter, named after the sift
    assert any("mod" in name for name in report.channels)


def test_tracer_records_growth_events():
    net = Network(policy=DeadlockPolicy(growth_factor=2))
    built = hamming(25, network=net, channel_capacity=16)
    with Tracer(net, period=0.002) as tracer:
        built.run(timeout=120)
    report = tracer.report()
    assert report.growth_events
    grown = {e["channel"] for e in report.growth_events}
    assert any(report.channels[name].grew for name in grown
               if name in report.channels)


def test_tracer_summary_and_json():
    net = Network()
    ch = net.channel(name="j")
    net.add(Sequence(ch.get_output_stream(), iterations=10))
    net.add(Collect(ch.get_input_stream(), []))
    with Tracer(net) as tracer:
        net.run(timeout=30)
    report = tracer.report()
    assert "bytes moved" in report.summary()
    parsed = json.loads(report.to_json())
    assert parsed["channels"]["j"]["total_bytes"] == 80


def test_tracer_blocked_timeline():
    net = Network()
    ch = net.channel(capacity=8)  # tiny: the producer will block
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=2000))
    net.add(Collect(ch.get_input_stream(), out))
    with Tracer(net, period=0.0005) as tracer:
        net.run(timeout=60)
    r, w = tracer.report().max_blocked()
    assert w >= 1  # the write-blocked producer was observed


# ---------------------------------------------------------------------------
# checker
# ---------------------------------------------------------------------------

def codes(issues):
    return {i.code for i in issues}


def test_clean_pipeline_passes():
    net = Network()
    a, b = net.channels_n(2)
    net.add(FromIterable(a.get_output_stream(), [1]))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(), abs))
    net.add(Collect(b.get_input_stream(), []))
    issues = check_network(net, strict=True)  # must not raise
    assert not any(i.severity == "error" for i in issues)


def test_multi_consumer_detected():
    net = Network()
    ch = net.channel()
    net.add(FromIterable(ch.get_output_stream(), [1]))
    net.add(Collect(ch.get_input_stream(), [], name="c1"))
    net.add(Collect(ch.get_input_stream(), [], name="c2"))
    issues = check_network(net)
    assert "multi-consumer" in codes(issues)
    with pytest.raises(GraphConsistencyError):
        check_network(net, strict=True)


def test_multi_producer_detected():
    net = Network()
    ch = net.channel()
    net.add(FromIterable(ch.get_output_stream(), [1], name="p1"))
    net.add(FromIterable(ch.get_output_stream(), [2], name="p2"))
    net.add(Collect(ch.get_input_stream(), []))
    assert "multi-producer" in codes(check_network(net))


def test_no_producer_detected():
    net = Network()
    ch = net.channel()
    net.add(Collect(ch.get_input_stream(), []))
    assert "no-producer" in codes(check_network(net))


def test_no_consumer_detected():
    net = Network()
    ch = net.channel()
    net.add(FromIterable(ch.get_output_stream(), [1]))
    assert "no-consumer" in codes(check_network(net))


def test_orphan_channel_warned():
    net = Network()
    net.channel(name="floating")
    assert "orphan-channel" in codes(check_network(net))


def test_self_loop_detected():
    net = Network()
    ch = net.channel()
    net.add(MapProcess(ch.get_input_stream(), ch.get_output_stream(), abs,
                       name="ouroboros"))
    assert "self-loop" in codes(check_network(net))


def test_fibonacci_cycle_proved_bounded():
    # fibonacci's feedback loops all carry initial tokens (Cons defers its
    # tail), so the blanket cycle flag is discharged by the static proof
    built = fibonacci(5)
    issues = check_network(built.network)
    assert "cycle-proved-bounded" in codes(issues)
    assert "cycle" not in codes(issues)
    assert not any(i.severity == "error" for i in issues)


def test_unproved_cycle_reported_as_info_with_monitor():
    # hamming's OrderedMerge carries no rate-balance declaration (it is
    # genuinely unbounded at fixed capacities), so no proof discharges it
    built = hamming(5)
    issues = check_network(built.network)
    assert "cycle" in codes(issues)
    assert not any(i.severity == "error" for i in issues)


def test_proved_bounded_cycle_not_warned_without_monitor():
    # a proof makes the monitor unnecessary: no warning even when it is off
    net = Network(bounded=False)
    built = fibonacci(5, network=net)
    issues = check_network(built.network)
    assert "cycle-proved-bounded" in codes(issues)
    assert "cycle-unbounded-monitorless" not in codes(issues)


def test_unproved_cycle_warned_without_monitor():
    net = Network(bounded=False)
    built = hamming(5, network=net)
    issues = check_network(built.network)
    assert "cycle-unbounded-monitorless" in codes(issues)


def test_non_terminating_flagged():
    net = Network()
    ch = net.channel()
    net.add(Sequence(ch.get_output_stream()))          # unbounded
    net.add(Collect(ch.get_input_stream(), []))        # unbounded
    assert "non-terminating" in codes(check_network(net))


def test_checked_graph_actually_runs():
    """A graph that passes strict checking runs to completion."""
    built = fibonacci(10)
    check_network(built.network, strict=True)
    assert built.run(timeout=60) == [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]


# ---------------------------------------------------------------------------
# composite recursion
# ---------------------------------------------------------------------------

def test_checker_recurses_into_nested_composites():
    from repro.kpn.process import CompositeProcess

    net = Network()
    ch = net.channel(name="contested")
    inner = CompositeProcess(
        [Sequence(ch.get_output_stream(), name="writer-a")], name="inner")
    outer = CompositeProcess([inner], name="outer")
    net.add(outer)
    net.add(Sequence(ch.get_output_stream(), name="writer-b"))
    net.add(Collect(ch.get_input_stream(), []))
    issues = check_network(net)
    multi = [i for i in issues if i.code == "multi-producer"]
    assert multi, "producer buried two composites deep must still be seen"
    assert "writer-a" in multi[0].message


def test_composite_tracked_boundary_stream_counts_as_endpoint():
    # a composite may track a boundary stream itself (so it migrates and
    # closes with the group) without any leaf tracking it: the channel is
    # connected, not a no-producer error
    from repro.kpn.process import CompositeProcess

    net = Network()
    ch = net.channel(name="boundary")
    comp = CompositeProcess([], name="facade")
    comp.track(ch.get_output_stream())
    net.add(comp)
    net.add(Collect(ch.get_input_stream(), []))
    issues = check_network(net)
    assert not any(i.code == "no-producer" for i in issues)


def test_composite_retracking_member_stream_not_multi_producer():
    # re-tracking a member's endpoint at the composite boundary is the
    # grouping idiom, not a second producer
    from repro.kpn.process import CompositeProcess

    net = Network()
    ch = net.channel(name="shared-track")
    leaf = Sequence(ch.get_output_stream(), name="leaf-writer")
    comp = CompositeProcess([leaf], name="group")
    comp.track(ch.get_output_stream())
    net.add(comp)
    net.add(Collect(ch.get_input_stream(), []))
    issues = check_network(net)
    assert not any(i.code == "multi-producer" for i in issues)
