"""Unit tests for the Figure-3 stream layer classes."""

import threading
import time

import pytest

from repro.errors import ChannelClosedError, EndOfStreamError
from repro.kpn.buffers import BoundedByteBuffer
from repro.kpn.streams import (BlockingInputStream, LocalInputStream,
                               LocalOutputStream, SequenceInputStream,
                               SequenceOutputStream, concatenated)

from tests.conftest import start_thread


def pipe(capacity=64):
    buf = BoundedByteBuffer(capacity)
    return LocalOutputStream(buf), LocalInputStream(buf), buf


# ---------------------------------------------------------------------------
# local streams
# ---------------------------------------------------------------------------

def test_local_streams_roundtrip():
    out, inp, _ = pipe()
    out.write(b"data")
    assert inp.read(10) == b"data"


def test_local_input_close_breaks_writer():
    out, inp, _ = pipe()
    inp.close()
    from repro.errors import BrokenChannelError

    with pytest.raises(BrokenChannelError):
        out.write(b"x")


def test_local_output_close_gives_eof_after_drain():
    out, inp, _ = pipe()
    out.write(b"ab")
    out.close()
    assert inp.read(10) == b"ab"
    assert inp.read(10) == b""
    assert inp.at_eof()


def test_local_available():
    out, inp, _ = pipe()
    out.write(b"abc")
    assert inp.available() == 3


# ---------------------------------------------------------------------------
# BlockingInputStream
# ---------------------------------------------------------------------------

def test_read_exactly_accumulates_across_short_reads():
    out, inp, _ = pipe(capacity=2)  # forces chunked delivery
    blocking = BlockingInputStream(inp)
    result = []
    t = start_thread(lambda: result.append(blocking.read_exactly(8)))
    out.write(b"01234567")
    t.join(timeout=10)
    assert result == [b"01234567"]


def test_read_exactly_raises_on_clean_eof():
    out, inp, _ = pipe()
    out.close()
    with pytest.raises(EndOfStreamError):
        BlockingInputStream(inp).read_exactly(4)


def test_read_exactly_raises_on_mid_element_eof():
    out, inp, _ = pipe()
    out.write(b"ab")
    out.close()
    with pytest.raises(EndOfStreamError, match="mid-element"):
        BlockingInputStream(inp).read_exactly(4)


def test_blocking_stream_plain_read_passthrough():
    out, inp, _ = pipe()
    out.write(b"xyz")
    assert BlockingInputStream(inp).read(2) == b"xy"


# ---------------------------------------------------------------------------
# SequenceInputStream — splicing
# ---------------------------------------------------------------------------

def test_sequence_reads_streams_in_order():
    out1, in1, _ = pipe()
    out2, in2, _ = pipe()
    out1.write(b"first")
    out1.close()
    out2.write(b"second")
    out2.close()
    seq = concatenated([in1, in2])
    data = b""
    while True:
        chunk = seq.read(4)
        if not chunk:
            break
        data += chunk
    assert data == b"firstsecond"


def test_sequence_append_while_reading_first():
    """The Figure-10 splice: append before the current stream closes."""
    out1, in1, _ = pipe()
    out2, in2, _ = pipe()
    seq = SequenceInputStream(in1)
    out1.write(b"AA")
    seq.append(in2)       # splice happens before out1 closes
    out1.close()
    out2.write(b"BB")
    out2.close()
    collected = b""
    while True:
        chunk = seq.read(10)
        if not chunk:
            break
        collected += chunk
    assert collected == b"AABB"


def test_sequence_eof_only_after_last_stream():
    out1, in1, _ = pipe()
    out1.close()
    out2, in2, _ = pipe()
    out2.write(b"x")
    out2.close()
    seq = concatenated([in1, in2])
    assert seq.read(10) == b"x"
    assert seq.read(10) == b""


def test_sequence_append_after_finish_rejected():
    out1, in1, _ = pipe()
    out1.close()
    seq = SequenceInputStream(in1)
    assert seq.read(10) == b""  # observes final EOF
    out2, in2, _ = pipe()
    with pytest.raises(ChannelClosedError):
        seq.append(in2)


def test_sequence_close_closes_all_queued_streams():
    out1, in1, buf1 = pipe()
    out2, in2, buf2 = pipe()
    seq = concatenated([in1, in2])
    seq.close()
    assert buf1.read_closed and buf2.read_closed
    with pytest.raises(ChannelClosedError):
        seq.read(1)


def test_sequence_empty_is_immediate_eof():
    seq = SequenceInputStream()
    assert seq.read(4) == b""


def test_sequence_available_sums_queued():
    out1, in1, _ = pipe()
    out2, in2, _ = pipe()
    out1.write(b"ab")
    out2.write(b"cde")
    seq = concatenated([in1, in2])
    assert seq.available() == 5


def test_sequence_blocking_read_wakes_on_data():
    out1, in1, _ = pipe()
    seq = SequenceInputStream(in1)
    result = []
    t = start_thread(lambda: result.append(seq.read(4)))
    time.sleep(0.05)
    out1.write(b"late")
    t.join(timeout=10)
    assert result == [b"late"]


# ---------------------------------------------------------------------------
# SequenceOutputStream — switching
# ---------------------------------------------------------------------------

def test_sequence_output_switch_redirects_subsequent_writes():
    out1, in1, _ = pipe()
    out2, in2, _ = pipe()
    seq = SequenceOutputStream(out1)
    seq.write(b"one")
    seq.switch_to(out2)
    seq.write(b"two")
    assert in1.read(10) == b"one"
    assert in2.read(10) == b"two"


def test_sequence_output_switch_can_close_old():
    out1, in1, buf1 = pipe()
    out2, _, _ = pipe()
    seq = SequenceOutputStream(out1)
    seq.switch_to(out2, close_old=True)
    assert buf1.write_closed


def test_sequence_output_close_is_terminal():
    out1, _, buf1 = pipe()
    seq = SequenceOutputStream(out1)
    seq.close()
    assert buf1.write_closed
    with pytest.raises(ChannelClosedError):
        seq.write(b"x")
    out2, _, _ = pipe()
    with pytest.raises(ChannelClosedError):
        seq.switch_to(out2)


def test_sequence_output_double_close_idempotent():
    out1, _, _ = pipe()
    seq = SequenceOutputStream(out1)
    seq.close()
    seq.close()
