"""Unit tests for Process / IterativeProcess / CompositeProcess lifecycle."""

import threading

import pytest

from repro.errors import ChannelError, EndOfStreamError
from repro.kpn import Network
from repro.kpn.channel import Channel
from repro.kpn.process import CompositeProcess, IterativeProcess, Process, StopProcess


class Recorder(IterativeProcess):
    """Records lifecycle events; configurable step behaviour."""

    def __init__(self, iterations=0, fail_at=None, stop_at=None,
                 channel_error_at=None, name=None):
        super().__init__(iterations=iterations, name=name)
        self.events = []
        self.fail_at = fail_at
        self.stop_at = stop_at
        self.channel_error_at = channel_error_at

    def on_start(self):
        self.events.append("start")

    def step(self):
        n = self.steps_completed
        if self.fail_at is not None and n >= self.fail_at:
            raise ValueError("boom")
        if self.stop_at is not None and n >= self.stop_at:
            raise StopProcess
        if self.channel_error_at is not None and n >= self.channel_error_at:
            raise EndOfStreamError("dry")
        self.events.append(f"step{n}")

    def on_stop(self):
        self.events.append("stop")
        super().on_stop()


def test_iteration_limit_runs_exactly_n_steps():
    p = Recorder(iterations=3)
    p.run()
    assert p.events == ["start", "step0", "step1", "step2", "stop"]
    assert p.steps_completed == 3


def test_channel_error_terminates_silently():
    p = Recorder(channel_error_at=2)
    p.run()
    assert p.events == ["start", "step0", "step1", "stop"]
    assert p.failure is None


def test_stop_process_terminates_cleanly():
    p = Recorder(stop_at=2)
    p.run()
    assert p.events == ["start", "step0", "step1", "stop"]
    assert p.failure is None


def test_unexpected_exception_recorded_and_onstop_still_runs():
    p = Recorder(fail_at=1)
    p.run()
    assert p.events == ["start", "step0", "stop"]
    assert isinstance(p.failure, ValueError)


def test_on_stop_closes_tracked_streams():
    ch_in, ch_out = Channel(64), Channel(64)
    p = Recorder(iterations=1)
    p.track(ch_in.get_input_stream(), ch_out.get_output_stream())
    p.run()
    assert ch_in.buffer.read_closed
    assert ch_out.buffer.write_closed


def test_untrack_prevents_close():
    ch = Channel(64)
    p = Recorder(iterations=1)
    stream = ch.get_input_stream()
    p.track(stream)
    p.untrack(stream)
    p.run()
    assert not ch.buffer.read_closed


def test_track_rejects_non_stream():
    p = Recorder()
    with pytest.raises(TypeError):
        p.track(object())


def test_names_unique_by_default():
    assert Recorder().name != Recorder().name


def test_pickle_state_strips_runtime_fields():
    p = Recorder(iterations=1)
    p.network = object()
    p.failure = ValueError("x")
    state = p.__getstate__()
    assert state["network"] is None
    assert state["failure"] is None
    assert state["steps_completed"] == 0


# ---------------------------------------------------------------------------
# CompositeProcess
# ---------------------------------------------------------------------------

def test_composite_runs_all_members_in_threads():
    members = [Recorder(iterations=1, name=f"m{i}") for i in range(4)]
    comp = CompositeProcess(members)
    comp.run()
    for m in members:
        assert m.events == ["start", "step0", "stop"]


def test_composite_propagates_member_failure():
    ok = Recorder(iterations=1)
    bad = Recorder(fail_at=0)
    comp = CompositeProcess([ok, bad])
    comp.run()
    assert isinstance(comp.failure, ValueError)


def test_composite_flatten_recursive():
    leaves = [Recorder(iterations=1) for _ in range(3)]
    inner = CompositeProcess(leaves[:2])
    outer = CompositeProcess([inner, leaves[2]])
    assert set(outer.flatten()) == set(leaves)


def test_composite_members_concurrent_not_sequential():
    """Two members exchanging data through a tiny channel deadlock if run
    sequentially — the reason composites keep one thread per member."""
    from repro.processes import Collect, Sequence

    ch = Channel(2)  # far smaller than the traffic
    out = []
    comp = CompositeProcess([
        Sequence(ch.get_output_stream(), start=0, iterations=100),
        Collect(ch.get_input_stream(), out),
    ])
    t = threading.Thread(target=comp.run, daemon=True)
    t.start()
    t.join(timeout=30)
    assert not t.is_alive(), "composite members were not concurrent"
    assert out == list(range(100))


def test_composite_inside_network_inherits_it():
    net = Network()
    leaf = Recorder(iterations=1)
    comp = CompositeProcess([leaf])
    net.add(comp)
    assert leaf.network is net


def test_spawn_without_network_uses_plain_thread():
    parent = Recorder(iterations=1)
    child = Recorder(iterations=1)
    t = parent.spawn(child)
    t.join(timeout=10)
    assert child.events == ["start", "step0", "stop"]


def test_new_channel_without_network():
    p = Recorder()
    ch = p.new_channel(capacity=32, name="loose")
    assert ch.capacity == 32
