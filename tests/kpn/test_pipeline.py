"""Integration: the Figure-1 Producer→Worker→Consumer pipeline."""

import threading

from repro.kpn import Network
from repro.kpn.process import CompositeProcess
from repro.parallel import CallableTask, Consumer, Producer, RangeProducerTask, Worker


def build_pipeline(n_tasks: int, capacity=None):
    net = Network()
    tasks = net.channel(capacity, name="tasks")
    results = net.channel(capacity, name="results")
    out = []
    net.add(Producer(RangeProducerTask(n_tasks,
                                       lambda i: CallableTask(pow, i, 2)),
                     tasks.get_output_stream(), name="Producer"))
    net.add(Worker(tasks.get_input_stream(), results.get_output_stream(),
                   name="Worker"))
    net.add(Consumer(results.get_input_stream(), collect_into=out,
                     name="Consumer"))
    return net, out


def test_pipeline_end_to_end():
    net, out = build_pipeline(25)
    net.run(timeout=60)
    assert out == [i * i for i in range(25)]


def test_pipeline_with_tiny_channels_backpressure():
    """Capacity ~one object frame: producer repeatedly blocks; results
    must be unaffected (bounded channels = fair scheduling, §3.5)."""
    net, out = build_pipeline(25, capacity=64)
    net.run(timeout=60)
    assert out == [i * i for i in range(25)]


def test_pipeline_as_composite():
    net = Network()
    tasks = net.channel(name="t")
    results = net.channel(name="r")
    out = []
    comp = CompositeProcess(name="pipeline")
    comp.add(Producer(RangeProducerTask(10, lambda i: CallableTask(abs, -i)),
                      tasks.get_output_stream()))
    comp.add(Worker(tasks.get_input_stream(), results.get_output_stream()))
    comp.add(Consumer(results.get_input_stream(), collect_into=out))
    net.add(comp)
    net.run(timeout=60)
    assert out == list(range(10))


def _tens(k: int, i: int) -> int:
    return k * 10 + i


def test_two_pipelines_share_a_network_independently():
    net = Network()
    outs = []
    for k in range(2):
        tasks = net.channel(name=f"t{k}")
        results = net.channel(name=f"r{k}")
        out = []
        outs.append(out)
        net.add(Producer(RangeProducerTask(8, lambda i, k=k: CallableTask(
            _tens, k, i)), tasks.get_output_stream(),
            name=f"P{k}"))
        net.add(Worker(tasks.get_input_stream(), results.get_output_stream(),
                       name=f"W{k}"))
        net.add(Consumer(results.get_input_stream(), collect_into=out,
                         name=f"C{k}"))
    net.run(timeout=60)
    assert outs[0] == [0 * 10 + i for i in range(8)]
    assert outs[1] == [1 * 10 + i for i in range(8)]


def test_bounded_channel_enforces_fairness():
    """The producer cannot run unboundedly ahead: in-flight bytes are
    limited by channel capacity (the §3.5 fairness argument)."""
    from repro.kpn.process import IterativeProcess
    from repro.processes.codecs import LONG

    net = Network()
    ch = net.channel(capacity=80)  # 10 longs
    high_water = []

    class SlowConsumer(IterativeProcess):
        def __init__(self, stream):
            super().__init__(iterations=30)
            self.stream = stream
            self.track(stream)

        def step(self):
            import time

            high_water.append(ch.buffer.available())
            time.sleep(0.002)
            LONG.read(self.stream)

    from repro.processes import Sequence

    net.add(Sequence(ch.get_output_stream(), iterations=1000))
    net.add(SlowConsumer(ch.get_input_stream()))
    net.run(timeout=60)
    assert max(high_water) <= 80
