"""Buffered object streams: batching, the large-frame bypass, and the
zero-copy view parse must all preserve the exact byte framing and the
blocking/EOF semantics of the unbuffered streams."""

import pickle

import pytest

from repro.errors import ChannelError, EndOfStreamError
from repro.kpn.buffers import BoundedByteBuffer
from repro.kpn.objects import ObjectInputStream, ObjectOutputStream
from repro.kpn.streams import (BlockingInputStream, InputStream,
                               LocalInputStream, LocalOutputStream)

from tests.conftest import start_thread


def _pipe(capacity=1 << 16, out_buffer=256, in_buffer=256):
    buf = BoundedByteBuffer(capacity, name="obj-buffered")
    out = ObjectOutputStream(LocalOutputStream(buf), buffer_bytes=out_buffer)
    inp = ObjectInputStream(BlockingInputStream(LocalInputStream(buf)),
                            buffer_bytes=in_buffer)
    return buf, out, inp


def test_small_objects_roundtrip_in_order():
    buf, out, inp = _pipe()
    msgs = [("msg", i, b"x" * (i % 7)) for i in range(200)]
    for m in msgs:
        out.write_object(m)
    out.flush()
    assert [inp.read_object() for _ in msgs] == msgs


def test_large_frames_bypass_the_batch():
    buf, out, inp = _pipe(capacity=1 << 20, out_buffer=64, in_buffer=64)
    big = b"B" * 5000  # far over both batch sizes
    out.write_object(big)
    out.write_object("after")
    out.flush()
    assert inp.read_object() == big
    assert inp.read_object() == "after"


def test_mixed_sizes_roundtrip():
    buf, out, inp = _pipe(capacity=1 << 20, out_buffer=512, in_buffer=512)
    msgs = [b"L" * 4000 if i % 5 == 0 else ("small", i) for i in range(60)]
    writer = start_thread(lambda: ([out.write_object(m) for m in msgs],
                                   out.flush(), buf.close_write()))
    assert [inp.read_object() for _ in msgs] == msgs
    writer.join(timeout=10)


def test_pending_batch_invisible_until_flush():
    buf, out, inp = _pipe(out_buffer=1 << 16)
    out.write_object("held back")
    assert buf.available() == 0  # still in the producer-side batch
    out.flush()
    assert inp.read_object() == "held back"


def test_batch_flushes_itself_at_watermark():
    buf, out, _ = _pipe(out_buffer=64)
    while buf.available() == 0:
        out.write_object("fill" * 4)  # batch crosses 64 bytes and flushes
    assert buf.available() > 0


def test_eof_after_last_object():
    buf, out, inp = _pipe()
    out.write_object(1)
    out.flush()
    buf.close_write()
    assert inp.read_object() == 1
    with pytest.raises(EndOfStreamError):
        inp.read_object()


def test_truncated_large_frame_raises_mid_element():
    buf = BoundedByteBuffer(1 << 16)
    payload = pickle.dumps(b"T" * 5000)
    buf.write(len(payload).to_bytes(4, "big"))
    buf.write(payload[:100])  # cut the frame short
    buf.close_write()
    inp = ObjectInputStream(BlockingInputStream(LocalInputStream(buf)),
                            buffer_bytes=64)
    with pytest.raises(EndOfStreamError, match="mid-element"):
        inp.read_object()


def test_oversized_frame_rejected():
    from repro.kpn.objects import MAX_FRAME_BYTES
    buf = BoundedByteBuffer(64)
    buf.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    inp = ObjectInputStream(BlockingInputStream(LocalInputStream(buf)),
                            buffer_bytes=16)
    with pytest.raises(ChannelError, match="exceeds cap"):
        inp.read_object()


def test_buffered_writer_emits_identical_bytes():
    """Byte-for-byte framing equivalence: a buffered writer's channel
    history must equal the unbuffered writer's for the same objects."""
    msgs = [("a", i) for i in range(20)] + [b"Z" * 3000]

    def framed(buffer_bytes):
        buf = BoundedByteBuffer(1 << 20)
        buf.record_history()
        out = ObjectOutputStream(LocalOutputStream(buf),
                                 buffer_bytes=buffer_bytes)
        for m in msgs:
            out.write_object(m)
        out.flush()
        return buf.history_bytes()

    assert framed(0) == framed(256)


def test_source_without_read_view_still_parses():
    """Duck-typed sources that only implement read() take the copying
    batch path — same results, no view machinery required."""
    frames = bytearray()
    msgs = ["plain", ("source", 2), b"G" * 2000]
    for m in msgs:
        p = pickle.dumps(m, protocol=pickle.HIGHEST_PROTOCOL)
        frames += len(p).to_bytes(4, "big") + p

    class ChunkSource(InputStream):
        def __init__(self, data):
            self.data = bytes(data)
            self.pos = 0

        def read(self, max_bytes):
            take = min(max_bytes, 13, len(self.data) - self.pos)  # short reads
            chunk = self.data[self.pos:self.pos + take]
            self.pos += take
            return chunk

        def close(self):
            pass

    src = ChunkSource(frames)
    src.read_view = None  # force the no-view path
    inp = ObjectInputStream(src, buffer_bytes=64)
    assert inp._read_view is None
    assert [inp.read_object() for _ in msgs] == msgs


def test_view_parse_handles_frames_straddling_views():
    """Frames that straddle a drained view boundary (header split, payload
    split) must reassemble exactly.  The tiny capacity forces the writer
    to deliver frames in pieces, so drained views end mid-frame often."""
    buf = BoundedByteBuffer(256)
    out = ObjectOutputStream(LocalOutputStream(buf))
    msgs = [bytes([i % 256]) * (1 + (i * 97) % 900) for i in range(80)]
    inp = ObjectInputStream(BlockingInputStream(LocalInputStream(buf)),
                            buffer_bytes=128)
    writer = start_thread(lambda: ([out.write_object(m) for m in msgs],
                                   buf.close_write()))
    assert [inp.read_object() for _ in msgs] == msgs
    writer.join(timeout=10)
