"""Unit tests for Network lifecycle, graph export, and analysis."""

import pytest

from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.processes import Collect, Duplicate, MapProcess, Sequence
from repro.processes.networks import fibonacci, modulo_merge


def simple_net(n=10):
    net = Network()
    ch = net.channel(name="only")
    out = []
    net.add(Sequence(ch.get_output_stream(), start=0, iterations=n, name="Src"))
    net.add(Collect(ch.get_input_stream(), out, name="Dst"))
    return net, out


def test_run_joins_and_collects():
    net, out = simple_net()
    assert net.run(timeout=30)
    assert out == list(range(10))


def test_double_start_rejected():
    net, _ = simple_net()
    net.start()
    with pytest.raises(RuntimeError):
        net.start()
    net.join(timeout=30)


def test_join_timeout_returns_false():
    net = Network()
    ch = net.channel()

    class Forever(IterativeProcess):
        def __init__(self, stream):
            super().__init__()
            self.stream = stream
            self.track(stream)

        def step(self):
            self.stream.read(1)  # blocks forever; no writer

    net.monitor.policy.on_true = "ignore"  # keep it blocked
    net.add(Forever(ch.get_input_stream()))
    net.start()
    assert net.join(timeout=0.3) is False
    net.shutdown()
    assert net.join(timeout=10)


def test_process_failure_raised_from_join():
    class Bad(IterativeProcess):
        def step(self):
            raise RuntimeError("kaput")

    net = Network()
    net.add(Bad(iterations=1))
    with pytest.raises(RuntimeError, match="kaput"):
        net.run(timeout=30)


def test_shutdown_closes_all_channels():
    net, _ = simple_net()
    net.shutdown()
    assert all(ch.buffer.write_closed and ch.buffer.read_closed
               for ch in net.channels)


def test_channels_get_shared_accounting():
    net = Network()
    a, b = net.channels_n(2)
    assert a.buffer.accounting is net.accounting
    assert b.buffer.accounting is net.accounting


def test_adopt_channel():
    from repro.kpn.channel import Channel

    net = Network()
    ch = Channel(16)
    net.adopt_channel(ch)
    assert ch in net.channels
    assert ch.buffer.accounting is net.accounting


def test_ensure_running_allows_spawn_only_use():
    net = Network()
    net.ensure_running()
    done = []

    class One(IterativeProcess):
        def step(self):
            done.append(1)

    net.spawn(One(iterations=1))
    assert net.join(timeout=30)
    assert done == [1]


def test_context_manager_stops_monitor():
    with Network() as net:
        ch = net.channel()
        out = []
        net.add(Sequence(ch.get_output_stream(), iterations=5))
        net.add(Collect(ch.get_input_stream(), out))
        net.run(timeout=30)
    assert out == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# graph export and analysis
# ---------------------------------------------------------------------------

def test_graph_export_nodes_and_edges():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(Sequence(a.get_output_stream(), iterations=1, name="s"))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(),
                       abs, name="m"))
    net.add(Collect(b.get_input_stream(), out, name="c"))
    g = net.graph()
    assert set(g.nodes) == {"s", "m", "c"}
    assert g.number_of_edges() == 2
    assert g.has_edge("s", "m") and g.has_edge("m", "c")


def test_pipeline_has_no_undirected_cycle():
    net = Network()
    a, b = net.channels_n(2)
    net.add(Sequence(a.get_output_stream(), iterations=1, name="s"))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(), abs, name="m"))
    net.add(Collect(b.get_input_stream(), [], name="c"))
    assert net.has_undirected_cycle() is False


def test_fibonacci_has_undirected_cycle():
    built = fibonacci(5)
    assert built.network.has_undirected_cycle() is True


def test_fig13_has_undirected_cycle_though_acyclic_directed():
    """Figure 13: directed-acyclic but undirected-cyclic — the class of
    graph whose default capacities may deadlock (section 3.5)."""
    import networkx as nx

    built = modulo_merge(10, 5)
    g = built.network.graph()
    assert nx.is_directed_acyclic_graph(nx.DiGraph(g))
    assert built.network.has_undirected_cycle() is True


def test_diamond_counts_as_undirected_cycle():
    net = Network()
    a, b, c, d = net.channels_n(4)
    from repro.processes import Add

    net.add(Sequence(a.get_output_stream(), iterations=3, name="src"))
    net.add(Duplicate(a.get_input_stream(),
                      [b.get_output_stream(), c.get_output_stream()],
                      name="dup"))
    net.add(Add(b.get_input_stream(), c.get_input_stream(),
                d.get_output_stream(), name="add"))
    net.add(Collect(d.get_input_stream(), [], name="sink"))
    assert net.has_undirected_cycle() is True


def test_total_buffered_bytes():
    net = Network()
    ch = net.channel()
    ch.get_output_stream().write(b"12345")
    assert net.total_buffered_bytes() == 5
