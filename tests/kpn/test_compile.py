"""Unit tests for the graph compiler (repro.kpn.compile).

Covers chain detection shapes on the bundled figure networks, the
refusal rules (nondeterminate / dynamic / custom run loop / shared
state / side channels / already-started), fused-pipe semantics, the
object fast path, capacity specs, and the CLI subcommand.  The
fused-vs-unfused trace equivalence suite lives in
tests/test_fusion_equivalence.py.
"""

import json

import pytest

from repro.errors import BrokenChannelError, EndOfStreamError
from repro.kpn.compile import (FusedChain, _FusedPipe, compile_network,
                               fuse, load_capacity_spec)
from repro.kpn.network import Network
from repro.processes import (Collect, FromIterable, Scale, Sequence,
                             fibonacci, hamming, modulo_merge, newton_sqrt,
                             primes)
from repro.processes.codecs import LONG


def chain_names(plan):
    return sorted(tuple(s.name for s in stages)
                  for stages, _, _, _ in plan.chains)


def build_linear(n_stages=3, count=50):
    """Sequence -> Scale*(n_stages-2) -> Collect on named channels."""
    net = Network()
    chans = net.channels_n(n_stages - 1, prefix="lin")
    net.add(Sequence(chans[0].get_output_stream(), start=0,
                     iterations=count, name="Src"))
    for i in range(n_stages - 2):
        net.add(Scale(chans[i].get_input_stream(),
                      chans[i + 1].get_output_stream(), factor=2,
                      name=f"Map-{i}"))
    out = []
    net.add(Collect(chans[-1].get_input_stream(), out, iterations=count,
                    name="Dst"))
    return net, out


# ---------------------------------------------------------------------------
# chain detection
# ---------------------------------------------------------------------------

def test_linear_pipeline_fuses_to_one_thread():
    net, out = build_linear(4)
    plan = compile_network(net)
    assert chain_names(plan) == [("Src", "Map-0", "Map-1", "Dst")]
    plan.apply()
    assert len(net.processes) == 1
    assert isinstance(net.processes[0], FusedChain)
    assert net.fusion_plan is plan
    net.run(timeout=30)
    assert out == [i * 4 for i in range(50)]


def test_fibonacci_chain_shapes():
    # Duplicate has 2 outputs (tail only), Cons has 2 inputs (cannot sit
    # mid-chain), so exactly the two Constant->Cons prefixes fuse
    plan = compile_network(fibonacci(10).network)
    assert chain_names(plan) == [("Constant-ab", "Cons-b"),
                                 ("Constant-cd", "Cons-f")]


def test_newton_chain_shapes():
    plan = compile_network(newton_sqrt(2.0).network)
    assert chain_names(plan) == [("Average", "Dup-rnext"),
                                 ("Equal", "Guard"),
                                 ("Seed", "Cons-r"),
                                 ("X", "Divide")]


def test_fig13_fuses_source_and_sink_pairs():
    plan = compile_network(modulo_merge(50, 10).network)
    assert chain_names(plan) == [("Merge", "Sink"), ("Source", "Mod")]
    # single-input consumers with matching LONG codecs: object fast path
    assert all(oc is not None
               for _, _, codecs, _ in plan.chains for oc in codecs)


def test_hamming_merge_nodes_fuse_as_tails_only():
    # OrderedMerge has two inputs, so it can terminate a chain but never
    # continue one; the x3 branch feeds the tree root directly and the
    # root cannot be an interior stage, so Scale-3 stays threaded
    plan = compile_network(hamming(10).network)
    names = chain_names(plan)
    assert ("One", "Cons-h") in names
    assert any(c[0] == "Scale-2" for c in names)
    assert all(len(c) == 2 for c in names)


# ---------------------------------------------------------------------------
# refusals
# ---------------------------------------------------------------------------

def test_sift_refused_as_dynamic():
    plan = compile_network(primes(count=8).network)
    assert plan.chains == []
    refused = dict(plan.refusals)
    assert "Sift" in refused and "dynamic" in refused["Sift"]


def test_turnstile_refused_as_nondeterminate():
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    handle = build_farm(
        RangeProducerTask(10, lambda i: CallableTask(pow, i, 2)),
        n_workers=2, mode="dynamic")
    plan = compile_network(handle.network)
    refused = dict(plan.refusals)
    assert any("@nondeterminate" in reason for reason in refused.values())
    fused = {n for c in chain_names(plan) for n in c}
    assert "Turnstile" not in fused


def test_custom_run_loop_refused():
    net = Network()
    ch = net.channel(name="from-iter")
    net.add(FromIterable(ch.get_output_stream(), [1, 2, 3], name="Iter"))
    out = []
    net.add(Collect(ch.get_input_stream(), out, name="Dst"))
    plan = compile_network(net)
    assert plan.chains == []
    assert "custom run()" in dict(plan.refusals)["Iter"]


def test_shared_state_refused():
    shared = []
    net = Network()
    a, b = net.channels_n(2, prefix="sh")
    net.add(Sequence(a.get_output_stream(), iterations=5, name="SrcA"))
    net.add(Sequence(b.get_output_stream(), iterations=5, name="SrcB"))
    # two sinks collecting into the SAME list: a shared-state race
    net.add(Collect(a.get_input_stream(), shared, name="DstA"))
    net.add(Collect(b.get_input_stream(), shared, name="DstB"))
    plan = compile_network(net)
    assert plan.chains == []
    reasons = dict(plan.refusals)
    assert any("shared mutable state" in r for r in reasons.values())


def test_two_process_cycle_not_fused():
    # A -> B -> A: fusing would hide one direction's channel from the
    # deadlock monitor while the other still blocks
    net = Network()
    ab = net.channel(name="cy-ab")
    ba = net.channel(name="cy-ba")
    net.add(Scale(ba.get_input_stream(), ab.get_output_stream(), factor=1,
                  iterations=10, name="A"))
    net.add(Scale(ab.get_input_stream(), ba.get_output_stream(), factor=1,
                  iterations=10, name="B"))
    plan = compile_network(net)
    assert plan.chains == []


def test_compile_after_start_rejected():
    net, _ = build_linear()
    net.start()
    with pytest.raises(RuntimeError):
        compile_network(net)
    net.join(timeout=30)


def test_presized_buffer_with_queued_data_not_fused():
    net, _ = build_linear(3)
    # pre-seed one channel: rewiring would strand the queued bytes
    net.channel_by_name("lin-0").get_output_stream().write(b"\0" * 8)
    plan = compile_network(net)
    assert "lin-0" not in plan.fused_channel_names


# ---------------------------------------------------------------------------
# fused pipe semantics
# ---------------------------------------------------------------------------

def make_pipe(**kwargs):
    return _FusedPipe(Network().channel(name="p"), **kwargs)


def test_pipe_byte_roundtrip_and_split_reads():
    pipe = make_pipe()
    pipe.write_bytes(b"abcdef")
    assert pipe.read(4) == b"abcd"
    assert pipe.read(10) == b"ef"
    pipe.write_bytes(b"xy")
    pipe.close_write()
    assert pipe.read(10) == b"xy"
    assert pipe.read(10) == b""  # EOF
    assert pipe.at_eof()


def test_pipe_write_after_reader_close_raises_broken():
    pipe = make_pipe()
    pipe.close_read()
    with pytest.raises(BrokenChannelError):
        pipe.write_bytes(b"z")
    with pytest.raises(BrokenChannelError):
        pipe.write_object(1)


def test_pipe_object_mode_with_byte_read_fallback():
    # a byte-level read on an object-mode pipe lazily encodes entries,
    # so even un-shimmed readers (module-global codecs) stay correct
    pipe = make_pipe(object_codec=LONG)
    pipe.write_object(7)
    pipe.write_object(8)
    assert pipe.available() == 16
    assert pipe.read(8) == LONG.encode(7)
    assert pipe.read_object() == 8
    pipe.close_write()
    with pytest.raises(EndOfStreamError):
        pipe.read_object()


def test_pipe_records_history_in_byte_mode():
    ch = Network().channel(name="h")
    ch.buffer.record_history(True)
    pipe = _FusedPipe(ch)
    pipe.write_bytes(b"1234")
    pipe.write_bytes(b"5678")
    assert pipe.read(8) == b"1234"
    assert ch.buffer.history_bytes() == b"12345678"


def test_object_fast_path_skips_codec_on_matching_edges():
    net, out = build_linear(3, count=20)
    plan = compile_network(net)
    ((stages, chans, codecs, _),) = plan.chains
    assert all(oc is not None for oc in codecs)  # LONG == LONG, 1-input
    plan.apply()
    net.run(timeout=30)
    assert out == [i * 2 for i in range(20)]


def test_armed_history_capture_forces_byte_mode():
    net, _ = build_linear(3)
    for ch in net.channels:
        ch.buffer.record_history(True)
    plan = compile_network(net)
    ((_, _, codecs, _),) = plan.chains
    assert all(oc is None for oc in codecs)


# ---------------------------------------------------------------------------
# channel collapse bookkeeping
# ---------------------------------------------------------------------------

def test_fused_channels_keep_identity_and_flag():
    net, _ = build_linear(3)
    plan = fuse(net)
    for name in plan.fused_channel_names:
        ch = net.channel_by_name(name)
        assert ch is not None and ch.fused
        assert ch.occupancy()["fused"] is True
    # boundary bookkeeping: unfused channels carry no flag
    other = Network().channel(name="plain")
    assert "fused" not in other.occupancy()
    net.run(timeout=30)


def test_farm_prefix_survives_fusion():
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    handle = build_farm(
        RangeProducerTask(10, lambda i: CallableTask(pow, i, 2)),
        n_workers=1, mode="pipeline")
    plan = fuse(handle.network)
    assert plan.fused_channel_names  # Producer->Worker->Consumer collapsed
    assert all(name.startswith("farm-") for name in plan.fused_channel_names)
    # profiler attribution keys are the channel names; they must be the
    # same objects the network still reports
    assert set(plan.fused_channel_names) <= set(handle.network.channel_map())
    handle.network.run(timeout=60)


# ---------------------------------------------------------------------------
# capacity specs (pass 3 + the Network(capacity_spec=...) satellite)
# ---------------------------------------------------------------------------

def test_load_capacity_spec_shapes(tmp_path):
    flat = {"a": 1024, "b": 2048}
    assert load_capacity_spec(flat) == flat
    advisor = {"version": 1, "network": "x",
               "channels": {"a": {"initial_capacity": 4096, "reason": "r"}}}
    assert load_capacity_spec(advisor) == {"a": 4096}
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(advisor))
    assert load_capacity_spec(str(path)) == {"a": 4096}
    assert load_capacity_spec(None) == {}
    with pytest.raises(TypeError):
        load_capacity_spec([1, 2])


def test_plan_presizes_surviving_channels_only():
    net, _ = build_linear(3)
    sizes = {ch.name: ch.capacity for ch in net.channels}
    spec = {name: cap * 4 for name, cap in sizes.items()}
    plan = fuse(net, spec=spec)
    fused = set(plan.fused_channel_names)
    for name, cap in sizes.items():
        ch = net.channel_by_name(name)
        if name in fused:
            assert ch.capacity == cap  # intra-chain: ring is bypassed
        else:
            assert ch.capacity == cap * 4
    assert all(name not in fused for name, _, _ in plan.presized)
    net.run(timeout=30)


def test_network_capacity_spec_presizes_at_creation(tmp_path):
    spec = {"version": 1,
            "channels": {"sized": {"initial_capacity": 9999}}}
    path = tmp_path / "cap.json"
    path.write_text(json.dumps(spec))
    net = Network(capacity_spec=str(path))
    assert net.channel(name="sized").capacity == 9999
    assert net.channel(name="other").capacity == net.default_capacity
    # explicit capacity always wins over the spec
    assert net.channel(capacity=128, name="sized").capacity == 128
    # dict form works too and feeds optimize()'s default spec
    net2 = Network(capacity_spec={"sized": 4096})
    assert net2.channel(name="sized").capacity == 4096


# ---------------------------------------------------------------------------
# execution semantics of fused chains
# ---------------------------------------------------------------------------

def test_fused_stage_failure_propagates():
    from repro.processes import MapProcess

    def boom(v):
        if v == 3:
            raise ValueError("boom at 3")
        return v

    net = Network()
    a, b = net.channels_n(2, prefix="fl")
    net.add(Sequence(a.get_output_stream(), iterations=10, name="Src"))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(), boom,
                       name="Boom"))
    net.add(Collect(b.get_input_stream(), [], name="Dst"))
    plan = fuse(net)
    assert chain_names(plan) == [("Src", "Boom", "Dst")]
    with pytest.raises(ValueError, match="boom at 3"):
        net.run(timeout=30)


def test_fused_iteration_limits_respected():
    # downstream limit truncates an infinite upstream source
    net = Network()
    ch = net.channel(name="lim")
    net.add(Sequence(ch.get_output_stream(), start=0, iterations=0,
                     name="Src"))
    out = []
    net.add(Collect(ch.get_input_stream(), out, iterations=7, name="Dst"))
    fuse(net)
    net.run(timeout=30)
    assert out == list(range(7))


def test_fused_run_with_boundary_channels():
    # only the middle pair fuses; channels to/from the threaded stages
    # keep full blocking semantics
    from repro.processes import Duplicate

    net = Network()
    src, d1, d2, merged = (net.channel(name=n)
                           for n in ("bn-src", "bn-d1", "bn-d2", "bn-out"))
    net.add(Sequence(src.get_output_stream(), iterations=30, name="Src"))
    net.add(Duplicate(src.get_input_stream(),
                      [d1.get_output_stream(), d2.get_output_stream()],
                      name="Dup"))
    net.add(Scale(d1.get_input_stream(), merged.get_output_stream(),
                  factor=10, iterations=30, name="Via"))
    out1, out2 = [], []
    net.add(Collect(merged.get_input_stream(), out1, name="Dst1"))
    net.add(Collect(d2.get_input_stream(), out2, name="Dst2"))
    plan = fuse(net)
    assert chain_names(plan) == [("Src", "Dup"), ("Via", "Dst1")]
    net.run(timeout=30)
    assert out1 == [i * 10 for i in range(30)]
    assert out2 == list(range(30))


def test_fused_spans_still_emitted():
    from repro.telemetry.core import TELEMETRY

    net, _ = build_linear(3, count=10)
    fuse(net)
    with TELEMETRY.enabled_scope(reset=True):
        net.run(timeout=30)
        names = {e.name for e in TELEMETRY.events()}
    # per-stage spans survive fusion (profiler attribution), plus the
    # chain's own span
    assert {"Src", "Map-0", "Dst"} <= names
    assert any(n.startswith("fused:") for n in names)


# ---------------------------------------------------------------------------
# plan reporting and CLI
# ---------------------------------------------------------------------------

def test_plan_describe_and_to_dict():
    net, _ = build_linear(3)
    plan = compile_network(net)
    text = plan.describe()
    assert "chain 1" in text and "Src -> Map-0 -> Dst" in text
    doc = plan.to_dict()
    assert doc["threads_before"] == 3 and doc["threads_after"] == 1
    assert doc["applied"] is False
    plan.apply()
    assert plan.to_dict()["applied"] is True
    net.run(timeout=30)


def test_cli_compile_plan_and_json(capsys):
    from repro.cli import main

    assert main(["compile", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "Source -> Mod" in out and "Merge -> Sink" in out
    assert main(["compile", "primes", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["chains"] == []
    assert any(r["subject"] == "Sift" for r in doc["refusals"])


def test_cli_compile_run_executes_fused(capsys):
    from repro.cli import main

    assert main(["compile", "fig13", "--run"]) == 0
    captured = capsys.readouterr()
    assert "ran to completion" in captured.err


def test_network_run_optimize_flag():
    net, out = build_linear(3, count=25)
    assert net.run(timeout=30, optimize=True)
    assert net.fusion_plan is not None and net.fusion_plan.applied
    assert out == [i * 2 for i in range(25)]
