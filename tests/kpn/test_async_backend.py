"""Unit behaviours of the cooperative (``backend="async"``) substrate.

Trace equivalence over the bundled examples lives in
tests/test_backend_equivalence.py; here the mechanism itself is probed:
hosting rules, park/wake on full and empty buffers, the Thread-shaped
task surface, hybrid thread+task networks, deadlock detection and
Parks growth over parked tasks, telemetry attribution to virtual tids,
and profiler blocked-time joins.
"""

import threading

import pytest

from repro.errors import ArtificialDeadlockError
from repro.kpn import Network
from repro.kpn.aio import EventLoop, LoopPool, Task, async_hostable
from repro.kpn.process import IterativeProcess
from repro.kpn.scheduler import DeadlockPolicy
from repro.processes import Collect, Sequence
from repro.processes.codecs import LONG
from repro.processes.networks import modulo_merge
from repro.processes.routing import Turnstile
from repro.processes.sources import FromIterable
from repro.telemetry.core import TELEMETRY


# ---------------------------------------------------------------------------
# hosting rules
# ---------------------------------------------------------------------------

def test_async_hostable_rules():
    net = Network(name="host-rules")
    a = net.channel(name="hr-a")
    b = net.channel(name="hr-b")
    out = []
    seq = Sequence(a.get_output_stream(), iterations=3)
    col = Collect(a.get_input_stream(), out)
    # plain IterativeProcess with default run: cooperative
    assert async_hostable(seq) and async_hostable(col)
    # custom run loop (FromIterable) keeps its thread
    src = FromIterable(b.get_output_stream(), [1, 2, 3])
    assert not async_hostable(src)
    # declared-@nondeterminate (Turnstile readiness polling) needs a thread
    c = net.channel(name="hr-c")
    t = Turnstile([b.get_input_stream()], b.get_output_stream(),
                  c.get_output_stream())
    assert not async_hostable(t)
    # explicit opt-out

    class OptOut(Sequence):
        kpn_async = False

    assert not async_hostable(OptOut(b.get_output_stream(), iterations=1))


def test_fused_chain_hosts_as_single_task():
    net = Network(name="fused-host", backend="async")
    ch = net.channel(name="fh")
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=50, name="s"))
    net.add(Collect(ch.get_input_stream(), out, name="c"))
    from repro.kpn.compile import fuse
    plan = fuse(net)
    assert plan.chains, "expected the pair to fuse"
    net.start()
    tasks = [t for t in net._threads if isinstance(t, Task)]
    assert len(tasks) == 1  # one chain, one cooperative task
    assert net.join(timeout=30)
    assert out == list(range(50))


def test_hybrid_network_mixes_threads_and_tasks():
    net = Network(name="hybrid", backend="async")
    ch = net.channel(name="hy")
    out = []
    net.add(FromIterable(ch.get_output_stream(), list(range(20)), name="src"))
    net.add(Collect(ch.get_input_stream(), out, name="dst"))
    net.start()
    kinds = {t.name: isinstance(t, threading.Thread) for t in net._threads}
    assert kinds["src"] is True      # custom run: OS thread
    assert kinds["dst"] is False     # default skeleton: task
    assert net.join(timeout=30)
    assert out == list(range(20))


# ---------------------------------------------------------------------------
# park / wake
# ---------------------------------------------------------------------------

def test_backpressure_park_and_wake_capacity_one():
    """500 values through a 1-slot channel: every write parks on full,
    every read parks on empty, and the stream still arrives in order."""
    net = Network(name="bp", backend="async")
    ch = net.channel(capacity=LONG.width, name="bp-ch")
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=500, name="w"))
    net.add(Collect(ch.get_input_stream(), out, name="r"))
    assert net.run(timeout=60)
    assert out == list(range(500))


def test_on_stop_runs_once_after_parks():
    stops = []

    class Src(IterativeProcess):
        def __init__(self, out, **kw):
            super().__init__(iterations=100, **kw)
            self.out = out
            self.track(out)
            self.n = 0

        def step(self):
            LONG.write(self.out, self.n)
            self.n += 1

        def on_stop(self):
            stops.append(self.name)
            super().on_stop()

    net = Network(name="stoponce", backend="async")
    ch = net.channel(capacity=LONG.width * 2, name="so-ch")
    out = []
    net.add(Src(ch.get_output_stream(), name="src"))
    net.add(Collect(ch.get_input_stream(), out, name="dst"))
    assert net.run(timeout=60)
    assert out == list(range(100))
    assert stops == ["src"]  # exactly once, despite many parked attempts


def test_step_exception_propagates_from_join():
    class Bad(IterativeProcess):
        def step(self):
            raise RuntimeError("kaput-async")

    net = Network(name="bad", backend="async")
    net.add(Bad(name="bad"))
    with pytest.raises(RuntimeError, match="kaput-async"):
        net.run(timeout=30)


# ---------------------------------------------------------------------------
# the Thread-shaped task surface
# ---------------------------------------------------------------------------

def test_task_duck_types_thread_surface():
    net = Network(name="surface", backend="async")
    ch = net.channel(name="sf")
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=5, name="s"))
    net.add(Collect(ch.get_input_stream(), out, name="c"))
    net.start()
    tasks = [t for t in net._threads if isinstance(t, Task)]
    assert {t.name for t in tasks} == {"s", "c"}
    assert all(t.daemon for t in tasks)
    assert all(t.vtid < 0 for t in tasks)  # never collides with OS tids
    assert net.join(timeout=30)
    for t in tasks:
        assert not t.is_alive()
        t.join(0.1)  # second join is a no-op, like a finished Thread


def test_loop_pool_restarts_after_stop_and_multi_worker():
    pool = LoopPool(workers=2, name="t-pool")
    a, b = pool.place(), pool.place()
    assert a is not b  # round-robin over two loops
    pool.stop()
    assert not pool.active
    c = pool.place()   # lazily rebuilds after a stop
    assert pool.active and not c.stopped
    pool.stop()

    net = Network(name="mw", backend="async", workers=2)
    ch = net.channel(name="mw-ch")
    out = []
    net.add(Sequence(ch.get_output_stream(), iterations=200, name="s"))
    net.add(Collect(ch.get_input_stream(), out, name="c"))
    assert net.run(timeout=60)
    assert out == list(range(200))


def test_event_loop_survives_runner_failure():
    """A crash inside the runner marks that task done instead of killing
    the loop and stranding its mates."""
    loop = EventLoop(name="crash-loop")

    class Broken:
        name = "broken"
        failure = None

    class Victim(Task):
        def _resume(self):
            raise ValueError("runner bug")

    victim = Victim.__new__(Victim)
    victim.process = Broken()
    victim.name = "broken"
    victim.loop = loop
    victim._done = threading.Event()
    victim._on_finish = None
    loop.schedule(victim)
    victim.join(5)
    assert not victim.is_alive()
    assert isinstance(victim.process.failure, ValueError)
    loop.stop()


# ---------------------------------------------------------------------------
# deadlock monitor over parked tasks
# ---------------------------------------------------------------------------

def test_wait_snapshot_reports_task_kind_and_backend():
    net = Network(name="snapshot", backend="async")
    net.monitor.policy.on_true = "ignore"
    ch = net.channel(name="ws-ch")

    class Forever(IterativeProcess):
        def __init__(self, stream, **kw):
            super().__init__(**kw)
            self.stream = stream
            self.track(stream)

        def step(self):
            self.stream.read(1)  # no writer: parks forever

    net.add(Forever(ch.get_input_stream(), name="stuck"))
    net.start()
    deadline = threading.Event()
    for _ in range(100):
        snap = net.wait_snapshot()
        if snap["blocked"]:
            break
        deadline.wait(0.02)
    assert snap["backend"] == "async"
    assert snap["blocked"], "parked task never showed up in the snapshot"
    entry = snap["blocked"][0]
    assert entry["thread"] == "stuck"
    assert entry["kind"] == "task"
    assert entry["mode"] == "read"
    net.shutdown()
    assert net.join(timeout=10)


def test_parks_growth_resolves_artificial_deadlock_with_tasks():
    net = Network(policy=DeadlockPolicy(growth_factor=2), backend="async")
    built = modulo_merge(150, divisor=10, network=net, channel_capacity=16)
    assert built.run(timeout=60) == list(range(1, 151))
    assert net.growth_events(), "expected Parks growth under async"


def test_true_deadlock_diagnosed_with_tasks():
    net = Network(policy=DeadlockPolicy(grow=False), backend="async")
    built = modulo_merge(150, divisor=10, network=net, channel_capacity=16)
    with pytest.raises(ArtificialDeadlockError) as info:
        built.run(timeout=60)
    assert info.value.blocked


# ---------------------------------------------------------------------------
# telemetry and profiler attribution
# ---------------------------------------------------------------------------

def test_telemetry_events_land_in_virtual_task_lanes():
    TELEMETRY.reset().enable()
    try:
        net = Network(name="lanes", backend="async")
        ch = net.channel(capacity=LONG.width, name="ln-ch")
        out = []
        net.add(Sequence(ch.get_output_stream(), iterations=50, name="s"))
        net.add(Collect(ch.get_input_stream(), out, name="c"))
        assert net.run(timeout=60)
        assert out == list(range(50))
        events = TELEMETRY.events()
    finally:
        TELEMETRY.disable().reset()
    spans = [e for e in events if e.category == "kpn.process"]
    assert {e.thread_name for e in spans} >= {"s", "c"}
    lanes = {e.thread_name: e.tid for e in spans}
    assert lanes["s"] < 0 and lanes["c"] < 0  # attributed to the task,
    assert lanes["s"] != lanes["c"]           # not the loop thread
    # block spans pair up inside each task's lane (B and E both present)
    blocks = [e for e in events if e.category == "kpn.block"]
    assert blocks, "capacity-1 channel must have produced block spans"
    per_lane = {}
    for e in blocks:
        per_lane.setdefault(e.tid, []).append(e.phase)
    for tid, phases in per_lane.items():
        assert phases.count("B") == phases.count("E"), \
            f"unbalanced block spans in lane {tid}"


def test_profiler_blocked_time_attribution_under_async():
    from repro.telemetry.profile import PROFILER, analyze

    TELEMETRY.reset().enable()
    PROFILER.reset().enable()
    try:
        net = Network(name="prof-async", backend="async")
        ch = net.channel(capacity=LONG.width, name="pa-ch")
        out = []
        net.add(Sequence(ch.get_output_stream(), iterations=300, name="w"))
        net.add(Collect(ch.get_input_stream(), out, name="r"))
        assert net.run(timeout=60)
        snap = PROFILER.snapshot(network=net)
        report = analyze(snap, net.channel_map())
    finally:
        PROFILER.disable().reset()
        TELEMETRY.disable().reset()
    entry = next(e for e in report["channels"] if e["name"] == "pa-ch")
    # a 1-slot channel serializes the pair: both sides accumulate real
    # blocked time, attributed to the *processes*, not the loop thread
    assert entry["write_blocked_s"] > 0 or entry["read_blocked_s"] > 0
    assert entry["producer"] == "w"


# ---------------------------------------------------------------------------
# scale smoke (the 10k+ claim is benchmarked; keep CI honest but fast)
# ---------------------------------------------------------------------------

def test_two_thousand_process_relay_ring_smoke():
    class Root(IterativeProcess):
        def __init__(self, out, **kw):
            super().__init__(iterations=3, **kw)
            self.out = out
            self.track(out)
            self.n = 0

        def step(self):
            LONG.write(self.out, self.n)
            self.n += 1

    class Relay(IterativeProcess):
        def __init__(self, src, out, **kw):
            super().__init__(**kw)
            self.src = src
            self.out = out
            self.track(src, out)

        def step(self):
            LONG.write(self.out, LONG.read(self.src))

    class Drain(IterativeProcess):
        def __init__(self, src, **kw):
            super().__init__(**kw)
            self.src = src
            self.track(src)
            self.total = 0

        def step(self):
            self.total += LONG.read(self.src)

    n = 2000
    net = Network(name="ring2k", backend="async")
    chans = [net.channel(name=f"rk{i}") for i in range(n - 1)]
    net.add(Root(chans[0].get_output_stream(), name="root"))
    for i in range(1, n - 1):
        net.add(Relay(chans[i - 1].get_input_stream(),
                      chans[i].get_output_stream(), name=f"relay-{i}"))
    drain = net.add(Drain(chans[-1].get_input_stream(), name="drain"))
    assert net.run(timeout=120)
    assert drain.total == 0 + 1 + 2
