"""Trace equivalence: every bundled example, unfused vs. fused.

The Kahn-semantics contract of the graph compiler is that fusion changes
*scheduling*, never *histories*.  Two comparison regimes:

* **Drain-mode** examples terminate by source exhaustion (every process
  stops on its own limit or on a deterministically-closed input), so the
  complete run is determinate: histories must be **byte-identical** and
  sink outputs equal.

* **Sink-limited** examples (a ``Collect`` with an iteration cap, or
  Guard-triggered stop, feeding off an unbounded generator) end in a
  cascading shutdown whose cut point depends on thread timing.  Channel
  histories are prefix-ordered per Kahn up to that cut — *including* at
  the outputs of EOF-tolerant merges (``OrderedMerge``, ``Select``).
  Historically those tails were excluded: a cascade-terminated producer
  used to close its output like a clean EOF, so a merge could
  legitimately switch to pass-through mid-shutdown and emit a
  timing-dependent tail.  Abort-propagating close (``close_write(
  aborted=True)``) removed that escape hatch — the merge now sees the
  abort instead of an EOF and stops rather than improvising — so here
  we assert exact sink outputs plus byte-prefix equality on **every**
  channel (see ``test_merge_tails_prefix_deterministic`` below).

The dynamic task farm contains a declared-``@nondeterminate`` Turnstile;
only its result *set* is stable, and the compiler refuses to fuse the
Turnstile itself — asserted in tests/kpn/test_compile.py.
"""

import pytest

from repro.kpn.compile import fuse
from repro.kpn.history import HistoryCapture
from repro.processes import (fibonacci, hamming, modulo_merge, newton_sqrt,
                             primes)
from repro.processes.merges import OrderedMerge
from repro.processes.routing import Select


def farm_pipeline():
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    return build_farm(
        RangeProducerTask(25, lambda i: CallableTask(pow, i, 3)),
        n_workers=1, mode="pipeline")


DRAIN = {
    # primes-below is wholly refused (FromIterable custom run loop, Sift
    # dynamic): the compiler must be an exact no-op on it
    "primes-below": lambda: primes(below=30),
    "fig13": lambda: modulo_merge(60, 10),
    "fig19-pipeline": farm_pipeline,
}
EXPECT_NO_CHAINS = {"primes-below", "primes-count"}
SINK_LIMITED = {
    "fibonacci": lambda: fibonacci(15),
    "primes-count": lambda: primes(count=8),
    "hamming": lambda: hamming(15),
    "newton": lambda: newton_sqrt(2.0),
}


def norm(name):
    """Strip the per-build farm id so channel names compare across runs."""
    if name.startswith("farm-"):
        return "farm-" + name.split("-", 2)[-1]
    return name


def run_example(builder, optimize, capture=True):
    built = builder()
    net = getattr(built, "network", built)
    cap = HistoryCapture(net) if capture else None
    plan = fuse(net) if optimize else None
    net.run(timeout=120)
    histories = {}
    if cap is not None:
        cap.refresh()
        histories = {norm(k): v for k, v in cap.raw().items()}
    results = getattr(built, "results", None)
    return histories, list(results) if results is not None else None, net, plan


def eof_tolerant_producers(net):
    """Channel names produced by merges that survive an input's EOF."""
    out = set()
    for p in net._leaf_processes():
        if isinstance(p, (OrderedMerge, Select)):
            for s in p.output_streams:
                ch = getattr(s, "channel", None)
                if ch is not None:
                    out.add(norm(ch.name))
    return out


@pytest.mark.parametrize("name", sorted(DRAIN))
def test_drain_mode_histories_byte_identical(name):
    h0, o0, _, _ = run_example(DRAIN[name], optimize=False)
    h1, o1, _, plan = run_example(DRAIN[name], optimize=True)
    if name in EXPECT_NO_CHAINS:
        assert plan.chains == []
    else:
        assert plan.chains, f"{name}: expected at least one fused chain"
    assert o1 == o0
    assert set(h1) == set(h0)
    for ch in h0:
        assert h1[ch] == h0[ch], f"{name}: history of {ch} diverged"


@pytest.mark.parametrize("name", sorted(SINK_LIMITED))
def test_sink_limited_outputs_exact_histories_prefix(name):
    h0, o0, net0, _ = run_example(SINK_LIMITED[name], optimize=False)
    h1, o1, _, plan = run_example(SINK_LIMITED[name], optimize=True)
    if name in EXPECT_NO_CHAINS:
        assert plan.chains == []  # Sift is dynamic: whole net refused
    else:
        assert plan.chains, f"{name}: expected at least one fused chain"
    assert o1 == o0, f"{name}: sink outputs diverged"
    assert set(h1) == set(h0)
    for ch in h0:
        n = min(len(h0[ch]), len(h1[ch]))
        assert h1[ch][:n] == h0[ch][:n], \
            f"{name}: history prefix of {ch} diverged"


def test_merge_tails_prefix_deterministic():
    """Abort-propagating close makes merge tails prefix-deterministic
    under the shutdown cascade: a cascade-terminated input now aborts
    its output channel instead of presenting a clean EOF, so the merge
    never switches to pass-through mid-shutdown.  Two independent runs
    of the *unfused* hamming network must agree (prefix-wise) on the
    merge-output channels that used to be excluded from comparison."""
    h0, o0, net0, _ = run_example(SINK_LIMITED["hamming"], optimize=False)
    h1, o1, _, _ = run_example(SINK_LIMITED["hamming"], optimize=False)
    merges = eof_tolerant_producers(net0)
    assert merges  # hamming's merge tree is the canonical case
    assert all(ch.startswith("ham-merge") or ch == "ham-merged"
               for ch in merges)
    assert o1 == o0
    for ch in merges:
        n = min(len(h0[ch]), len(h1[ch]))
        assert h1[ch][:n] == h0[ch][:n], \
            f"merge tail {ch} diverged across identical unfused runs"


def test_dynamic_farm_result_set_stable():
    from repro.parallel.farm import build_farm
    from repro.parallel.tasks import CallableTask, RangeProducerTask

    def build():
        return build_farm(
            RangeProducerTask(20, lambda i: CallableTask(pow, i, 2)),
            n_workers=2, mode="dynamic")

    _, o0, _, _ = run_example(build, optimize=False, capture=False)
    _, o1, _, plan = run_example(build, optimize=True, capture=False)
    assert plan.chains  # plumbing around the Turnstile still fuses
    assert sorted(map(repr, o1)) == sorted(map(repr, o0))


@pytest.mark.parametrize("name", ["fibonacci", "hamming", "newton", "fig13"])
def test_object_fast_path_outputs(name):
    """No history capture armed: matching-codec edges pass objects and
    the sink outputs must still be exact."""
    builders = {"fibonacci": lambda: fibonacci(15),
                "hamming": lambda: hamming(15),
                "newton": lambda: newton_sqrt(2.0),
                "fig13": lambda: modulo_merge(60, 10)}
    _, o0, _, _ = run_example(builders[name], optimize=False, capture=False)
    _, o1, _, _ = run_example(builders[name], optimize=True, capture=False)
    assert o1 == o0
