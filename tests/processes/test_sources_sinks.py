"""Sources and sinks: Constant, Sequence, FromIterable, Print, Collect, Discard."""

import io

from repro.kpn import Network
from repro.processes import (Collect, Constant, Discard, FromIterable, Print,
                             Sequence)
from repro.processes.codecs import DOUBLE, OBJECT


def run_source(process_factory, codec="long", iterations=0):
    net = Network()
    ch = net.channel()
    out = []
    net.add(process_factory(ch.get_output_stream()))
    net.add(Collect(ch.get_input_stream(), out, codec=codec,
                    iterations=iterations))
    net.run(timeout=30)
    return out


def test_constant_finite():
    out = run_source(lambda s: Constant(7, s, iterations=5))
    assert out == [7] * 5


def test_constant_double_codec():
    out = run_source(lambda s: Constant(2.5, s, iterations=3, codec=DOUBLE),
                     codec=DOUBLE)
    assert out == [2.5] * 3


def test_constant_infinite_bounded_by_sink():
    out = run_source(lambda s: Constant(1, s), iterations=10)
    assert out == [1] * 10


def test_sequence_start_stride():
    out = run_source(lambda s: Sequence(s, start=10, stride=3, iterations=5))
    assert out == [10, 13, 16, 19, 22]


def test_sequence_negative_stride():
    out = run_source(lambda s: Sequence(s, start=0, stride=-1, iterations=4))
    assert out == [0, -1, -2, -3]


def test_from_iterable_list():
    out = run_source(lambda s: FromIterable(s, [5, 6, 7]))
    assert out == [5, 6, 7]


def test_from_iterable_generator_and_objects():
    items = [{"k": i} for i in range(4)]
    out = run_source(lambda s: FromIterable(s, iter(items), codec=OBJECT),
                     codec=OBJECT)
    assert out == items


def test_from_iterable_closes_output_at_end():
    net = Network()
    ch = net.channel()
    net.add(FromIterable(ch.get_output_stream(), [1]))
    out = []
    net.add(Collect(ch.get_input_stream(), out))
    net.run(timeout=30)
    assert ch.buffer.write_closed
    assert out == [1]


def test_from_iterable_stops_on_broken_channel():
    net = Network()
    ch = net.channel(capacity=16)
    src = FromIterable(ch.get_output_stream(), range(10 ** 6))
    net.add(src)
    net.add(Collect(ch.get_input_stream(), [], iterations=3))
    net.run(timeout=30)
    assert src.failure is None


def test_print_writes_to_file(capsys):
    net = Network()
    ch = net.channel()
    net.add(FromIterable(ch.get_output_stream(), [1, 2]))
    net.add(Print(ch.get_input_stream(), prefix="n="))
    net.run(timeout=30)
    assert capsys.readouterr().out == "n=1\nn=2\n"


def test_print_getstate_drops_file_handle():
    buf = io.StringIO()
    net = Network()
    ch = net.channel()
    p = Print(ch.get_input_stream(), file=buf)
    assert p.__getstate__()["file"] is None


def test_collect_iteration_limit():
    out = run_source(lambda s: Sequence(s, iterations=0), iterations=4)
    assert out == [0, 1, 2, 3]


def test_discard_consumes_everything():
    net = Network()
    ch = net.channel()
    net.add(Sequence(ch.get_output_stream(), iterations=100))
    d = Discard(ch.get_input_stream())
    net.add(d)
    net.run(timeout=30)
    assert d.steps_completed == 100
