"""DSP process blocks: behaviour, edge cases, and compiler agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kpn import Network
from repro.processes import Collect, FromIterable
from repro.processes.dsp import (Accumulate, Delay, Downsample, FIRFilter,
                                 MovingAverage, Unzip, Upsample, Window, Zip)
from repro.semantics.compile import compile_network


def run_block(factory, data, in_codec="double", out_codec="double",
              compile_check=True):
    """Run data through one block; optionally check the derived kernel."""
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), data, codec=in_codec))
    net.add(factory(a.get_input_stream(), b.get_output_stream()))
    net.add(Collect(b.get_input_stream(), out, codec=out_codec))
    predicted = None
    if compile_check:
        predicted = compile_network(net).predict("ch-1")
    net.run(timeout=60)
    if compile_check:
        assert list(predicted) == out, "kernel disagrees with runtime"
    return out


# ---------------------------------------------------------------------------
# Delay
# ---------------------------------------------------------------------------

def test_delay_prepends_initial():
    assert run_block(lambda i, o: Delay(i, o, [0.0, 0.0]), [1.0, 2.0]) == \
        [0.0, 0.0, 1.0, 2.0]


def test_delay_empty_initial_is_identity():
    assert run_block(lambda i, o: Delay(i, o, []), [5.0]) == [5.0]


# ---------------------------------------------------------------------------
# FIR / moving average
# ---------------------------------------------------------------------------

def test_fir_identity_filter():
    assert run_block(lambda i, o: FIRFilter(i, o, [1.0]), [3.0, 1.0, 4.0]) == \
        [3.0, 1.0, 4.0]


def test_fir_difference_filter():
    out = run_block(lambda i, o: FIRFilter(i, o, [1.0, -1.0]),
                    [1.0, 4.0, 9.0, 16.0])
    assert out == [3.0, 5.0, 7.0]


def test_fir_valid_mode_length():
    out = run_block(lambda i, o: FIRFilter(i, o, [0.5, 0.5, 0.0]),
                    [1.0] * 10)
    assert len(out) == 8


def test_fir_rejects_empty_coeffs():
    net = Network()
    a, b = net.channels_n(2)
    with pytest.raises(ValueError):
        FIRFilter(a.get_input_stream(), b.get_output_stream(), [])


def test_moving_average_smooths():
    out = run_block(lambda i, o: MovingAverage(i, o, 3),
                    [1.0, 2.0, 3.0, 4.0, 5.0])
    assert out == pytest.approx([2.0, 3.0, 4.0])


@given(st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False), min_size=3, max_size=20))
@settings(max_examples=20, deadline=None)
def test_moving_average_matches_numpy(data):
    import numpy as np

    out = run_block(lambda i, o: MovingAverage(i, o, 3), data,
                    compile_check=False)
    expect = np.convolve(data, np.ones(3) / 3, mode="valid")
    assert out == pytest.approx(list(expect), rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# rate changers
# ---------------------------------------------------------------------------

def test_downsample_keeps_group_heads():
    assert run_block(lambda i, o: Downsample(i, o, 3),
                     [float(x) for x in range(10)]) == [0.0, 3.0, 6.0, 9.0]


def test_downsample_factor_one_is_identity():
    assert run_block(lambda i, o: Downsample(i, o, 1), [1.0, 2.0]) == [1.0, 2.0]


def test_upsample_inserts_fill():
    assert run_block(lambda i, o: Upsample(i, o, 3, fill=-1.0), [1.0, 2.0]) == \
        [1.0, -1.0, -1.0, 2.0, -1.0, -1.0]


def test_down_up_roundtrip_structure():
    data = [float(x) for x in range(12)]
    down = run_block(lambda i, o: Downsample(i, o, 4), data)
    up = run_block(lambda i, o: Upsample(i, o, 4), down)
    assert up[::4] == down


@pytest.mark.parametrize("cls,kwargs", [(Downsample, {"k": 0}),
                                        (Upsample, {"k": -1})])
def test_rate_changers_reject_bad_factor(cls, kwargs):
    net = Network()
    a, b = net.channels_n(2)
    with pytest.raises(ValueError):
        cls(a.get_input_stream(), b.get_output_stream(), **kwargs)


# ---------------------------------------------------------------------------
# zip / unzip / window / accumulate
# ---------------------------------------------------------------------------

def test_zip_pairs_two_streams():
    net = Network()
    a, b, c = net.channels_n(3)
    out = []
    net.add(FromIterable(a.get_output_stream(), [1.0, 2.0], codec="double"))
    net.add(FromIterable(b.get_output_stream(), [10.0, 20.0, 30.0],
                         codec="double"))
    net.add(Zip(a.get_input_stream(), b.get_input_stream(),
                c.get_output_stream()))
    net.add(Collect(c.get_input_stream(), out, codec="object"))
    predicted = compile_network(net).predict("ch-2")
    net.run(timeout=30)
    assert out == [(1.0, 10.0), (2.0, 20.0)]
    assert list(predicted) == out


def test_unzip_round_robin():
    net = Network()
    a, left, right = net.channels_n(3)
    got_l, got_r = [], []
    net.add(FromIterable(a.get_output_stream(),
                         [0.0, 1.0, 2.0, 3.0, 4.0, 5.0], codec="double"))
    net.add(Unzip(a.get_input_stream(), left.get_output_stream(),
                  right.get_output_stream()))
    net.add(Collect(left.get_input_stream(), got_l, codec="double"))
    net.add(Collect(right.get_input_stream(), got_r, codec="double"))
    compiled = compile_network(net)
    net.run(timeout=30)
    assert got_l == [0.0, 2.0, 4.0]
    assert got_r == [1.0, 3.0, 5.0]
    assert list(compiled.predict("ch-1")) == got_l
    assert list(compiled.predict("ch-2")) == got_r


def test_zip_unzip_roundtrip():
    data = [float(x) for x in range(8)]
    net = Network()
    a, l, r, z = net.channels_n(4)
    out = []
    net.add(FromIterable(a.get_output_stream(), data, codec="double"))
    net.add(Unzip(a.get_input_stream(), l.get_output_stream(),
                  r.get_output_stream()))
    net.add(Zip(l.get_input_stream(), r.get_input_stream(),
                z.get_output_stream()))
    net.add(Collect(z.get_input_stream(), out, codec="object"))
    net.run(timeout=30)
    flattened = [x for pair in out for x in pair]
    assert flattened == data


def test_window_sliding():
    out = run_block(lambda i, o: Window(i, o, 3, hop=1),
                    [1.0, 2.0, 3.0, 4.0], out_codec="object")
    assert out == [(1.0, 2.0, 3.0), (2.0, 3.0, 4.0)]


def test_window_hopping():
    out = run_block(lambda i, o: Window(i, o, 2, hop=2),
                    [1.0, 2.0, 3.0, 4.0, 5.0], out_codec="object")
    assert out == [(1.0, 2.0), (3.0, 4.0)]


def test_accumulate_prefix_sums():
    assert run_block(lambda i, o: Accumulate(i, o), [1.0, 2.0, 3.0]) == \
        [1.0, 3.0, 6.0]


def test_accumulate_custom_fn():
    out = run_block(lambda i, o: Accumulate(i, o, fn=max, initial=float("-inf")),
                    [1.0, 5.0, 3.0, 7.0, 2.0])
    assert out == [1.0, 5.0, 5.0, 7.0, 7.0]


# ---------------------------------------------------------------------------
# a realistic chain: denoise + decimate
# ---------------------------------------------------------------------------

def test_denoise_decimate_chain():
    import math

    data = [math.sin(2 * math.pi * k / 32) + (0.2 if k % 2 else -0.2)
            for k in range(64)]
    net = Network()
    raw, smooth, slow = net.channels_n(3)
    out = []
    net.add(FromIterable(raw.get_output_stream(), data, codec="double"))
    net.add(MovingAverage(raw.get_input_stream(), smooth.get_output_stream(), 2))
    net.add(Downsample(smooth.get_input_stream(), slow.get_output_stream(), 4))
    net.add(Collect(slow.get_input_stream(), out, codec="double"))
    predicted = compile_network(net).predict("ch-2")
    net.run(timeout=30)
    assert list(predicted) == out
    # the ±0.2 alternating noise cancels exactly under a length-2 average
    clean = [math.sin(2 * math.pi * (k + 0.5) / 32) *
             math.cos(math.pi / 32) for k in range(63)][::4]
    assert out == pytest.approx(
        [(data[k] + data[k + 1]) / 2 for k in range(63)][::4])
    assert all(abs(v) <= 1.0 + 1e-9 for v in out)
