"""Integration tests: the paper's figure programs end to end."""

import math

import pytest

from repro.kpn import Network
from repro.processes import fibonacci, hamming, modulo_merge, newton_sqrt, primes
from repro.semantics import (fibonacci_reference, hamming_reference,
                             primes_reference)


# ---------------------------------------------------------------------------
# Figure 2/6: Fibonacci
# ---------------------------------------------------------------------------

def test_fibonacci_first_20():
    assert fibonacci(20).run(timeout=60) == fibonacci_reference(20)


def test_fibonacci_one_value():
    assert fibonacci(1).run(timeout=60) == [1]


def test_fibonacci_longer_run_no_overflow_issue():
    out = fibonacci(60).run(timeout=60)
    assert out == fibonacci_reference(60)
    assert out[-1] == 1548008755920


def test_fibonacci_reuses_supplied_network():
    net = Network(name="mine")
    built = fibonacci(5, network=net)
    assert built.network is net
    assert built.run(timeout=60) == [1, 1, 2, 3, 5]


# ---------------------------------------------------------------------------
# Figures 7/8: sieve
# ---------------------------------------------------------------------------

def test_primes_first_30_iterative():
    assert primes(count=30).run(timeout=120) == primes_reference(count=30)


def test_primes_below_200():
    assert primes(below=200).run(timeout=120) == primes_reference(below=200)


def test_primes_recursive_matches_iterative():
    a = primes(count=20).run(timeout=120)
    b = primes(count=20, recursive=True).run(timeout=120)
    assert a == b == primes_reference(count=20)


def test_primes_sift_inserted_one_filter_per_prime():
    net = Network()
    built = primes(count=10, network=net)
    built.run(timeout=120)
    sift = next(p for p in net.processes if p.name == "Sift")
    assert sift.inserted == primes_reference(count=10)


def test_primes_requires_exactly_one_mode():
    with pytest.raises(ValueError):
        primes()
    with pytest.raises(ValueError):
        primes(count=5, below=10)


def test_primes_below_2_is_empty():
    assert primes(below=2).run(timeout=60) == []


# ---------------------------------------------------------------------------
# Figure 11: Newton square root
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("x", [2.0, 9.0, 1e6, 0.04, 123.456])
def test_newton_sqrt_converges(x):
    result = newton_sqrt(x).run(timeout=60)
    assert len(result) == 1
    assert result[0] == pytest.approx(math.sqrt(x), rel=1e-12)


def test_newton_sqrt_emits_exactly_one_value():
    assert len(newton_sqrt(5.0).run(timeout=60)) == 1


def test_newton_custom_initial_guess():
    result = newton_sqrt(16.0, initial=1.0).run(timeout=60)
    assert result[0] == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Figure 12: Hamming numbers
# ---------------------------------------------------------------------------

def test_hamming_first_20():
    assert hamming(20).run(timeout=120) == hamming_reference(20)


def test_hamming_deeper():
    assert hamming(60).run(timeout=180) == hamming_reference(60)


# ---------------------------------------------------------------------------
# Figure 13
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("divisor", [2, 7, 10])
def test_modulo_merge_reconstructs_integers(divisor):
    out = modulo_merge(100, divisor=divisor).run(timeout=60)
    assert out == list(range(1, 101))
