"""Self-reconfiguration mechanics (Figures 7–10): data neither lost nor
repeated across insertions, removals, and splices."""

import pytest

from repro.kpn import Network
from repro.processes import (Collect, FromIterable, RecursiveSift,
                             SelfRemovingCons, Sequence, Sift)


def test_sift_preserves_stream_position_across_insert():
    """Data buffered in the old channel must flow through the newly
    inserted Modulo — neither lost nor repeated."""
    net = Network()
    feed = net.channel(capacity=1 << 16)  # plenty of buffered data
    found = net.channel()
    out = []
    # pre-fill: the source finishes long before the sift starts reading
    net.add(FromIterable(feed.get_output_stream(), list(range(2, 60))))
    net.add(Sift(feed.get_input_stream(), found.get_output_stream()))
    net.add(Collect(found.get_input_stream(), out))
    net.run(timeout=120)
    assert out == [p for p in range(2, 60)
                   if all(p % q for q in range(2, p))]


def test_sift_dynamic_channels_join_network_accounting():
    net = Network()
    feed, found = net.channels_n(2)
    out = []
    net.add(Sequence(feed.get_output_stream(), start=2, iterations=30))
    net.add(Sift(feed.get_input_stream(), found.get_output_stream()))
    net.add(Collect(found.get_input_stream(), out))
    before = len(net.channels)
    net.run(timeout=120)
    inserted = len(net.channels) - before
    assert inserted == len(out)  # one new channel per inserted Modulo
    assert all(ch.buffer.accounting is net.accounting for ch in net.channels)


def test_recursive_sift_replaces_itself_per_prime():
    net = Network()
    feed, found = net.channels_n(2)
    out = []
    net.add(Sequence(feed.get_output_stream(), start=2, iterations=28))
    net.add(RecursiveSift(feed.get_input_stream(), found.get_output_stream()))
    net.add(Collect(found.get_input_stream(), out))
    net.run(timeout=120)
    assert out == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
    # one replacement Sift per prime joined the network
    sift_count = sum(1 for p in net.processes
                     if type(p).__name__ == "RecursiveSift")
    assert sift_count == len(out) + 1


def test_self_removing_cons_with_tiny_channels():
    """Splice under backpressure: buffered bytes in the cons's output
    channel must be consumed before the spliced stream activates."""
    net = Network()
    head, tail, down = (net.channel(capacity=8, name=n)
                        for n in ("head", "tail", "down"))
    out = []
    net.add(FromIterable(head.get_output_stream(), [0]))
    net.add(Sequence(tail.get_output_stream(), start=1, iterations=200))
    net.add(SelfRemovingCons(head.get_input_stream(), tail.get_input_stream(),
                             down.get_output_stream()))
    net.add(Collect(down.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(201))


def test_chain_of_self_removing_cons():
    """Multiple removals splice transitively (cons(a, cons(b, s)))."""
    net = Network()
    h1, h2, mid, tail, down = net.channels_n(5)
    out = []
    net.add(FromIterable(h1.get_output_stream(), [101]))
    net.add(FromIterable(h2.get_output_stream(), [102]))
    net.add(Sequence(tail.get_output_stream(), start=0, iterations=50))
    net.add(SelfRemovingCons(h2.get_input_stream(), tail.get_input_stream(),
                             mid.get_output_stream(), name="inner"))
    net.add(SelfRemovingCons(h1.get_input_stream(), mid.get_input_stream(),
                             down.get_output_stream(), name="outer"))
    net.add(Collect(down.get_input_stream(), out))
    net.run(timeout=60)
    assert out == [101, 102] + list(range(50))
