"""Duplicate's two fan-out termination disciplines.

A regression suite for a genuine subtlety the random-network fuzzer
uncovered: the paper's Figure-5 Duplicate dies on the first broken
output, which truncates still-live sibling branches at a point that
depends on channel capacity.  The default stays paper-faithful (the
"first k primes" cascade requires it); ``resilient=True`` provides the
Kahn-faithful alternative.
"""

import random

import pytest

from repro.kpn import Network
from repro.processes import Add, Collect, Duplicate, FromIterable, Sequence
from repro.semantics.randomnets import (build_operational, random_spec,
                                        reference_evaluate)


def fanout_with_short_branch(resilient: bool, capacity: int):
    """dup feeds (a) an Add zipped against a 2-element stream (dies
    early) and (b) an unbounded Collect."""
    net = Network()
    src, left, right, short, summed = net.channels_n(5, capacity=capacity)
    survivors = []
    net.add(FromIterable(src.get_output_stream(), list(range(10))))
    net.add(Duplicate(src.get_input_stream(),
                      [left.get_output_stream(), right.get_output_stream()],
                      resilient=resilient, name="dup"))
    net.add(FromIterable(short.get_output_stream(), [100, 200]))
    net.add(Add(left.get_input_stream(), short.get_input_stream(),
                summed.get_output_stream()))
    net.add(Collect(summed.get_input_stream(), []))
    net.add(Collect(right.get_input_stream(), survivors))
    net.run(timeout=60)
    return survivors


def test_resilient_branch_survives_sibling_death_any_capacity():
    for capacity in (16, 64, 1024, 1 << 16):
        assert fanout_with_short_branch(True, capacity) == list(range(10)), \
            f"capacity={capacity}"


def test_faithful_mode_truncates_capacity_dependently():
    """The default (paper) mode cuts the sibling once the dead branch's
    buffer fills — visibly fewer elements at tiny capacity."""
    truncated = fanout_with_short_branch(False, 16)
    assert len(truncated) < 10
    roomy = fanout_with_short_branch(False, 1 << 16)
    assert roomy == list(range(10))  # big buffers hide the cut


def test_faithful_mode_still_terminates_sink_limited_cycles():
    """The Fibonacci 'first k' mode depends on the faithful cascade: an
    infinite feedback cycle must die when the printing branch stops."""
    from repro.processes import fibonacci
    from repro.semantics import fibonacci_reference

    assert fibonacci(12).run(timeout=60) == fibonacci_reference(12)


def test_resilient_mode_drains_to_eof_then_stops():
    net = Network()
    src, a, b = net.channels_n(3)
    out_a, out_b = [], []
    net.add(Sequence(src.get_output_stream(), iterations=20))
    net.add(Duplicate(src.get_input_stream(),
                      [a.get_output_stream(), b.get_output_stream()],
                      resilient=True))
    net.add(Collect(a.get_input_stream(), out_a))
    net.add(Collect(b.get_input_stream(), out_b))
    net.run(timeout=60)
    assert out_a == out_b == list(range(20))


def test_resilient_all_outputs_broken_terminates():
    net = Network()
    src, a, b = net.channels_n(3, capacity=64)
    net.add(Sequence(src.get_output_stream(), iterations=0))  # unbounded
    net.add(Duplicate(src.get_input_stream(),
                      [a.get_output_stream(), b.get_output_stream()],
                      resilient=True))
    net.add(Collect(a.get_input_stream(), [], iterations=3))
    net.add(Collect(b.get_input_stream(), [], iterations=5))
    assert net.run(timeout=60)  # both sinks limited: dup must still end


def test_fuzzer_regression_seed_15313():
    """The exact generated network that exposed the truncation."""
    spec = random_spec(random.Random(15313), max_nodes=9)
    reference = reference_evaluate(spec)
    for capacity in (16, 1 << 16):
        net, sinks = build_operational(spec, capacity=capacity)
        net.run(timeout=60)
        for idx, collected in sinks.items():
            assert collected == reference[idx], (capacity, idx)
