"""Codec behaviour, including the OBJECT hot path's per-stream caching:
frames must stay independent across messages and across interleaved
streams — cached read/write dispatch state is per *stream*, never shared
or stale."""

import io

import pytest

from repro.errors import EndOfStreamError
from repro.kpn.channel import Channel
from repro.processes.codecs import (BOOL, DOUBLE, INT, LONG, OBJECT,
                                    get_codec)


def test_object_codec_round_trip_over_channel():
    ch = Channel(4096)
    out, inp = ch.get_output_stream(), ch.get_input_stream()
    values = ["hello", {"k": [1, 2, 3]}, (None, True), 42, b"\x00" * 100]
    for v in values:
        OBJECT.write(out, v)
    assert [OBJECT.read(inp) for _ in values] == values


def test_object_frames_independent_across_messages():
    # identity/memo state must not bleed between frames: the same object
    # written twice arrives as two independent copies
    ch = Channel(4096)
    out, inp = ch.get_output_stream(), ch.get_input_stream()
    payload = {"shared": [1, 2]}
    OBJECT.write(out, payload)
    OBJECT.write(out, payload)
    a, b = OBJECT.read(inp), OBJECT.read(inp)
    assert a == b == payload
    assert a is not b
    a["shared"].append(3)
    assert b["shared"] == [1, 2]


def test_object_codec_interleaved_streams():
    # per-stream cached dispatch state must not cross streams
    ch1, ch2 = Channel(4096), Channel(4096)
    o1, o2 = ch1.get_output_stream(), ch2.get_output_stream()
    i1, i2 = ch1.get_input_stream(), ch2.get_input_stream()
    for n in range(10):
        OBJECT.write(o1, ("one", n))
        OBJECT.write(o2, ("two", n))
    for n in range(10):
        assert OBJECT.read(i2) == ("two", n)
        assert OBJECT.read(i1) == ("one", n)


def test_object_codec_plain_bytesio_source():
    # sources without read_exactly use the cached fallback reader
    buf = io.BytesIO()
    OBJECT.write(buf, "abc")
    OBJECT.write(buf, [1, 2])
    buf.seek(0)
    assert OBJECT.read(buf) == "abc"
    assert OBJECT.read(buf) == [1, 2]
    with pytest.raises(EndOfStreamError):
        OBJECT.read(buf)


def test_object_encode_matches_write():
    ch = Channel(4096)
    OBJECT.write(ch.get_output_stream(), {"x": 1})
    framed = ch.buffer.drain()
    assert bytes(framed) == OBJECT.encode({"x": 1})


@pytest.mark.parametrize("codec,value", [
    (LONG, -(1 << 40)), (INT, -12345), (DOUBLE, 3.5), (BOOL, True),
])
def test_struct_codecs_round_trip(codec, value):
    ch = Channel(64)
    codec.write(ch.get_output_stream(), value)
    assert codec.read(ch.get_input_stream()) == value


def test_get_codec_names():
    assert get_codec("object") is OBJECT
    assert get_codec(LONG) is LONG
    with pytest.raises(ValueError):
        get_codec("nope")
