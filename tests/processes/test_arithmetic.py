"""Arithmetic processes: Add/Subtract/Multiply/Divide/Average/Equal/ModuloFilter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kpn import Network
from repro.processes import (Add, Average, Collect, Divide, Equal, FromIterable,
                             ModuloFilter, Multiply, Subtract)
from repro.processes.codecs import BOOL, DOUBLE


def run_binary(cls, left, right, codec="long", out_codec=None):
    net = Network()
    a, b, c = net.channels_n(3)
    out = []
    net.add(FromIterable(a.get_output_stream(), left, codec=codec))
    net.add(FromIterable(b.get_output_stream(), right, codec=codec))
    net.add(cls(a.get_input_stream(), b.get_input_stream(),
                c.get_output_stream(), codec=codec))
    net.add(Collect(c.get_input_stream(), out, codec=out_codec or codec))
    net.run(timeout=30)
    return out


def test_add():
    assert run_binary(Add, [1, 2, 3], [10, 20, 30]) == [11, 22, 33]


def test_subtract():
    assert run_binary(Subtract, [10, 10], [1, 2]) == [9, 8]


def test_multiply():
    assert run_binary(Multiply, [3, -4], [5, 5]) == [15, -20]


def test_divide_doubles():
    assert run_binary(Divide, [9.0, 1.0], [3.0, 4.0], codec=DOUBLE) == [3.0, 0.25]


def test_average():
    assert run_binary(Average, [2.0, 10.0], [4.0, 0.0], codec=DOUBLE) == [3.0, 5.0]


def test_equal_emits_bools():
    assert run_binary(Equal, [1, 2, 3], [1, 5, 3], out_codec=BOOL) == \
        [True, False, True]


def test_binary_output_length_is_min_of_inputs():
    assert run_binary(Add, [1, 2, 3, 4, 5], [10, 20]) == [11, 22]


@given(st.lists(st.integers(min_value=-10 ** 9, max_value=10 ** 9), max_size=30),
       st.lists(st.integers(min_value=-10 ** 9, max_value=10 ** 9), max_size=30))
@settings(max_examples=25, deadline=None)
def test_add_matches_zip_property(left, right):
    assert run_binary(Add, left, right) == [a + b for a, b in zip(left, right)]


def test_modulo_filter_drops_multiples():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), list(range(1, 20))))
    net.add(ModuloFilter(a.get_input_stream(), b.get_output_stream(), 3))
    net.add(Collect(b.get_input_stream(), out))
    net.run(timeout=30)
    assert out == [x for x in range(1, 20) if x % 3 != 0]


def test_modulo_filter_all_dropped_yields_empty():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), [2, 4, 6]))
    net.add(ModuloFilter(a.get_input_stream(), b.get_output_stream(), 2))
    net.add(Collect(b.get_input_stream(), out))
    net.run(timeout=30)
    assert out == []


@given(st.lists(st.integers(min_value=1, max_value=1000), max_size=40),
       st.integers(min_value=2, max_value=13))
@settings(max_examples=25, deadline=None)
def test_modulo_filter_property(values, divisor):
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), values))
    net.add(ModuloFilter(a.get_input_stream(), b.get_output_stream(), divisor))
    net.add(Collect(b.get_input_stream(), out))
    net.run(timeout=30)
    assert out == [v for v in values if v % divisor != 0]
