"""OrderedMerge and the merge tree (the Hamming network's Merge, Fig. 12)."""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.kpn import Network
from repro.processes import Collect, FromIterable, OrderedMerge
from repro.processes.merges import ordered_merge_tree


def run_merge(left, right, dedup=True):
    net = Network()
    a, b, c = net.channels_n(3)
    out = []
    net.add(FromIterable(a.get_output_stream(), left))
    net.add(FromIterable(b.get_output_stream(), right))
    net.add(OrderedMerge(a.get_input_stream(), b.get_input_stream(),
                         c.get_output_stream(), dedup=dedup))
    net.add(Collect(c.get_input_stream(), out))
    net.run(timeout=30)
    return out


def test_merge_basic():
    assert run_merge([1, 3, 5], [2, 4, 6]) == [1, 2, 3, 4, 5, 6]


def test_merge_dedup_eliminates_equal_heads():
    assert run_merge([1, 2, 3], [2, 3, 4]) == [1, 2, 3, 4]


def test_merge_without_dedup_keeps_duplicates():
    assert run_merge([1, 2], [2, 3], dedup=False) == [1, 2, 2, 3]


def test_merge_one_empty_input():
    assert run_merge([], [1, 2]) == [1, 2]
    assert run_merge([1, 2], []) == [1, 2]


def test_merge_unequal_lengths_drain_survivor():
    assert run_merge([1], [2, 3, 4, 5]) == [1, 2, 3, 4, 5]


def test_merge_both_empty():
    assert run_merge([], []) == []


sorted_lists = st.lists(st.integers(min_value=0, max_value=100),
                        max_size=30).map(sorted)


@given(sorted_lists, sorted_lists)
@settings(max_examples=30, deadline=None)
def test_merge_property_matches_sorted_union(left, right):
    got = run_merge(left, right)
    expect = sorted(set(left) | set(right))
    # dedup merge removes cross-stream duplicates AND treats equal
    # *adjacent* values within a stream pairwise; replicate exactly:
    assert got == _reference_dedup_merge(left, right)
    # and on duplicate-free inputs it is exactly the sorted union
    if len(set(left)) == len(left) and len(set(right)) == len(right):
        assert got == sorted(set(left) | set(right))


def _reference_dedup_merge(left, right):
    out, i, j = [], 0, 0
    while i < len(left) and j < len(right):
        if left[i] < right[j]:
            out.append(left[i]); i += 1
        elif right[j] < left[i]:
            out.append(right[j]); j += 1
        else:
            out.append(left[i]); i += 1; j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


@pytest.mark.parametrize("n_inputs", [2, 3, 4, 5])
def test_merge_tree_n_way(n_inputs):
    net = Network()
    ins = []
    lists = [sorted(range(i, 60, n_inputs)) for i in range(n_inputs)]
    for i, data in enumerate(lists):
        ch = net.channel(name=f"in{i}")
        net.add(FromIterable(ch.get_output_stream(), data))
        ins.append(ch.get_input_stream())
    out_ch = net.channel(name="merged")
    out = []
    ordered_merge_tree(net, ins, out_ch.get_output_stream())
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=30)
    assert out == sorted(set().union(*map(set, lists)))


def test_merge_tree_single_input_rejected_gracefully():
    """One input needs no merge; tree builder must not be called that way,
    but two inputs is the base case."""
    net = Network()
    a, b = net.channels_n(2)
    out_ch = net.channel()
    net.add(FromIterable(a.get_output_stream(), [1]))
    net.add(FromIterable(b.get_output_stream(), [2]))
    procs = ordered_merge_tree(net, [a.get_input_stream(), b.get_input_stream()],
                               out_ch.get_output_stream())
    assert len(procs) == 1
