"""Routing processes: Guard, ModuloRouter, Scatter/Gather, Direct/Turnstile/Select."""

import pytest

from repro.kpn import Network
from repro.processes import (Collect, Direct, FromIterable, Gather, Guard,
                             ModuloRouter, Scatter, Select, Sequence, Turnstile)
from repro.processes.codecs import BOOL, INT, OBJECT


# ---------------------------------------------------------------------------
# Guard
# ---------------------------------------------------------------------------

def run_guard(data, control, stop_after_true=False):
    net = Network()
    d, c, o = net.channels_n(3)
    out = []
    net.add(FromIterable(d.get_output_stream(), data))
    net.add(FromIterable(c.get_output_stream(), control, codec=BOOL))
    net.add(Guard(d.get_input_stream(), c.get_input_stream(),
                  o.get_output_stream(), stop_after_true=stop_after_true))
    net.add(Collect(o.get_input_stream(), out))
    net.run(timeout=30)
    return out


def test_guard_passes_only_true_controlled():
    assert run_guard([1, 2, 3, 4], [True, False, True, False]) == [1, 3]


def test_guard_stop_after_first_true():
    assert run_guard([1, 2, 3, 4], [False, True, True, True],
                     stop_after_true=True) == [2]


def test_guard_all_false_emits_nothing():
    assert run_guard([1, 2], [False, False]) == []


# ---------------------------------------------------------------------------
# ModuloRouter (Figure 13's mod)
# ---------------------------------------------------------------------------

def test_modulo_router_splits_by_divisibility():
    net = Network()
    src, up, low = net.channels_n(3)
    upper, lower = [], []
    net.add(Sequence(src.get_output_stream(), start=1, iterations=20))
    net.add(ModuloRouter(src.get_input_stream(), up.get_output_stream(),
                         low.get_output_stream(), 5))
    net.add(Collect(up.get_input_stream(), upper))
    net.add(Collect(low.get_input_stream(), lower))
    net.run(timeout=30)
    assert upper == [5, 10, 15, 20]
    assert lower == [x for x in range(1, 21) if x % 5]


# ---------------------------------------------------------------------------
# Scatter / Gather (Figure 16)
# ---------------------------------------------------------------------------

def scatter_gather(n_items, n_workers):
    net = Network()
    src = net.channel()
    outs = net.channels_n(n_workers, prefix="w")
    merged = net.channel(name="merged")
    out = []
    items = [{"i": i} for i in range(n_items)]
    net.add(FromIterable(src.get_output_stream(), items, codec=OBJECT))
    net.add(Scatter(src.get_input_stream(),
                    [c.get_output_stream() for c in outs]))
    net.add(Gather([c.get_input_stream() for c in outs],
                   merged.get_output_stream()))
    net.add(Collect(merged.get_input_stream(), out, codec=OBJECT))
    net.run(timeout=30)
    return items, out


@pytest.mark.parametrize("n_items,n_workers", [(12, 3), (10, 4), (7, 2), (3, 5)])
def test_scatter_gather_identity_any_remainder(n_items, n_workers):
    """Scatter∘Gather must be the identity even when the task count is not
    a multiple of the worker count (the EOF-mid-round case)."""
    items, out = scatter_gather(n_items, n_workers)
    assert out == items


def test_scatter_round_robin_counts():
    net = Network()
    src = net.channel()
    outs = net.channels_n(3, prefix="w")
    sinks = [[] for _ in range(3)]
    net.add(FromIterable(src.get_output_stream(), list(range(8)), codec=OBJECT))
    net.add(Scatter(src.get_input_stream(),
                    [c.get_output_stream() for c in outs]))
    for c, sink in zip(outs, sinks):
        net.add(Collect(c.get_input_stream(), sink, codec=OBJECT))
    net.run(timeout=30)
    assert sinks == [[0, 3, 6], [1, 4, 7], [2, 5]]


# ---------------------------------------------------------------------------
# Direct / Turnstile / Select (Figures 17–18)
# ---------------------------------------------------------------------------

def test_direct_routes_by_index_stream():
    net = Network()
    tasks, idx = net.channels_n(2)
    outs = net.channels_n(3, prefix="w")
    sinks = [[] for _ in range(3)]
    net.add(FromIterable(tasks.get_output_stream(), list("abcdef"), codec=OBJECT))
    net.add(FromIterable(idx.get_output_stream(), [0, 2, 2, 1, 0, 1], codec=INT))
    net.add(Direct(tasks.get_input_stream(), idx.get_input_stream(),
                   [c.get_output_stream() for c in outs]))
    for c, sink in zip(outs, sinks):
        net.add(Collect(c.get_input_stream(), sink, codec=OBJECT))
    net.run(timeout=30)
    assert sinks == [["a", "e"], ["d", "f"], ["b", "c"]]


def test_turnstile_pairs_results_with_indices():
    net = Network()
    ins = net.channels_n(2, prefix="w")
    pairs, idx = net.channels_n(2, prefix="t")
    got_pairs, got_idx = [], []
    net.add(FromIterable(ins[0].get_output_stream(), ["x0", "x1"], codec=OBJECT))
    net.add(FromIterable(ins[1].get_output_stream(), ["y0"], codec=OBJECT))
    net.add(Turnstile([c.get_input_stream() for c in ins],
                      pairs.get_output_stream(), idx.get_output_stream()))
    net.add(Collect(pairs.get_input_stream(), got_pairs, codec=OBJECT))
    net.add(Collect(idx.get_input_stream(), got_idx, codec=INT))
    net.run(timeout=30)
    # arrival order is nondeterministic, but pairs must be internally
    # consistent and complete
    assert sorted(got_pairs) == [(0, "x0"), (0, "x1"), (1, "y0")]
    assert got_idx == [i for i, _ in got_pairs]
    # per-worker FIFO preserved
    w0 = [r for i, r in got_pairs if i == 0]
    assert w0 == ["x0", "x1"]


def test_select_resequences_to_dispatch_order():
    """Completion order 1,0 for dispatches 0,1 must still emit dispatch 0
    first."""
    net = Network()
    pairs, out_ch = net.channels_n(2)
    out = []
    # 2 workers; initial dispatches: 0->w0, 1->w1.  Completions arrive
    # w1 first (result "b" = dispatch 1), then w0 ("a" = dispatch 0).
    net.add(FromIterable(pairs.get_output_stream(),
                         [(1, "b"), (0, "a")], codec=OBJECT))
    net.add(Select(pairs.get_input_stream(), out_ch.get_output_stream(), 2))
    net.add(Collect(out_ch.get_input_stream(), out, codec=OBJECT))
    net.run(timeout=30)
    assert out == ["a", "b"]


def test_select_interleaved_requeue():
    """Indices also extend the dispatch order: completion k dispatches
    k+N to that worker."""
    net = Network()
    pairs, out_ch = net.channels_n(2)
    out = []
    # N=2. dispatch order starts [0,1].  Completions:
    #   (0,"a0") -> dispatch 2 goes to w0; order [0,1,0]
    #   (0,"a1") -> dispatch 3 to w0; order [0,1,0,0]
    #   (1,"b0") -> dispatch 4 to w1
    # results by dispatch: 0:"a0", 1:"b0", 2:"a1"
    net.add(FromIterable(pairs.get_output_stream(),
                         [(0, "a0"), (0, "a1"), (1, "b0")], codec=OBJECT))
    net.add(Select(pairs.get_input_stream(), out_ch.get_output_stream(), 2))
    net.add(Collect(out_ch.get_input_stream(), out, codec=OBJECT))
    net.run(timeout=30)
    assert out == ["a0", "b0", "a1"]


def test_select_flushes_pending_at_eof():
    net = Network()
    pairs, out_ch = net.channels_n(2)
    out = []
    net.add(FromIterable(pairs.get_output_stream(),
                         [(1, "late"), (1, "later"), (0, "first")],
                         codec=OBJECT))
    net.add(Select(pairs.get_input_stream(), out_ch.get_output_stream(), 2))
    net.add(Collect(out_ch.get_input_stream(), out, codec=OBJECT))
    net.run(timeout=30)
    assert out == ["first", "late", "later"]
