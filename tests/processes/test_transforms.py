"""Byte-level and element transforms: Cons, SelfRemovingCons, Duplicate,
Identity, Scale, MapProcess."""

import pytest

from repro.kpn import Network
from repro.processes import (Collect, Cons, Constant, Duplicate, FromIterable,
                             Identity, MapProcess, Scale, SelfRemovingCons,
                             Sequence)
from repro.processes.codecs import DOUBLE, OBJECT


def test_cons_concatenates_head_then_tail():
    net = Network()
    head, tail, out_ch = net.channels_n(3)
    out = []
    net.add(FromIterable(head.get_output_stream(), [100, 200]))
    net.add(FromIterable(tail.get_output_stream(), [1, 2, 3]))
    net.add(Cons(head.get_input_stream(), tail.get_input_stream(),
                 out_ch.get_output_stream()))
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=30)
    assert out == [100, 200, 1, 2, 3]


def test_cons_with_single_constant_head_is_prepend():
    net = Network()
    head, tail, out_ch = net.channels_n(3)
    out = []
    net.add(Constant(0, head.get_output_stream(), iterations=1))
    net.add(Sequence(tail.get_output_stream(), start=1, iterations=4))
    net.add(Cons(head.get_input_stream(), tail.get_input_stream(),
                 out_ch.get_output_stream()))
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=30)
    assert out == [0, 1, 2, 3, 4]


def test_cons_empty_head_passthrough():
    net = Network()
    head, tail, out_ch = net.channels_n(3)
    out = []
    net.add(FromIterable(head.get_output_stream(), []))
    net.add(FromIterable(tail.get_output_stream(), [9, 8]))
    net.add(Cons(head.get_input_stream(), tail.get_input_stream(),
                 out_ch.get_output_stream()))
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=30)
    assert out == [9, 8]


def test_self_removing_cons_splices_and_detaches():
    net = Network()
    head, tail, out_ch = net.channels_n(3)
    out = []
    net.add(Constant(0, head.get_output_stream(), iterations=1))
    net.add(Sequence(tail.get_output_stream(), start=1, iterations=500))
    cons = SelfRemovingCons(head.get_input_stream(), tail.get_input_stream(),
                            out_ch.get_output_stream())
    net.add(cons)
    net.add(Collect(out_ch.get_input_stream(), out))
    net.run(timeout=60)
    assert out == list(range(501))
    assert cons.removed
    assert cons.tail.detached  # tail channel survived cons's onStop


def test_self_removing_cons_equivalent_to_plain_cons():
    def run(cls):
        net = Network()
        head, tail, out_ch = net.channels_n(3)
        out = []
        net.add(FromIterable(head.get_output_stream(), [7, 7]))
        net.add(Sequence(tail.get_output_stream(), start=0, iterations=50))
        net.add(cls(head.get_input_stream(), tail.get_input_stream(),
                    out_ch.get_output_stream()))
        net.add(Collect(out_ch.get_input_stream(), out))
        net.run(timeout=30)
        return out

    assert run(Cons) == run(SelfRemovingCons)


def test_duplicate_copies_to_all_outputs():
    net = Network()
    src = net.channel()
    branches = net.channels_n(3, prefix="br")
    outs = [[], [], []]
    net.add(Sequence(src.get_output_stream(), start=0, iterations=30))
    net.add(Duplicate(src.get_input_stream(),
                      [b.get_output_stream() for b in branches]))
    for b, o in zip(branches, outs):
        net.add(Collect(b.get_input_stream(), o))
    net.run(timeout=30)
    assert outs[0] == outs[1] == outs[2] == list(range(30))


def test_duplicate_single_output_is_identity():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), [4, 5, 6]))
    net.add(Duplicate(a.get_input_stream(), [b.get_output_stream()]))
    net.add(Collect(b.get_input_stream(), out))
    net.run(timeout=30)
    assert out == [4, 5, 6]


def test_identity_process():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(Sequence(a.get_output_stream(), iterations=10))
    net.add(Identity(a.get_input_stream(), b.get_output_stream()))
    net.add(Collect(b.get_input_stream(), out))
    net.run(timeout=30)
    assert out == list(range(10))


def test_scale_longs_and_doubles():
    for codec, factor, items, expect in [
        ("long", 3, [1, 2], [3, 6]),
        (DOUBLE, 0.5, [1.0, 3.0], [0.5, 1.5]),
    ]:
        net = Network()
        a, b = net.channels_n(2)
        out = []
        net.add(FromIterable(a.get_output_stream(), items, codec=codec))
        net.add(Scale(a.get_input_stream(), b.get_output_stream(), factor,
                      codec=codec))
        net.add(Collect(b.get_input_stream(), out, codec=codec))
        net.run(timeout=30)
        assert out == expect


def test_map_process_with_distinct_out_codec():
    net = Network()
    a, b = net.channels_n(2)
    out = []
    net.add(FromIterable(a.get_output_stream(), [1, 4, 9]))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(),
                       lambda x: {"sqrt": x ** 0.5}, codec="long",
                       out_codec=OBJECT))
    net.add(Collect(b.get_input_stream(), out, codec=OBJECT))
    net.run(timeout=30)
    assert out == [{"sqrt": 1.0}, {"sqrt": 2.0}, {"sqrt": 3.0}]


def test_map_process_failure_is_reported():
    net = Network()
    a, b = net.channels_n(2)
    net.add(FromIterable(a.get_output_stream(), [1]))
    net.add(MapProcess(a.get_input_stream(), b.get_output_stream(),
                       lambda x: 1 // 0))
    net.add(Collect(b.get_input_stream(), []))
    with pytest.raises(ZeroDivisionError):
        net.run(timeout=30)
