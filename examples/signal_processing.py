"""Streaming signal processing on a process network.

Run:  python examples/signal_processing.py

The paper's opening motivation: "Because process networks expose
parallelism and make communication explicit, they are well suited to a
variety of signal processing and scientific computation applications."
This example builds a small DSP chain —

    noisy sine → FIR low-pass (moving average) → 4x decimator → RMS meter

— as a Kahn network, runs it, and then *proves* the run with the network
compiler: the denotational least fixed point of the derived stream
equations must equal the operationally collected samples, element for
element.
"""

import math

from repro.kpn import Network
from repro.processes import (Accumulate, Collect, Downsample, FromIterable,
                             MapProcess, MovingAverage)
from repro.semantics.compile import compile_network


def noisy_sine(n: int, period: int = 32, noise: float = 0.25) -> list[float]:
    return [math.sin(2 * math.pi * k / period)
            + (noise if k % 2 else -noise) for k in range(n)]


def square(x: float) -> float:
    return x * x


def main() -> None:
    samples = noisy_sine(256)
    net = Network(name="dsp-chain")
    raw, smooth, slow, squared, energy = net.channels_n(5, prefix="sig")
    out: list[float] = []

    net.add(FromIterable(raw.get_output_stream(), samples, codec="double",
                         name="adc"))
    net.add(MovingAverage(raw.get_input_stream(), smooth.get_output_stream(),
                          4, name="lowpass"))
    net.add(Downsample(smooth.get_input_stream(), slow.get_output_stream(),
                       4, name="decimate"))
    net.add(MapProcess(slow.get_input_stream(), squared.get_output_stream(),
                       square, codec="double", name="square"))
    net.add(Accumulate(squared.get_input_stream(), energy.get_output_stream(),
                       name="energy"))
    net.add(Collect(energy.get_input_stream(), out, codec="double",
                    name="meter"))

    # denotational prediction first…
    compiled = compile_network(net, max_len=512)
    predicted = compiled.predict("sig-4")
    # …then the actual run
    net.run(timeout=60)
    assert list(predicted) == out, "runtime diverged from the fixed point!"

    rms = math.sqrt(out[-1] / len(out))
    print(f"{len(samples)} noisy samples -> {len(out)} filtered+decimated")
    print(f"running energy (last 5): {[round(v, 3) for v in out[-5:]]}")
    print(f"RMS of filtered signal: {rms:.4f} "
          f"(clean sine RMS = {1 / math.sqrt(2):.4f})")
    print("operational history == denotational least fixed point ✓")


if __name__ == "__main__":
    main()
    print("signal processing OK")
