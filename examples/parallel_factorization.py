"""Weak-RSA-key factorization on parallel workers (paper section 5.2).

Run:  python examples/parallel_factorization.py

A scaled-down version of the paper's experiment, real execution (threads
in this process):

1. build a weak key N = P(P+D) with a known difference D;
2. factor it sequentially (the Table-1 baseline: tasks invoked directly);
3. factor it with MetaStatic and MetaDynamic compositions on 4 workers
   whose speeds are artificially heterogeneous (per-task slowdowns
   emulate CPU classes A/B/C/E);
4. verify every mode finds the same factor in the same task, and show
   the task distribution: static deals tasks evenly, dynamic gives the
   fast workers more — the load-balancing story of Figures 19–20.

The paper-scale run (2048 tasks, 34 CPUs, 1024-bit N) lives in the
simulated-cluster benchmarks; see benchmarks/bench_table2_parallel.py.
"""

import time

from repro.parallel import (FactorConsumerResult, FactorProducerTask,
                            FactorResult, build_farm,
                            factor_search_sequential, make_weak_key)

#: per-task slowdowns (seconds) emulating a heterogeneous lab:
#: worker 0 fast (class A) … worker 3 slow (class E)
SLOWDOWNS = [0.0, 0.002, 0.01, 0.02]


def main() -> None:
    n, p, d = make_weak_key(bits=96, found_at_task=30, seed=7)
    print(f"N has {n.bit_length()} bits; planted factor found in task 30")

    t0 = time.perf_counter()
    seq = factor_search_sequential(n)
    t_seq = time.perf_counter() - t0
    print(f"sequential: P = {seq.p} (task {seq.task_index}) "
          f"in {t_seq * 1e3:.1f} ms")
    assert seq.p == p and seq.d == d

    for mode in ("static", "dynamic"):
        handle = build_farm(FactorProducerTask(n, max_tasks=64), n_workers=4,
                            mode=mode, stop_when=FactorConsumerResult.stop_when,
                            slowdowns=SLOWDOWNS)
        t0 = time.perf_counter()
        results = handle.run(timeout=120)
        elapsed = time.perf_counter() - t0
        hit = next(r for r in results if isinstance(r, FactorResult) and r.found)
        workers = handle.harness.workers or handle.harness.plumbing
        counts = [getattr(w, "tasks_processed", None)
                  for w in handle.harness.workers]
        print(f"{mode:>8}: P = {hit.p} (task {hit.task_index}) "
              f"in {elapsed * 1e3:.1f} ms; tasks/worker = {counts}")
        assert hit.p == p and hit.d == d


if __name__ == "__main__":
    main()
    print("parallel factorization OK")
