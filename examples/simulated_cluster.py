"""Regenerate the paper's evaluation on the simulated 34-CPU lab.

Run:  python examples/simulated_cluster.py

Prints Table 1, Table 2, and ASCII renderings of Figures 19 (elapsed
time) and 20 (speedup) with the paper's published numbers alongside the
simulator's.  The benchmarks regenerate the same artifacts under
pytest-benchmark; this example is the human-readable tour.
"""

from repro.simcluster import (TABLE2, ideal_speed, sequential_times,
                              sweep_workers, table2_rows)


def print_table1() -> None:
    print("=== Table 1: sequential execution (minutes) ===")
    print(f"{'class':>5} {'speed':>6} {'model':>7} {'paper':>7}  description")
    for row in sequential_times():
        print(f"{row['class']:>5} {row['speed']:>6.2f} {row['time_model']:>7.2f} "
              f"{row['time_paper']:>7.2f}  {row['description']}")


def print_table2() -> None:
    print("\n=== Table 2: parallel execution (minutes / normalized speed) ===")
    paper = {r.workers: r for r in TABLE2}
    hdr = (f"{'W':>3} | {'ideal t':>7} {'speed':>6} | "
           f"{'static t':>8} {'paper':>6} | {'dynamic t':>9} {'paper':>6}")
    print(hdr)
    print("-" * len(hdr))
    for row in table2_rows():
        p = paper[row.workers]
        print(f"{row.workers:>3} | {row.ideal_time:>7.2f} {row.ideal_speed:>6.2f} | "
              f"{row.static_time:>8.2f} {p.static_time:>6.2f} | "
              f"{row.dynamic_time:>9.2f} {p.dynamic_time:>6.2f}")


def ascii_curve(title: str, series: dict[str, list[float]], xs: list[int],
                height: int = 14) -> None:
    """Minimal ASCII chart: one glyph per series."""
    print(f"\n=== {title} ===")
    glyphs = {"ideal": ".", "static": "D", "dynamic": "^"}
    all_vals = [v for vs in series.values() for v in vs]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    grid = [[" "] * len(xs) for _ in range(height)]
    for name, values in series.items():
        for i, v in enumerate(values):
            r = height - 1 - int((v - lo) / span * (height - 1))
            grid[r][i] = glyphs[name]
    for r, line in enumerate(grid):
        level = hi - (r / (height - 1)) * span
        print(f"{level:7.2f} |" + " ".join(line))
    print(" " * 8 + "+" + "--" * len(xs))
    print(" " * 9 + " ".join(f"{x:<1}" if x < 10 else "*" for x in xs)
          + "   (workers 1..32; * = multiples of 10)")
    print("legend: . ideal   D static   ^ dynamic")


def figures() -> None:
    xs = list(range(1, 33))
    rows = sweep_workers(xs)
    ascii_curve("Figure 19: elapsed time (minutes) vs workers", {
        "ideal": [r.ideal_time for r in rows],
        "static": [r.static_time for r in rows],
        "dynamic": [r.dynamic_time for r in rows],
    }, xs)
    ascii_curve("Figure 20: speedup (normalized speed) vs workers", {
        "ideal": [r.ideal_speed for r in rows],
        "static": [r.static_speed for r in rows],
        "dynamic": [r.dynamic_speed for r in rows],
    }, xs)
    # the two inflection points the paper calls out
    s = [ideal_speed(w) for w in xs]
    d1 = s[7] - s[6]   # adding worker 8 (first class C)
    d0 = s[6] - s[5]
    d2 = s[26] - s[25]  # adding worker 27 (first class E)
    print(f"\nideal-speed increments: worker 7->8 adds {d1:.2f} "
          f"(vs {d0:.2f} before) — first class-C CPU;")
    print(f"                        worker 26->27 adds {d2:.2f} — first class-E CPU.")


if __name__ == "__main__":
    print_table1()
    print_table2()
    figures()
    print("\nsimulated cluster OK")
