"""Quickstart: the Figure-1 pipeline — Producer → Worker → Consumer.

Run:  python examples/quickstart.py

Builds the simplest possible process network twice:

1. by hand, from channels and library processes (squaring a stream of
   integers), showing the low-level API;
2. with the task-farm API (`run_farm`), the one-liner most applications
   want.
"""

from repro.kpn import Network
from repro.processes import Collect, MapProcess, Sequence
from repro.parallel import RangeProducerTask, CallableTask, run_farm


def square(x: int) -> int:
    return x * x


def manual_pipeline() -> None:
    print("== manual pipeline (channels + processes) ==")
    net = Network(name="quickstart")
    raw = net.channel(name="raw")
    squared = net.channel(name="squared")
    out: list[int] = []

    net.add(Sequence(raw.get_output_stream(), start=1, iterations=10,
                     name="Producer"))
    net.add(MapProcess(raw.get_input_stream(), squared.get_output_stream(),
                       square, name="Worker"))
    net.add(Collect(squared.get_input_stream(), out, name="Consumer"))

    net.run(timeout=30)
    print("squares:", out)
    assert out == [k * k for k in range(1, 11)]


def farm_pipeline() -> None:
    print("== task farm (generic Producer/Worker/Consumer over Tasks) ==")
    producer = RangeProducerTask(10, lambda i: CallableTask(square, i + 1))
    results = run_farm(producer, n_workers=3, mode="dynamic", timeout=30)
    print("squares:", results)
    assert results == [k * k for k in range(1, 11)]


if __name__ == "__main__":
    manual_pipeline()
    farm_pipeline()
    print("quickstart OK")
