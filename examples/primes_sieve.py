"""The self-reconfiguring Sieve of Eratosthenes (Figures 7–8).

Run:  python examples/primes_sieve.py

Demonstrates the paper's two reconfiguration styles and two termination
modes (section 3.4):

* iterative Sift (Figure 8): inserts a Modulo filter ahead of itself for
  every prime;
* recursive Sift (Figure 7): replaces itself with Modulo + new Sift;
* "first k primes" — iteration limit on the sink; termination cascades
  *upstream* through broken channels;
* "all primes below m" — iteration limit on the source; the pipeline
  drains completely before shutting down.
"""

from repro.processes import primes
from repro.semantics import primes_reference


def first_k(k: int = 25) -> None:
    print(f"== first {k} primes (iterative Sift, sink-limited) ==")
    out = primes(count=k).run(timeout=60)
    print(out)
    assert out == primes_reference(count=k)


def below_m(m: int = 100) -> None:
    print(f"== all primes below {m} (iterative Sift, source-limited) ==")
    out = primes(below=m).run(timeout=60)
    print(out)
    assert out == primes_reference(below=m)


def recursive(k: int = 15) -> None:
    print(f"== first {k} primes (recursive Sift: self-replacement) ==")
    out = primes(count=k, recursive=True).run(timeout=60)
    print(out)
    assert out == primes_reference(count=k)


if __name__ == "__main__":
    first_k()
    below_m()
    recursive()
    print("primes sieve OK")
