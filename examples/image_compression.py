"""Parallel block image compression (the motivating example of section 5).

Run:  python examples/image_compression.py

"an image can be divided into 16x16 blocks of pixels that are compressed
independently with the results collected and written in order to an image
file."  The producer tiles the image, workers compress blocks (delta
prediction + zlib, lossless), and the consumer — relying on the parallel
composition's order preservation — simply appends.  We then decode and
compare bit-for-bit.
"""

import numpy as np

from repro.parallel import (ImageProducerTask, random_image, reassemble,
                            run_farm)


def main() -> None:
    image = random_image(128, 96, seed=3)
    raw_bytes = image.nbytes
    for mode in ("static", "dynamic"):
        collected = run_farm(ImageProducerTask(image), n_workers=4, mode=mode,
                             timeout=120)
        compressed = sum(len(payload) for _, payload in collected)
        restored = reassemble(collected, *image.shape)
        assert np.array_equal(image, restored), "lossless round trip failed"
        print(f"{mode:>8}: {len(collected)} blocks, "
              f"{raw_bytes} -> {compressed} bytes "
              f"({compressed / raw_bytes:.0%}), round trip exact")


if __name__ == "__main__":
    main()
    print("image compression OK")
