"""KPN vs CSP, side by side — the comparison the paper announces (§6.2).

Run:  python examples/csp_comparison.py

"Work has begun on the implementation of a parallel algorithm for
factoring large numbers ... using both our implementation of process
networks and a Java implementation of CSP."  This example runs the same
factorization Task objects through both runtimes:

* KPN: buffered FIFO channels, MetaDynamic (Direct + Turnstile + Select);
* CSP: rendezvous channels, ALT-based distributor, poison termination;

verifies the results are identical and identically ordered (the whole
point of determinate coordination), and times a throughput-shaped
pipeline where KPN's buffering shows its advantage.
"""

import time

from repro.csp import InlineCSP, ParallelCSP, SyncChannel, csp_farm
from repro.kpn import Network
from repro.parallel import (FactorConsumerResult, FactorProducerTask,
                            make_weak_key, run_farm)
from repro.processes import Collect, Scale, Sequence


def farm_shootout() -> None:
    print("== factorization farm: identical tasks, two runtimes ==")
    n, p, d = make_weak_key(bits=96, found_at_task=40, seed=99)

    t0 = time.perf_counter()
    kpn = run_farm(FactorProducerTask(n, max_tasks=10 ** 6), n_workers=4,
                   mode="dynamic", stop_when=FactorConsumerResult.stop_when,
                   timeout=300)
    t_kpn = time.perf_counter() - t0

    t0 = time.perf_counter()
    csp = csp_farm(FactorProducerTask(n, max_tasks=10 ** 6), n_workers=4,
                   stop_when=FactorConsumerResult.stop_when, timeout=300)
    t_csp = time.perf_counter() - t0

    assert [(r.task_index, r.p) for r in kpn] == \
        [(r.task_index, r.p) for r in csp], "the runtimes disagree!"
    print(f"  both found P={kpn[-1].p} in task {kpn[-1].task_index}")
    print(f"  KPN {t_kpn * 1e3:7.1f} ms   CSP {t_csp * 1e3:7.1f} ms")
    print("  results identical and identically ordered ✓")


def pipeline_shootout(n: int = 20000) -> None:
    print(f"== pipeline throughput: {n} elements, 2 stages ==")
    # KPN: buffered channels let the stages overlap
    net = Network()
    a, b = net.channels_n(2, capacity=1 << 14)
    out = []
    net.add(Sequence(a.get_output_stream(), iterations=n))
    net.add(Scale(a.get_input_stream(), b.get_output_stream(), 2))
    net.add(Collect(b.get_input_stream(), out))
    t0 = time.perf_counter()
    net.run(timeout=300)
    t_kpn = time.perf_counter() - t0
    assert len(out) == n

    # CSP: every element is a rendezvous
    x, y = SyncChannel(), SyncChannel()
    csp_out = []
    network = ParallelCSP([
        InlineCSP(lambda: [x.write(i) for i in range(n)], poisons=[x]),
        InlineCSP(lambda: _pump(x, y), poisons=[y]),
        InlineCSP(lambda: _drain(y, csp_out)),
    ])
    t0 = time.perf_counter()
    network.run(timeout=300)
    t_csp = time.perf_counter() - t0
    assert csp_out == out
    print(f"  KPN {t_kpn:6.3f} s   CSP {t_csp:6.3f} s   "
          f"(KPN/CSP = {t_kpn / t_csp:.2f}; buffering pays at volume)")


def _pump(src: SyncChannel, dst: SyncChannel) -> None:
    while True:
        dst.write(src.read() * 2)


def _drain(src: SyncChannel, into: list) -> None:
    while True:
        into.append(src.read())


if __name__ == "__main__":
    farm_shootout()
    pipeline_shootout()
    print("csp comparison OK")
