"""Mandelbrot rows on a task farm: non-uniform task costs in the wild.

Run:  python examples/mandelbrot_farm.py

Mandelbrot rows are the textbook non-uniform workload — rows crossing
the set cost many times more than rows that escape instantly — i.e. the
"amount of work required by each task may not be uniform" case of the
paper's section 5.  The example renders a small escape-time image under
static and dynamic balancing, verifies both produce the identical image
(determinacy), and prints per-worker task counts plus an ASCII rendering.
"""

import time

import numpy as np

from repro.parallel import build_farm
from repro.parallel.workloads import MandelbrotProducerTask, assemble_mandelbrot

WIDTH, HEIGHT, MAX_ITER = 72, 28, 120
SHADES = " .:-=+*#%@"


def render(image: np.ndarray) -> str:
    rows = []
    for r in range(image.shape[0]):
        rows.append("".join(
            SHADES[min(int(v * (len(SHADES) - 1) / MAX_ITER),
                       len(SHADES) - 1)]
            for v in image[r]))
    return "\n".join(rows)


def main() -> None:
    images = {}
    for mode in ("static", "dynamic"):
        handle = build_farm(MandelbrotProducerTask(WIDTH, HEIGHT, MAX_ITER),
                            n_workers=4, mode=mode)
        t0 = time.perf_counter()
        results = handle.run(timeout=300)
        elapsed = time.perf_counter() - t0
        counts = [w.tasks_processed for w in handle.harness.workers]
        images[mode] = assemble_mandelbrot(results, WIDTH, HEIGHT)
        print(f"{mode:>8}: {elapsed * 1e3:7.1f} ms, rows/worker = {counts}")

    assert np.array_equal(images["static"], images["dynamic"]), \
        "determinacy violated!"
    print("\nidentical images from both modes ✓\n")
    print(render(images["dynamic"]))


if __name__ == "__main__":
    main()
    print("\nmandelbrot farm OK")
