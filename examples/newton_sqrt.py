"""Newton's-method square root with data-dependent termination (Figure 11).

Run:  python examples/newton_sqrt.py

The whole iteration r_n = (x/r_{n-1} + r_{n-1})/2 lives inside the
network; no process counts iterations.  The Equal process notices when
"the limits of precision of the floating-point representation have been
reached and the root estimate stops changing", the Guard passes exactly
one value and stops, and the termination cascade shuts the network down.
"""

import math

from repro.processes import newton_sqrt


def main() -> None:
    for x in (2.0, 10.0, 12345.678, 0.25):
        result = newton_sqrt(x).run(timeout=30)
        err = abs(result[0] - math.sqrt(x))
        print(f"sqrt({x}) = {result[0]!r}   |err| = {err:.3e}")
        assert len(result) == 1 and err < 1e-9


if __name__ == "__main__":
    main()
    print("newton sqrt OK")
