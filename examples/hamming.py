"""The unbounded Hamming network (Figure 12) under bounded scheduling.

Run:  python examples/hamming.py

H = cons(1, merge(2H, 3H, 5H)): every merged element enqueues up to three
new ones, so channel storage "grows without bound as the program
executes".  With small fixed capacities the feedback cycle write-blocks —
an *artificial* deadlock.  Parks' scheduler detects the stall and grows
the smallest full channel, repeatedly, so the program runs in bounded
memory that expands only as needed.  This example runs with deliberately
tiny channels and prints the growth events the scheduler performed.
"""

from repro.kpn import Network
from repro.kpn.scheduler import DeadlockPolicy
from repro.processes import hamming
from repro.semantics import hamming_reference


def main(count: int = 40) -> None:
    net = Network(name="hamming",
                  policy=DeadlockPolicy(growth_factor=2, on_true="raise"))
    built = hamming(count, network=net, channel_capacity=16)
    out = built.run(timeout=120)
    print(f"first {count} Hamming numbers:", out)
    assert out == hamming_reference(count)
    events = net.growth_events()
    print(f"\nParks bounded scheduling grew {len(events)} channel(s):")
    for e in events:
        print(f"  {e.channel_name}: {e.old_capacity} -> {e.new_capacity} bytes")


if __name__ == "__main__":
    main()
    print("hamming OK")
