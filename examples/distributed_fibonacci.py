"""Fibonacci partitioned across compute servers (Figures 14–15).

Run:  python examples/distributed_fibonacci.py

Stage 1 (Figure 14): the graph is built entirely on "server A" (this
process), then the composite containing the sink is shipped to server B.
The channel crossing the cut re-plumbs itself during serialization — a
listener opens here, the deserialized end dials back — with no socket
code in this file.

Stage 2 (Figure 15): a three-way partition.  The sink composite goes to
server B first; then the composite feeding it goes to server C.  The
link that used to run A→B hands itself over so that C connects to B
*directly*; A drops out of that path entirely (decentralized
communication, no relay through the origin).

Servers here are in-process (mode="thread") so the example is
self-contained; swap mode="process" for separate OS processes.
"""

import time

from repro.kpn import CompositeProcess, Network
from repro.processes import (Add, Collect, Cons, Constant, Duplicate, Scale,
                             Sequence)
from repro.distributed import LocalCluster
from repro.semantics import fibonacci_reference


def figure_14(cluster: LocalCluster) -> None:
    print("== Figure 14: two-server partition ==")
    net = Network(name="A")
    ab, be, cd, df, ed, eg, fg, fh, gb = net.channels_n(9, prefix="fib")

    # local composite: the arithmetic cycle (stays on server A)
    local = CompositeProcess(name="fib-core")
    local.add(Constant(1, ab.get_output_stream(), iterations=1))
    local.add(Cons(ab.get_input_stream(), gb.get_input_stream(),
                   be.get_output_stream()))
    local.add(Duplicate(be.get_input_stream(),
                        [ed.get_output_stream(), eg.get_output_stream()]))
    local.add(Add(eg.get_input_stream(), fg.get_input_stream(),
                  gb.get_output_stream()))
    local.add(Constant(1, cd.get_output_stream(), iterations=1))
    local.add(Cons(cd.get_input_stream(), ed.get_input_stream(),
                   df.get_output_stream()))
    local.add(Duplicate(df.get_input_stream(),
                        [fh.get_output_stream(), fg.get_output_stream()]))

    # remote composite: the sink — but we want the numbers back, so the
    # sink scales by 1 (identity) and a local Collect reads the echo.
    echo = net.channel(name="fib-echo")
    remote = Scale(fh.get_input_stream(), echo.get_output_stream(), 1,
                   name="remote-sink")
    out: list[int] = []
    collector = Collect(echo.get_input_stream(), out, iterations=20)

    cluster.client(0).run(remote)   # ship → connections self-assemble
    time.sleep(0.2)
    net.add(local)
    net.add(collector)
    net.run(timeout=60)
    print("fibonacci via server B:", out)
    assert out == fibonacci_reference(20)


def figure_15(cluster: LocalCluster) -> None:
    print("== Figure 15: three-server partition, direct B<->C link ==")
    net = Network(name="A")
    src = net.channel(name="p15-src")
    mid = net.channel(name="p15-mid")
    back = net.channel(name="p15-back")

    producer = Sequence(src.get_output_stream(), start=1, iterations=12,
                        name="producer")
    doubler = Scale(src.get_input_stream(), mid.get_output_stream(), 2,
                    name="doubler")
    echo = Scale(mid.get_input_stream(), back.get_output_stream(), 1,
                 name="echo")
    out: list[int] = []

    cluster.client(0).run(echo)       # consumer side → server B
    time.sleep(0.2)
    cluster.client(1).run(doubler)    # producer side → server C; the old
    time.sleep(0.2)                   # A->B link redirects: C dials B.
    net.add(producer)
    net.add(Collect(back.get_input_stream(), out, iterations=12))
    net.run(timeout=60)
    print("doubled via B and C:", out)
    assert out == [2 * k for k in range(1, 13)]


if __name__ == "__main__":
    with LocalCluster(2, mode="thread") as cluster:
        print("servers:", cluster.ping_all())
        figure_14(cluster)
        figure_15(cluster)
    print("distributed fibonacci OK")
