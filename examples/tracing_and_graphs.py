"""Observe a running network: tracing, consistency checking, DOT export.

Run:  python examples/tracing_and_graphs.py

Tools an open-source user reaches for on day two:

1. `check_network` — static validation of the graph (single
   producer/consumer, connectivity, boundedness risk) before it runs;
2. `Tracer` — samples channel occupancy and blocked-thread counts while
   the Hamming network runs under deliberately tiny channels, catching
   Parks' capacity growths in the act;
3. `to_dot` / `to_ascii` — render the traced graph, edge labels carrying
   the measured byte counts and high-water marks.
"""

from repro.kpn import Network, Tracer, check_network
from repro.kpn.scheduler import DeadlockPolicy
from repro.kpn.visual import to_ascii, to_dot
from repro.processes import hamming


def main() -> None:
    net = Network(name="traced-hamming",
                  policy=DeadlockPolicy(growth_factor=2))
    built = hamming(40, network=net, channel_capacity=16)

    print("== static checks ==")
    for issue in check_network(net):
        print(" ", issue)

    print("\n== running under the tracer ==")
    with Tracer(net, period=0.001) as tracer:
        out = built.run(timeout=120)
    assert out[-1] == 144  # the 40th Hamming number

    report = tracer.report()
    print(report.summary())

    print("\n== ASCII graph with trace annotations ==")
    print(to_ascii(net, trace=report))

    dot = to_dot(net, trace=report, title="Hamming under Parks scheduling")
    path = "/tmp/repro_hamming.dot"
    with open(path, "w") as fh:
        fh.write(dot)
    print(f"\nDOT graph written to {path} "
          f"({len(dot.splitlines())} lines; render with `dot -Tsvg`)")


if __name__ == "__main__":
    main()
    print("tracing and graphs OK")
