"""Cluster operations: placement policies, live migration, global deadlock
detection — the paper's section-6 future work, working together.

Run:  python examples/cluster_operations.py

1. start an in-process cluster of three servers plus a registry;
2. benchmark the servers and place farm workers speed-weightedly;
3. live-migrate a running producer from this process to a server while
   its consumer keeps reading (no element lost or repeated);
4. run a Figure-13 graph whose channels are too small, spanning two
   sites, and let the *distributed* deadlock detector grow the right
   buffer globally.
"""

import time

from repro.kpn import Network
from repro.kpn.process import IterativeProcess
from repro.kpn.scheduler import DeadlockPolicy
from repro.distributed import (DistributedDeadlockDetector, LocalCluster,
                               SpeedWeightedPlacement, place_workers,
                               profile_servers)
from repro.distributed.migration import migrate_live
from repro.parallel import CallableTask, RangeProducerTask, build_farm
from repro.processes import Collect, ModuloRouter, OrderedMerge, Scale, Sequence
from repro.processes.codecs import LONG


def placement_demo(cluster: LocalCluster) -> None:
    print("== speed-weighted placement ==")
    profiles = profile_servers(cluster, measure_speed=True,
                               calibration_rounds=400)
    for p in profiles:
        print(f"  {p.name}: {p.speed:,.0f} calibration ops/s")
    handle = build_farm(RangeProducerTask(18, lambda i: CallableTask(pow, i, 2)),
                        n_workers=6, mode="dynamic", defer_workers=True)
    assignment = place_workers(handle.harness, cluster,
                               SpeedWeightedPlacement(), profiles=profiles)
    print(f"  worker -> server assignment: {assignment}")
    results = handle.run(timeout=120)
    assert results == [i * i for i in range(18)]
    print(f"  18 tasks through 6 remote workers: results in order ✓")


class Ticker(IterativeProcess):
    def __init__(self, out, iterations, name=None):
        super().__init__(iterations=iterations, name=name)
        self.out = out
        self.track(out)

    def step(self):
        LONG.write(self.out, self.steps_completed)
        time.sleep(0.002)


def live_migration_demo(cluster: LocalCluster) -> None:
    print("== live migration of a running producer ==")
    net = Network()
    ch = net.channel(capacity=1 << 16)
    out = []
    ticker = Ticker(ch.get_output_stream(), iterations=200, name="wanderer")
    net.add(ticker)
    net.add(Collect(ch.get_input_stream(), out))
    net.start()
    while ticker.steps_completed < 40:
        time.sleep(0.005)
    moved_at = ticker.steps_completed
    migrate_live(ticker, cluster.client(0), timeout=30)
    print(f"  producer moved to {cluster.names[0]} after ~{moved_at} elements")
    net.join(timeout=120)
    assert out == list(range(200))
    print(f"  consumer saw one seamless sequence of {len(out)} elements ✓")


def distributed_deadlock_demo(cluster: LocalCluster) -> None:
    print("== distributed deadlock detection (Figure 13 across 2 sites) ==")
    net = Network(name="client", bounded=False)  # no local monitor: the
    src, upper, lower, merged, back = net.channels_n(5, capacity=16)
    out = []
    net.add(Sequence(src.get_output_stream(), start=1, iterations=150,
                     name="Source"))
    net.add(ModuloRouter(src.get_input_stream(), upper.get_output_stream(),
                         lower.get_output_stream(), 10, name="Mod"))
    net.add(OrderedMerge(upper.get_input_stream(), lower.get_input_stream(),
                         merged.get_output_stream(), name="Merge"))
    cluster.client(1).run(Scale(merged.get_input_stream(),
                                back.get_output_stream(), 1, name="RemoteEcho"))
    net.add(Collect(back.get_input_stream(), out, name="Sink"))

    detector = DistributedDeadlockDetector([net, cluster.client(1)],
                                           settle_s=0.03)
    with detector:
        net.start()
        assert net.join(timeout=120)
    assert out == list(range(1, 151))
    print(f"  global Parks rule grew {len(detector.growth_events)} channel(s):")
    for e in detector.growth_events:
        print(f"    {e.channel_name}: {e.old_capacity} -> {e.new_capacity}")
    print("  all 150 values delivered ✓")


if __name__ == "__main__":
    with LocalCluster(3, mode="thread", name_prefix="ops") as cluster:
        placement_demo(cluster)
        live_migration_demo(cluster)
        distributed_deadlock_demo(cluster)
    print("cluster operations OK")
