"""The Fibonacci network of Figures 2 and 6, three ways.

Run:  python examples/fibonacci.py

1. the prebuilt graph (`repro.processes.networks.fibonacci`) — the exact
   wiring of the paper's Figure 6, with a Collect in place of Print;
2. the same graph built by hand with a real Print process, mirroring the
   paper's construction code line by line;
3. the *denotational* route: solve the network's stream equations by
   Kleene iteration and confirm the operational history equals the least
   fixed point — Kahn's determinacy theorem, demonstrated.
"""

from repro.kpn import Network
from repro.processes import (Add, Cons, Constant, Duplicate, Print, fibonacci)
from repro.semantics import fibonacci_equations, fibonacci_reference


def prebuilt() -> None:
    print("== prebuilt graph ==")
    out = fibonacci(20).run(timeout=30)
    print("fibonacci:", out)
    assert out == fibonacci_reference(20)


def by_hand() -> None:
    print("== hand-built graph (paper Figure 6, with Print) ==")
    net = Network(name="fibonacci-manual")
    ab, be, cd, df, ed, eg, fg, fh, gb = net.channels_n(9, prefix="fib")
    net.add(Constant(1, ab.get_output_stream(), iterations=1))
    net.add(Cons(ab.get_input_stream(), gb.get_input_stream(),
                 be.get_output_stream()))
    net.add(Duplicate(be.get_input_stream(),
                      [ed.get_output_stream(), eg.get_output_stream()]))
    net.add(Add(eg.get_input_stream(), fg.get_input_stream(),
                gb.get_output_stream()))
    net.add(Constant(1, cd.get_output_stream(), iterations=1))
    net.add(Cons(cd.get_input_stream(), ed.get_input_stream(),
                 df.get_output_stream()))
    net.add(Duplicate(df.get_input_stream(),
                      [fh.get_output_stream(), fg.get_output_stream()]))
    net.add(Print(fh.get_input_stream(), iterations=20, prefix="fib: "))
    net.run(timeout=30)


def denotational() -> None:
    print("== denotational check (least fixed point) ==")
    solution = fibonacci_equations(max_len=25).solve()
    operational = fibonacci(20).run(timeout=30)
    print("fixed point ['fh'][:20] ==", list(solution["fh"][:20]))
    assert list(solution["fh"][:20]) == operational
    print("operational history equals the least fixed point — determinate.")


if __name__ == "__main__":
    prebuilt()
    by_hand()
    denotational()
    print("fibonacci OK")
