"""repro — Distributed Kahn Process Networks in Python.

A from-scratch reproduction of *Distributed Process Networks in Java*
(Parks, Roberts, Millman; IPPS 2003 workshop), comprising:

* :mod:`repro.kpn` — the process-network runtime: bounded blocking byte
  channels, one thread per process, cascading termination, Parks'
  bounded scheduling with automatic buffer growth;
* :mod:`repro.processes` — the standard process library and the paper's
  example graphs;
* :mod:`repro.semantics` — Kahn's denotational semantics: streams as a
  complete partial order, continuous kernels, least-fixed-point solving,
  and a determinacy oracle used by the property tests;
* :mod:`repro.distributed` — compute servers, name registry, socket
  channels, and serialization-driven automatic connection establishment;
* :mod:`repro.parallel` — the embarrassingly-parallel framework: generic
  Producer/Worker/Consumer over Tasks, MetaStatic and MetaDynamic load
  balancing, and the weak-RSA factorization workload;
* :mod:`repro.simcluster` — a discrete-event simulation of the paper's
  heterogeneous 34-CPU lab used to regenerate Tables 1–2 and Figures
  19–20;
* :mod:`repro.telemetry` — the unified observability layer: an
  off-by-default event bus + counter registry instrumented into all of
  the above, with Chrome-trace (Perfetto) and Prometheus exporters.

Quickstart::

    from repro.kpn import Network
    from repro.processes import Sequence, MapProcess, Collect

    net = Network()
    raw, squared = net.channels_n(2)
    out: list[int] = []
    net.add(Sequence(raw.get_output_stream(), start=1, iterations=10))
    net.add(MapProcess(raw.get_input_stream(), squared.get_output_stream(),
                       lambda x: x * x))
    net.add(Collect(squared.get_input_stream(), out))
    net.run()
    assert out == [k * k for k in range(1, 11)]
"""

from repro.errors import (ArtificialDeadlockError, BrokenChannelError,
                          ChannelClosedError, ChannelError, DeadlockError,
                          EndOfStreamError, MigrationError, RegistryError,
                          RemoteError, TrueDeadlockError)
from repro.kpn import (Channel, CompositeProcess, IterativeProcess, Network,
                       Process, StopProcess)
from repro.telemetry.core import TELEMETRY

__version__ = "1.0.0"

__all__ = [
    "ArtificialDeadlockError", "BrokenChannelError", "ChannelClosedError",
    "ChannelError", "DeadlockError", "EndOfStreamError", "MigrationError",
    "RegistryError", "RemoteError", "TrueDeadlockError",
    "Channel", "CompositeProcess", "IterativeProcess", "Network", "Process",
    "StopProcess", "TELEMETRY",
    "__version__",
]
