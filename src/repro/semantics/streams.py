"""Streams as a complete partial order (paper section 2.1).

Denotationally a stream is a finite or infinite sequence of data elements
ordered by *prefix*: ``X ⊑ Y`` iff X is a prefix of Y, with the empty
stream ⊥ below everything.  This module gives the finite approximants —
plain tuples — together with the order-theoretic toolkit the fixed-point
solver and the property tests use: prefix tests, chain checks, least upper
bounds, and the classic continuous kernels ``first``/``rest``/``cons``
with their ⊥ conventions.

Infinite streams never materialize: Kleene iteration works with finite
prefixes, and :mod:`repro.semantics.fixpoint` bounds stream growth, so
every value here is a tuple.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

__all__ = [
    "BOTTOM", "prefix_le", "is_chain", "lub", "glb",
    "first", "rest", "cons", "take",
    "tuple_prefix_le", "tuples_lub",
]

#: the empty stream ⊥ — prefix of every stream
BOTTOM: Tuple[Any, ...] = ()

Stream = Tuple[Any, ...]


def prefix_le(x: Sequence[Any], y: Sequence[Any]) -> bool:
    """``x ⊑ y``: is x a prefix of (or equal to) y?"""
    return len(x) <= len(y) and tuple(y[: len(x)]) == tuple(x)


def is_chain(streams: Sequence[Sequence[Any]]) -> bool:
    """Is the sequence increasing, ``X1 ⊑ X2 ⊑ …``?"""
    return all(prefix_le(a, b) for a, b in zip(streams, streams[1:]))


def lub(chain: Sequence[Sequence[Any]]) -> Stream:
    """Least upper bound ⊔ of an increasing chain (its longest element).

    Raises ``ValueError`` if the input is not a chain — the lub of an
    arbitrary set of streams need not exist in the prefix order.
    """
    if not chain:
        return BOTTOM
    if not is_chain(chain):
        raise ValueError("lub requires an increasing chain")
    return tuple(max(chain, key=len))


def glb(x: Sequence[Any], y: Sequence[Any]) -> Stream:
    """Greatest lower bound: the longest common prefix.

    Unlike lubs, glbs always exist in the prefix order; the determinacy
    oracle uses them to measure where two histories first disagree.
    """
    n = 0
    for a, b in zip(x, y):
        if a != b:
            break
        n += 1
    return tuple(x[:n])


# ---------------------------------------------------------------------------
# the continuous example kernels of section 2.2
# ---------------------------------------------------------------------------

def first(u: Sequence[Any]) -> Stream:
    """first(U): the stream holding U's first element; first(⊥) = ⊥."""
    return tuple(u[:1])


def rest(u: Sequence[Any]) -> Stream:
    """rest(U): U without its first element; rest(⊥) = ⊥."""
    return tuple(u[1:])


def cons(x: Any, u: Sequence[Any]) -> Stream:
    """cons(x, U): insert element x at the head of U.

    Per the paper, ``cons(⊥, U) = ⊥`` (no element yet) and
    ``cons(x, ⊥) = [x]``.  The "no element" case is signalled by
    ``x is BOTTOM`` — i.e. passing the empty stream where an element is
    expected.
    """
    if x is BOTTOM:
        return BOTTOM
    return (x,) + tuple(u)


def take(u: Sequence[Any], n: int) -> Stream:
    """The length-n prefix of U (the finite approximant of order n)."""
    return tuple(u[:n])


# ---------------------------------------------------------------------------
# p-tuples of streams (the set S^p of section 2.2)
# ---------------------------------------------------------------------------

def tuple_prefix_le(xs: Sequence[Sequence[Any]], ys: Sequence[Sequence[Any]]) -> bool:
    """Pointwise prefix order on S^p: ``X ⊑ Y`` iff ``Xi ⊑ Yi`` for all i."""
    if len(xs) != len(ys):
        raise ValueError("tuples must have the same arity")
    return all(prefix_le(x, y) for x, y in zip(xs, ys))


def tuples_lub(chain: Sequence[Sequence[Sequence[Any]]]) -> tuple[Stream, ...]:
    """Least upper bound of an increasing chain in S^p (pointwise)."""
    if not chain:
        return ()
    arity = len(chain[0])
    return tuple(lub([element[i] for element in chain]) for i in range(arity))
