"""Kahn's denotational semantics (paper section 2), executable.

Streams form a complete partial order under the prefix relation
(:mod:`~repro.semantics.streams`); processes are continuous functions on
it (:mod:`~repro.semantics.kernels`); a network's meaning is the least
fixed point of its equations, found by Kleene iteration
(:mod:`~repro.semantics.fixpoint`); and determinacy — the paper's central
correctness claim — is checked by comparing operational histories against
that fixed point and across schedules
(:mod:`~repro.semantics.determinacy`).
"""

from repro.semantics.closed import (CBOTTOM, CStream, ClosedEquationNetwork,
                                    cprefix_le)
from repro.semantics.compile import (CompiledNetwork,
                                     UncompilableProcessError,
                                     compile_network, register_kernel)
from repro.semantics.determinacy import (fibonacci_equations,
                                         fibonacci_reference,
                                         hamming_equations, hamming_reference,
                                         histories_under_capacities,
                                         primes_reference, sieve_equations)
from repro.semantics.fixpoint import (EquationNetwork, FixpointResult,
                                      NonMonotonicError)
from repro.semantics.streams import (BOTTOM, cons, first, glb, is_chain, lub,
                                     prefix_le, rest, take, tuple_prefix_le,
                                     tuples_lub)

__all__ = [
    "CBOTTOM", "CStream", "ClosedEquationNetwork", "cprefix_le",
    "CompiledNetwork", "UncompilableProcessError", "compile_network",
    "register_kernel",
    "fibonacci_equations", "fibonacci_reference", "hamming_equations",
    "hamming_reference", "histories_under_capacities", "primes_reference",
    "sieve_equations",
    "EquationNetwork", "FixpointResult", "NonMonotonicError",
    "BOTTOM", "cons", "first", "glb", "is_chain", "lub", "prefix_le", "rest",
    "take", "tuple_prefix_le", "tuples_lub",
]
