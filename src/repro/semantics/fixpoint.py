"""Least-fixed-point solver for process-network equations (section 2.2).

A network is "a set of equations with functions operating on sets of
streams"; composing all process functions gives one continuous function
``f`` over the tuple of all streams, and the network's meaning is the
unique least solution of ``X = f(X)``, computed by Kleene iteration::

    X_0 = ⊥,   X_{j+1} = f(X_j),   meaning = ⊔_j X_j

:class:`EquationNetwork` lets you declare named streams and attach one
producing kernel per stream (single-producer, like operational channels),
then solves by exactly that iteration.  Because every kernel is monotonic,
each iterate extends the last; iteration stops at a fixed point (a
terminating network) or at ``max_len`` elements per stream (the finite
prefix of an infinite behaviour — Hamming, Fibonacci).

The determinacy tests run the *operational* network and assert its channel
histories equal the solved fixed point — Kahn's theorem made executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.semantics.kernels import Kernel
from repro.semantics.streams import prefix_le

__all__ = ["EquationNetwork", "FixpointResult", "NonMonotonicError"]


class NonMonotonicError(RuntimeError):
    """An iterate retracted previously produced output.

    Kleene iteration requires ``X_j ⊑ X_{j+1}``; a violation means some
    kernel is not monotonic — exactly the kind of host-language rule
    breaking (section 1: shared variables, peeking at absence of data)
    that destroys determinacy.
    """


@dataclass
class _Node:
    name: str
    kernel: Kernel
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]


@dataclass
class FixpointResult:
    """Solution of the network equations."""

    #: stream name → solved history (a finite prefix if truncated)
    streams: Dict[str, Tuple[Any, ...]]
    #: number of Kleene iterations performed
    iterations: int
    #: True if a genuine fixed point was reached (nothing changed in the
    #: final iteration); False if the per-stream length bound stopped us.
    converged: bool

    def __getitem__(self, name: str) -> Tuple[Any, ...]:
        return self.streams[name]


class EquationNetwork:
    """Builder + solver for a system of stream equations."""

    def __init__(self, max_len: int = 1000, max_iterations: int = 100000) -> None:
        self.max_len = max_len
        self.max_iterations = max_iterations
        self._nodes: List[_Node] = []
        self._streams: set[str] = set()
        self._produced: set[str] = set()

    # -- construction ------------------------------------------------------
    def stream(self, name: str) -> str:
        """Declare a stream (idempotent); returns the name for chaining."""
        self._streams.add(name)
        return name

    def node(self, name: str, kernel: Kernel, inputs: Sequence[str],
             outputs: Sequence[str]) -> None:
        """Attach a process kernel: reads ``inputs``, defines ``outputs``.

        Each stream may have at most one producer — the single-producer
        rule the operational channels also enforce by construction.
        """
        for s in (*inputs, *outputs):
            self.stream(s)
        for s in outputs:
            if s in self._produced:
                raise ValueError(f"stream {s!r} already has a producer")
            self._produced.add(s)
        self._nodes.append(_Node(name, kernel, tuple(inputs), tuple(outputs)))

    # -- solving ----------------------------------------------------------
    def solve(self) -> FixpointResult:
        state: Dict[str, Tuple[Any, ...]] = {s: () for s in self._streams}
        iterations = 0
        truncated_any = False
        while iterations < self.max_iterations:
            iterations += 1
            new_state = dict(state)
            for node in self._nodes:
                ins = tuple(state[s] for s in node.inputs)
                outs = node.kernel(ins)
                if len(outs) != len(node.outputs):
                    raise ValueError(
                        f"kernel {node.name!r} returned {len(outs)} streams, "
                        f"declared {len(node.outputs)}")
                for stream_name, produced in zip(node.outputs, outs):
                    if len(produced) > self.max_len:
                        truncated_any = True
                    truncated = tuple(produced[: self.max_len])
                    if not prefix_le(new_state[stream_name], truncated):
                        # A producer must extend, never retract.
                        if not prefix_le(truncated, new_state[stream_name]):
                            raise NonMonotonicError(
                                f"kernel {node.name!r} retracted output on "
                                f"stream {stream_name!r}")
                        # shorter but consistent: keep the longer history
                        truncated = new_state[stream_name]
                    new_state[stream_name] = truncated
            if new_state == state:
                return FixpointResult(state, iterations,
                                      converged=not truncated_any)
            state = new_state
        return FixpointResult(state, iterations, converged=False)

    # -- convenience --------------------------------------------------------
    def solve_stream(self, name: str) -> Tuple[Any, ...]:
        return self.solve()[name]
