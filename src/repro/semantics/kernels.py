"""Continuous stream functions mirroring the operational process library.

Every library process in :mod:`repro.processes` has a *kernel* here: a
pure function from input stream prefixes to output stream prefixes.  The
kernels are written to be **monotonic and continuous** (they consume input
greedily and never retract output), so networks assembled from them have
unique least fixed points — the denotational meanings that the operational
runtime must agree with.  The property tests check both facts: kernels
are monotonic on random inputs, and operational channel histories match
the solved fixed point.

A kernel takes and returns tuples-of-tuples: ``kernel(inputs) -> outputs``
where each stream is a tuple of elements.  Kernels must behave correctly
on *partial* inputs: given only a prefix, produce exactly the output
prefix that prefix justifies.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

Streams = Tuple[Tuple[Any, ...], ...]
Kernel = Callable[[Streams], Streams]

__all__ = [
    "k_constant", "k_sequence", "k_cons", "k_duplicate", "k_add", "k_binary",
    "k_scale", "k_map", "k_ordered_merge", "k_modulo_filter", "k_sieve",
    "k_guard", "k_identity", "compose_check_monotonic",
]


def k_constant(value: Any, count: int) -> Kernel:
    """Source: ``count`` copies of ``value`` (count=0 → unbounded is not
    representable; sources always have an explicit bound denotationally)."""

    def kernel(inputs: Streams) -> Streams:
        return ((value,) * count,)

    return kernel


def k_sequence(start: int, count: int, stride: int = 1) -> Kernel:
    def kernel(inputs: Streams) -> Streams:
        return (tuple(start + i * stride for i in range(count)),)

    return kernel


def k_cons(inputs: Streams) -> Streams:
    """Byte-level Cons denotationally: concatenation head ++ tail.

    NOTE: with an *unbounded* head this would be non-continuous; the
    operational Cons only switches to the tail after the head's EOF, which
    denotationally requires the head stream to be complete.  The fixpoint
    solver models sources with explicit bounds, so head completeness is
    known there; here we concatenate the prefixes, which is exact when the
    head prefix is complete and an under-approximation otherwise — still
    monotonic in the tail, which is all feedback loops need (heads are
    acyclic seeds in every paper graph).
    """
    head, tail = inputs
    return (tuple(head) + tuple(tail),)


def k_identity(inputs: Streams) -> Streams:
    return (tuple(inputs[0]),)


def k_duplicate(n_outputs: int) -> Kernel:
    def kernel(inputs: Streams) -> Streams:
        (source,) = inputs
        return tuple(tuple(source) for _ in range(n_outputs))

    return kernel


def k_binary(op: Callable[[Any, Any], Any]) -> Kernel:
    """Element-wise binary combination; output length = min(inputs)."""

    def kernel(inputs: Streams) -> Streams:
        a, b = inputs
        return (tuple(op(x, y) for x, y in zip(a, b)),)

    return kernel


def k_add(inputs: Streams) -> Streams:
    return k_binary(lambda x, y: x + y)(inputs)


def k_scale(factor: Any) -> Kernel:
    def kernel(inputs: Streams) -> Streams:
        (source,) = inputs
        return (tuple(x * factor for x in source),)

    return kernel


def k_map(fn: Callable[[Any], Any]) -> Kernel:
    def kernel(inputs: Streams) -> Streams:
        (source,) = inputs
        return (tuple(fn(x) for x in source),)

    return kernel


def k_ordered_merge(dedup: bool = True) -> Kernel:
    """Ordered merge of two ascending streams.

    On partial inputs the merge may only emit elements that are *safe*: an
    element can be emitted while the other stream still has a pending head
    to compare against.  When one prefix runs dry the merge must stop —
    emitting from the survivor could be retracted later, breaking
    monotonicity.  (Operationally the process blocks at the same point.)
    """

    def kernel(inputs: Streams) -> Streams:
        a, b = list(inputs[0]), list(inputs[1])
        out = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] < b[j]:
                out.append(a[i]); i += 1
            elif b[j] < a[i]:
                out.append(b[j]); j += 1
            else:
                out.append(a[i]); i += 1
                if dedup:
                    j += 1
        return (tuple(out),)

    return kernel


def k_modulo_filter(divisor: int) -> Kernel:
    def kernel(inputs: Streams) -> Streams:
        (source,) = inputs
        return (tuple(x for x in source if x % divisor != 0),)

    return kernel


def k_sieve(inputs: Streams) -> Streams:
    """The whole Sift subgraph denotationally: primes among the input.

    The operational Sift is self-reconfiguring; denotationally its fixed
    point is simply "the elements not divisible by any earlier-emitted
    element", which on the stream 2,3,4,… is the primes.
    """
    (source,) = inputs
    out: list[Any] = []
    for x in source:
        if all(x % p != 0 for p in out):
            out.append(x)
    return (tuple(out),)


def k_guard(stop_after_true: bool = False) -> Kernel:
    def kernel(inputs: Streams) -> Streams:
        data, control = inputs
        out = []
        for d, c in zip(data, control):
            if c:
                out.append(d)
                if stop_after_true:
                    break
        return (tuple(out),)

    return kernel


def compose_check_monotonic(kernel: Kernel, smaller: Streams, larger: Streams) -> bool:
    """Check ``X ⊑ Y ⇒ f(X) ⊑ f(Y)`` for one sample pair (test helper)."""
    from repro.semantics.streams import prefix_le, tuple_prefix_le

    if not tuple_prefix_le(smaller, larger):
        raise ValueError("sample pair must satisfy smaller ⊑ larger")
    fs, fl = kernel(smaller), kernel(larger)
    return all(prefix_le(a, b) for a, b in zip(fs, fl))
