"""Random process-network generation for property-based testing.

Kahn's theorem quantifies over *all* networks of continuous processes;
testing it on three hand-picked graphs is weak evidence.  This module
generates arbitrary layered networks from the standard library —
sources, maps, scales, filters, binary ops, duplicators, ordered merges,
delays — from a compact :class:`NetSpec` that hypothesis can shrink, and
builds the same topology twice:

* operationally (:func:`build_operational`) as a ready-to-run Network
  with a Collect on every terminal stream;
* denotationally, implicitly, since every generated process has a
  registered kernel — :func:`repro.semantics.compile.compile_network`
  accepts the built network directly.

The flagship property (see ``tests/semantics/test_randomnets.py``): for
every generated spec, the operational histories equal the compiled least
fixed point, under any channel capacity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.kpn.network import Network
from repro.processes.arithmetic import Add, Multiply, Subtract
from repro.processes.dsp import Accumulate, Delay
from repro.processes.merges import OrderedMerge
from repro.processes.sinks import Collect
from repro.processes.sources import FromIterable
from repro.processes.transforms import Duplicate, MapProcess, Scale

__all__ = ["NetSpec", "NodeSpec", "random_spec", "build_operational",
           "reference_evaluate"]

#: unary operation table (name → python fn); all monotone-friendly and
#: picklable (module-level)
def _inc(x):
    return x + 1


def _neg(x):
    return -x


def _square_clip(x):
    return (x * x) % 1000


UNARY_OPS = {"inc": _inc, "neg": _neg, "sqclip": _square_clip}
BINARY_OPS = {"add": Add, "sub": Subtract, "mul": Multiply}


@dataclass(frozen=True)
class NodeSpec:
    """One process in the generated graph.

    kind ∈ {source, map, scale, dup, binary, merge, delay, accumulate}
    inputs are indices of *streams* created earlier (single-consumer
    discipline is enforced by the generator: every stream is consumed at
    most once).
    """

    kind: str
    inputs: Tuple[int, ...] = ()
    param: Any = None


@dataclass(frozen=True)
class NetSpec:
    """A whole generated network; nodes are topologically ordered."""

    nodes: Tuple[NodeSpec, ...]

    def n_streams(self) -> int:
        count = 0
        for node in self.nodes:
            count += 2 if node.kind == "dup" else 1
        return count


def random_spec(rng: random.Random, max_nodes: int = 10,
                max_source_len: int = 8) -> NetSpec:
    """Generate a well-formed spec: acyclic, single-producer/consumer."""
    nodes: List[NodeSpec] = []
    open_streams: List[int] = []   # stream indices not yet consumed
    next_stream = 0

    def emit(n: int) -> List[int]:
        nonlocal next_stream
        created = list(range(next_stream, next_stream + n))
        next_stream += n
        open_streams.extend(created)
        return created

    def consume(k: int) -> List[int]:
        picked = rng.sample(open_streams, k)
        for s in picked:
            open_streams.remove(s)
        return picked

    # at least one source
    n_nodes = rng.randint(1, max_nodes)
    for i in range(n_nodes):
        want_source = not open_streams or rng.random() < 0.25
        if want_source:
            length = rng.randint(0, max_source_len)
            items = tuple(rng.randint(-20, 20) for _ in range(length))
            nodes.append(NodeSpec("source", (), items))
            emit(1)
            continue
        kind = rng.choice(["map", "scale", "dup", "binary", "merge",
                           "delay", "accumulate"])
        if kind in ("binary", "merge") and len(open_streams) < 2:
            kind = "map"
        if kind == "map":
            (src,) = consume(1)
            nodes.append(NodeSpec("map", (src,), rng.choice(list(UNARY_OPS))))
            emit(1)
        elif kind == "scale":
            (src,) = consume(1)
            nodes.append(NodeSpec("scale", (src,), rng.randint(-3, 3)))
            emit(1)
        elif kind == "dup":
            (src,) = consume(1)
            nodes.append(NodeSpec("dup", (src,)))
            emit(2)
        elif kind == "binary":
            a, b = consume(2)
            nodes.append(NodeSpec("binary", (a, b),
                                  rng.choice(list(BINARY_OPS))))
            emit(1)
        elif kind == "merge":
            a, b = consume(2)
            nodes.append(NodeSpec("merge", (a, b)))
            emit(1)
        elif kind == "delay":
            (src,) = consume(1)
            initial = tuple(rng.randint(-5, 5)
                            for _ in range(rng.randint(0, 3)))
            nodes.append(NodeSpec("delay", (src,), initial))
            emit(1)
        else:  # accumulate
            (src,) = consume(1)
            nodes.append(NodeSpec("accumulate", (src,), rng.randint(-5, 5)))
            emit(1)
    return NetSpec(tuple(nodes))


def build_operational(spec: NetSpec, network: Optional[Network] = None,
                      capacity: Optional[int] = None
                      ) -> Tuple[Network, Dict[int, list]]:
    """Instantiate the spec; terminal streams get Collect sinks.

    Returns the network and {stream index: collected list}.  Merge nodes
    sort-normalize their inputs' semantics by pre-sorting sources?  No —
    merges receive whatever order upstream produces; the reference
    evaluator mirrors the operational OrderedMerge exactly, sorted or
    not (both consume by comparison), so the comparison stays valid.
    """
    net = network or Network(name="randomnet")
    streams: List = []   # per stream index: channel
    consumed: set[int] = set()

    def new_channel():
        ch = net.channel(capacity, name=f"rn-{len(streams)}")
        streams.append(ch)
        return ch

    for n_index, node in enumerate(spec.nodes):
        ins = [streams[i].get_input_stream() for i in node.inputs]
        consumed.update(node.inputs)
        name = f"{node.kind}-{n_index}"
        if node.kind == "source":
            ch = new_channel()
            net.add(FromIterable(ch.get_output_stream(), list(node.param),
                                 codec="long", name=name))
        elif node.kind == "map":
            ch = new_channel()
            net.add(MapProcess(ins[0], ch.get_output_stream(),
                               UNARY_OPS[node.param], codec="long", name=name))
        elif node.kind == "scale":
            ch = new_channel()
            net.add(Scale(ins[0], ch.get_output_stream(), node.param,
                          codec="long", name=name))
        elif node.kind == "dup":
            a, b = new_channel(), new_channel()
            # resilient mode: a short-lived sibling consumer (zipped with a
            # shorter stream) must not truncate the other branch — the
            # Kahn-faithful fan-out the determinacy property quantifies over
            net.add(Duplicate(ins[0], [a.get_output_stream(),
                                       b.get_output_stream()],
                              resilient=True, name=name))
        elif node.kind == "binary":
            ch = new_channel()
            net.add(BINARY_OPS[node.param](ins[0], ins[1],
                                           ch.get_output_stream(),
                                           codec="long", name=name))
        elif node.kind == "merge":
            ch = new_channel()
            net.add(OrderedMerge(ins[0], ins[1], ch.get_output_stream(),
                                 codec="long", name=name))
        elif node.kind == "delay":
            ch = new_channel()
            net.add(Delay(ins[0], ch.get_output_stream(), list(node.param),
                          codec="long", name=name))
        else:  # accumulate
            ch = new_channel()
            net.add(Accumulate(ins[0], ch.get_output_stream(),
                               initial=node.param, codec="long", name=name))

    sinks: Dict[int, list] = {}
    for idx, ch in enumerate(streams):
        if idx not in consumed:
            out: list = []
            sinks[idx] = out
            net.add(Collect(ch.get_input_stream(), out, codec="long",
                            name=f"sink-{idx}"))
    return net, sinks


def reference_evaluate(spec: NetSpec) -> Dict[int, List[int]]:
    """Pure-Python evaluation of the spec (acyclic → single pass).

    An independent third implementation — neither the runtime nor the
    Kleene solver — used to triangulate both.
    """
    values: Dict[int, List[int]] = {}
    next_stream = 0

    def put(vals: List[int]) -> int:
        nonlocal next_stream
        values[next_stream] = vals
        next_stream += 1
        return next_stream - 1

    for node in spec.nodes:
        ins = [values[i] for i in node.inputs]
        if node.kind == "source":
            put(list(node.param))
        elif node.kind == "map":
            fn = UNARY_OPS[node.param]
            put([fn(x) for x in ins[0]])
        elif node.kind == "scale":
            put([x * node.param for x in ins[0]])
        elif node.kind == "dup":
            put(list(ins[0]))
            put(list(ins[0]))
        elif node.kind == "binary":
            op = {"add": lambda a, b: a + b, "sub": lambda a, b: a - b,
                  "mul": lambda a, b: a * b}[node.param]
            put([op(a, b) for a, b in zip(ins[0], ins[1])])
        elif node.kind == "merge":
            out, i, j = [], 0, 0
            a, b = ins
            while i < len(a) and j < len(b):
                if a[i] < b[j]:
                    out.append(a[i]); i += 1
                elif b[j] < a[i]:
                    out.append(b[j]); j += 1
                else:
                    out.append(a[i]); i += 1; j += 1
            out.extend(a[i:])
            out.extend(b[j:])
            put(out)
        elif node.kind == "delay":
            put(list(node.param) + list(ins[0]))
        else:  # accumulate
            out = []
            acc = node.param
            for x in ins[0]:
                acc += x
                out.append(acc)
            put(out)
    return values
