"""Compile an operational Network into its denotational equations.

Section 2 of the paper describes a process network as "a collection of
equations that have a unique minimum solution".  This module derives that
equation system *automatically* from a built (not yet started)
:class:`~repro.kpn.network.Network`: each library process contributes a
kernel over the **closed-stream domain** (:mod:`repro.semantics.closed`
— prefixes enriched with end-of-stream information, matching what channel
EOF delivers operationally), channels become named streams, and the
result is a :class:`~repro.semantics.closed.ClosedEquationNetwork` whose
least fixed point predicts every channel history the runtime will
produce.

This turns Kahn's theorem into a general-purpose test oracle::

    net = Network(); ...build anything from the standard library...
    compiled = compile_network(net)
    predicted = compiled.predict("some-channel")
    net.run()
    # every Collect's list == the corresponding prediction

Bounded sources close their output streams; unbounded sources contribute
an *open* stream truncated at the solver's ``max_len`` — so even
data-dependently-terminating graphs (the Newton square-root network, via
Guard's ``stop_after_true`` closing its output) compile and solve.

Processes are mapped through a type-indexed registry; third-party
processes can register their own kernels with :func:`register_kernel`.
Processes with no denotational meaning (the Turnstile is deliberately
non-determinate) raise :class:`UncompilableProcessError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.kpn.network import Network
from repro.kpn.process import CompositeProcess, Process
from repro.semantics.closed import (CStream, ClosedEquationNetwork,
                                    ClosedFixpointResult, ck_binary, ck_cons,
                                    ck_duplicate, ck_filter, ck_guard,
                                    ck_identity, ck_map, ck_ordered_merge,
                                    ck_router, ck_scale, ck_sieve, ck_source)

__all__ = ["compile_network", "register_kernel", "CompiledNetwork",
           "UncompilableProcessError"]


class UncompilableProcessError(ValueError):
    """A process in the network has no registered denotational kernel."""


@dataclass
class CompiledNetwork:
    """The derived equation system plus bookkeeping for comparisons."""

    equations: ClosedEquationNetwork
    #: channel name → (sink process name, iteration limit or 0)
    sinks: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    _solution: Optional[ClosedFixpointResult] = None

    def solve(self) -> ClosedFixpointResult:
        if self._solution is None:
            self._solution = self.equations.solve()
        return self._solution

    def predict(self, channel_name: str,
                limit: Optional[int] = None) -> Tuple[Any, ...]:
        """Solved history of a channel, truncated to ``limit`` if given
        (default: the recorded sink's iteration limit, when one exists)."""
        history = self.solve()[channel_name].elems
        if limit is None and channel_name in self.sinks:
            sink_limit = self.sinks[channel_name][1]
            limit = sink_limit if sink_limit > 0 else None
        return history[:limit] if limit is not None else history

    def predict_all(self) -> Dict[str, Tuple[Any, ...]]:
        solution = self.solve()
        return {name: cs.elems for name, cs in solution.streams.items()}


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

#: process type → compiler function(process, ctx) registering equations
_COMPILERS: Dict[Type[Process], Callable] = {}


def register_kernel(process_type: Type[Process]):
    """Decorator: attach a compiler function for a process type."""

    def deco(fn):
        _COMPILERS[process_type] = fn
        return fn

    return deco


class _Ctx:
    """Compilation context: stream naming + equation accumulation."""

    def __init__(self, eq: ClosedEquationNetwork, compiled: CompiledNetwork,
                 max_len: int) -> None:
        self.eq = eq
        self.compiled = compiled
        self.max_len = max_len

    @staticmethod
    def stream_of(endpoint) -> str:
        channel = getattr(endpoint, "channel", None)
        if channel is None:
            raise UncompilableProcessError(
                f"endpoint {endpoint!r} is not a channel endpoint")
        return channel.name

    def node(self, process: Process, kernel, inputs, outputs) -> None:
        self.eq.node(process.name, kernel,
                     [self.stream_of(s) for s in inputs],
                     [self.stream_of(s) for s in outputs])


def _open_source(items: Tuple[Any, ...]):
    """An unbounded source approximated by an *open* max_len prefix."""
    value = CStream(items, False)

    def kernel(inputs):
        return (value,)

    return kernel


# ---------------------------------------------------------------------------
# compilers for the standard library
# ---------------------------------------------------------------------------

def _register_standard() -> None:
    from repro.processes.arithmetic import (Add, Average, Divide, Equal,
                                            ModuloFilter, Multiply, Subtract)
    from repro.processes.merges import OrderedMerge
    from repro.processes.reconfig import RecursiveSift, Sift
    from repro.processes.routing import Guard, ModuloRouter
    from repro.processes.sinks import Collect, Discard, Print
    from repro.processes.sources import Constant, FromIterable, Sequence
    from repro.processes.transforms import (Cons, Duplicate, Identity,
                                            MapProcess, Scale,
                                            SelfRemovingCons)

    @register_kernel(Constant)
    def _c(p, ctx):
        if p.iterations > 0:
            ctx.node(p, ck_source((p.value,) * p.iterations), [], [p.out])
        else:
            ctx.node(p, _open_source((p.value,) * ctx.max_len), [], [p.out])

    @register_kernel(Sequence)
    def _seq(p, ctx):
        count = p.iterations if p.iterations > 0 else ctx.max_len
        items = tuple(p.next_value + i * p.stride for i in range(count))
        kernel = ck_source(items) if p.iterations > 0 else _open_source(items)
        ctx.node(p, kernel, [], [p.out])

    @register_kernel(FromIterable)
    def _fi(p, ctx):
        items = tuple(p.items)  # materializes; requires a finite iterable
        ctx.node(p, ck_source(items), [], [p.out])

    @register_kernel(Cons)
    def _cons(p, ctx):
        ctx.node(p, ck_cons, [p.head, p.tail], [p.out])

    _COMPILERS[SelfRemovingCons] = _COMPILERS[Cons]

    @register_kernel(Duplicate)
    def _dup(p, ctx):
        ctx.node(p, ck_duplicate(len(p.outputs)), [p.source], list(p.outputs))

    @register_kernel(Identity)
    def _id(p, ctx):
        ctx.node(p, ck_identity, [p.source], [p.out])

    @register_kernel(Scale)
    def _scale(p, ctx):
        ctx.node(p, ck_scale(p.factor), [p.source], [p.out])

    @register_kernel(MapProcess)
    def _map(p, ctx):
        ctx.node(p, ck_map(p.fn), [p.source], [p.out])

    def _binary(op):
        def compiler(p, ctx):
            ctx.node(p, ck_binary(op), [p.left, p.right], [p.out])

        return compiler

    _COMPILERS[Add] = _binary(lambda a, b: a + b)
    _COMPILERS[Subtract] = _binary(lambda a, b: a - b)
    _COMPILERS[Multiply] = _binary(lambda a, b: a * b)
    _COMPILERS[Divide] = _binary(lambda a, b: a / b)
    _COMPILERS[Average] = _binary(lambda a, b: (a + b) / 2)
    _COMPILERS[Equal] = _binary(lambda a, b: a == b)

    @register_kernel(ModuloFilter)
    def _mf(p, ctx):
        divisor = p.divisor
        ctx.node(p, ck_filter(lambda x: x % divisor != 0), [p.source], [p.out])

    @register_kernel(OrderedMerge)
    def _om(p, ctx):
        ctx.node(p, ck_ordered_merge(p.dedup), [p.left, p.right], [p.out])

    @register_kernel(Guard)
    def _g(p, ctx):
        ctx.node(p, ck_guard(p.stop_after_true), [p.data, p.control], [p.out])

    @register_kernel(ModuloRouter)
    def _mr(p, ctx):
        divisor = p.divisor
        ctx.node(p, ck_router(lambda x: x % divisor == 0),
                 [p.source], [p.upper, p.lower])

    @register_kernel(Sift)
    def _sift(p, ctx):
        # the whole self-reconfiguring subgraph denotes the sieve kernel
        ctx.node(p, ck_sieve, [p.source], [p.out])

    _COMPILERS[RecursiveSift] = _COMPILERS[Sift]

    def _sink(p, ctx):
        name = ctx.stream_of(p.source)
        ctx.eq.stream(name)
        ctx.compiled.sinks[name] = (p.name, getattr(p, "iterations", 0))

    _COMPILERS[Collect] = _sink
    _COMPILERS[Print] = _sink
    _COMPILERS[Discard] = _sink


_register_standard()


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def compile_network(network: Network, max_len: int = 1000,
                    max_iterations: int = 100000) -> CompiledNetwork:
    """Derive the equation system of a built network.

    ``max_len`` bounds stream growth during Kleene iteration (the finite
    approximation order for networks with infinite behaviours; also the
    length of the open prefix standing in for unbounded sources).
    """
    eq = ClosedEquationNetwork(max_len=max_len, max_iterations=max_iterations)
    compiled = CompiledNetwork(eq)
    ctx = _Ctx(eq, compiled, max_len)
    pending: List[Process] = list(network.processes)
    while pending:
        process = pending.pop(0)
        if isinstance(process, CompositeProcess):
            pending.extend(process.processes)
            continue
        compiler = _COMPILERS.get(type(process))
        if compiler is None:
            # walk the MRO so subclasses of library processes inherit
            for base in type(process).__mro__[1:]:
                compiler = _COMPILERS.get(base)
                if compiler is not None:
                    break
        if compiler is None:
            raise UncompilableProcessError(
                f"{process.name} ({type(process).__name__}) has no "
                "registered kernel; use register_kernel() or exclude it")
        compiler(process, ctx)
    return compiled
