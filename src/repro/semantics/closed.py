"""Closed-stream semantics: prefixes enriched with termination information.

The plain prefix domain of :mod:`repro.semantics.streams` cannot express
"this stream is *finished*", so kernels over it must be conservative:
an ordered merge may never drain its surviving input (the other side's
next element might still undercut it), and Cons may only switch to its
tail once the head is complete.  Operationally, completeness is exactly
what channel end-of-stream delivers — so to predict the runtime's full
histories, the denotational domain needs it too.

Here a stream value is a :class:`CStream` ``(elems, closed)`` with order

    (a, ca) ⊑ (b, cb)   iff   a prefix-of b  and  (ca ⇒ (cb and a == b))

i.e. a closed stream is maximal: nothing extends it.  ⊥ is ``((), False)``.
This is still a CPO (chains stabilize once closed), all the ``ck_*``
kernels below are monotonic in it, and :class:`ClosedEquationNetwork`
solves fixed points by the same Kleene iteration.  The network compiler
(:mod:`repro.semantics.compile`) runs on this domain, which is what lets
it predict, e.g., that Figure 13's merge emits *all* 60 integers — the
last few only flow after the upper branch's end-of-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

__all__ = [
    "CStream", "CBOTTOM", "cprefix_le",
    "ck_source", "ck_identity", "ck_map", "ck_scale", "ck_duplicate",
    "ck_binary", "ck_cons", "ck_filter", "ck_ordered_merge", "ck_guard",
    "ck_router", "ck_sieve",
    "ClosedEquationNetwork", "ClosedFixpointResult",
]


@dataclass(frozen=True)
class CStream:
    """A finite stream prefix plus a completeness flag."""

    elems: Tuple[Any, ...] = ()
    closed: bool = False

    def __len__(self) -> int:
        return len(self.elems)

    def take(self, n: int) -> "CStream":
        """Truncation; dropping elements forfeits the closed flag."""
        if n >= len(self.elems):
            return self
        return CStream(self.elems[:n], False)


CBOTTOM = CStream()


def cprefix_le(x: CStream, y: CStream) -> bool:
    """The information order: y extends (or equals) x."""
    if len(x.elems) > len(y.elems) or y.elems[: len(x.elems)] != x.elems:
        return False
    if x.closed:
        return y.closed and x.elems == y.elems
    return True


CKernel = Callable[[Tuple[CStream, ...]], Tuple[CStream, ...]]


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def ck_source(items: Sequence[Any]) -> CKernel:
    """A bounded source: emits everything, closed."""
    value = CStream(tuple(items), True)

    def kernel(inputs):
        return (value,)

    return kernel


def ck_identity(inputs):
    (s,) = inputs
    return (s,)


def ck_map(fn: Callable[[Any], Any]) -> CKernel:
    def kernel(inputs):
        (s,) = inputs
        return (CStream(tuple(fn(x) for x in s.elems), s.closed),)

    return kernel


def ck_scale(factor: Any) -> CKernel:
    return ck_map(lambda x: x * factor)


def ck_duplicate(n: int) -> CKernel:
    def kernel(inputs):
        (s,) = inputs
        return tuple(s for _ in range(n))

    return kernel


def ck_binary(op: Callable[[Any, Any], Any]) -> CKernel:
    """Element-wise zip; output closes when the shorter side has closed
    (no further pairs can ever form)."""

    def kernel(inputs):
        a, b = inputs
        n = min(len(a), len(b))
        out = tuple(op(x, y) for x, y in zip(a.elems, b.elems))
        closed = (a.closed and len(a) <= n) or (b.closed and len(b) <= n)
        return (CStream(out, closed),)

    return kernel


def ck_cons(inputs):
    """head ++ tail: tail elements flow only once the head has closed —
    exactly the operational Cons's EOF-switch, and monotonic by
    construction (an open head's output never includes tail data)."""
    head, tail = inputs
    if not head.closed:
        return (CStream(head.elems, False),)
    return (CStream(head.elems + tail.elems, tail.closed),)


def ck_filter(predicate: Callable[[Any], bool]) -> CKernel:
    def kernel(inputs):
        (s,) = inputs
        return (CStream(tuple(x for x in s.elems if predicate(x)), s.closed),)

    return kernel


def ck_ordered_merge(dedup: bool = True) -> CKernel:
    """Ordered merge with end-of-stream draining.

    While both inputs hold pending elements, merge by comparison.  Once
    one input is exhausted *and closed*, the survivor drains freely —
    the step the prefix-only kernel must refuse.  Output closes when both
    inputs are exhausted-and-closed.
    """

    def kernel(inputs):
        a, b = inputs
        out: List[Any] = []
        i = j = 0
        la, lb = a.elems, b.elems
        while True:
            a_has = i < len(la)
            b_has = j < len(lb)
            if a_has and b_has:
                if la[i] < lb[j]:
                    out.append(la[i]); i += 1
                elif lb[j] < la[i]:
                    out.append(lb[j]); j += 1
                else:
                    out.append(la[i]); i += 1
                    if dedup:
                        j += 1
            elif a_has and not b_has and b.closed:
                out.append(la[i]); i += 1
            elif b_has and not a_has and a.closed:
                out.append(lb[j]); j += 1
            else:
                break
        closed = (a.closed and i >= len(la)) and (b.closed and j >= len(lb))
        return (CStream(tuple(out), closed),)

    return kernel


def ck_guard(stop_after_true: bool = False) -> CKernel:
    def kernel(inputs):
        data, control = inputs
        out: List[Any] = []
        stopped = False
        pairs = min(len(data), len(control))
        for k in range(pairs):
            if control.elems[k]:
                out.append(data.elems[k])
                if stop_after_true:
                    stopped = True
                    break
        exhausted_closed = ((data.closed and len(data) <= pairs)
                            or (control.closed and len(control) <= pairs))
        return (CStream(tuple(out), stopped or exhausted_closed),)

    return kernel


def ck_router(predicate: Callable[[Any], bool]) -> CKernel:
    """Two-way split: (matching, non-matching); both close with input."""

    def kernel(inputs):
        (s,) = inputs
        yes = tuple(x for x in s.elems if predicate(x))
        no = tuple(x for x in s.elems if not predicate(x))
        return (CStream(yes, s.closed), CStream(no, s.closed))

    return kernel


def ck_sieve(inputs):
    (s,) = inputs
    out: List[Any] = []
    for x in s.elems:
        if all(x % p for p in out):
            out.append(x)
    return (CStream(tuple(out), s.closed),)


# ---------------------------------------------------------------------------
# fixed-point solver over the closed-stream domain
# ---------------------------------------------------------------------------

class NonMonotonicClosedError(RuntimeError):
    """A kernel violated the closed-stream information order."""


@dataclass
class ClosedFixpointResult:
    streams: Dict[str, CStream]
    iterations: int
    converged: bool

    def __getitem__(self, name: str) -> CStream:
        return self.streams[name]

    def history(self, name: str) -> Tuple[Any, ...]:
        return self.streams[name].elems


@dataclass
class _CNode:
    name: str
    kernel: CKernel
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]


class ClosedEquationNetwork:
    """Kleene iteration over :class:`CStream` values.

    API mirrors :class:`~repro.semantics.fixpoint.EquationNetwork`; the
    only differences are the value domain and that "converged" means a
    genuine fixed point was reached with no stream truncated.
    """

    def __init__(self, max_len: int = 1000, max_iterations: int = 100000) -> None:
        self.max_len = max_len
        self.max_iterations = max_iterations
        self._nodes: List[_CNode] = []
        self._streams: set[str] = set()
        self._produced: set[str] = set()

    def stream(self, name: str) -> str:
        self._streams.add(name)
        return name

    def node(self, name: str, kernel: CKernel, inputs: Sequence[str],
             outputs: Sequence[str]) -> None:
        for s in (*inputs, *outputs):
            self.stream(s)
        for s in outputs:
            if s in self._produced:
                raise ValueError(f"stream {s!r} already has a producer")
            self._produced.add(s)
        self._nodes.append(_CNode(name, kernel, tuple(inputs), tuple(outputs)))

    def solve(self) -> ClosedFixpointResult:
        state: Dict[str, CStream] = {s: CBOTTOM for s in self._streams}
        truncated_any = False
        iterations = 0
        while iterations < self.max_iterations:
            iterations += 1
            new_state = dict(state)
            for node in self._nodes:
                ins = tuple(state[s] for s in node.inputs)
                outs = node.kernel(ins)
                if len(outs) != len(node.outputs):
                    raise ValueError(
                        f"kernel {node.name!r} returned {len(outs)} streams, "
                        f"declared {len(node.outputs)}")
                for stream_name, produced in zip(node.outputs, outs):
                    if len(produced) > self.max_len:
                        truncated_any = True
                        produced = produced.take(self.max_len)
                    current = new_state[stream_name]
                    if not cprefix_le(current, produced):
                        if cprefix_le(produced, current):
                            produced = current  # keep the larger history
                        else:
                            raise NonMonotonicClosedError(
                                f"kernel {node.name!r} retracted output on "
                                f"stream {stream_name!r}")
                    new_state[stream_name] = produced
            if new_state == state:
                return ClosedFixpointResult(state, iterations,
                                            converged=not truncated_any)
            state = new_state
        return ClosedFixpointResult(state, iterations, converged=False)
