"""Determinacy oracle: Kahn's theorem made executable (paper section 2).

Determinacy says "the results of a computation are unique and correct
whether the program is executed on a computer with a single processor, a
computer with multiple processors, or many computers distributed across a
network".  Two executable consequences, both used by the test suite:

1. **Schedule independence** — running the same operational network under
   radically different channel capacities (capacity 1 serializes almost
   everything; capacity 2^20 lets producers sprint ahead) must give
   byte-identical histories.  :func:`histories_under_capacities` runs a
   builder across a capacity sweep and returns the outputs.

2. **Operational = denotational** — the operational history must equal
   the least fixed point of the network's equations.
   :func:`fibonacci_equations` and :func:`hamming_equations` build the
   denotational models of the paper's two feedback networks.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.semantics.fixpoint import EquationNetwork
from repro.semantics.kernels import (k_add, k_cons, k_constant, k_duplicate,
                                     k_ordered_merge, k_scale, k_sequence,
                                     k_sieve)

__all__ = [
    "histories_under_capacities",
    "fibonacci_equations",
    "hamming_equations",
    "sieve_equations",
    "fibonacci_reference",
    "hamming_reference",
    "primes_reference",
]


def histories_under_capacities(builder: Callable[[int], "object"],
                               capacities: Sequence[int] = (16, 64, 1024, 1 << 16),
                               timeout: float = 60.0) -> List[List[Any]]:
    """Run ``builder(capacity)`` → BuiltNetwork for each capacity; collect.

    Every returned history must be identical for a determinate network —
    the assertion is left to the caller so failures show the differing
    histories.
    """
    results = []
    for cap in capacities:
        built = builder(cap)
        results.append(list(built.run(timeout=timeout)))
    return results


# ---------------------------------------------------------------------------
# denotational models of the paper's feedback networks
# ---------------------------------------------------------------------------

def fibonacci_equations(max_len: int = 40) -> EquationNetwork:
    """Equations of Figures 2/6: B = cons(1,G), F = cons(1,B), G = B + F.

    Solving yields stream ``F`` = 1, 1, 2, 3, 5, … — the history the
    operational Fibonacci network must print.
    """
    eq = EquationNetwork(max_len=max_len)
    eq.node("seed-b", k_constant(1, 1), [], ["ab"])
    eq.node("cons-b", k_cons, ["ab", "gb"], ["b"])
    eq.node("dup-b", k_duplicate(2), ["b"], ["ed", "eg"])
    eq.node("add", k_add, ["eg", "fg"], ["gb"])
    eq.node("seed-f", k_constant(1, 1), [], ["cd"])
    eq.node("cons-f", k_cons, ["cd", "ed"], ["f"])
    eq.node("dup-f", k_duplicate(2), ["f"], ["fh", "fg"])
    return eq


def hamming_equations(max_len: int = 60) -> EquationNetwork:
    """Equations of Figure 12: H = cons(1, merge(2H, merge(3H, 5H)))."""
    eq = EquationNetwork(max_len=max_len)
    eq.node("one", k_constant(1, 1), [], ["seed"])
    eq.node("cons", k_cons, ["seed", "merged"], ["h"])
    eq.node("dup", k_duplicate(4), ["h"], ["hx2", "hx3", "hx5", "hout"])
    eq.node("s2", k_scale(2), ["hx2"], ["m2"])
    eq.node("s3", k_scale(3), ["hx3"], ["m3"])
    eq.node("s5", k_scale(5), ["hx5"], ["m5"])
    eq.node("merge-a", k_ordered_merge(True), ["m2", "m3"], ["m23"])
    eq.node("merge-b", k_ordered_merge(True), ["m23", "m5"], ["merged"])
    return eq


def sieve_equations(below: int, max_len: int = 1000) -> EquationNetwork:
    """Equations of Figure 7 with the whole Sift subgraph as one kernel."""
    eq = EquationNetwork(max_len=max_len)
    eq.node("source", k_sequence(2, max(0, below - 2)), [], ["feed"])
    eq.node("sift", k_sieve, ["feed"], ["primes"])
    return eq


# ---------------------------------------------------------------------------
# closed-form references (independent of both implementations)
# ---------------------------------------------------------------------------

def fibonacci_reference(count: int) -> List[int]:
    out, a, b = [], 1, 1
    for _ in range(count):
        out.append(a)
        a, b = b, a + b
    return out


def hamming_reference(count: int) -> List[int]:
    import heapq

    out: List[int] = []
    heap = [1]
    seen = {1}
    while len(out) < count:
        x = heapq.heappop(heap)
        out.append(x)
        for k in (2, 3, 5):
            if x * k not in seen:
                seen.add(x * k)
                heapq.heappush(heap, x * k)
    return out


def primes_reference(below: int | None = None, count: int | None = None) -> List[int]:
    out: List[int] = []
    candidate = 2
    while True:
        if below is not None and candidate >= below:
            return out
        if all(candidate % p for p in out):
            out.append(candidate)
            if count is not None and len(out) >= count:
                return out
        candidate += 1
