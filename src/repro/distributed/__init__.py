"""Distributed process networks (paper section 4).

Compute servers (:mod:`~repro.distributed.server`) execute shipped
processes and tasks; the name registry (:mod:`~repro.distributed.registry`)
locates them; serialization hooks (:mod:`~repro.distributed.migration`)
swap channel transports automatically as processes migrate; socket pumps
(:mod:`~repro.distributed.sockets`) keep Kahn semantics — blocking reads,
bounded capacity, termination cascades — intact across the network; and
source shipping (:mod:`~repro.distributed.codebase`) moves code with the
data.  :mod:`~repro.distributed.cluster` bundles it all for one-call use.
"""

from repro.distributed.balancer import (CalibrationTask,
                                        LeastLoadedPlacement,
                                        PlacementPolicy, RoundRobinPlacement,
                                        ServerProfile, SpeedWeightedPlacement,
                                        place_workers, profile_servers,
                                        suggest_rebalance)
from repro.distributed.deadlock import (DistributedDeadlockDetector,
                                        GlobalStallReport)
from repro.distributed.cluster import LocalCluster, run_partitioned
from repro.distributed.codebase import (SourceShippingPickler, dumps_shipped,
                                        loads_shipped, register_ship_module,
                                        shippable)
from repro.distributed.migration import (MigrationPickler, dumps_migration,
                                         import_network, loads_migration)
from repro.distributed.registry import RegistryClient, RegistryServer
from repro.distributed.server import ComputeServer, ServerClient
from repro.distributed.sockets import ReceiverPump, SenderPump
from repro.distributed.wire import (advertised_host, set_advertised_host)

__all__ = [
    "CalibrationTask", "LeastLoadedPlacement", "PlacementPolicy",
    "RoundRobinPlacement", "ServerProfile", "SpeedWeightedPlacement",
    "place_workers", "profile_servers", "suggest_rebalance",
    "DistributedDeadlockDetector", "GlobalStallReport",
    "LocalCluster", "run_partitioned",
    "SourceShippingPickler", "dumps_shipped", "loads_shipped",
    "register_ship_module", "shippable",
    "MigrationPickler", "dumps_migration", "import_network", "loads_migration",
    "RegistryClient", "RegistryServer",
    "ComputeServer", "ServerClient",
    "ReceiverPump", "SenderPump",
    "advertised_host", "set_advertised_host",
]
