"""Generic compute server (paper section 4.1).

"To support distributed computing, we have implemented a generic compute
server that is accessible via Remote Method Invocation."  Ours is a small
TCP server with the same two-method interface:

* ``run(runnable)`` — ship a Process/Runnable, return immediately; the
  server executes it in its own hosted network (one thread per process,
  deadlock monitor and all).
* ``call(task)`` — ship a Task, block until its ``run()`` result comes
  back (exceptions return as :class:`~repro.errors.RemoteError` with the
  remote traceback).

Payloads travel through the source-shipping migration pickler, so channel
endpoints become socket links automatically (section 4.2) and classes
defined in the client's ``__main__`` work without pre-installing code on
the servers (section 6.2).

In-process (tests)::

    server = ComputeServer(name="alpha").start()
    client = ServerClient("127.0.0.1", server.port)
    client.run(my_composite_process)

Standalone (real parallelism across OS processes)::

    python -m repro.distributed.server --name alpha --port 9001
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
import traceback
from typing import Any, Callable, List, Optional

from repro.errors import RemoteError
from repro.kpn.network import Network
from repro.kpn.process import Process
from repro.distributed.codebase import SourceShippingPickler, dumps_shipped
from repro.distributed.migration import loads_migration
from repro.distributed.registry import RegistryClient
from repro.distributed.wire import (OutOfBand, advertised_host,
                                    connect_with_retry, open_listener,
                                    recv_obj, send_obj)
from repro.telemetry.core import TELEMETRY as _telemetry
from repro.telemetry.profile import PROFILER as _profiler
from repro.telemetry.clock import ProbeSample, estimate_offset
from repro.telemetry.distributed import (TraceContext, activate,
                                         current_context, event_to_dict)

__all__ = ["ComputeServer", "ServerClient", "Runnable"]


class Runnable:
    """Anything with a no-argument ``run`` method (tasks and processes)."""

    def run(self):  # pragma: no cover - interface
        raise NotImplementedError


def _shipping_pickler_factory(file, buffer_callback=None):
    return SourceShippingPickler(file, buffer_callback=buffer_callback)


class ComputeServer:
    """Hosts migrated processes and executes shipped tasks.

    Parameters
    ----------
    port:
        TCP port (0 = ephemeral).
    name:
        Server name, registered with the registry when one is given.
    registry:
        Optional ``(host, port)`` of a :class:`RegistryServer`.
    """

    def __init__(self, port: int = 0, name: str = "server",
                 registry: Optional[tuple[str, int]] = None,
                 executor: Any = None,
                 backend: Optional[str] = None) -> None:
        self.name = name
        #: compute backend spec for shipped ``call`` tasks (resolved lazily
        #: so servers that never execute tasks never build a pool)
        self.executor = executor
        self._exec: Any = None
        self._listener = open_listener(port)
        self.port = self._listener.getsockname()[1]
        #: network hosting every process migrated to this server;
        #: ``backend`` picks its scheduler (None: REPRO_BACKEND or thread)
        self.network = Network(name=f"{name}-net",
                               backend=backend).ensure_running()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, name=f"{name}-accept",
                                        daemon=True)
        self._registry_client: Optional[RegistryClient] = None
        if registry is not None:
            self._registry_client = RegistryClient(*registry)
        #: count of run/call requests served (stats)
        self.tasks_run = 0
        self.processes_hosted = 0
        self.started_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ComputeServer":
        self._thread.start()
        if self._registry_client is not None:
            self._registry_client.register(self.name, advertised_host(), self.port)
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._registry_client is not None:
            try:
                self._registry_client.unregister(self.name)
            except Exception:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        self.network.shutdown()

    # -- server loops ----------------------------------------------------------
    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._handle, args=(sock,),
                             name=f"{self.name}-conn", daemon=True).start()

    def _handle(self, sock: socket.socket) -> None:
        with sock:
            while not self._stop.is_set():
                try:
                    request = recv_obj(sock)
                except Exception:
                    return
                reply = self._dispatch(request)
                try:
                    send_obj(sock, reply, pickler_factory=_shipping_pickler_factory)
                except Exception:
                    return

    def _dispatch(self, request: dict) -> dict:
        if not _telemetry.enabled:
            return self._dispatch_inner(request)
        # The connection thread adopted the sender's trace context when
        # recv_obj unwrapped the envelope: the execute span continues the
        # dispatching trace, and the flow-end event draws the arrow from
        # the client's send span into this lane.
        ctx = current_context()
        _telemetry.begin("rpc.execute", category="dist.rpc",
                         op=request.get("op"), server=self.name,
                         trace=ctx.trace_id if ctx else None)
        if ctx is not None:
            _telemetry.flow("f", "rpc", category="dist.rpc",
                            flow_id=ctx.flow_id)
        try:
            return self._dispatch_inner(request)
        finally:
            _telemetry.end("rpc.execute", category="dist.rpc")

    @staticmethod
    def _payload(request: dict):
        """The request's shipped-pickle bytes (unwrapping zero-copy frames)."""
        payload = request["payload"]
        return payload.data if isinstance(payload, OutOfBand) else payload

    def _dispatch_inner(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                # hub_now is the clock-alignment epoch exchange: clients
                # time this round trip to estimate our clock offset.
                return {"ok": True, "name": self.name,
                        "hub_now": _telemetry.now()}
            if op == "run":
                target = loads_migration(self._payload(request),
                                         network=self.network)
                self._run_async(target)
                return {"ok": True}
            if op == "call":
                target = loads_migration(self._payload(request),
                                         network=self.network)
                self.tasks_run += 1
                return {"ok": True, "result": self._executor().run_task(target)}
            if op == "wait_snapshot":
                return {"ok": True, "snapshot": self.network.wait_snapshot()}
            if op == "grow_channel":
                grown = self.network.grow_channel(request["channel"],
                                                  request["capacity"])
                return {"ok": True, "grown": grown}
            if op == "stats":
                failures = [
                    {"process": p.name, "error": repr(p.failure)}
                    for p in self.network.processes if p.failure is not None
                ]
                return {"ok": True, "name": self.name,
                        "backend": self.network.backend,
                        "tasks_run": self.tasks_run,
                        "processes_hosted": self.processes_hosted,
                        "live_threads": len(self.network.live_threads()),
                        "channels": len(self.network.channels),
                        "uptime_seconds": time.monotonic() - self.started_at,
                        "telemetry_enabled": _telemetry.enabled,
                        "executor": self._executor_stats(),
                        "failures": failures}
            if op == "metrics":
                # Telemetry counterpart of wait_snapshot: one server's
                # share of a cluster-wide metrics aggregation.  The hub is
                # process-wide, so thread-mode clusters (several servers in
                # one interpreter) see the interpreter's combined counters.
                profile = (_profiler.snapshot(network=self.network)
                           if _profiler.enabled else None)
                return {"ok": True, "name": self.name,
                        "telemetry_enabled": _telemetry.enabled,
                        "counters": _telemetry.counters(),
                        "histograms": _telemetry.histogram_snapshots(),
                        "gauges": _telemetry.gauges(),
                        "profile": profile,
                        "events_emitted": _telemetry.events_emitted,
                        "tasks_run": self.tasks_run,
                        "processes_hosted": self.processes_hosted,
                        "live_threads": len(self.network.live_threads()),
                        "channels": len(self.network.channels)}
            if op == "trace":
                # One node's share of the cluster trace: the event ring on
                # this hub's clock, plus identity (pid dedupes thread-mode
                # servers that share one interpreter hub) and hub_now so
                # the collector can sanity-check its offset estimate.
                return {"ok": True, "name": self.name,
                        "node": _telemetry.node, "pid": os.getpid(),
                        "hub_now": _telemetry.now(),
                        "telemetry_enabled": _telemetry.enabled,
                        "events": [event_to_dict(e)
                                   for e in _telemetry.events()]}
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc()}

    def _executor(self):
        """The server's compute backend, resolved on first use.

        Hosted Workers resolve their own specs; this one covers shipped
        ``call`` tasks, so a whole server — hub plus any number of hosted
        runnables — shares the one per-host pool.
        """
        if self._exec is None:
            from repro.parallel.executor import resolve_executor

            self._exec = resolve_executor(self.executor)
        return self._exec

    def _executor_stats(self) -> dict:
        if self._exec is None:
            spec = self.executor
            kind = spec if isinstance(spec, str) else getattr(
                spec, "kind", None)
            return {"kind": kind, "resolved": False}
        return {**self._exec.stats(), "resolved": True}

    def _run_async(self, target: Any) -> None:
        self.processes_hosted += 1
        if isinstance(target, Process):
            self.network.spawn(target)
        elif callable(getattr(target, "run", None)):
            # the dispatching trace follows the runnable into its thread
            ctx = current_context()

            def _run() -> None:
                with activate(ctx):
                    if _telemetry.enabled:
                        with _telemetry.span(
                                "task.run", category="dist.rpc",
                                server=self.name,
                                trace=ctx.trace_id if ctx else None):
                            target.run()
                    else:
                        target.run()

            threading.Thread(target=_run, name=f"{self.name}-runnable",
                             daemon=True).start()
        else:
            raise TypeError(f"cannot run {type(target).__name__}: no run()")


class ServerClient:
    """Client stub for a :class:`ComputeServer` (the RMI stub analogue)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    @classmethod
    def from_registry(cls, registry: RegistryClient, name: str) -> "ServerClient":
        host, port = registry.lookup(name)
        return cls(host, port)

    def _roundtrip(self, payload: dict) -> dict:
        with self._lock:
            if self._sock is None:
                self._sock = connect_with_retry(self.host, self.port)
            send_obj(self._sock, payload,
                     pickler_factory=_shipping_pickler_factory)
            return recv_obj(self._sock)

    def _request(self, payload: dict) -> dict:
        if _telemetry.enabled:
            # Continue the caller's trace (or root a new one), bracket the
            # round trip in a send span, and open a flow: the server's
            # execute span ends it, so the merged trace draws an arrow
            # from this lane into the server's.
            parent = current_context()
            ctx = parent.child() if parent is not None else TraceContext.new_root()
            with activate(ctx):
                _telemetry.begin("rpc.send", category="dist.rpc",
                                 op=payload.get("op"),
                                 server=f"{self.host}:{self.port}",
                                 trace=ctx.trace_id)
                _telemetry.flow("s", "rpc", category="dist.rpc",
                                flow_id=ctx.flow_id)
                try:
                    reply = self._roundtrip(payload)
                finally:
                    _telemetry.end("rpc.send", category="dist.rpc")
        else:
            reply = self._roundtrip(payload)
        if not reply.get("ok"):
            raise RemoteError(reply.get("error", "remote failure"),
                              reply.get("traceback", ""))
        return reply

    # -- the Server interface (section 4.1) ---------------------------------
    def ping(self) -> str:
        return self._request({"op": "ping"})["name"]

    def run(self, target: Any) -> None:
        """``void run(Runnable)``: ship and return immediately."""
        self._request({"op": "run",
                       "payload": OutOfBand(dumps_shipped(target))})

    def call(self, task: Any) -> Any:
        """``Object run(Task)``: ship, execute, return the result."""
        return self._request({"op": "call",
                              "payload": OutOfBand(dumps_shipped(task))})["result"]

    def wait_snapshot(self) -> dict:
        """Per-server blocking snapshot (distributed deadlock detection)."""
        return self._request({"op": "wait_snapshot"})["snapshot"]

    def grow_channel(self, channel: str, capacity: int) -> bool:
        """Grow a channel buffer on the remote server by name."""
        return self._request({"op": "grow_channel", "channel": channel,
                              "capacity": capacity})["grown"]

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def metrics(self) -> dict:
        """The server's telemetry snapshot (counters + hub status)."""
        return self._request({"op": "metrics"})

    def trace(self) -> dict:
        """The server's event buffer on its own hub clock (``trace`` op)."""
        return self._request({"op": "trace"})

    def clock_probe(self) -> ProbeSample:
        """One NTP-style probe: time a ping, note the server's hub clock."""
        sent = _telemetry.now()
        reply = self._request({"op": "ping"})
        received = _telemetry.now()
        return ProbeSample(sent=sent, remote=reply.get("hub_now", 0.0),
                           received=received)

    def clock_offset(self, probes: int = 5):
        """Estimate this server's hub-clock offset from ours.

        Returns an :class:`~repro.telemetry.clock.OffsetEstimate`; adding
        its ``offset`` to the server's event timestamps lands them on the
        local hub's timeline (the merged-trace alignment step).
        """
        return estimate_offset(self.clock_probe() for _ in range(probes))

    def shutdown(self) -> None:
        try:
            self._request({"op": "shutdown"})
        except Exception:
            pass

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover
    parser = argparse.ArgumentParser(description="repro compute server")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--name", default="server")
    parser.add_argument("--registry", default=None,
                        help="host:port of a registry server")
    parser.add_argument("--advertise", default=None,
                        help="host other servers should dial back")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the telemetry hub (also: REPRO_TELEMETRY=1)")
    parser.add_argument("--profile", action="store_true",
                        help="enable the continuous KPN profiler — implies "
                             "--telemetry (also: REPRO_PROFILE=1)")
    parser.add_argument("--executor", default=None,
                        choices=["inline", "thread", "process"],
                        help="compute backend for shipped tasks and hosted "
                             "workers (also: REPRO_EXECUTOR)")
    parser.add_argument("--pool-size", type=int, default=None,
                        help="process/thread pool width (also: REPRO_POOL_SIZE;"
                             " default: CPU count)")
    parser.add_argument("--backend", default=None,
                        choices=["thread", "async"],
                        help="scheduler backend for the hosted network "
                             "(also: REPRO_BACKEND; default thread)")
    args = parser.parse_args(argv)
    if args.telemetry:
        _telemetry.enable()
    if args.profile:
        _profiler.enable()
    if args.executor:
        # env, not a constructor arg: hosted Workers resolve their specs
        # against this process's environment, and both paths must agree
        os.environ["REPRO_EXECUTOR"] = args.executor
    if args.pool_size is not None:
        os.environ["REPRO_POOL_SIZE"] = str(args.pool_size)
    # one server per process in standalone mode: name its trace lane
    _telemetry.node = args.name
    if args.advertise:
        from repro.distributed.wire import set_advertised_host

        set_advertised_host(args.advertise)
    registry = None
    if args.registry:
        host, _, port = args.registry.partition(":")
        registry = (host, int(port))
    server = ComputeServer(port=args.port, name=args.name,
                           registry=registry, backend=args.backend).start()
    print(f"SERVER {args.name} LISTENING {server.port}", flush=True)
    threading.Event().wait()


if __name__ == "__main__":  # pragma: no cover
    main()
