"""Distributed deadlock detection and resolution (paper section 6.2).

"Another problem to be addressed is that of distributed deadlock
detection.  ...  If deadlock occurs, it is first necessary to detect it.
It is then necessary to determine whether increasing buffer capacities on
the channels will relieve the deadlock.  One method of buffer management
that we have used in the past is described in [13].  We plan to apply
those ideas to our distributed Java implementation."

This module is that plan, executed.  A :class:`DistributedDeadlockDetector`
coordinates any mix of *participants* — local :class:`~repro.kpn.network.Network`
objects and remote compute servers (via :class:`~repro.distributed.server.ServerClient`)
— and applies Parks' rule globally:

1. **Detect**: poll every participant's wait snapshot.  The system has
   globally stalled when every live process thread at every site is
   blocked on a channel operation.  (Pump threads don't count: a blocked
   pump merely transmits backpressure, and the producer it throttles
   shows up as write-blocked at its own site.)
2. **Verify**: a stall observation can race with in-flight wakeups, so
   the detector re-polls after a settle delay and requires every site's
   accounting generation to be unchanged — the distributed analogue of
   the local monitor's stability window.
3. **Resolve**: if any site reports a *write*-blocked thread, the
   deadlock is artificial — grow the smallest-capacity channel among the
   write-blocked ones, at whichever site owns it, and resume.  If all
   blocks are reads, the deadlock is true: no capacity assignment helps;
   report it (shutdown is the participants' own policy decision).

The detector is a *centralized coordinator* over decentralized state —
the pragmatic choice the paper's central-console comparison tolerates for
control-plane concerns (data never flows through the coordinator).  The
local per-network monitors stay active for purely-local deadlocks; they
stand down exactly on networks with remote links, which is the gap this
detector fills.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import TrueDeadlockError
from repro.kpn.network import Network
from repro.kpn.scheduler import GrowthEvent
from repro.distributed.server import ServerClient

__all__ = ["DistributedDeadlockDetector", "GlobalStallReport", "Participant"]

Participant = Union[Network, ServerClient]


@dataclass
class GlobalStallReport:
    """What the detector saw when the whole system stood still."""

    #: per-site snapshots (site name → snapshot dict)
    snapshots: dict
    #: all write-blocked entries, across sites: (site, entry)
    write_blocked: List[tuple] = field(default_factory=list)
    #: all read-blocked entries, across sites
    read_blocked: List[tuple] = field(default_factory=list)

    @property
    def artificial(self) -> bool:
        return bool(self.write_blocked)


def _site_name(participant: Participant, index: int) -> str:
    if isinstance(participant, Network):
        return f"local:{participant.name}"
    return f"server:{participant.host}:{participant.port}"


class DistributedDeadlockDetector:
    """Coordinates global stall detection across networks and servers.

    Parameters
    ----------
    participants:
        Local Network objects and/or ServerClients.  Every site that can
        host blocked processes of the computation should be listed.
    growth_factor / max_capacity:
        Parks-rule parameters applied to the chosen channel.
    settle_s:
        Stability window between the two confirming polls.
    on_grow / on_true:
        Optional callbacks for observability (tests, logging).
    """

    def __init__(self, participants: Sequence[Participant],
                 growth_factor: int = 2,
                 max_capacity: int = 64 * 1024 * 1024,
                 settle_s: float = 0.05,
                 on_grow: Optional[Callable[[GrowthEvent], None]] = None,
                 on_true: Optional[Callable[[GlobalStallReport], None]] = None) -> None:
        if not participants:
            raise ValueError("need at least one participant")
        self.participants = list(participants)
        self.growth_factor = growth_factor
        self.max_capacity = max_capacity
        self.settle_s = settle_s
        self.on_grow = on_grow
        self.on_true = on_true
        self.growth_events: List[GrowthEvent] = []
        self.true_deadlocks: List[GlobalStallReport] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- polling -----------------------------------------------------------
    def _snapshot(self, participant: Participant) -> dict:
        if isinstance(participant, Network):
            return participant.wait_snapshot()
        return participant.wait_snapshot()

    def snapshot_all(self) -> dict:
        return {_site_name(p, i): self._snapshot(p)
                for i, p in enumerate(self.participants)}

    @staticmethod
    def _stalled(snapshots: dict) -> bool:
        """Globally stalled: some thread lives, and all live threads are
        blocked, at every site."""
        any_live = False
        for snap in snapshots.values():
            live = set(snap["live"])
            if live:
                any_live = True
                blocked = {b["thread"] for b in snap["blocked"]}
                if not live <= blocked:
                    return False
        return any_live

    @staticmethod
    def _generations(snapshots: dict) -> dict:
        return {site: snap["generation"] for site, snap in snapshots.items()}

    # -- single detection round ------------------------------------------------
    def check_once(self) -> Optional[GlobalStallReport]:
        """One detect-verify-resolve round.

        Returns the stall report when a (verified) global stall was
        found — after resolving it if it was artificial — else None.
        """
        first = self.snapshot_all()
        if not self._stalled(first):
            return None
        generations = self._generations(first)
        time.sleep(self.settle_s)
        second = self.snapshot_all()
        if not self._stalled(second):
            return None
        if self._generations(second) != generations:
            return None  # something moved between polls: not a stall

        report = GlobalStallReport(snapshots=second)
        for site, snap in second.items():
            for entry in snap["blocked"]:
                target = (report.write_blocked if entry["mode"] == "write"
                          else report.read_blocked)
                target.append((site, entry))
        if report.artificial:
            self._resolve_artificial(report)
        else:
            self.true_deadlocks.append(report)
            if self.on_true is not None:
                self.on_true(report)
        return report

    def _resolve_artificial(self, report: GlobalStallReport) -> None:
        site, entry = min(report.write_blocked,
                          key=lambda pair: pair[1]["capacity"])
        old = entry["capacity"]
        new = min(old * self.growth_factor, self.max_capacity)
        if new <= old:
            # cap reached: record as unresolvable (true-deadlock handling)
            self.true_deadlocks.append(report)
            if self.on_true is not None:
                self.on_true(report)
            return
        self._grow_at(site, entry["channel"], new)
        event = GrowthEvent(entry["channel"], old, new,
                            (f"{site}/{entry['thread']}",))
        self.growth_events.append(event)
        if self.on_grow is not None:
            self.on_grow(event)

    def _grow_at(self, site: str, channel: str, capacity: int) -> None:
        for i, participant in enumerate(self.participants):
            if _site_name(participant, i) != site:
                continue
            if isinstance(participant, Network):
                participant.grow_channel(channel, capacity)
            else:
                participant.grow_channel(channel, capacity)
            return
        raise KeyError(f"unknown site {site!r}")

    # -- background operation ----------------------------------------------------
    def start(self, interval_s: float = 0.05) -> "DistributedDeadlockDetector":
        """Run detection rounds in a daemon thread until :meth:`stop`."""

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.check_once()
                except Exception:
                    # a participant vanished mid-poll; keep watching the rest
                    pass
                self._stop.wait(interval_s)

        self._thread = threading.Thread(target=loop, name="dist-deadlock",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def raise_on_true_deadlock(self) -> None:
        """Raise a TrueDeadlockError if any unresolvable stall was seen."""
        if self.true_deadlocks:
            report = self.true_deadlocks[0]
            names = tuple(f"{site}/{e['thread']}"
                          for site, e in report.read_blocked)
            raise TrueDeadlockError(
                f"global deadlock across {len(report.snapshots)} sites", names)

    def __enter__(self) -> "DistributedDeadlockDetector":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
