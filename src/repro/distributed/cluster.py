"""Cluster convenience layer: spin up servers, partition graphs, run.

The paper's deployment story — "a collection of servers at our disposal
... part of a local cluster, or ... dispersed across the Internet" —
reduced to two ergonomic entry points:

* :class:`LocalCluster` — a registry plus N compute servers, either
  in-process (``mode="thread"``: fast, used by the test suite) or as
  separate OS processes (``mode="process"``: true parallelism, since each
  server owns its own interpreter and GIL).
* :func:`run_partitioned` — the Figure 14/15 workflow: build composites
  on the client, ship each to a server (channel links self-assemble
  during serialization), run the local remainder, wait for completion.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import RemoteError
from repro.kpn.network import Network
from repro.kpn.process import Process
from repro.distributed.registry import RegistryClient, RegistryServer
from repro.distributed.server import ComputeServer, ServerClient

__all__ = ["LocalCluster", "run_partitioned"]


class LocalCluster:
    """A registry and N compute servers on this machine.

    ``mode="thread"`` hosts everything in this interpreter — ideal for
    tests and for exercising the full network protocol without process
    startup cost.  ``mode="process"`` launches each server with
    ``python -m repro.distributed.server`` so workers truly run in
    parallel (separate GILs), which is what the real-execution benchmark
    uses.
    """

    def __init__(self, n_servers: int = 2, mode: str = "thread",
                 name_prefix: str = "server", telemetry: bool = False,
                 profile: bool = False,
                 executor: Optional[str] = None,
                 pool_size: Optional[int] = None,
                 optimize: bool = False,
                 backend: Optional[str] = None) -> None:
        if mode not in ("thread", "process"):
            raise ValueError("mode must be 'thread' or 'process'")
        self.mode = mode
        #: scheduler backend each server's hosted network runs on
        #: (None: that host's REPRO_BACKEND, default thread)
        self.backend = backend
        self.n_servers = n_servers
        self.name_prefix = name_prefix
        #: run the graph compiler (:mod:`repro.kpn.compile`) over the
        #: local partition before :func:`run_partitioned` starts it —
        #: remote-linked channels are never fused, so this only collapses
        #: hops that stayed on this host
        self.optimize = optimize
        #: compute backend every server executes shipped tasks (and hosted
        #: workers with unset specs) on: "inline"/"thread"/"process"
        self.executor = executor
        self.pool_size = pool_size
        #: start process-mode servers with their telemetry hubs enabled
        #: (thread-mode servers share this interpreter's hub — enable it
        #: directly).  Required for :meth:`merged_trace` to see remote
        #: events.
        self.telemetry = telemetry
        #: start process-mode servers with the continuous profiler on
        #: (implies telemetry on those servers; thread-mode servers share
        #: this interpreter's PROFILER — enable it directly).  Required
        #: for :meth:`merged_profile` to see remote attributions.
        self.profile = profile
        self.registry_server: Optional[RegistryServer] = None
        self.registry: Optional[RegistryClient] = None
        self._servers: List[ComputeServer] = []
        self._procs: List[subprocess.Popen] = []
        self.clients: List[ServerClient] = []
        self.names: List[str] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "LocalCluster":
        self.registry_server = RegistryServer().start()
        self.registry = RegistryClient("127.0.0.1", self.registry_server.port)
        for i in range(self.n_servers):
            name = f"{self.name_prefix}-{i}"
            self.names.append(name)
            if self.mode == "thread":
                server = ComputeServer(
                    name=name, executor=self.executor, backend=self.backend,
                    registry=("127.0.0.1", self.registry_server.port)).start()
                self._servers.append(server)
                self.clients.append(ServerClient("127.0.0.1", server.port))
            else:
                self._spawn_process_server(name)
        return self

    def _spawn_process_server(self, name: str) -> None:
        argv = [sys.executable, "-m", "repro.distributed.server",
                "--name", name, "--port", "0",
                "--registry", f"127.0.0.1:{self.registry_server.port}"]
        if self.telemetry:
            argv.append("--telemetry")
        if self.profile:
            argv.append("--profile")
        if self.executor:
            argv += ["--executor", self.executor]
        if self.pool_size is not None:
            argv += ["--pool-size", str(self.pool_size)]
        if self.backend:
            argv += ["--backend", self.backend]
        proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        self._procs.append(proc)
        # the server announces "SERVER <name> LISTENING <port>" on stdout
        line = proc.stdout.readline()
        parts = line.split()
        if len(parts) < 4 or parts[0] != "SERVER":
            raise RemoteError(f"server {name} failed to start: {line!r}")
        port = int(parts[3])
        self.clients.append(ServerClient("127.0.0.1", port))

    def stop(self) -> None:
        for client in self.clients:
            try:
                client.shutdown()
                client.close()
            except Exception:
                pass
        for server in self._servers:
            server.stop()
        for proc in self._procs:
            try:
                proc.terminate()
                proc.wait(timeout=5)
            except Exception:
                proc.kill()
        if self.registry_server is not None:
            self.registry_server.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- helpers ---------------------------------------------------------------
    def client(self, i: int) -> ServerClient:
        return self.clients[i]

    def ping_all(self) -> List[str]:
        return [c.ping() for c in self.clients]

    def stats(self) -> Dict[str, dict]:
        return {name: c.stats() for name, c in zip(self.names, self.clients)}

    def metrics(self) -> Dict[str, dict]:
        """Per-server telemetry snapshots (the ``metrics`` op, fanned out)."""
        return {name: c.metrics()
                for name, c in zip(self.names, self.clients)}

    def merged_metrics(self) -> Dict[str, float]:
        """Cluster-wide counter totals, summed across servers.

        The metrics analogue of aggregating ``wait_snapshot`` replies for
        distributed deadlock detection.  Note that ``mode="thread"``
        servers share one interpreter-wide hub, so their per-server
        snapshots coincide; real aggregation happens in
        ``mode="process"`` (one hub per OS process).
        """
        from repro.telemetry.export import merge_counters

        per_server = self.metrics()
        if self.mode == "thread":
            # all thread-mode servers read the same hub: don't double-count
            per_server = dict(list(per_server.items())[:1])
        return merge_counters(m["counters"] for m in per_server.values())

    def profiles(self) -> Dict[str, Optional[dict]]:
        """Per-server profiler snapshots (from the ``metrics`` op fan-out).

        ``None`` for servers whose profiler is off.
        """
        return {name: c.metrics().get("profile")
                for name, c in zip(self.names, self.clients)}

    def merged_profile(self) -> dict:
        """One cluster-wide blocked-time attribution.

        Fetches every server's profiler snapshot and merges them with
        :func:`repro.telemetry.profile.merge_profiles`.  Snapshots are
        deduplicated by pid — thread-mode servers share one interpreter's
        profiler, so their snapshots coincide and only one copy
        contributes.  Feed the result to :func:`~repro.telemetry.profile.analyze`
        for a cluster-wide bottleneck report.
        """
        from repro.telemetry.profile import merge_profiles

        per_node: Dict[str, dict] = {}
        seen_pids: set = set()
        for name, client in zip(self.names, self.clients):
            snap = client.metrics().get("profile")
            if not snap:
                continue
            pid = snap.get("pid")
            if pid is not None and pid in seen_pids:
                continue
            seen_pids.add(pid)
            per_node[snap.get("node") or name] = snap
        return merge_profiles(per_node)

    # -- cluster-causal tracing ---------------------------------------------
    def clock_offsets(self, probes: int = 5) -> Dict[str, "OffsetEstimate"]:
        """Per-server hub-clock offsets onto this interpreter's timeline."""
        return {name: c.clock_offset(probes=probes)
                for name, c in zip(self.names, self.clients)}

    def merged_trace(self, path: Optional[str] = None,
                     probes: int = 5) -> dict:
        """One causally-linked, time-aligned trace for the whole cluster.

        Fetches every server's event buffer (the ``trace`` op), estimates
        each server's clock offset over the ping op, and renders one
        Chrome trace document with one process lane per node — the local
        client first, at offset zero.  Nodes sharing this interpreter's
        hub (thread-mode servers) are deduplicated by pid, so the client
        lane already carries their events.  ``path`` writes the JSON
        there too.
        """
        import json
        import os

        from repro.telemetry.core import TELEMETRY
        from repro.telemetry.distributed import (event_to_dict,
                                                 merge_node_traces)

        nodes = [{"name": f"client:{TELEMETRY.node}",
                  "offset": 0.0,
                  "events": [event_to_dict(e) for e in TELEMETRY.events()]}]
        seen_pids = {os.getpid()}
        for name, client in zip(self.names, self.clients):
            estimate = client.clock_offset(probes=probes)
            reply = client.trace()
            if reply.get("pid") in seen_pids:
                continue  # shares a hub with an already-collected lane
            seen_pids.add(reply.get("pid"))
            nodes.append({"name": reply.get("node") or name,
                          "offset": estimate.offset,
                          "events": reply.get("events", [])})
        doc = merge_node_traces(nodes)
        if path:
            with open(path, "w") as fh:
                json.dump(doc, fh)
        return doc


def run_partitioned(local_part: Optional[Process],
                    remote_parts: Sequence[Process],
                    cluster: LocalCluster,
                    network: Optional[Network] = None,
                    timeout: Optional[float] = 120.0,
                    settle: float = 0.05,
                    optimize: Optional[bool] = None) -> Network:
    """The Figure 14/15 workflow.

    Build the whole graph on this machine, pass the composites to ship in
    ``remote_parts`` (each goes to the corresponding cluster server), keep
    ``local_part`` here, then start everything.  Channel connections
    between servers are established automatically while the composites
    serialize — the caller never touches a socket.

    Ships remote parts *in order* before starting the local part, matching
    the paper's staging; returns the local network after joining it.

    ``optimize`` runs the graph compiler over the local partition before
    it starts (defaults to ``cluster.optimize``).  Remote-pumped channels
    are never fused, so only same-host hops collapse.

    When no ``network`` is supplied, the local partition runs on the
    cluster's scheduler backend — remote parts already do, on their
    servers' hosted networks.
    """
    net = network or Network(name="partitioned", backend=cluster.backend)
    for i, part in enumerate(remote_parts):
        cluster.client(i % len(cluster.clients)).run(part)
        time.sleep(settle)  # let listeners/pumps of that hop establish
    if local_part is not None:
        net.add(local_part)
    if cluster.optimize if optimize is None else optimize:
        net.optimize()
    net.run(timeout=timeout)
    return net
