"""Worker placement and load balancing across compute servers (§6.1).

"Load balancing is also important when using a collection of
heterogeneous servers with a wide range of processing speeds."  The
MetaDynamic composition already balances *tasks* at run time; this module
balances *processes* at placement time — deciding which server hosts each
worker — and provides the measurement primitive that makes speed-aware
placement possible.

Three policies, lowest to highest information:

* :class:`RoundRobinPlacement` — what `ParallelHarness.distribute` does
  by default: worker *i* → server *i mod n*.
* :class:`LeastLoadedPlacement` — consults each server's live-thread
  count (its current hosting burden) and always picks the emptiest.
* :class:`SpeedWeightedPlacement` — benchmarks every server with a
  :class:`CalibrationTask` (a fixed spin of arbitrary-precision
  arithmetic, the same kind of work as the factorization tasks) and
  hands out workers proportionally to measured speed — the paper's
  "computers ... may have different available computing power".

:func:`place_workers` applies a policy to a harness; the assignment it
returns also feeds :func:`suggest_rebalance`, the advisory half of the
paper's "have processes migrate from one server to another for load
balancing" future work (actual migration uses the normal serialization
machinery; the suggestion tells you *what* to move).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "CalibrationTask", "ServerProfile", "profile_servers",
    "PlacementPolicy", "RoundRobinPlacement", "LeastLoadedPlacement",
    "SpeedWeightedPlacement", "place_workers", "suggest_rebalance",
]


class CalibrationTask:
    """A fixed amount of big-integer arithmetic; returns ops/second.

    Runs the same flavour of work as the factorization workload (multiply
    + isqrt on multi-hundred-bit integers), so the measured rate predicts
    worker-task throughput rather than an abstract FLOP count.
    """

    def __init__(self, rounds: int = 2000, bits: int = 256) -> None:
        self.rounds = rounds
        self.bits = bits

    def run(self) -> float:
        import math

        x = (1 << self.bits) + 12345
        start = time.perf_counter()
        acc = 0
        for i in range(self.rounds):
            acc ^= math.isqrt(x * (x + 2 * i))
        elapsed = time.perf_counter() - start
        if acc == -1:  # pragma: no cover - keep the loop un-eliminable
            print(acc)
        return self.rounds / elapsed if elapsed > 0 else float("inf")


@dataclass
class ServerProfile:
    """What we know about one compute server."""

    index: int
    name: str
    #: measured calibration rate (ops/s); None until benchmarked
    speed: Optional[float] = None
    #: live hosted threads at profiling time
    load: int = 0

    @property
    def effective_speed(self) -> float:
        return self.speed if self.speed is not None else 1.0


def profile_servers(cluster, measure_speed: bool = False,
                    calibration_rounds: int = 2000) -> List[ServerProfile]:
    """Collect load (and optionally measured speed) for every server."""
    profiles = []
    for i, client in enumerate(cluster.clients):
        stats = client.stats()
        profile = ServerProfile(index=i, name=stats.get("name", f"server-{i}"),
                                load=stats.get("live_threads", 0))
        if measure_speed:
            profile.speed = client.call(CalibrationTask(calibration_rounds))
        profiles.append(profile)
    return profiles


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------

class PlacementPolicy:
    """Maps ``n_workers`` onto server indices."""

    def assign(self, n_workers: int,
               profiles: Sequence[ServerProfile]) -> List[int]:
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    def assign(self, n_workers: int, profiles) -> List[int]:
        return [i % len(profiles) for i in range(n_workers)]


class LeastLoadedPlacement(PlacementPolicy):
    """Each worker goes to the currently-least-burdened server, counting
    both pre-existing load and workers this assignment already placed."""

    def assign(self, n_workers: int, profiles) -> List[int]:
        burden: Dict[int, int] = {p.index: p.load for p in profiles}
        assignment = []
        for _ in range(n_workers):
            target = min(burden, key=lambda idx: (burden[idx], idx))
            assignment.append(target)
            burden[target] += 1
        return assignment


class SpeedWeightedPlacement(PlacementPolicy):
    """Workers proportional to measured speed (largest-remainder rounding).

    A server twice as fast hosts twice the workers, so MetaStatic-style
    compositions get speed-proportional task shares even without
    on-demand dispatch, and MetaDynamic workers sit where cycles are.
    """

    def assign(self, n_workers: int, profiles) -> List[int]:
        speeds = [max(p.effective_speed, 1e-9) for p in profiles]
        total = sum(speeds)
        quotas = [n_workers * s / total for s in speeds]
        counts = [int(q) for q in quotas]
        remainders = [(q - c, i) for i, (q, c) in enumerate(zip(quotas, counts))]
        shortfall = n_workers - sum(counts)
        for _, i in sorted(remainders, reverse=True)[:shortfall]:
            counts[i] += 1
        assignment = []
        for profile, count in zip(profiles, counts):
            assignment.extend([profile.index] * count)
        return assignment


# ---------------------------------------------------------------------------
# application
# ---------------------------------------------------------------------------

def place_workers(harness, cluster, policy: Optional[PlacementPolicy] = None,
                  profiles: Optional[List[ServerProfile]] = None,
                  settle: float = 0.0) -> List[int]:
    """Ship a harness's workers per the policy; returns the assignment.

    Like :meth:`ParallelHarness.distribute`, but policy-driven.  The
    harness's ``workers`` list is emptied (they now live remotely).
    """
    import time as _time

    policy = policy or RoundRobinPlacement()
    if profiles is None:
        profiles = profile_servers(
            cluster, measure_speed=isinstance(policy, SpeedWeightedPlacement))
    assignment = policy.assign(len(harness.workers), profiles)
    for worker, server_index in zip(harness.workers, assignment):
        cluster.client(server_index).run(worker)
        if settle:
            _time.sleep(settle)
    harness.workers = []
    return assignment


def suggest_rebalance(profiles: Sequence[ServerProfile],
                      tolerance: float = 0.25) -> List[tuple]:
    """Advisory moves to even out load-per-speed across servers.

    Returns ``(from_index, to_index)`` pairs, one per suggested worker
    move, computed greedily until every server's load/speed ratio is
    within ``tolerance`` of the mean.  Executing a move is the caller's
    job (serialize the worker on one server, run it on another — the
    paper's §6.1 "re-distribute processes after execution has already
    begun" once live handoff is in play).
    """
    loads = {p.index: p.load for p in profiles}
    speeds = {p.index: max(p.effective_speed, 1e-9) for p in profiles}
    moves: List[tuple] = []
    for _ in range(sum(loads.values())):
        total_load = sum(loads.values())
        total_speed = sum(speeds.values())
        if total_load == 0:
            break
        mean_ratio = total_load / total_speed
        ratios = {i: loads[i] / speeds[i] for i in loads}
        hottest = max(ratios, key=lambda i: ratios[i])
        coolest = min(ratios, key=lambda i: ratios[i])
        if ratios[hottest] <= mean_ratio * (1 + tolerance) or loads[hottest] == 0:
            break
        if hottest == coolest:
            break
        loads[hottest] -= 1
        loads[coolest] += 1
        moves.append((hottest, coolest))
    return moves
