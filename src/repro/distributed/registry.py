"""Name registry: the RMI-registry analogue (paper section 4.1).

"Entries for each compute server in the RMI registry make it easy for
client applications to locate remote compute servers."  This is a tiny
TCP key→(host, port) store with the same role: servers register
themselves on startup, clients look them up by name.

Run in-process (tests, single-machine clusters)::

    reg = RegistryServer().start()
    client = RegistryClient("127.0.0.1", reg.port)
    client.register("alpha", "127.0.0.1", 9001)
    assert client.lookup("alpha") == ("127.0.0.1", 9001)

or standalone: ``python -m repro.distributed.registry --port 5000``.
"""

from __future__ import annotations

import argparse
import socket
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import RegistryError
from repro.distributed.wire import open_listener, recv_obj, send_obj

__all__ = ["RegistryServer", "RegistryClient"]


class RegistryServer:
    """Threaded TCP registry server."""

    def __init__(self, port: int = 0) -> None:
        self._listener = open_listener(port)
        self.port = self._listener.getsockname()[1]
        self._entries: Dict[str, Tuple[str, int]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, name="registry",
                                        daemon=True)

    def start(self) -> "RegistryServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    # -- server loop -------------------------------------------------------
    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._handle, args=(sock,),
                             name="registry-conn", daemon=True).start()

    def _handle(self, sock: socket.socket) -> None:
        with sock:
            while True:
                try:
                    request = recv_obj(sock)
                except Exception:
                    return
                try:
                    reply = self._dispatch(request)
                except Exception as exc:  # noqa: BLE001
                    reply = {"ok": False, "error": str(exc)}
                try:
                    send_obj(sock, reply)
                except OSError:
                    return

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        with self._lock:
            if op == "register":
                self._entries[request["name"]] = (request["host"], request["port"])
                return {"ok": True}
            if op == "unregister":
                self._entries.pop(request["name"], None)
                return {"ok": True}
            if op == "lookup":
                entry = self._entries.get(request["name"])
                if entry is None:
                    return {"ok": False, "error": f"unknown name {request['name']!r}"}
                return {"ok": True, "host": entry[0], "port": entry[1]}
            if op == "list":
                return {"ok": True, "names": sorted(self._entries)}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- in-process convenience -----------------------------------------------
    def entries(self) -> Dict[str, Tuple[str, int]]:
        with self._lock:
            return dict(self._entries)


class RegistryClient:
    """Client for :class:`RegistryServer`; one connection, thread-safe."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def _request(self, payload: dict) -> dict:
        with self._lock:
            try:
                if self._sock is None:
                    from repro.distributed.wire import connect_with_retry

                    self._sock = connect_with_retry(self.host, self.port,
                                                    attempts=5)
                send_obj(self._sock, payload)
                reply = recv_obj(self._sock)
            except OSError as exc:
                self._sock = None
                raise RegistryError(f"registry unreachable: {exc}") from exc
        if not reply.get("ok"):
            raise RegistryError(reply.get("error", "registry error"))
        return reply

    def register(self, name: str, host: str, port: int) -> None:
        self._request({"op": "register", "name": name, "host": host, "port": port})

    def unregister(self, name: str) -> None:
        self._request({"op": "unregister", "name": name})

    def lookup(self, name: str) -> Tuple[str, int]:
        reply = self._request({"op": "lookup", "name": name})
        return reply["host"], reply["port"]

    def list(self) -> List[str]:
        return self._request({"op": "list"})["names"]

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover
    parser = argparse.ArgumentParser(description="repro name registry")
    parser.add_argument("--port", type=int, default=5000)
    args = parser.parse_args(argv)
    server = RegistryServer(args.port).start()
    print(f"REGISTRY LISTENING {server.port}", flush=True)
    threading.Event().wait()


if __name__ == "__main__":  # pragma: no cover
    main()
