"""Wire protocol: framed messages over TCP sockets.

Two layers share the same framing:

* **channel links** (:mod:`repro.distributed.sockets`) move channel bytes
  between servers with ``DATA``/``EOF``/``SWITCH`` frames plus the
  ``LISTEN_REQ``/``LISTEN_OK`` control handshake that implements the
  paper's decentralized reconnection (section 4.3);
* **compute-server RPC** (:mod:`repro.distributed.server`) sends pickled
  request/response objects with ``OBJ`` frames.

A frame is ``1-byte tag + 4-byte big-endian length + payload``.  Payload
size is capped to catch stream corruption early.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional, Tuple

from repro.errors import ChannelError
from repro.telemetry.core import TELEMETRY as _telemetry
from repro.telemetry.distributed import (TraceContext, current_context,
                                         set_current_context)

__all__ = [
    "Tag", "send_frame", "recv_frame", "send_obj", "recv_obj",
    "read_exact", "FrameError", "open_listener", "advertised_host",
    "set_advertised_host", "connect_with_retry", "retry_delays",
]

MAX_PAYLOAD = 256 * 1024 * 1024
_HEADER = struct.Struct(">BI")


class Tag:
    """Frame type tags."""

    HELLO = 1        #: connector introduces itself on a channel link
    DATA = 2         #: channel payload bytes
    EOF = 3          #: end of channel stream (producer stopped)
    SWITCH = 4       #: producer moved; expect a replacement connection
    LISTEN_REQ = 5   #: "my end is migrating: open/confirm a listener"
    LISTEN_OK = 6    #: reply to LISTEN_REQ: payload = 2-byte port? (pickled int)
    OBJ = 7          #: pickled RPC object (compute server protocol)
    CLOSE_READ = 8   #: consumer closed its end: producer should break


#: tag value -> name, for telemetry labels and diagnostics
TAG_NAMES = {v: k for k, v in vars(Tag).items() if not k.startswith("_")}


class FrameError(ChannelError):
    """Malformed or oversized frame — the connection is unusable."""


def read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly n bytes or raise FrameError on premature close."""
    parts = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameError(
                f"connection closed mid-frame: got {n - remaining} of "
                f"{n} expected bytes ({remaining} missing)")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def send_frame(sock: socket.socket, tag: int, payload: bytes = b"") -> None:
    if len(payload) > MAX_PAYLOAD:
        raise FrameError(f"payload of {len(payload)} bytes exceeds cap")
    sock.sendall(_HEADER.pack(tag, len(payload)) + payload)
    if _telemetry.enabled:
        name = TAG_NAMES.get(tag, str(tag))
        _telemetry.inc("wire.frames_sent", 1, tag=name)
        _telemetry.inc("wire.bytes_sent", _HEADER.size + len(payload),
                       tag=name)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    header = read_exact(sock, _HEADER.size)
    tag, length = _HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise FrameError(f"incoming payload of {length} bytes exceeds cap")
    payload = read_exact(sock, length) if length else b""
    if _telemetry.enabled:
        name = TAG_NAMES.get(tag, str(tag))
        _telemetry.inc("wire.frames_received", 1, tag=name)
        _telemetry.inc("wire.bytes_received", _HEADER.size + length, tag=name)
    return tag, payload


#: envelope key carrying the trace context alongside an OBJ payload
_CTX_KEY = "__repro_trace_ctx__"


def send_obj(sock: socket.socket, obj: Any, pickler_factory=None) -> None:
    """Send a pickled object as an OBJ frame.

    ``pickler_factory(file) -> Pickler`` lets callers substitute the
    migration or source-shipping picklers.

    When telemetry is enabled and the sending thread has an active
    :class:`~repro.telemetry.distributed.TraceContext`, the object is
    wrapped in a context-header envelope so the receiver continues the
    same trace — this is what links a dispatch span on one node to the
    execute span on another in merged cluster traces.
    """
    if _telemetry.enabled:
        ctx = current_context()
        if ctx is not None:
            obj = {_CTX_KEY: ctx.to_wire(), "payload": obj}
    if pickler_factory is None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        import io

        buf = io.BytesIO()
        pickler_factory(buf).dump(obj)
        payload = buf.getvalue()
    if _telemetry.enabled:
        _telemetry.inc("wire.pickles_out")
        _telemetry.inc("wire.pickle_bytes_out", len(payload))
        _telemetry.observe("wire.pickle_size", len(payload))
    send_frame(sock, Tag.OBJ, payload)


def recv_obj(sock: socket.socket, unpickler_factory=None) -> Any:
    tag, payload = recv_frame(sock)
    if tag != Tag.OBJ:
        raise FrameError(f"expected OBJ frame, got tag {tag}")
    if _telemetry.enabled:
        _telemetry.inc("wire.pickles_in")
        _telemetry.inc("wire.pickle_bytes_in", len(payload))
    if unpickler_factory is None:
        obj = pickle.loads(payload)
    else:
        import io

        obj = unpickler_factory(io.BytesIO(payload)).load()
    if type(obj) is dict and _CTX_KEY in obj:
        # Context header: adopt the sender's trace on this thread (sticky
        # until the next envelope), then unwrap.  Unwrapping happens even
        # with telemetry off so a disabled receiver still interoperates.
        set_current_context(TraceContext.from_wire(obj[_CTX_KEY]))
        obj = obj["payload"]
    return obj


# ---------------------------------------------------------------------------
# endpoint helpers
# ---------------------------------------------------------------------------

_advertised_host = "127.0.0.1"


def advertised_host() -> str:
    """The host other servers should use to connect back to this one.

    Defaults to loopback (right for single-machine clusters and the test
    suite); multi-machine deployments call :func:`set_advertised_host`
    with an externally routable address.
    """
    return _advertised_host


def set_advertised_host(host: str) -> None:
    global _advertised_host
    _advertised_host = host


def open_listener(port: int = 0, backlog: int = 16) -> socket.socket:
    """A listening TCP socket on all interfaces; port 0 = ephemeral."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("0.0.0.0", port))
    listener.listen(backlog)
    return listener


def retry_delays(attempts: int, base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 0.4) -> list:
    """Pre-jitter backoff schedule: ``base·factor^k`` capped at ``max_delay``.

    One entry per sleep *between* attempts (``attempts - 1`` entries).
    Kept separate and deterministic so tests can assert the schedule
    without racing a socket.
    """
    return [min(base * factor ** k, max_delay)
            for k in range(max(attempts - 1, 0))]


def connect_with_retry(host: str, port: int, attempts: int = 12,
                       delay: float = 0.05,
                       timeout: Optional[float] = None,
                       max_delay: float = 0.4) -> socket.socket:
    """Connect, retrying with jittered exponential backoff.

    A peer's listener may still be starting, so the first retries come
    quickly; later retries back off exponentially (capped at
    ``max_delay``) with ±25 % jitter so a herd of reconnecting links does
    not hammer a recovering host in lockstep.  Attempt counts and the
    outcome are recorded as ``wire.connect.*`` telemetry counters.
    """
    import random
    import time

    last: Optional[Exception] = None
    schedule = retry_delays(attempts, base=delay, max_delay=max_delay)
    for attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if _telemetry.enabled:
                _telemetry.inc("wire.connect.attempts", attempt + 1)
                _telemetry.inc("wire.connect.success")
                if attempt:
                    _telemetry.inc("wire.connect.retried")
            return sock
        except OSError as exc:
            last = exc
            if attempt < len(schedule):
                time.sleep(schedule[attempt] * random.uniform(0.5, 1.0))
    if _telemetry.enabled:
        _telemetry.inc("wire.connect.attempts", attempts)
        _telemetry.inc("wire.connect.failures")
    raise ChannelError(f"cannot connect to {host}:{port}: {last}")
