"""Wire protocol: framed messages over TCP sockets.

Two layers share the same framing:

* **channel links** (:mod:`repro.distributed.sockets`) move channel bytes
  between servers with ``DATA``/``EOF``/``SWITCH`` frames plus the
  ``LISTEN_REQ``/``LISTEN_OK`` control handshake that implements the
  paper's decentralized reconnection (section 4.3);
* **compute-server RPC** (:mod:`repro.distributed.server`) sends pickled
  request/response objects with ``OBJ`` frames.

A frame is ``1-byte tag + 4-byte big-endian length + payload``.  Payload
size is capped to catch stream corruption early.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional, Tuple

from repro.errors import ChannelError
from repro.telemetry.core import TELEMETRY as _telemetry
from repro.telemetry.distributed import (TraceContext, current_context,
                                         set_current_context)

__all__ = [
    "Tag", "send_frame", "send_frame_views", "recv_frame", "FrameReader",
    "send_obj", "recv_obj", "OutOfBand", "read_exact", "FrameError", "open_listener",
    "advertised_host", "set_advertised_host", "connect_with_retry",
    "retry_delays",
]

MAX_PAYLOAD = 256 * 1024 * 1024
_HEADER = struct.Struct(">BI")
#: OBJ_OOB preamble: number of out-of-band buffers + pickle byte length
_OOB_HEAD = struct.Struct(">IQ")
_OOB_LEN = struct.Struct(">Q")


class Tag:
    """Frame type tags."""

    HELLO = 1        #: connector introduces itself on a channel link
    DATA = 2         #: channel payload bytes
    EOF = 3          #: end of channel stream (producer stopped)
    SWITCH = 4       #: producer moved; expect a replacement connection
    LISTEN_REQ = 5   #: "my end is migrating: open/confirm a listener"
    LISTEN_OK = 6    #: reply to LISTEN_REQ: payload = pickled (host, port)
                     #: tuple of the peer's reconnect listener
    OBJ = 7          #: pickled RPC object (compute server protocol)
    CLOSE_READ = 8   #: consumer closed its end: producer should break
    OBJ_OOB = 9      #: protocol-5 pickle + out-of-band PickleBuffer frames


#: tag value -> name, for telemetry labels and diagnostics
TAG_NAMES = {v: k for k, v in vars(Tag).items() if not k.startswith("_")}


class FrameError(ChannelError):
    """Malformed or oversized frame — the connection is unusable."""


def _recv_exact_into(sock: socket.socket, n: int) -> bytearray:
    """Read exactly n bytes into one preallocated buffer (no chunk joins)."""
    out = bytearray(n)
    with memoryview(out) as view:
        got = 0
        while got < n:
            r = sock.recv_into(view[got:], min(n - got, 1 << 20))
            if r == 0:
                raise FrameError(
                    f"connection closed mid-frame: got {got} of "
                    f"{n} expected bytes ({n - got} missing)")
            got += r
    return out


def read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly n bytes or raise FrameError on premature close."""
    return bytes(_recv_exact_into(sock, n))


def _sendmsg_all(sock: socket.socket, parts) -> None:
    """Send every byte of ``parts`` with scatter-gather writes.

    ``socket.sendmsg`` takes the segment list straight to ``sendmsg(2)``,
    so a frame's header and payload (and any out-of-band pickle buffers)
    go out without being concatenated into a fresh bytes object first.
    Falls back to ``sendall`` where sendmsg is unavailable (non-POSIX).
    """
    views = [memoryview(p).cast("B") for p in parts if len(p)]
    if not views:
        return
    if not hasattr(sock, "sendmsg"):
        sock.sendall(b"".join(views))
        return
    while views:
        sent = sock.sendmsg(views[:64])
        # advance past whatever the kernel accepted (may straddle views)
        while sent > 0:
            head = views[0]
            if sent >= len(head):
                sent -= len(head)
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def send_frame(sock: socket.socket, tag: int, payload: bytes = b"") -> None:
    send_frame_views(sock, tag, (payload,) if payload else ())


def send_frame_views(sock: socket.socket, tag: int, views) -> None:
    """Send one frame whose payload is the concatenation of ``views``.

    The views are handed to the kernel as-is (scatter-gather), so callers
    holding zero-copy buffer views never pay a concatenation copy; the
    receiver sees a frame indistinguishable from a ``send_frame`` of the
    joined payload.
    """
    total = sum(len(v) for v in views)
    if total > MAX_PAYLOAD:
        raise FrameError(f"payload of {total} bytes exceeds cap")
    _sendmsg_all(sock, [_HEADER.pack(tag, total), *views])
    if _telemetry.enabled:
        name = TAG_NAMES.get(tag, str(tag))
        _telemetry.inc("wire.frames_sent", 1, tag=name)
        _telemetry.inc("wire.bytes_sent", _HEADER.size + total, tag=name)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Receive one frame; the payload is bytes-like (a single-allocation
    bytearray for non-empty payloads — no per-chunk copies or joins)."""
    header = read_exact(sock, _HEADER.size)
    tag, length = _HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise FrameError(f"incoming payload of {length} bytes exceeds cap")
    payload = _recv_exact_into(sock, length) if length else b""
    if _telemetry.enabled:
        name = TAG_NAMES.get(tag, str(tag))
        _telemetry.inc("wire.frames_received", 1, tag=name)
        _telemetry.inc("wire.bytes_received", _HEADER.size + length, tag=name)
    return tag, payload


class FrameReader:
    """Buffered frame receiver: one ``recv`` can supply several frames.

    Frames whose payload is already buffered are parsed straight out of
    the read-ahead buffer (well under one syscall per frame on busy
    links); larger payloads are filled by ``recv_into`` directly into
    their own exact-size bytearray, keeping the single-copy path for bulk
    data.  Counters and error behaviour match :func:`recv_frame`.

    The reader owns every byte arriving on its socket — never mix it
    with bare :func:`recv_frame` calls on the same connection.
    """

    def __init__(self, sock: socket.socket, readahead: int = 32 * 1024) -> None:
        self.sock = sock
        #: fixed scratch; [_pos, _end) is the unparsed byte range.  Kept
        #: moderate so bulk payloads rarely land here first — they take
        #: the direct recv_into path below instead.
        self._buf = bytearray(max(readahead, _HEADER.size))
        self._pos = 0
        self._end = 0
        #: adaptive peek: after a bulk frame, the next header is received
        #: exactly so the (likely bulk) payload behind it lands straight
        #: in its own buffer instead of passing through the scratch.
        self._last_bulk = False

    def _fill(self, need: int, gulp: bool = True) -> None:
        """Grow the unparsed range to at least ``need`` bytes (need is
        tiny — a header — so at most one small compaction move)."""
        while self._end - self._pos < need:
            if len(self._buf) - self._end < need:
                # tail room exhausted: slide the leftover to the front
                self._buf[:self._end - self._pos] = self._buf[self._pos:self._end]
                self._end -= self._pos
                self._pos = 0
            stop = len(self._buf) if gulp else self._pos + need
            with memoryview(self._buf) as mv:
                got = self.sock.recv_into(mv[self._end:stop])
            if got == 0:
                have = self._end - self._pos
                raise FrameError(
                    f"connection closed mid-frame: got {have} of "
                    f"{need} expected bytes ({need - have} missing)")
            self._end += got

    def recv_frame(self) -> Tuple[int, bytes]:
        """Receive one frame; same contract as module-level ``recv_frame``."""
        self._fill(_HEADER.size, gulp=not self._last_bulk)
        tag, length = _HEADER.unpack_from(self._buf, self._pos)
        if length > MAX_PAYLOAD:
            raise FrameError(f"incoming payload of {length} bytes exceeds cap")
        self._last_bulk = length * 2 > len(self._buf)
        self._pos += _HEADER.size
        avail = self._end - self._pos
        if length == 0:
            payload = b""
        elif length <= avail:
            end = self._pos + length
            with memoryview(self._buf) as mv:
                payload = bytearray(mv[self._pos:end])
            self._pos = end
        else:
            payload = bytearray(length)
            with memoryview(payload) as dst:
                if avail:
                    with memoryview(self._buf) as src:
                        dst[:avail] = src[self._pos:self._end]
                self._pos = self._end = 0
                filled = avail
                while filled < length:
                    got = self.sock.recv_into(
                        dst[filled:], min(length - filled, 1 << 20))
                    if got == 0:
                        raise FrameError(
                            f"connection closed mid-frame: got {filled} of "
                            f"{length} expected bytes ({length - filled} missing)")
                    filled += got
        if _telemetry.enabled:
            name = TAG_NAMES.get(tag, str(tag))
            _telemetry.inc("wire.frames_received", 1, tag=name)
            _telemetry.inc("wire.bytes_received", _HEADER.size + length, tag=name)
        return tag, payload


#: envelope key carrying the trace context alongside an OBJ payload
_CTX_KEY = "__repro_trace_ctx__"


class OutOfBand:
    """Marks a bytes-like payload for out-of-band (zero-copy) transport.

    Wrapping a large blob — e.g. an already-pickled Task from
    ``dumps_shipped`` — makes :func:`send_obj` ship it as a raw
    protocol-5 ``PickleBuffer`` frame: the bytes go from the wrapper
    straight into the socket's scatter-gather send, and arrive as a
    zero-copy view into the single receive buffer, with no trip through
    the outer pickle stream on either side.  Unwrap with :attr:`data`.
    """

    __slots__ = ("data",)

    def __init__(self, data) -> None:
        self.data = data

    def __reduce_ex__(self, protocol: int):
        if protocol >= 5:
            return (OutOfBand, (pickle.PickleBuffer(self.data),))
        return (OutOfBand, (bytes(self.data),))


def _dump_oob(obj: Any, pickler_factory=None) -> Tuple[bytes, list]:
    """Pickle with protocol-5 out-of-band buffer collection.

    Returns ``(pickle_bytes, buffers)`` where ``buffers`` holds the raw
    contiguous views (``PickleBuffer.raw()``) that the pickle stream
    references by position instead of by value.  Non-contiguous buffers
    stay in-band; a ``pickler_factory`` that does not understand
    ``buffer_callback`` simply produces a fully in-band pickle.
    """
    buffers: list = []

    def _collect(pb: pickle.PickleBuffer):
        try:
            buffers.append(pb.raw())
        except BufferError:        # non-contiguous: keep it in the stream
            return True
        return None                # falsy -> serialize out-of-band

    if pickler_factory is None:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL,
                            buffer_callback=_collect), buffers

    import io

    buf = io.BytesIO()
    try:
        pickler = pickler_factory(buf, buffer_callback=_collect)
    except TypeError:              # factory predates buffer_callback
        pickler = pickler_factory(buf)
    pickler.dump(obj)
    return buf.getvalue(), buffers


def send_obj(sock: socket.socket, obj: Any, pickler_factory=None) -> None:
    """Send a pickled object as an OBJ or OBJ_OOB frame.

    ``pickler_factory(file, buffer_callback=...) -> Pickler`` lets callers
    substitute the migration or source-shipping picklers.

    Objects whose reduction yields protocol-5 ``PickleBuffer``s (numpy
    arrays, :class:`OutOfBand` wrappers) travel as an ``OBJ_OOB`` frame:
    the pickle stream references the buffers by position and the raw bytes
    ride behind it in the same frame, delivered scatter-gather — the large
    payload is never copied into the pickle stream or a concatenation.

    When telemetry is enabled and the sending thread has an active
    :class:`~repro.telemetry.distributed.TraceContext`, the object is
    wrapped in a context-header envelope so the receiver continues the
    same trace — this is what links a dispatch span on one node to the
    execute span on another in merged cluster traces.
    """
    if _telemetry.enabled:
        ctx = current_context()
        if ctx is not None:
            obj = {_CTX_KEY: ctx.to_wire(), "payload": obj}
    payload, buffers = _dump_oob(obj, pickler_factory)
    total = len(payload) + sum(len(b) for b in buffers)
    if _telemetry.enabled:
        _telemetry.inc("wire.pickles_out")
        _telemetry.inc("wire.pickle_bytes_out", total)
        _telemetry.observe("wire.pickle_size", total)
        if buffers:
            _telemetry.inc("wire.oob_buffers_out", len(buffers))
    if not buffers:
        send_frame(sock, Tag.OBJ, payload)
        return
    head = _OOB_HEAD.pack(len(buffers), len(payload))
    lens = b"".join(_OOB_LEN.pack(len(b)) for b in buffers)
    send_frame_views(sock, Tag.OBJ_OOB, [head, lens, payload, *buffers])


def recv_obj(sock: socket.socket, unpickler_factory=None) -> Any:
    tag, payload = recv_frame(sock)
    if tag not in (Tag.OBJ, Tag.OBJ_OOB):
        raise FrameError(f"expected OBJ frame, got tag {tag}")
    if _telemetry.enabled:
        _telemetry.inc("wire.pickles_in")
        _telemetry.inc("wire.pickle_bytes_in", len(payload))
    buffers = None
    if tag == Tag.OBJ_OOB:
        # One receive buffer holds pickle + raw frames; the unpickler gets
        # zero-copy views into it, so large payloads are never re-copied.
        nbufs, plen = _OOB_HEAD.unpack_from(payload, 0)
        offset = _OOB_HEAD.size + nbufs * _OOB_LEN.size
        lengths = [_OOB_LEN.unpack_from(payload, _OOB_HEAD.size + i * _OOB_LEN.size)[0]
                   for i in range(nbufs)]
        view = memoryview(payload)
        pickle_bytes = view[offset:offset + plen]
        offset += plen
        buffers = []
        for length in lengths:
            buffers.append(view[offset:offset + length])
            offset += length
        if offset != len(payload):
            raise FrameError(
                f"OBJ_OOB frame length mismatch: {offset} != {len(payload)}")
        payload = pickle_bytes
    if unpickler_factory is None:
        obj = pickle.loads(payload, buffers=buffers)
    else:
        import io

        source = io.BytesIO(payload)
        try:
            unpickler = unpickler_factory(source, buffers=buffers)
        except TypeError:
            if buffers:
                raise FrameError(
                    "OBJ_OOB frame but unpickler_factory does not accept "
                    "a buffers argument")
            unpickler = unpickler_factory(source)
        obj = unpickler.load()
    if type(obj) is dict and _CTX_KEY in obj:
        # Context header: adopt the sender's trace on this thread (sticky
        # until the next envelope), then unwrap.  Unwrapping happens even
        # with telemetry off so a disabled receiver still interoperates.
        set_current_context(TraceContext.from_wire(obj[_CTX_KEY]))
        obj = obj["payload"]
    return obj


# ---------------------------------------------------------------------------
# endpoint helpers
# ---------------------------------------------------------------------------

_advertised_host = "127.0.0.1"


def advertised_host() -> str:
    """The host other servers should use to connect back to this one.

    Defaults to loopback (right for single-machine clusters and the test
    suite); multi-machine deployments call :func:`set_advertised_host`
    with an externally routable address.
    """
    return _advertised_host


def set_advertised_host(host: str) -> None:
    global _advertised_host
    _advertised_host = host


def open_listener(port: int = 0, backlog: int = 16) -> socket.socket:
    """A listening TCP socket on all interfaces; port 0 = ephemeral."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("0.0.0.0", port))
    listener.listen(backlog)
    return listener


def retry_delays(attempts: int, base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 0.4) -> list:
    """Pre-jitter backoff schedule: ``base·factor^k`` capped at ``max_delay``.

    One entry per sleep *between* attempts (``attempts - 1`` entries).
    Kept separate and deterministic so tests can assert the schedule
    without racing a socket.
    """
    return [min(base * factor ** k, max_delay)
            for k in range(max(attempts - 1, 0))]


def connect_with_retry(host: str, port: int, attempts: int = 12,
                       delay: float = 0.05,
                       timeout: Optional[float] = None,
                       max_delay: float = 0.4) -> socket.socket:
    """Connect, retrying with jittered exponential backoff.

    A peer's listener may still be starting, so the first retries come
    quickly; later retries back off exponentially (capped at
    ``max_delay``) with ±25 % jitter so a herd of reconnecting links does
    not hammer a recovering host in lockstep.  Attempt counts and the
    outcome are recorded as ``wire.connect.*`` telemetry counters.
    """
    import random
    import time

    last: Optional[Exception] = None
    schedule = retry_delays(attempts, base=delay, max_delay=max_delay)
    for attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if _telemetry.enabled:
                _telemetry.inc("wire.connect.attempts", attempt + 1)
                _telemetry.inc("wire.connect.success")
                if attempt:
                    _telemetry.inc("wire.connect.retried")
            return sock
        except OSError as exc:
            last = exc
            if attempt < len(schedule):
                time.sleep(schedule[attempt] * random.uniform(0.5, 1.0))
    if _telemetry.enabled:
        _telemetry.inc("wire.connect.attempts", attempts)
        _telemetry.inc("wire.connect.failures")
    raise ChannelError(f"cannot connect to {host}:{port}: {last}")
