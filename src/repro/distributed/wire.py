"""Wire protocol: framed messages over TCP sockets.

Two layers share the same framing:

* **channel links** (:mod:`repro.distributed.sockets`) move channel bytes
  between servers with ``DATA``/``EOF``/``SWITCH`` frames plus the
  ``LISTEN_REQ``/``LISTEN_OK`` control handshake that implements the
  paper's decentralized reconnection (section 4.3);
* **compute-server RPC** (:mod:`repro.distributed.server`) sends pickled
  request/response objects with ``OBJ`` frames.

A frame is ``1-byte tag + 4-byte big-endian length + payload``.  Payload
size is capped to catch stream corruption early.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional, Tuple

from repro.errors import ChannelError

__all__ = [
    "Tag", "send_frame", "recv_frame", "send_obj", "recv_obj",
    "read_exact", "FrameError", "open_listener", "advertised_host",
    "set_advertised_host", "connect_with_retry",
]

MAX_PAYLOAD = 256 * 1024 * 1024
_HEADER = struct.Struct(">BI")


class Tag:
    """Frame type tags."""

    HELLO = 1        #: connector introduces itself on a channel link
    DATA = 2         #: channel payload bytes
    EOF = 3          #: end of channel stream (producer stopped)
    SWITCH = 4       #: producer moved; expect a replacement connection
    LISTEN_REQ = 5   #: "my end is migrating: open/confirm a listener"
    LISTEN_OK = 6    #: reply to LISTEN_REQ: payload = 2-byte port? (pickled int)
    OBJ = 7          #: pickled RPC object (compute server protocol)
    CLOSE_READ = 8   #: consumer closed its end: producer should break


class FrameError(ChannelError):
    """Malformed or oversized frame — the connection is unusable."""


def read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly n bytes or raise FrameError on premature close."""
    parts = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameError(f"connection closed mid-frame ({remaining} of {n} "
                             "bytes missing)")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def send_frame(sock: socket.socket, tag: int, payload: bytes = b"") -> None:
    if len(payload) > MAX_PAYLOAD:
        raise FrameError(f"payload of {len(payload)} bytes exceeds cap")
    sock.sendall(_HEADER.pack(tag, len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    header = read_exact(sock, _HEADER.size)
    tag, length = _HEADER.unpack(header)
    if length > MAX_PAYLOAD:
        raise FrameError(f"incoming payload of {length} bytes exceeds cap")
    payload = read_exact(sock, length) if length else b""
    return tag, payload


def send_obj(sock: socket.socket, obj: Any, pickler_factory=None) -> None:
    """Send a pickled object as an OBJ frame.

    ``pickler_factory(file) -> Pickler`` lets callers substitute the
    migration or source-shipping picklers.
    """
    if pickler_factory is None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        import io

        buf = io.BytesIO()
        pickler_factory(buf).dump(obj)
        payload = buf.getvalue()
    send_frame(sock, Tag.OBJ, payload)


def recv_obj(sock: socket.socket, unpickler_factory=None) -> Any:
    tag, payload = recv_frame(sock)
    if tag != Tag.OBJ:
        raise FrameError(f"expected OBJ frame, got tag {tag}")
    if unpickler_factory is None:
        return pickle.loads(payload)
    import io

    return unpickler_factory(io.BytesIO(payload)).load()


# ---------------------------------------------------------------------------
# endpoint helpers
# ---------------------------------------------------------------------------

_advertised_host = "127.0.0.1"


def advertised_host() -> str:
    """The host other servers should use to connect back to this one.

    Defaults to loopback (right for single-machine clusters and the test
    suite); multi-machine deployments call :func:`set_advertised_host`
    with an externally routable address.
    """
    return _advertised_host


def set_advertised_host(host: str) -> None:
    global _advertised_host
    _advertised_host = host


def open_listener(port: int = 0, backlog: int = 16) -> socket.socket:
    """A listening TCP socket on all interfaces; port 0 = ephemeral."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("0.0.0.0", port))
    listener.listen(backlog)
    return listener


def connect_with_retry(host: str, port: int, attempts: int = 40,
                       delay: float = 0.05,
                       timeout: Optional[float] = None) -> socket.socket:
    """Connect, retrying briefly — a peer's listener may still be starting."""
    import time

    last: Optional[Exception] = None
    for _ in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise ChannelError(f"cannot connect to {host}:{port}: {last}")
