"""Code shipping: classes travel with the data (paper section 6.2).

The paper's future-work answer to "the compiled class files for the
application must be available on the local file system of each server" is
to "include the Java bytecode directly in the class annotation ... the
distribution of code is now just as scalable as the distribution of data".
Python's equivalent is shipping *source*: the
:class:`SourceShippingPickler` embeds the source text of classes and
module-level functions that the receiving interpreter cannot import (most
importantly anything defined in ``__main__`` — the normal home of
user-written Task classes), and the receiving side ``exec``-utes it into a
cached synthetic module.

Round-tripping works: a shipped class remembers its origin
(``__shipped_source__``), so results built from shipped classes serialize
back to the client by source again.

Limitations (documented, enforced with clear errors): lambdas and
closures cannot ship (no retrievable standalone source); shipped source
must be self-contained up to its imports.
"""

from __future__ import annotations

import hashlib
import inspect
import io
import pickle
import sys
import textwrap
import types
from typing import Any, Callable, Dict, Optional, Set

from repro.errors import MigrationError
from repro.kpn.process import Process
from repro.distributed.migration import MigrationPickler

__all__ = ["SourceShippingPickler", "dumps_shipped", "loads_shipped",
           "shippable", "register_ship_module"]

#: modules whose definitions always ship by source (besides __main__)
_ship_modules: Set[str] = set()
#: classes/functions explicitly opted in
_shippable: Set[int] = set()
#: remote-side cache: source hash → synthetic module
_loaded_modules: Dict[str, types.ModuleType] = {}


def register_ship_module(module_name: str) -> None:
    """Ship every class/function from ``module_name`` by source."""
    _ship_modules.add(module_name)


def shippable(obj):
    """Decorator marking a class or function for source shipping."""
    _shippable.add(id(obj))
    return obj


def _should_ship(defn) -> bool:
    module = getattr(defn, "__module__", None)
    if module is None:
        return False
    if hasattr(defn, "__shipped_source__"):
        return True  # arrived by source: must return by source
    if id(defn) in _shippable:
        return True
    if module == "__main__" or module in _ship_modules:
        return True
    # pytest rewrites test modules in ways that survive import on the
    # same machine, so tests module classes resolve normally.
    return False


def _get_source(defn) -> str:
    shipped = getattr(defn, "__shipped_source__", None)
    if shipped is not None:
        return shipped
    try:
        return textwrap.dedent(inspect.getsource(defn))
    except (OSError, TypeError) as exc:
        raise MigrationError(
            f"cannot ship {defn!r}: source unavailable ({exc}); lambdas and "
            "REPL-defined objects cannot migrate — define them in a file or "
            "install the module on the servers") from exc


def _library_namespace() -> dict:
    """Names pre-seeded into shipped-source modules.

    ``inspect.getsource`` captures a definition's text but not its
    module's imports, so a shipped class referencing library names
    (``IterativeProcess``, codecs, Task helpers) would not resolve.  We
    seed the synthetic module with the library's public API — the names a
    user-defined process or task legitimately leans on.  References to
    *other* globals must be imported inside method bodies (documented in
    docs/extending.md).
    """
    namespace: dict = {}
    import repro
    import repro.kpn as _kpn
    import repro.parallel as _parallel
    import repro.processes as _processes
    import repro.processes.codecs as _codecs

    for module in (_kpn, _processes, _parallel, _codecs):
        for name in getattr(module, "__all__", []):
            namespace.setdefault(name, getattr(module, name))
    namespace["repro"] = repro
    # the innocuous stdlib modules user task/process code leans on most
    import collections
    import itertools
    import json
    import math
    import random
    import struct
    import time
    import zlib

    namespace.update(collections=collections, itertools=itertools, json=json,
                     math=math, random=random, struct=struct, time=time,
                     zlib=zlib)
    return namespace


def _exec_source(source: str) -> types.ModuleType:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    cached = _loaded_modules.get(digest)
    if cached is not None:
        return cached
    module = types.ModuleType(f"repro._shipped_{digest}")
    module.__dict__["__builtins__"] = __builtins__
    module.__dict__.update(_library_namespace())
    # inspect.getsource keeps decorator lines, so the @shippable marker
    # must resolve inside the synthetic module too (it is idempotent).
    module.__dict__["shippable"] = shippable
    sys.modules[module.__name__] = module
    exec(compile(source, f"<shipped:{digest}>", "exec"), module.__dict__)
    _loaded_modules[digest] = module
    return module


# -- rebuild functions (referenced from pickles by name) ---------------------

def _rebuild_shipped_class(source: str, name: str) -> type:
    module = _exec_source(source)
    cls = getattr(module, name)
    cls.__shipped_source__ = source
    return cls


def _rebuild_shipped_instance(source: str, name: str):
    cls = _rebuild_shipped_class(source, name)
    return cls.__new__(cls)


def _rebuild_shipped_function(source: str, name: str):
    module = _exec_source(source)
    fn = getattr(module, name)
    fn.__shipped_source__ = source
    return fn


class SourceShippingPickler(MigrationPickler):
    """Migration pickler that additionally ships code by source.

    Handles, beyond channel plumbing:

    * instances of classes the remote cannot import → rebuilt from source
      (state applied via the normal ``__setstate__`` path);
    * the classes themselves (when pickled as objects);
    * module-level functions (e.g. a plain function passed to
      ``MapProcess``).
    """

    def __init__(self, file, process: Optional[Process] = None,
                 protocol: int = pickle.HIGHEST_PROTOCOL,
                 buffer_callback=None) -> None:
        # A dummy process makes channel classification trivially "no owned
        # endpoints" when shipping plain tasks rather than processes.
        super().__init__(file, process or Process(name="no-endpoints"),
                         protocol=protocol, buffer_callback=buffer_callback)

    def reducer_override(self, obj: Any):
        reduced = super().reducer_override(obj)
        if reduced is not NotImplemented:
            return reduced
        if isinstance(obj, type) and _should_ship(obj):
            return (_rebuild_shipped_class,
                    (_get_source(obj), obj.__name__))
        if isinstance(obj, types.FunctionType) and _should_ship(obj):
            if obj.__name__ == "<lambda>":
                raise MigrationError(
                    "lambdas cannot migrate between servers; use a named "
                    "module-level function")
            if obj.__closure__:
                raise MigrationError(
                    f"closure {obj.__name__!r} cannot migrate; use a "
                    "module-level function or a class with state")
            return (_rebuild_shipped_function,
                    (_get_source(obj), obj.__name__))
        cls = type(obj)
        if not isinstance(obj, type) and _should_ship(cls) \
                and not isinstance(obj, types.ModuleType):
            state = obj.__getstate__() if hasattr(obj, "__getstate__") \
                else getattr(obj, "__dict__", {})
            return (_rebuild_shipped_instance,
                    (_get_source(cls), cls.__name__), state)
        return NotImplemented


def dumps_shipped(obj: Any, process: Optional[Process] = None) -> bytes:
    """Serialize with both migration plumbing and source shipping.

    When ``obj`` is itself a process (or composite), it defines the
    channel-ownership boundary for migration; otherwise ``process`` may
    name the owning process explicitly (rarely needed for plain tasks).
    """
    if process is None and isinstance(obj, Process):
        process = obj
    buf = io.BytesIO()
    pickler = SourceShippingPickler(buf, process)
    pickler.dump(obj)
    for action in pickler.post_actions:
        action()
    return buf.getvalue()


def loads_shipped(data: bytes, network=None) -> Any:
    """Counterpart of :func:`dumps_shipped` (alias of migration loads)."""
    from repro.distributed.migration import loads_migration

    return loads_migration(data, network=network)
