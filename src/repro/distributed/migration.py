"""Serialization-driven migration (paper section 4.2).

"Rather than burdening the programmer with the responsibility of
performing this replacement, we have made this chore completely invisible
and automatic by taking advantage of several features of Java Object
Serialization."  Python's pickle offers the same hook points; this module
implements them with a custom :class:`MigrationPickler` whose
``reducer_override`` plays the role of ``writeObject``/``writeReplace``,
and module-level rebuild functions playing ``readObject``/``readResolve``.

Pickling a process (or composite) for shipment classifies every channel it
touches:

* **internal** — both endpoints belong to the migrating subgraph: the
  channel is rebuilt whole on the destination, carrying any buffered
  bytes with it;
* **output boundary** — the producer moves, the consumer stays: a
  :class:`~repro.distributed.sockets.ReceiverPump` is installed locally
  (feeding the consumer's existing buffer) and the serialized endpoint
  rebuilds as a remote-connected output on the destination;
* **input boundary** — the consumer moves, the producer stays: a
  :class:`~repro.distributed.sockets.SenderPump` is installed locally
  (draining the producer's existing buffer) and the serialized endpoint
  rebuilds as a remote-connected input;
* **re-migration** — the endpoint is already remote: the peer is asked to
  accept a reconnection (``LISTEN_REQ`` handshake) and the new server
  dials it *directly*, reproducing the decentralized communication of
  Figure 15 — traffic never relays through the origin server.

Use :func:`dumps_migration` / :func:`loads_migration`; the compute server
wires them into its RPC layer so ``client.run(process)`` just works.
"""

from __future__ import annotations

import contextvars
import io
import pickle
from contextlib import contextmanager
from typing import Any, Callable, List, Optional, Set

from repro.errors import MigrationError
from repro.kpn.buffers import BoundedByteBuffer
from repro.kpn.channel import Channel, ChannelInputStream, ChannelOutputStream
from repro.kpn.network import Network
from repro.kpn.process import CompositeProcess, Process
from repro.distributed.sockets import ReceiverPump, SenderPump

__all__ = ["MigrationPickler", "dumps_migration", "loads_migration",
           "import_network", "owned_endpoints", "migrate_live"]

#: network adopted by channels rebuilt during unpickling
_import_network: contextvars.ContextVar[Optional[Network]] = contextvars.ContextVar(
    "repro_import_network", default=None)


@contextmanager
def import_network(network: Optional[Network]):
    """While active, migrated channels register with ``network``."""
    token = _import_network.set(network)
    try:
        yield network
    finally:
        _import_network.reset(token)


def _current_network() -> Optional[Network]:
    return _import_network.get()


def _make_channel(name: str, capacity: int) -> Channel:
    net = _current_network()
    if net is not None:
        return net.channel(capacity, name=name)
    return Channel(capacity, name=name)


def _preload(ch: Channel, data: bytes) -> None:
    if not data:
        return
    if len(data) > ch.buffer.capacity:
        ch.buffer.grow(len(data))
    ch.buffer.write(data)


# ---------------------------------------------------------------------------
# rebuild functions (the ``readResolve`` side; must stay module-level and
# backwards compatible — they are referenced by name inside pickles)
# ---------------------------------------------------------------------------

def _rebuild_channel(name: str, capacity: int, data: bytes) -> Channel:
    ch = _make_channel(name, capacity)
    _preload(ch, data)
    return ch


def _channel_output(ch: Channel) -> ChannelOutputStream:
    return ch.get_output_stream()


def _channel_input(ch: Channel) -> ChannelInputStream:
    return ch.get_input_stream()


def _rebuild_remote_output(host: str, port: int, capacity: int, name: str,
                           link_chunk: Optional[int] = None,
                           coalesce: Optional[int] = None) -> ChannelOutputStream:
    ch = _make_channel(name, capacity)
    pump = SenderPump(ch.buffer, connect=(host, port), name=name,
                      chunk=link_chunk, coalesce=coalesce).start()
    ch.sender_pump = pump
    return ch.get_output_stream()


def _rebuild_remote_input(host: str, port: int, capacity: int, name: str,
                          preload: bytes) -> ChannelInputStream:
    ch = _make_channel(name, capacity)
    _preload(ch, preload)
    pump = ReceiverPump(ch.buffer, connect=(host, port), name=name).start()
    ch.receiver_pump = pump
    return ch.get_input_stream()


# ---------------------------------------------------------------------------
# ownership analysis
# ---------------------------------------------------------------------------

def owned_endpoints(process: Process) -> Set[int]:
    """Identity set of every channel endpoint the subgraph owns.

    Ownership = appearing in a member process's tracked stream lists,
    which the library maintains precisely (handoffs call ``untrack``).
    """
    members: List[Process] = [process]
    if isinstance(process, CompositeProcess):
        members.extend(process.flatten())
    owned: Set[int] = set()
    for m in members:
        for s in (*m.input_streams, *m.output_streams):
            owned.add(id(s))
    return owned


# ---------------------------------------------------------------------------
# the pickler
# ---------------------------------------------------------------------------

class MigrationPickler(pickle.Pickler):
    """Pickler that swaps channel endpoints for network plumbing.

    Side effects happen *during* ``dump`` (listeners open, peers are asked
    to accept reconnections); :attr:`post_actions` collects finalizers
    that must run once the pickled bytes have actually been handed off
    (e.g. closing the write side of a buffer whose producer migrated).
    """

    def __init__(self, file, process: Process,
                 protocol: int = pickle.HIGHEST_PROTOCOL,
                 buffer_callback=None) -> None:
        super().__init__(file, protocol=protocol,
                         buffer_callback=buffer_callback)
        self._owned = owned_endpoints(process)
        self.post_actions: List[Callable[[], None]] = []

    # -- classification helpers ------------------------------------------
    def _is_internal(self, ch: Channel) -> bool:
        out_ep = ch._output
        in_ep = ch._input
        return (out_ep is not None and id(out_ep) in self._owned
                and in_ep is not None and id(in_ep) in self._owned)

    # -- the hook -----------------------------------------------------------
    def reducer_override(self, obj: Any):
        if isinstance(obj, ChannelOutputStream):
            return self._reduce_output(obj)
        if isinstance(obj, ChannelInputStream):
            return self._reduce_input(obj)
        if isinstance(obj, Channel):
            return self._reduce_channel(obj)
        if isinstance(obj, BoundedByteBuffer):
            raise MigrationError(
                f"raw channel buffer {obj.name!r} reached the pickler; "
                "processes must reference channels only through their "
                "endpoint streams")
        return NotImplemented

    def _reduce_channel(self, ch: Channel):
        if not self._is_internal(ch):
            raise MigrationError(
                f"process holds a direct reference to boundary channel "
                f"{ch.name!r}; hold endpoint streams instead")
        data = ch.buffer.drain()
        return (_rebuild_channel, (ch.name, ch.capacity, data))

    def _reduce_output(self, out: ChannelOutputStream):
        ch = out.channel
        if self._is_internal(ch):
            return (_channel_output, (ch,))
        sender: Optional[SenderPump] = getattr(ch, "sender_pump", None)
        if sender is not None:
            # Re-migration of the producer end (Figure 15): the consumer's
            # server opens a listener; the new producer will dial it
            # directly.  Our residual bytes flush, then SWITCH.
            host, port = sender.begin_migration()
            self.post_actions.append(sender.finish_migration)
            return (_rebuild_remote_output,
                    (host, port, ch.capacity, ch.name,
                     getattr(ch, "link_chunk", None),
                     getattr(ch, "coalesce", None)))
        # First migration of the producer end: the consumer stays here;
        # install a receiver pump feeding the consumer's existing buffer.
        pump = ReceiverPump(ch.buffer, name=ch.name)
        host, port = pump.ensure_listener()
        ch.receiver_pump = pump
        self.post_actions.append(pump.start)
        return (_rebuild_remote_output,
                (host, port, ch.capacity, ch.name,
                 getattr(ch, "link_chunk", None),
                 getattr(ch, "coalesce", None)))

    def _reduce_input(self, inp: ChannelInputStream):
        if inp.detached:
            raise MigrationError(
                "cannot migrate a spliced-away (detached) channel input")
        ch = inp.channel
        if inp.sequence.current is None or len(inp.sequence._streams) > 1:
            raise MigrationError(
                f"channel {ch.name!r} input has spliced segments; migrate "
                "before or after reconfiguration, not mid-splice")
        if self._is_internal(ch):
            return (_channel_input, (ch,))
        receiver: Optional[ReceiverPump] = getattr(ch, "receiver_pump", None)
        if receiver is not None:
            # Re-migration of the consumer end: producer side accepts a
            # reconnect; unconsumed local bytes travel in the pickle.
            host, port = receiver.begin_migration()
            drained = receiver.detach_and_drain()
            return (_rebuild_remote_input,
                    (host, port, ch.capacity, ch.name, drained))
        # First migration of the consumer end: producer stays; install a
        # sender pump draining the producer's existing buffer.
        pump = SenderPump(ch.buffer, name=ch.name,
                          chunk=getattr(ch, "link_chunk", None),
                          coalesce=getattr(ch, "coalesce", None))
        host, port = pump.ensure_listener()
        ch.sender_pump = pump
        self.post_actions.append(pump.start)
        return (_rebuild_remote_input, (host, port, ch.capacity, ch.name, b""))


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def dumps_migration(process: Process) -> bytes:
    """Serialize a process/composite for shipment to another server.

    All boundary plumbing (listeners, pumps) is installed on this side as
    a side effect, exactly as Java serialization triggers the paper's
    ``writeObject`` connection setup.
    """
    buf = io.BytesIO()
    pickler = MigrationPickler(buf, process)
    pickler.dump(process)
    for action in pickler.post_actions:
        action()
    return buf.getvalue()


def migrate_live(process: Process, client, timeout: float = 10.0) -> None:
    """Move a *running* process to a compute server (paper section 6.1).

    "One focus of our future work is making it possible to re-distribute
    processes after execution has already begun" — this is that feature:

    1. ask the process to pause at its next step boundary (it holds no
       partial element there, so channel state is consistent);
    2. serialize and ship it — unconsumed input bytes travel via the
       normal migration plumbing, its progress counter travels in its
       state, and ``on_start`` is marked already-run;
    3. tell the parked local thread to abandon (exit *without* closing
       the streams, which now belong to the remote copy).

    Raises :class:`~repro.errors.MigrationError` if the process does not
    reach a step boundary within ``timeout`` — typically because it is
    blocked in a channel operation awaiting traffic; migration will
    succeed once data flows, so callers may retry.

    ``client`` is a :class:`~repro.distributed.server.ServerClient`.
    Only step-structured processes (IterativeProcess subclasses) support
    live migration; composites must be moved before starting.
    """
    ctrl = process.control()
    ctrl.request_pause()
    if not ctrl.wait_parked(timeout):
        ctrl.resume()
        raise MigrationError(
            f"{process.name} did not reach a step boundary within "
            f"{timeout}s (blocked in a channel operation?)")
    try:
        process._live_migrated = True
        client.run(process)
    except Exception:
        process._live_migrated = False
        ctrl.resume()
        raise
    ctrl.abandon()


def loads_migration(data: bytes, network: Optional[Network] = None,
                    buffers=None) -> Any:
    """Deserialize a migrated process, attaching channels to ``network``.

    Remote connections back to the origin server are established during
    unpickling (the ``readResolve`` side of the paper's scheme).
    ``buffers`` forwards protocol-5 out-of-band buffers collected when the
    object was dumped with a ``buffer_callback``.
    """
    with import_network(network):
        obj = pickle.loads(data, buffers=buffers or ())
    if network is not None and isinstance(obj, Process):
        obj.network = network
        if isinstance(obj, CompositeProcess):
            for member in obj.processes:
                member.network = network
    return obj
