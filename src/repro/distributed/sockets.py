"""Socket transport for channels that span servers (paper sections 4.2–4.3).

When a process migrates, the in-memory pipe under its channel is replaced
by a TCP link with one *pump* thread at each end:

* :class:`SenderPump` runs on the **producer's** host: it reads bytes from
  the channel's local buffer and sends them as ``DATA`` frames, so the
  producer process keeps writing to a perfectly ordinary local stream.
* :class:`ReceiverPump` runs on the **consumer's** host: it receives
  frames and writes the bytes into a local buffer the consumer reads from
  — so Kahn blocking reads, bounded capacities, and backpressure (bounded
  buffer → blocked pump → TCP flow control → blocked sender → full buffer
  → blocked producer) all survive distribution unchanged.

Termination cascades cross the network in both directions (section 3.4:
"These exceptions even propagate across network connections"):

* producer stops → ``EOF`` frame → consumer-side buffer write-closed →
  consumer drains then sees end of stream;
* consumer stops → consumer-side buffer read-closed → ``CLOSE_READ``
  frame → producer-side buffer read-closed → producer's next write raises.

Re-migration (the decentralized reconnection of Figure 15) uses the
``LISTEN_REQ``/``LISTEN_OK`` handshake: the end that is about to move asks
its *peer* to (re)open a listener; the peer replies with its advertised
address; the migrated end connects there directly — the origin server
drops out of the path entirely once its residual bytes are flushed
(``SWITCH`` frame marks the hand-off point, preserving FIFO order exactly
like the paper's RedirectedInputStream + SequenceInputStream).
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import threading
from typing import Optional, Tuple

from repro.errors import BrokenChannelError, ChannelError, MigrationError
from repro.kpn.buffers import BoundedByteBuffer
from repro.telemetry.core import TELEMETRY as _telemetry
from repro.distributed.wire import (FrameError, FrameReader, Tag,
                                    advertised_host, connect_with_retry,
                                    open_listener, recv_frame, send_frame,
                                    send_frame_views)

__all__ = ["SenderPump", "ReceiverPump", "LINK_CHUNK", "COALESCE_WATERMARK",
           "LINK_SOCKBUF"]


def _env_bytes(name: str, default: int) -> int:
    """Integer byte-count from the environment, falling back on nonsense."""
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


#: bytes read from the local buffer per pump read
#: (override: env ``REPRO_LINK_CHUNK`` or the pump's ``chunk`` argument)
LINK_CHUNK = _env_bytes("REPRO_LINK_CHUNK", 64 * 1024)

#: coalescing watermark: maximum payload bytes packed into one DATA frame.
#: The sender never *waits* for this much — it sends whatever one blocking
#: read returned plus anything already buffered, so latency is unaffected
#: while back-to-back small writes share one frame.  0 disables
#: coalescing (one buffer read per frame, the pre-coalescing behaviour).
#: Override: env ``REPRO_COALESCE_WATERMARK`` or the pump's ``coalesce``
#: argument.
COALESCE_WATERMARK = _env_bytes("REPRO_COALESCE_WATERMARK", 4 * LINK_CHUNK)

#: cap on memoryview segments per coalesced frame (stays well under any
#: platform's IOV_MAX for the scatter-gather sendmsg)
_MAX_SEGMENTS = 64

#: upper bound on bytes drained per DATA frame from very large channels
#: (keeps a single frame far below the wire-level payload cap)
_MAX_DRAIN = 8 * 1024 * 1024

#: kernel send/receive buffer size requested for link sockets.  Generous
#: in-kernel buffering lets each pump run longer bursts before blocking,
#: which matters most when producer, pumps, and consumer share few cores.
#: Override: env ``REPRO_LINK_SOCKBUF``; 0 keeps the system default.
LINK_SOCKBUF = _env_bytes("REPRO_LINK_SOCKBUF", 1 << 20)


def _tune_link_socket(sock: socket.socket) -> None:
    """Apply the data-plane socket options to a freshly made link socket."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    if LINK_SOCKBUF:
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, LINK_SOCKBUF)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, LINK_SOCKBUF)
        except OSError:  # pragma: no cover - platform-dependent limits
            pass


class _LinkBase:
    """State shared by both pump kinds: socket, listener, control queue."""

    def __init__(self, buffer: BoundedByteBuffer, name: str = "") -> None:
        self.buffer = buffer
        self.name = name or buffer.name
        self.sock: Optional[socket.socket] = None
        self.listener: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._listen_ok: "queue.Queue[Tuple[str, int]]" = queue.Queue()
        self._closed = threading.Event()
        self.failure: Optional[Exception] = None

    # -- listener management -------------------------------------------------
    def ensure_listener(self) -> Tuple[str, int]:
        """Open (or reuse) this end's listener; return (host, port)."""
        if self.listener is None:
            self.listener = open_listener()
        return advertised_host(), self.listener.getsockname()[1]

    def accept(self, timeout: float = 60.0) -> socket.socket:
        if self.listener is None:
            raise ChannelError(f"link {self.name!r} has no listener")
        self.listener.settimeout(timeout)
        sock, _ = self.listener.accept()
        sock.settimeout(None)  # accepted sockets must block indefinitely
        _tune_link_socket(sock)
        return sock

    def _send(self, tag: int, payload: bytes = b"") -> None:
        with self._send_lock:
            if self.sock is None:
                raise ChannelError(f"link {self.name!r} not connected")
            send_frame(self.sock, tag, payload)

    # -- migration handshake -------------------------------------------------
    def request_peer_listener(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Ask the peer to open a listener; returns its (host, port).

        Called by the migration pickler on the end that is about to move.
        The reply arrives through this end's frame-reading thread and is
        handed over via a queue.
        """
        self._send(Tag.LISTEN_REQ)
        try:
            return self._listen_ok.get(timeout=timeout)
        except queue.Empty:
            raise MigrationError(
                f"peer of link {self.name!r} did not answer LISTEN_REQ")

    def _handle_listen_req(self) -> None:
        host, port = self.ensure_listener()
        self._send(Tag.LISTEN_OK, pickle.dumps((host, port)))

    def _handle_listen_ok(self, payload: bytes) -> None:
        self._listen_ok.put(pickle.loads(payload))

    def close(self) -> None:
        self._closed.set()
        for s in (self.sock, self.listener):
            if s is not None:
                _shutdown_and_close(s)


def _shutdown_and_close(sock: socket.socket) -> None:
    """Shutdown *then* close.

    ``close()`` alone does not interrupt a recv blocked in another thread
    and may defer the FIN until the fd's last reference drops — the peer
    would then keep writing into a dead connection.  ``shutdown`` sends
    the FIN immediately and wakes blocked readers on both ends.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class SenderPump(_LinkBase):
    """Producer-side pump: local buffer → DATA frames.

    Two threads: the *sender* moves data; the *control reader* watches the
    reverse direction for ``CLOSE_READ`` (consumer terminated — break the
    producer) and the migration handshake frames.

    Parameters
    ----------
    buffer:
        The channel buffer the local producer writes into.
    connect:
        ``(host, port)`` of the consumer-side listener, or None to listen
        locally and wait for the consumer to connect (the mode used when
        the *input* end migrated away and will call back).
    chunk:
        Bytes per buffer read (default :data:`LINK_CHUNK`).
    coalesce:
        Watermark in bytes up to which consecutive buffer reads are packed
        into a single DATA frame (default :data:`COALESCE_WATERMARK`;
        0 disables coalescing).
    """

    def __init__(self, buffer: BoundedByteBuffer, connect: Optional[Tuple[str, int]] = None,
                 name: str = "", chunk: Optional[int] = None,
                 coalesce: Optional[int] = None) -> None:
        super().__init__(buffer, name=name)
        self.chunk = chunk if chunk else LINK_CHUNK
        self.coalesce = COALESCE_WATERMARK if coalesce is None else coalesce
        self._connect_to = connect
        #: set by the migration pickler: the producer has moved away; after
        #: draining residual bytes send SWITCH instead of EOF.
        self.migrating = False
        #: consumer is reconnecting; accept a replacement socket.
        self._expect_reaccept = threading.Event()
        self._thread = threading.Thread(target=self._run, name=f"send-{self.name}",
                                        daemon=True)
        self._control_thread: Optional[threading.Thread] = None

    def start(self) -> "SenderPump":
        self._thread.start()
        return self

    # -- main data loop ------------------------------------------------------
    def _run(self) -> None:
        try:
            if self._connect_to is not None:
                self.sock = connect_with_retry(*self._connect_to)
                _tune_link_socket(self.sock)
            else:
                self.ensure_listener()
                self.sock = self.accept()
            self._start_control()
            while True:
                try:
                    views = self._gather()
                except BrokenChannelError:
                    # the local producer *aborted* (cascade close).  The
                    # abort classification is a local scheduling detail;
                    # on the wire the stream simply ends, so the remote
                    # reader sees the same EOF it always did.
                    self._send(Tag.EOF)
                    break
                except ChannelError:
                    # our read side was closed (CLOSE_READ relayed): stop
                    break
                if views is None:
                    self._send(Tag.SWITCH if self.migrating else Tag.EOF)
                    break
                self._send_data(views)
        except Exception as exc:  # noqa: BLE001
            self.failure = exc
            self.buffer.close_read()  # break the local producer
        finally:
            if not self._expect_reaccept.is_set():
                self.close()

    def _gather(self) -> Optional[list]:
        """One blocking drain plus adaptive coalescing.

        Blocks for the first view; then — without ever waiting — keeps
        taking bytes that are *already* buffered until the watermark (or
        the segment cap) is reached, so a burst of small producer writes
        becomes one DATA frame instead of many.  Returns a list of
        zero-copy views, or None at end of stream.
        """
        # Draining at least the ring's whole capacity means the take always
        # covers everything buffered, so the buffer's storage-stealing path
        # applies and the drain is zero-copy.  drain_up_to never waits for
        # that much — the frame is whatever is buffered right now — so
        # latency is unaffected; large-capacity channels simply ship
        # proportionally larger frames.
        limit = max(self.chunk, min(self.buffer.capacity, _MAX_DRAIN))
        first = self.buffer.drain_up_to(limit)
        if len(first) == 0:
            return None
        views = [first]
        if self.coalesce:
            total = len(first)
            while total < self.coalesce and len(views) < _MAX_SEGMENTS:
                more = self.buffer.read_available(
                    min(limit, self.coalesce - total))
                if len(more) == 0:
                    break
                views.append(more)
                total += len(more)
        return views

    def _send_data(self, views: list) -> None:
        import time

        deadline = time.monotonic() + 120.0
        while True:
            # During a consumer hand-off (LISTEN_REQ seen, replacement not
            # yet connected) data must not be written to the doomed socket
            # — it would be silently lost in the kernel buffer.  The same
            # applies while the control thread is mid-swap (sock None).
            if self._expect_reaccept.is_set() or self.sock is None:
                if time.monotonic() > deadline:
                    raise ChannelError(
                        f"link {self.name!r}: consumer never reconnected")
                time.sleep(0.005)
                continue
            try:
                with self._send_lock:
                    sock = self.sock
                    if sock is None:
                        continue
                    send_frame_views(sock, Tag.DATA, views)
                if _telemetry.enabled:
                    _telemetry.inc("link.chunks_out", 1, link=self.name)
                    _telemetry.inc("link.bytes_out",
                                   sum(len(v) for v in views), link=self.name)
                return
            except OSError:
                # Socket replaced mid-migration: retry on the new one.
                # The views own their storage, so a full resend is safe.
                if self._expect_reaccept.is_set() or self.sock is None:
                    continue
                raise

    # -- control channel -------------------------------------------------------
    def _start_control(self) -> None:
        self._control_thread = threading.Thread(
            target=self._control_loop, name=f"send-ctl-{self.name}", daemon=True)
        self._control_thread.start()

    def _control_loop(self) -> None:
        while not self._closed.is_set():
            sock = self.sock
            if sock is None:
                return
            try:
                tag, payload = recv_frame(sock)
            except (FrameError, OSError):
                if self._expect_reaccept.is_set():
                    try:
                        self._reaccept()
                        continue
                    except Exception as exc:  # noqa: BLE001
                        self.failure = exc
                return
            if tag == Tag.CLOSE_READ:
                # Consumer terminated: propagate the broken pipe to the
                # local producer (cross-network cascading termination).
                self.buffer.close_read()
            elif tag == Tag.LISTEN_REQ:
                # Our consumer is migrating; it will reconnect here.
                self._expect_reaccept.set()
                self._handle_listen_req()
            elif tag == Tag.LISTEN_OK:
                self._handle_listen_ok(payload)

    def _reaccept(self) -> None:
        with self._send_lock:
            old = self.sock
            self.sock = None
        if old is not None:
            _shutdown_and_close(old)
        new = self.accept()
        with self._send_lock:
            self.sock = new
        self._expect_reaccept.clear()

    # -- migration hooks --------------------------------------------------------
    def begin_migration(self) -> Tuple[str, int]:
        """Producer end is moving: get the consumer to listen for the new
        producer, then mark this pump for drain-and-SWITCH."""
        host, port = self.request_peer_listener()
        self.migrating = True
        return host, port

    def finish_migration(self) -> None:
        """Called after pickling succeeds: no more local writes will come."""
        self.buffer.close_write()


class ReceiverPump(_LinkBase):
    """Consumer-side pump: frames → local buffer.

    One thread suffices: all inbound traffic (data *and* control) arrives
    on the same socket direction.
    """

    def __init__(self, buffer: BoundedByteBuffer, connect: Optional[Tuple[str, int]] = None,
                 name: str = "") -> None:
        super().__init__(buffer, name=name)
        self._connect_to = connect
        self._pending_switch = False
        self._detached = threading.Event()
        self._thread = threading.Thread(target=self._run, name=f"recv-{self.name}",
                                        daemon=True)

    def start(self) -> "ReceiverPump":
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            if self._connect_to is not None:
                self.sock = connect_with_retry(*self._connect_to)
                _tune_link_socket(self.sock)
            else:
                self.ensure_listener()
                self.sock = self.accept()
            # buffered reader: one recv can supply several DATA frames
            reader = FrameReader(self.sock)
            while not self._detached.is_set():
                try:
                    tag, payload = reader.recv_frame()
                except (FrameError, OSError):
                    if self._detached.is_set():
                        return
                    # Producer host vanished: treat as end of stream so the
                    # consumer drains what it has and terminates cleanly.
                    self.buffer.close_write()
                    return
                if tag == Tag.DATA:
                    if _telemetry.enabled:
                        _telemetry.inc("link.chunks_in", 1, link=self.name)
                        _telemetry.inc("link.bytes_in", len(payload),
                                       link=self.name)
                    try:
                        # recv_frame hands over a fresh bytearray; the ring
                        # adopts it wholesale when empty (no copy).
                        self.buffer.write_donate(payload)
                    except BrokenChannelError:
                        # Local consumer terminated: tell the producer side
                        # so its writes start failing too.
                        try:
                            self._send(Tag.CLOSE_READ)
                        except (ChannelError, OSError):
                            pass
                        return
                elif tag == Tag.EOF:
                    self.buffer.close_write()
                    return
                elif tag == Tag.SWITCH:
                    # Producer moved servers: its replacement connects to
                    # our listener (created during LISTEN_REQ).  Residual
                    # bytes all arrived before SWITCH, so FIFO holds.
                    old = self.sock
                    self.sock = None
                    _shutdown_and_close(old)
                    new = self.accept()
                    with self._send_lock:
                        self.sock = new
                    reader = FrameReader(new)
                elif tag == Tag.LISTEN_REQ:
                    self._handle_listen_req()
                elif tag == Tag.LISTEN_OK:
                    self._handle_listen_ok(payload)
        except Exception as exc:  # noqa: BLE001
            self.failure = exc
            self.buffer.close_write()
        finally:
            if not self._detached.is_set():
                self.close()

    # -- migration hooks --------------------------------------------------------
    def begin_migration(self) -> Tuple[str, int]:
        """Consumer end is moving: ask the producer side to take a
        reconnect; returns the address the new consumer should dial."""
        host, port = self.request_peer_listener()
        return host, port

    def detach_and_drain(self) -> bytes:
        """Stop pumping and hand back locally buffered, unconsumed bytes.

        The paper's rule for reconfiguration — "data elements are neither
        lost nor repeated" — applied to migration: whatever reached this
        host but was not yet consumed travels inside the serialized
        stream state and is preloaded on the destination.
        """
        self._detached.set()
        if self.sock is not None:
            _shutdown_and_close(self.sock)
        return self.buffer.drain()
