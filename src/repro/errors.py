"""Exception taxonomy for the process-network runtime.

The paper's Java implementation relies on ``java.io.IOException`` for its
cascading-termination protocol (section 3.4): closing an ``InputStream``
makes the *next write* to the corresponding ``OutputStream`` raise, while
closing an ``OutputStream`` lets the reader drain buffered data and only
then observe end-of-stream.  We reproduce that contract with an explicit
exception hierarchy so processes (and tests) can distinguish the two
directions while generic code can still catch the common base class.
"""

from __future__ import annotations

__all__ = [
    "ChannelError",
    "EndOfStreamError",
    "BrokenChannelError",
    "ChannelClosedError",
    "DeadlockError",
    "ArtificialDeadlockError",
    "TrueDeadlockError",
    "RemoteError",
    "RegistryError",
    "MigrationError",
]


class ChannelError(IOError):
    """Base class for all channel I/O failures (the ``IOException`` analogue).

    ``IterativeProcess.run`` treats any :class:`ChannelError` raised from
    ``step`` as the normal termination signal of the cascading-shutdown
    protocol, mirroring Figure 4 of the paper where ``IOException`` is
    silently swallowed and ``onStop`` closes all of the process's streams.
    """


class EndOfStreamError(ChannelError):
    """Raised by a read once the writer has closed *and* the buffer drained.

    This is the Python analogue of ``EOFException`` surfacing from
    ``DataInputStream`` after ``read`` returns ``-1`` in Java.  Importantly
    it is raised only after all buffered data has been consumed, which is
    what makes the "compute all primes below 100" termination mode of the
    paper consume every produced element before shutting down.
    """


class BrokenChannelError(ChannelError):
    """Raised by a write after the reader has closed its end.

    Java piped streams raise ``IOException("Pipe closed")`` in this case;
    the paper uses it for the "first 100 primes" termination mode where a
    downstream iteration limit propagates *upstream* immediately.
    """


class ChannelClosedError(ChannelError):
    """Raised when operating on a stream that this side already closed."""


class DeadlockError(RuntimeError):
    """Base class for deadlock diagnoses produced by the scheduler."""

    def __init__(self, message: str, blocked: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        #: names of the processes that were blocked when diagnosis was made
        self.blocked = blocked


class ArtificialDeadlockError(DeadlockError):
    """All processes blocked, at least one on a *write* to a full channel.

    Parks' bounded-scheduling result: such a deadlock is an artifact of
    finite channel capacities and can potentially be resolved by enlarging
    the smallest full channel.  The scheduler normally resolves these
    automatically; this exception escapes only when capacity growth is
    disabled or capped.
    """


class TrueDeadlockError(DeadlockError):
    """All processes blocked on *reads* from empty channels.

    No buffer-capacity assignment can make progress; in Kahn semantics the
    network's least fixed point has been reached and execution is complete
    (or the program is genuinely deadlocked if streams were expected to be
    infinite).
    """


class RemoteError(RuntimeError):
    """An exception raised while executing a task on a remote compute server.

    Carries the remote traceback text so failures occurring on another
    server (or OS process) remain diagnosable from the client.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base


class RegistryError(RuntimeError):
    """Name-registry lookup or registration failure."""


class MigrationError(RuntimeError):
    """A process/stream could not be migrated between servers."""
