"""Command-line interface: ``python -m repro.cli <command>``.

An open-source release of this system needs operational entry points; the
paper's deployment story ("the entire implementation can be contained in
a single jar file ... making it easy to install on a new host") maps to:

==============  ==============================================================
command         what it does
==============  ==============================================================
server          start a compute server (wraps repro.distributed.server)
registry        start a name registry (wraps repro.distributed.registry)
ping            ping a server (host:port or registry name)
metrics         scrape a server's telemetry counters (Prometheus text)
top             live refreshing view of per-server cluster state
experiment      regenerate table1 / table2 / fig19 / fig20 on the simulator
example         run one of the bundled examples by name
check           build a figure network and run the consistency checker
                (``--strict`` also fails on warnings)
lint            Kahn-semantics static analyzer: AST process lint,
                shared-state race detection, deadlock/boundedness proofs
                over files, directories, figure networks, or modules
profile         run an example network under the continuous profiler:
                ranked bottleneck report, per-process utilization,
                capacity-advisor spec, optional folded stacks
compile         build a figure network and print the graph compiler's
                fusion plan (chains fused, channels collapsed, refusals);
                ``--run`` executes the optimized network
version         print the library version
==============  ==============================================================

``experiment`` and ``example`` accept ``--trace-out FILE``: the run
executes with telemetry enabled and its event stream is written as a
Chrome trace-event JSON file (load it in Perfetto / chrome://tracing).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

EXPERIMENTS = ("table1", "table2", "fig19", "fig20", "report")
EXAMPLES = ("quickstart", "fibonacci", "primes_sieve", "newton_sqrt",
            "hamming", "distributed_fibonacci", "parallel_factorization",
            "image_compression", "simulated_cluster", "signal_processing",
            "tracing_and_graphs", "mandelbrot_farm", "cluster_operations",
            "csp_comparison")
CHECKABLE = ("fibonacci", "primes", "hamming", "newton", "fig13")
#: figure networks `repro profile` can build and run; fig19 is the task
#: farm (the paper's real workload shape), fig13 exercises Parks growth
PROFILABLE = CHECKABLE + ("fig19",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Kahn process networks "
                    "(Parks/Roberts/Millman 2003 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_server = sub.add_parser("server", help="start a compute server")
    p_server.add_argument("--port", type=int, default=0)
    p_server.add_argument("--name", default="server")
    p_server.add_argument("--registry", default=None, help="host:port")
    p_server.add_argument("--advertise", default=None)
    p_server.add_argument("--telemetry", action="store_true",
                          help="enable the telemetry hub on this server")
    p_server.add_argument("--profile", action="store_true",
                          help="enable the continuous KPN profiler "
                               "(implies --telemetry)")
    p_server.add_argument("--executor", default=None,
                          choices=["inline", "thread", "process"],
                          help="compute backend for shipped tasks/workers")
    p_server.add_argument("--pool-size", type=int, default=None,
                          help="executor pool width (default: CPU count)")
    p_server.add_argument("--backend", default=None,
                          choices=["thread", "async"],
                          help="scheduler backend for the hosted network "
                               "(also: REPRO_BACKEND)")

    p_registry = sub.add_parser("registry", help="start a name registry")
    p_registry.add_argument("--port", type=int, default=5000)

    p_ping = sub.add_parser("ping", help="ping a compute server")
    p_ping.add_argument("target", help="host:port")

    p_metrics = sub.add_parser(
        "metrics", help="scrape telemetry counters from a compute server")
    p_metrics.add_argument("target", help="host:port")
    p_metrics.add_argument("--raw", action="store_true",
                           help="print the raw counter dict instead of "
                                "Prometheus text")

    p_top = sub.add_parser(
        "top", help="live per-server view of a running cluster")
    p_top.add_argument("targets", nargs="+", metavar="HOST:PORT",
                       help="one or more compute servers to watch")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds (default 1.0)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (no screen clear)")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop after N refreshes (0 = until Ctrl-C)")

    p_exp = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    p_exp.add_argument("which", choices=EXPERIMENTS)
    p_exp.add_argument("--trace-out", default=None, metavar="FILE",
                       help="run with telemetry on; write a Chrome "
                            "trace-event JSON file")

    p_ex = sub.add_parser("example", help="run a bundled example")
    p_ex.add_argument("which", choices=EXAMPLES + ("list",))
    p_ex.add_argument("--trace-out", default=None, metavar="FILE",
                      help="run with telemetry on; write a Chrome "
                           "trace-event JSON file")
    p_ex.add_argument("--backend", default=None,
                      choices=["thread", "async"],
                      help="scheduler backend: one OS thread per process "
                           "or cooperative tasks on event loops "
                           "(also: REPRO_BACKEND; default thread)")

    p_check = sub.add_parser("check",
                             help="consistency-check a figure network")
    p_check.add_argument("which", choices=CHECKABLE)
    p_check.add_argument("--strict", action="store_true",
                         help="exit non-zero on warnings as well as errors")

    p_lint = sub.add_parser(
        "lint", help="Kahn-semantics static analysis (AST lint, race "
                     "detection, deadlock/boundedness proofs)")
    p_lint.add_argument(
        "targets", nargs="+",
        help="what to lint: a source file or directory (AST pass only), "
             f"a figure network name {CHECKABLE} (all three passes on the "
             "built graph), or an importable module name")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable output (schema documented "
                             "in docs/analysis.md)")

    p_prof = sub.add_parser(
        "profile", help="run a figure network under the continuous "
                        "profiler and report its bottlenecks")
    p_prof.add_argument("which", choices=PROFILABLE)
    p_prof.add_argument("--spec-out", default=None, metavar="FILE",
                        help="capacity-advisor spec JSON "
                             "(default: <which>-capacity.json)")
    p_prof.add_argument("--folded-out", default=None, metavar="FILE",
                        help="write folded stacks for flamegraph tools")
    p_prof.add_argument("--top", type=int, default=10,
                        help="channels shown in the bottleneck table")
    p_prof.add_argument("--workers", type=int, default=4,
                        help="fig19 farm width (default 4)")
    p_prof.add_argument("--tasks", type=int, default=120,
                        help="fig19 task count (default 120)")
    p_prof.add_argument("--backend", default=None,
                        choices=["thread", "async"],
                        help="scheduler backend (also: REPRO_BACKEND)")

    p_compile = sub.add_parser(
        "compile", help="print the graph compiler's fusion plan for a "
                        "figure network (chain fusion, channel collapse, "
                        "buffer pre-sizing)")
    p_compile.add_argument("which", choices=PROFILABLE)
    p_compile.add_argument("--spec", default=None, metavar="FILE",
                           help="capacity spec JSON (repro profile "
                                "--spec-out) used to pre-size surviving "
                                "channels")
    p_compile.add_argument("--json", action="store_true",
                           help="machine-readable plan")
    p_compile.add_argument("--run", action="store_true",
                           help="apply the plan and run the fused network")
    p_compile.add_argument("--workers", type=int, default=4,
                           help="fig19 farm width (default 4)")
    p_compile.add_argument("--tasks", type=int, default=120,
                           help="fig19 task count (default 120)")
    p_compile.add_argument("--backend", default=None,
                           choices=["thread", "async"],
                           help="scheduler backend for --run "
                                "(also: REPRO_BACKEND)")

    sub.add_parser("version", help="print the version")
    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------

def _traced(args, label: str, fn) -> int:
    """Run ``fn`` with telemetry enabled, then write a Chrome trace."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return fn()
    from repro.telemetry.core import TELEMETRY
    from repro.telemetry.export import write_chrome_trace

    was = TELEMETRY.enabled
    TELEMETRY.reset().enable()
    try:
        with TELEMETRY.span(label, category="cli"):
            rc = fn()
    finally:
        TELEMETRY.enabled = was
        write_chrome_trace(trace_out)
        print(f"trace written to {trace_out} "
              f"({TELEMETRY.events_emitted} events)", file=sys.stderr)
    return rc


def _cmd_server(args) -> int:
    from repro.distributed.server import main as server_main

    argv = ["--port", str(args.port), "--name", args.name]
    if args.registry:
        argv += ["--registry", args.registry]
    if args.advertise:
        argv += ["--advertise", args.advertise]
    if args.telemetry:
        argv += ["--telemetry"]
    if args.profile:
        argv += ["--profile"]
    if args.executor:
        argv += ["--executor", args.executor]
    if args.pool_size is not None:
        argv += ["--pool-size", str(args.pool_size)]
    if args.backend:
        argv += ["--backend", args.backend]
    server_main(argv)
    return 0


def _cmd_registry(args) -> int:
    from repro.distributed.registry import main as registry_main

    registry_main(["--port", str(args.port)])
    return 0


def _cmd_ping(args) -> int:
    from repro.distributed.server import ServerClient

    host, _, port = args.target.partition(":")
    client = ServerClient(host, int(port))
    print(client.ping())
    client.close()
    return 0


def _cmd_metrics(args) -> int:
    from repro.distributed.server import ServerClient
    from repro.telemetry.export import prometheus_text

    host, _, port = args.target.partition(":")
    client = ServerClient(host, int(port))
    try:
        reply = client.metrics()
    finally:
        client.close()
    if args.raw:
        for key in sorted(reply["counters"]):
            print(f"{key} = {reply['counters'][key]:g}")
    else:
        print(prometheus_text(reply["counters"],
                              histograms=reply.get("histograms"),
                              gauges=reply.get("gauges")), end="")
    if not reply.get("telemetry_enabled"):
        print("# note: telemetry is DISABLED on the server "
              "(start it with --telemetry or REPRO_TELEMETRY=1)",
              file=sys.stderr)
    return 0


def _top_row(name: str, client) -> dict:
    """Collect one server's ``repro top`` row; tolerate partial failures."""
    row: dict = {"name": name, "stats": None, "snapshot": None,
                 "counters": None, "profile": None}
    try:
        row["stats"] = client.stats()
        row["snapshot"] = client.wait_snapshot()
        if row["stats"].get("telemetry_enabled"):
            reply = client.metrics()
            row["counters"] = reply.get("counters")
            row["profile"] = reply.get("profile")
    except Exception as exc:  # noqa: BLE001 - a dead server is a row, not a crash
        row["error"] = f"{type(exc).__name__}: {exc}"
    return row


def _cmd_top(args) -> int:
    import time

    from repro.distributed.server import ServerClient
    from repro.telemetry.distributed import render_top

    clients = []
    for target in args.targets:
        host, _, port = target.partition(":")
        clients.append((target, ServerClient(host, int(port))))
    iteration = 0
    try:
        while True:
            rows = [_top_row(name, client) for name, client in clients]
            screen = render_top(rows)
            unreachable = [r["name"] for r in rows if r.get("error")]
            if args.once:
                print(screen)
            else:
                # ANSI clear + home, then the refreshed screen
                print(f"\x1b[2J\x1b[Hrepro top — {len(rows)} server(s), "
                      f"refresh {args.interval:g}s (Ctrl-C quits)\n")
                print(screen)
            for name in unreachable:
                print(f"  {name}: UNREACHABLE", file=sys.stderr)
            iteration += 1
            if args.once or (args.iterations and iteration >= args.iterations):
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        for _, client in clients:
            client.close()
    return 0


def _cmd_experiment(args) -> int:
    return _traced(args, f"experiment:{args.which}",
                   lambda: _run_experiment(args))


def _run_experiment(args) -> int:
    from repro.simcluster import (ideal_speed, sequential_times,
                                  sweep_workers, table2_rows)
    from repro.simcluster.paperdata import table2_by_workers

    if args.which == "report":
        from repro.simcluster.report import generate_report

        print(generate_report())
        return 0
    if args.which == "table1":
        print("Table 1: sequential execution (minutes)")
        print(f"{'class':>5} {'speed':>6} {'model':>7} {'paper':>7}")
        for r in sequential_times():
            print(f"{r['class']:>5} {r['speed']:>6.2f} "
                  f"{r['time_model']:>7.2f} {r['time_paper']:>7.2f}")
    elif args.which == "table2":
        paper = table2_by_workers()
        print("Table 2: parallel execution (minutes)")
        print(f"{'W':>3} {'ideal':>7} {'stat-mdl':>9} {'stat-ppr':>9} "
              f"{'dyn-mdl':>8} {'dyn-ppr':>8}")
        for row in table2_rows():
            p = paper[row.workers]
            print(f"{row.workers:>3} {row.ideal_time:>7.2f} "
                  f"{row.static_time:>9.2f} {p.static_time:>9.2f} "
                  f"{row.dynamic_time:>8.2f} {p.dynamic_time:>8.2f}")
    else:
        rows = sweep_workers(range(1, 33))
        if args.which == "fig19":
            print("Figure 19: elapsed time (minutes) vs workers")
            print(f"{'W':>3} {'ideal':>8} {'static':>8} {'dynamic':>8}")
            for r in rows:
                print(f"{r.workers:>3} {r.ideal_time:>8.2f} "
                      f"{r.static_time:>8.2f} {r.dynamic_time:>8.2f}")
        else:
            print("Figure 20: speedup vs workers")
            print(f"{'W':>3} {'ideal':>8} {'static':>8} {'dynamic':>8}")
            for r in rows:
                print(f"{r.workers:>3} {r.ideal_speed:>8.2f} "
                      f"{r.static_speed:>8.2f} {r.dynamic_speed:>8.2f}")
    return 0


def _cmd_example(args) -> int:
    if args.which == "list":
        for name in EXAMPLES:
            print(name)
        return 0
    return _traced(args, f"example:{args.which}",
                   lambda: _run_example(args))


def _run_example(args) -> int:
    import os
    import runpy

    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "examples",
        f"{args.which}.py")
    if not os.path.exists(path):
        print(f"example source not found at {path}", file=sys.stderr)
        return 1
    runpy.run_path(path, run_name="__main__")
    return 0


def _cmd_check(args) -> int:
    from repro.kpn.checker import check_network
    from repro.processes import (fibonacci, hamming, modulo_merge,
                                 newton_sqrt, primes)

    builders = {
        "fibonacci": lambda: fibonacci(10),
        "primes": lambda: primes(count=10),
        "hamming": lambda: hamming(10),
        "newton": lambda: newton_sqrt(2.0),
        "fig13": lambda: modulo_merge(50, 10),
    }
    built = builders[args.which]()
    issues = check_network(built.network)
    if not issues:
        print("no findings: graph is clean")
    for issue in issues:
        print(issue)
    failing = {"error", "warning"} if getattr(args, "strict", False) \
        else {"error"}
    return 1 if any(i.severity in failing for i in issues) else 0


def _lint_builders():
    from repro.processes import (fibonacci, hamming, modulo_merge,
                                 newton_sqrt, primes)

    return {
        "fibonacci": lambda: fibonacci(10),
        "primes": lambda: primes(count=10),
        "hamming": lambda: hamming(10),
        "newton": lambda: newton_sqrt(2.0),
        "fig13": lambda: modulo_merge(50, 10),
    }


def _cmd_lint(args) -> int:
    import json
    import os

    from repro.analysis import (JSON_SCHEMA_VERSION, lint_network,
                                lint_paths, sort_findings, summarize)
    from repro.analysis.astlint import lint_file

    findings = []
    for target in args.targets:
        if os.path.exists(target):
            findings.extend(lint_paths([target]))
        elif target in CHECKABLE:
            findings.extend(lint_network(_lint_builders()[target]().network))
        else:
            import importlib
            try:
                module = importlib.import_module(target)
            except ImportError as exc:
                print(f"lint: cannot resolve {target!r}: not a path, a "
                      f"figure network, or an importable module ({exc})",
                      file=sys.stderr)
                return 2
            source = getattr(module, "__file__", None)
            if not source or not os.path.exists(source):
                print(f"lint: module {target!r} has no source file",
                      file=sys.stderr)
                return 2
            findings.extend(lint_file(source))
    findings = sort_findings(findings)
    summary = summarize(findings)
    if args.json:
        print(json.dumps({
            "schema_version": JSON_SCHEMA_VERSION,
            "targets": list(args.targets),
            "findings": [f.to_dict() for f in findings],
            "summary": summary,
        }, indent=2))
    else:
        for f in findings:
            print(f)
        if not findings:
            print("no findings: all processes look determinate")
        else:
            parts = ", ".join(
                f"{summary[s]} {s}"
                for s in ("error", "warning", "declared", "info")
                if summary.get(s))
            print(f"-- {parts}")
    return 1 if summary["failing"] else 0


def _profile_target(args):
    """Build the requested network; return ``(network, runner)``."""
    if args.which == "fig19":
        from repro.parallel import CallableTask, RangeProducerTask
        from repro.parallel.farm import build_farm

        handle = build_farm(
            RangeProducerTask(args.tasks, lambda i: CallableTask(pow, i, 3)),
            n_workers=args.workers, mode="dynamic")
        return handle.network, lambda: handle.run(timeout=300)
    from repro.processes import (fibonacci, hamming, modulo_merge,
                                 newton_sqrt, primes)

    builders = {
        "fibonacci": lambda: fibonacci(10),
        "primes": lambda: primes(count=10),
        "hamming": lambda: hamming(10),
        "newton": lambda: newton_sqrt(2.0),
        "fig13": lambda: modulo_merge(50, 10),
    }
    built = builders[args.which]()
    return built.network, lambda: built.run(timeout=300)


def _cmd_profile(args) -> int:
    """Run a figure network with the profiler on; print the bottleneck
    report and write the capacity-advisor spec."""
    from repro.telemetry.core import TELEMETRY
    from repro.telemetry.profile import (PROFILER, analyze, fold_stacks,
                                         render_profile, write_capacity_spec)

    network, runner = _profile_target(args)
    was_telemetry = TELEMETRY.enabled
    was_profiler = PROFILER.enabled
    TELEMETRY.reset().enable()
    PROFILER.reset().enable()
    try:
        runner()
        snapshot = PROFILER.snapshot(network=network)
        channel_map = network.channel_map()
    finally:
        if not was_profiler:
            PROFILER.disable()
        if not was_telemetry:
            TELEMETRY.disable().reset()
    report = analyze(snapshot, channel_map)
    print(render_profile(report, top=args.top))
    spec_out = args.spec_out or f"{args.which}-capacity.json"
    write_capacity_spec(report, spec_out)
    print(f"capacity spec written to {spec_out}", file=sys.stderr)
    if args.folded_out:
        with open(args.folded_out, "w") as fh:
            fh.write("\n".join(fold_stacks(snapshot)) + "\n")
        print(f"folded stacks written to {args.folded_out}", file=sys.stderr)
    return 0


def _cmd_compile(args) -> int:
    """Print (and optionally run) the fusion plan for a figure network."""
    import json

    from repro.kpn.compile import compile_network

    network, runner = _profile_target(args)
    plan = compile_network(network, spec=args.spec)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2))
    else:
        print(plan.describe())
    if args.run:
        plan.apply()
        runner()
        fused = ", ".join(c.name for c in plan.fused) or "none"
        print(f"fused network ran to completion (chains: {fused})",
              file=sys.stderr)
    return 0


def _cmd_version(args) -> int:
    import repro

    print(repro.__version__)
    return 0


_HANDLERS = {
    "server": _cmd_server,
    "registry": _cmd_registry,
    "ping": _cmd_ping,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "experiment": _cmd_experiment,
    "example": _cmd_example,
    "check": _cmd_check,
    "lint": _cmd_lint,
    "profile": _cmd_profile,
    "compile": _cmd_compile,
    "version": _cmd_version,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    backend = getattr(args, "backend", None)
    if backend and args.command != "server":
        # examples and figure networks build their own Network objects;
        # the env var is how a backend choice reaches all of them
        os.environ["REPRO_BACKEND"] = backend
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
