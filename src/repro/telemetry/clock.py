"""Clock alignment across compute servers (NTP-style RTT midpoint).

Every :class:`~repro.telemetry.core.TelemetryHub` timestamps events on a
*local* monotonic clock whose epoch is the hub's creation (or last
``reset``).  Two servers therefore produce traces on two unrelated
timelines: to merge them into the single cluster trace the paper's
"whole-cluster application" view needs, we estimate, per node, the
offset that maps its hub clock onto the observer's.

The estimator is the classic NTP/Cristian midpoint: the observer reads
its own clock just before (``sent``) and just after (``received``) a
round trip that returns the remote hub's clock (``remote``, sampled
server-side while handling the existing ``ping`` op).  Assuming the
request and reply legs are symmetric, the remote sample corresponds to
the midpoint of the round trip, so

    offset = (sent + received) / 2 - remote

is the amount to **add** to remote-clock timestamps to land them on the
observer's timeline.  The error is bounded by half the round-trip time
(the worst case is a fully asymmetric path), so among repeated probes we
keep the minimum-RTT sample — the one with the tightest bound — and
report the spread across samples as a stability diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["ProbeSample", "OffsetEstimate", "estimate_offset"]


@dataclass(frozen=True)
class ProbeSample:
    """One round trip: local clock before/after, remote clock in between.

    Attributes
    ----------
    sent:
        Observer's hub time immediately before the request left.
    remote:
        The remote hub's time, sampled while it handled the request.
    received:
        Observer's hub time immediately after the reply arrived.
    """

    sent: float
    remote: float
    received: float

    def __post_init__(self) -> None:
        if self.received < self.sent:
            raise ValueError(
                f"probe received ({self.received}) before sent ({self.sent})")

    @property
    def rtt(self) -> float:
        """Round-trip time on the observer's clock."""
        return self.received - self.sent

    @property
    def offset(self) -> float:
        """Add this to remote-hub timestamps to get observer-hub time."""
        return (self.sent + self.received) / 2.0 - self.remote


@dataclass(frozen=True)
class OffsetEstimate:
    """Best offset over a probe series, with its error bound.

    Attributes
    ----------
    offset:
        The minimum-RTT sample's offset (seconds to add to remote times).
    rtt:
        That sample's round-trip time; the offset error is <= ``rtt / 2``.
    n:
        Number of probes the estimate was taken over.
    spread:
        max - min offset across all samples — how (un)stable the probe
        series was; large spread means a noisy path or a drifting clock.
    """

    offset: float
    rtt: float
    n: int
    spread: float

    @property
    def error_bound(self) -> float:
        """Worst-case offset error under fully asymmetric legs."""
        return self.rtt / 2.0


def estimate_offset(samples: Iterable[ProbeSample]) -> OffsetEstimate:
    """Combine probe samples into one offset estimate (min-RTT filter)."""
    pool: List[ProbeSample] = list(samples)
    if not pool:
        raise ValueError("estimate_offset needs at least one probe sample")
    best = min(pool, key=lambda s: s.rtt)
    offsets: Sequence[float] = [s.offset for s in pool]
    return OffsetEstimate(offset=best.offset, rtt=best.rtt, n=len(pool),
                          spread=max(offsets) - min(offsets))
