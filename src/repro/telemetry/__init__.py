"""repro.telemetry — low-overhead observability for all three layers.

* :mod:`repro.telemetry.core` — the process-wide event bus, counter
  registry, and latency histograms behind the :data:`TELEMETRY` hub;
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto),
  Prometheus text exposition, and cluster-wide merged reports;
* :mod:`repro.telemetry.clock` — NTP-style clock-offset estimation that
  maps every server's hub clock onto one cluster timeline;
* :mod:`repro.telemetry.distributed` — trace-context propagation across
  the wire, merged multi-node traces, and the ``repro top`` renderer;
* :mod:`repro.telemetry.profile` — the continuous KPN profiler behind
  the :data:`PROFILER` accounting layer (blocked-time attribution,
  bottleneck analysis, the buffer-capacity advisor).

Quickstart::

    from repro.telemetry import TELEMETRY
    from repro.telemetry.export import write_chrome_trace

    TELEMETRY.enable()
    ...run a network...
    print(TELEMETRY.counters()["kpn.channel.bytes_written{channel=ch-0}"])
    write_chrome_trace("trace.json")
"""

from repro.telemetry.core import (Event, HistogramData, TELEMETRY,
                                  TelemetryHub, render_key)
from repro.telemetry.export import (chrome_trace, cluster_report,
                                    merge_counters, profile_gauges,
                                    prometheus_text, write_chrome_trace)
from repro.telemetry.clock import OffsetEstimate, ProbeSample, estimate_offset
from repro.telemetry.profile import (PROFILER, Profiler, analyze, fold_stacks,
                                     merge_profiles, process_utilization,
                                     render_profile, write_capacity_spec)
from repro.telemetry.distributed import (TraceContext, current_context,
                                         event_to_dict, merge_node_traces,
                                         render_top, write_merged_trace)

__all__ = [
    "Event", "HistogramData", "TELEMETRY", "TelemetryHub", "render_key",
    "chrome_trace", "cluster_report", "merge_counters", "profile_gauges",
    "prometheus_text", "write_chrome_trace",
    "OffsetEstimate", "ProbeSample", "estimate_offset",
    "PROFILER", "Profiler", "analyze", "fold_stacks", "merge_profiles",
    "process_utilization", "render_profile", "write_capacity_spec",
    "TraceContext", "current_context", "event_to_dict", "merge_node_traces",
    "render_top", "write_merged_trace",
]
