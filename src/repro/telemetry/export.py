"""Telemetry exporters: Chrome trace JSON, Prometheus text, cluster report.

Three consumers of the data :mod:`repro.telemetry.core` collects:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the hub's event ring
  as a Chrome trace-event JSON object (the ``traceEvents`` array format),
  loadable in Perfetto / ``chrome://tracing``.  Process lifecycle spans and
  blocked-read/blocked-write spans become nested slices per thread;
  capacity growths and deadlock verdicts become instants.
* :func:`prometheus_text` — a counter snapshot in the Prometheus text
  exposition format (``repro metrics <host:port>`` prints this).
* :func:`merge_counters` / :func:`cluster_report` — sum per-server counter
  snapshots into one cluster-wide view, the metrics analogue of how
  ``wait_snapshot`` aggregates blocking state for distributed deadlock
  detection.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterable, List, Mapping, Optional

from repro.telemetry.core import TELEMETRY, Event, HistogramData, parse_key

__all__ = ["chrome_trace", "write_chrome_trace", "prometheus_text",
           "profile_gauges", "merge_counters", "cluster_report"]


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def chrome_trace(events: Optional[Iterable[Event]] = None,
                 pid: Optional[int] = None,
                 process_name: str = "repro") -> dict:
    """Render events as a Chrome trace-event JSON object.

    ``events`` defaults to the global hub's current ring buffer.  Chrome
    timestamps are microseconds; the hub records seconds since its epoch.
    """
    if events is None:
        events = TELEMETRY.events()
    if pid is None:
        pid = os.getpid()
    trace: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": process_name},
    }]
    seen_tids: set[int] = set()
    for e in events:
        if e.tid not in seen_tids:
            seen_tids.add(e.tid)
            trace.append({"name": "thread_name", "ph": "M", "pid": pid,
                          "tid": e.tid, "args": {"name": e.thread_name}})
        item: dict = {"name": e.name, "cat": e.category or "repro",
                      "ph": e.phase, "ts": e.ts * 1e6, "pid": pid,
                      "tid": e.tid}
        args = dict(e.args) if e.args else {}
        if e.phase == "i":
            item["s"] = "t"  # instant scoped to its thread
        elif e.phase in ("s", "t", "f"):
            # flow events: the id pairs a start on one thread/node with
            # the end on another; "bp": "e" binds the end to its
            # enclosing slice (the rpc.execute span).
            item["id"] = args.pop("flow_id", 0)
            if e.phase == "f":
                item["bp"] = "e"
        if args:
            item["args"] = args
        trace.append(item)
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Optional[Iterable[Event]] = None,
                       pid: Optional[int] = None,
                       process_name: str = "repro") -> str:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    doc = chrome_trace(events, pid=pid, process_name=process_name)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    flat = _NAME_OK.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


#: quantiles exposed per histogram in the Prometheus summary blocks
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _as_histogram(data) -> HistogramData:
    if isinstance(data, HistogramData):
        return data
    return HistogramData.from_snapshot(data)


def prometheus_text(counters: Optional[Mapping[str, float]] = None,
                    prefix: str = "repro",
                    histograms: Optional[Mapping[str, object]] = None,
                    gauges: Optional[Mapping[str, float]] = None) -> str:
    """Render counter + histogram + gauge snapshots in the Prometheus
    text format.

    ``counters`` is a flat ``{rendered_key: value}`` snapshot (the shape
    :meth:`TelemetryHub.counters` and the ``metrics`` RPC op produce);
    defaults to the global hub's counters.  ``histograms`` maps rendered
    keys to :class:`HistogramData` objects or their picklable
    :meth:`~HistogramData.snapshot` dicts (what the ``metrics`` op ships)
    and defaults to the global hub's histograms when ``counters`` is
    defaulted too; each becomes a ``summary`` block with p50/p95/p99
    quantile lines plus ``_sum`` and ``_count``.  ``gauges`` is a flat
    snapshot like ``counters`` (:meth:`TelemetryHub.gauges` or
    :func:`profile_gauges` output), rendered as ``gauge`` blocks; it also
    defaults to the hub's when ``counters`` is defaulted.
    """
    if counters is None:
        counters = TELEMETRY.counters()
        if histograms is None:
            histograms = TELEMETRY.histograms()
        if gauges is None:
            gauges = TELEMETRY.gauges()
    hists: Dict[str, tuple] = {}
    hist_names: set = set()
    for key, data in (histograms or {}).items():
        name, labels = parse_key(key)
        hist_names.add(name)
        hists.setdefault(name, ())
        hists[name] = hists[name] + ((labels, _as_histogram(data)),)
    #: counters() folds histograms in as name.count/.sum/.max — drop those
    #: flat keys when the full histogram is being rendered as a summary.
    folded = {f"{n}.{suffix}" for n in hist_names
              for suffix in ("count", "sum", "max")}
    by_name: Dict[str, List[tuple]] = {}
    for key, value in counters.items():
        name, labels = parse_key(key)
        if name in folded:
            continue
        by_name.setdefault(name, []).append((labels, value))
    lines: List[str] = []
    for name in sorted(by_name):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} counter")
        for labels, value in sorted(by_name[name]):
            if labels:
                inner = ",".join(f'{k}="{v}"' for k, v in labels)
                lines.append(f"{prom}{{{inner}}} {value:g}")
            else:
                lines.append(f"{prom} {value:g}")
    gauge_by_name: Dict[str, List[tuple]] = {}
    for key, value in (gauges or {}).items():
        name, labels = parse_key(key)
        gauge_by_name.setdefault(name, []).append((labels, value))
    for name in sorted(gauge_by_name):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        for labels, value in sorted(gauge_by_name[name]):
            if labels:
                inner = ",".join(f'{k}="{v}"' for k, v in labels)
                lines.append(f"{prom}{{{inner}}} {value:g}")
            else:
                lines.append(f"{prom} {value:g}")
    for name in sorted(hists):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} summary")
        for labels, hist in sorted(hists[name], key=lambda p: p[0]):
            for q in SUMMARY_QUANTILES:
                q_labels = labels + (("quantile", f"{q:g}"),)
                inner = ",".join(f'{k}="{v}"' for k, v in q_labels)
                lines.append(f"{prom}{{{inner}}} {hist.quantile(q):g}")
            suffix_inner = ",".join(f'{k}="{v}"' for k, v in labels)
            braces = f"{{{suffix_inner}}}" if labels else ""
            lines.append(f"{prom}_sum{braces} {hist.total:g}")
            lines.append(f"{prom}_count{braces} {hist.count:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def profile_gauges(snapshot: Mapping[str, object]) -> Dict[str, float]:
    """Flat gauge snapshot derived from a profiler snapshot.

    Lets a shipped (or merged) :meth:`Profiler.snapshot` dict be rendered
    as Prometheus gauges even when the originating hub is out of reach:
    per-channel occupancy/capacity/high-watermark and per-process
    utilization, keyed exactly like :meth:`TelemetryHub.gauges` output.
    """
    from repro.telemetry.profile import process_utilization

    out: Dict[str, float] = {}
    for cname, c in (snapshot.get("channels") or {}).items():
        for field, metric in (("buffered", "kpn.channel.occupancy_bytes"),
                              ("capacity", "kpn.channel.capacity_bytes"),
                              ("high_watermark",
                               "kpn.channel.high_watermark_bytes")):
            value = c.get(field)
            if value is not None:
                out[f'{metric}{{channel={cname}}}'] = float(value)
    for pname, util in process_utilization(snapshot).items():
        out[f'kpn.process.utilization{{process={pname}}}'] = round(util, 4)
    return out


# ---------------------------------------------------------------------------
# cluster-wide aggregation
# ---------------------------------------------------------------------------

def merge_counters(snapshots: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum flat counter snapshots key-by-key (cluster-wide totals)."""
    merged: Dict[str, float] = {}
    for snap in snapshots:
        for key, value in snap.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def cluster_report(per_server: Mapping[str, Mapping[str, float]],
                   top: int = 0) -> str:
    """Human-readable merged report over per-server counter snapshots.

    ``per_server`` maps server name -> flat counter snapshot (what
    ``ServerClient.metrics()[\"counters\"]`` returns).  Lists the
    cluster-wide total for every counter, with the per-server breakdown
    inline; ``top`` > 0 limits the listing to the largest ``top`` totals.
    """
    names = sorted(per_server)
    merged = merge_counters(per_server.values())
    lines = [f"cluster metrics over {len(names)} server(s): {', '.join(names)}"]
    keys = sorted(merged, key=lambda k: -abs(merged[k]))
    if top:
        keys = keys[:top]
    for key in sorted(keys):
        parts = []
        for name in names:
            v = per_server[name].get(key)
            if v:
                parts.append(f"{name}={v:g}")
        breakdown = f"  ({', '.join(parts)})" if len(names) > 1 and parts else ""
        lines.append(f"  {key} = {merged[key]:g}{breakdown}")
    return "\n".join(lines)
