"""Telemetry core: a process-wide event bus and counter registry.

The paper's entire evaluation is about runtime *dynamics* — buffer growth
under Parks scheduling, blocked-thread censuses, per-host load shares —
so the runtime needs a way to narrate what it is doing that is

* **off by default and near-free when off**: every instrumentation site
  guards on a single attribute read (``if TELEMETRY.enabled:``), so the
  hot paths (buffer reads/writes, frame send/recv) pay one branch;
* **thread-safe**: processes are one thread each, pumps and monitors add
  more; events and counters may be produced from any of them concurrently;
* **uniform across the three layers**: the KPN runtime, the distributed
  wire, and the parallel farm all speak the same vocabulary, so one
  exporter (:mod:`repro.telemetry.export`) can render a local run and a
  cluster-wide aggregate alike.

Three instrument kinds:

* **events** — timestamped records in a bounded ring buffer.  Phases use
  the Chrome trace-event convention directly: ``"B"``/``"E"`` bracket a
  span on one thread (process lifetime, a blocked read), ``"i"`` is an
  instant (a capacity growth, a deadlock verdict).  Subscribers (the
  :class:`~repro.kpn.tracing.Tracer`, tests) receive each event as it is
  emitted.
* **counters** — monotonically increasing values keyed by name plus
  optional labels (``inc("wire.frames_sent", 1, tag="DATA")``).
* **histograms** — count/sum/min/max plus power-of-two bucket counts,
  for per-task latency distributions.

Timestamps are seconds since the hub's epoch (reset by :meth:`reset`),
monotonic, so exported traces are internally consistent.

Enable programmatically (``TELEMETRY.enable()``), per scope
(``with TELEMETRY.enabled_scope(): ...``), or for a whole process via the
``REPRO_TELEMETRY`` environment variable (any non-empty value other than
``0``) — the knob used to start instrumented compute servers.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterator, List, Mapping, Optional,
                    Tuple)

__all__ = ["Event", "HistogramData", "TelemetryHub", "TELEMETRY", "render_key"]

#: label tuple type: sorted ((key, value), ...) pairs
LabelItems = Tuple[Tuple[str, str], ...]


class Event:
    """One telemetry event (phases follow the Chrome trace convention)."""

    __slots__ = ("ts", "phase", "name", "category", "tid", "thread_name", "args")

    def __init__(self, ts: float, phase: str, name: str, category: str,
                 tid: int, thread_name: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self.ts = ts
        self.phase = phase          # "B" | "E" | "i" | flow "s"/"t"/"f"
        self.name = name
        self.category = category
        self.tid = tid
        self.thread_name = thread_name
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Event {self.phase} {self.name!r} cat={self.category!r} "
                f"t={self.ts:.6f}>")


class HistogramData:
    """Running distribution summary: count/sum/min/max + log2 buckets.

    Buckets are powers of two in seconds starting at ~1 µs; bucket ``i``
    counts observations with ``value <= 2**(i - 20)`` seconds (the last
    bucket is unbounded).  Coarse, but enough to separate "microseconds"
    from "milliseconds" from "seconds" per-task latencies without a
    dependency.
    """

    N_BUCKETS = 32
    _BOUNDS = tuple(2.0 ** (i - 20) for i in range(N_BUCKETS - 1))

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self._BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the log2 buckets.

        Linear interpolation inside the containing bucket, clamped to the
        observed min/max so the estimate never leaves the data's range.
        Coarse (bucket bounds are powers of two) but monotone in ``q``
        and exact at q=0/q=1 — enough for p50/p95/p99 exposition.
        """
        if not self.count:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 1:
            return self.max
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            cumulative += n
            if cumulative >= rank and n:
                lo = 0.0 if i == 0 else self._BOUNDS[i - 1]
                hi = self._BOUNDS[i] if i < len(self._BOUNDS) else self.max
                frac = (rank - (cumulative - n)) / n
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
        return self.max

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "sum": self.total,
                "min": self.min if self.count else 0.0, "max": self.max,
                "mean": self.mean()}

    def snapshot(self) -> Dict[str, Any]:
        """Picklable full state (incl. buckets) for the ``metrics`` op."""
        return {"count": self.count, "sum": self.total,
                "min": self.min if self.count else 0.0, "max": self.max,
                "buckets": list(self.buckets)}

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "HistogramData":
        """Rebuild from :meth:`snapshot` output (exporter-side)."""
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("sum", 0.0))
        hist.min = float(data.get("min", 0.0)) if hist.count else float("inf")
        hist.max = float(data.get("max", 0.0))
        buckets = list(data.get("buckets", ()))
        hist.buckets = (buckets + [0] * cls.N_BUCKETS)[:cls.N_BUCKETS]
        return hist


def _labels_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_key(name: str, labels: LabelItems) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,k2=v2}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, LabelItems]:
    """Inverse of :func:`render_key` (used by the exporters)."""
    if "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    inner = rest.rstrip("}")
    labels = tuple(tuple(item.split("=", 1)) for item in inner.split(",") if item)
    return name, labels  # type: ignore[return-value]


class TelemetryHub:
    """The event bus + counter registry.  One process-wide instance.

    All mutating entry points are cheap no-ops while :attr:`enabled` is
    False; call sites additionally guard on the attribute to skip argument
    construction entirely.
    """

    def __init__(self, max_events: int = 200_000) -> None:
        #: the one flag hot paths read.  Plain attribute on purpose.
        self.enabled = False
        #: lane name this hub's events appear under in merged cluster
        #: traces; compute servers overwrite it with their server name.
        self.node = f"pid-{os.getpid()}"
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=max_events)
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._hists: Dict[Tuple[str, LabelItems], HistogramData] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        #: immutable tuple, replaced wholesale on (un)subscribe so _emit
        #: can read it without copying — one attribute read per event
        self._subscribers: Tuple[Callable[[Event], None], ...] = ()
        self._t0 = time.monotonic()
        #: total events ever emitted (survives ring-buffer eviction)
        self.events_emitted = 0
        #: per-thread actor override: ``(tid, name)`` attributed to events
        #: instead of the OS thread.  The async scheduler backend sets it
        #: around each coroutine-task resume so events from tasks that
        #: share one event-loop thread land in distinct virtual lanes.
        self._actor = threading.local()

    # ------------------------------------------------------------------
    # actor attribution (async scheduler backend)
    # ------------------------------------------------------------------
    def swap_actor(self, actor: Optional[Tuple[int, str]]) -> Optional[Tuple[int, str]]:
        """Install an ``(tid, name)`` actor override for the calling
        thread, returning the previous override (None if none).

        Virtual tids should not collide with OS thread idents — the async
        backend uses negative integers."""
        prev = getattr(self._actor, "value", None)
        self._actor.value = actor
        return prev

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> "TelemetryHub":
        self.enabled = True
        return self

    def disable(self) -> "TelemetryHub":
        self.enabled = False
        return self

    def reset(self) -> "TelemetryHub":
        """Drop all recorded data and restart the clock (keeps ``enabled``)."""
        with self._lock:
            self._events.clear()
            self._counters.clear()
            self._hists.clear()
            self._gauges.clear()
            self._t0 = time.monotonic()
            self.events_emitted = 0
        return self

    @contextmanager
    def enabled_scope(self, reset: bool = False) -> Iterator["TelemetryHub"]:
        """Enable for the duration of a ``with`` block, restoring after."""
        was = self.enabled
        if reset:
            self.reset()
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = was

    def now(self) -> float:
        """Seconds since the hub epoch (monotonic)."""
        return time.monotonic() - self._t0

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _emit(self, phase: str, name: str, category: str,
              args: Optional[Dict[str, Any]]) -> None:
        if not self.enabled:
            return
        actor = getattr(self._actor, "value", None)
        if actor is not None:
            tid, thread_name = actor
        else:
            t = threading.current_thread()
            tid, thread_name = t.ident or 0, t.name
        event = Event(self.now(), phase, name, category, tid,
                      thread_name, args or None)
        with self._lock:
            self._events.append(event)
            self.events_emitted += 1
        subscribers = self._subscribers
        # Outside the lock: a subscriber may itself query the hub.  Note
        # that emit sites inside buffer critical sections still hold the
        # *buffer* lock here, so subscribers must never touch channels —
        # append-to-list / set-an-Event only (same rule as buffer
        # listeners).
        for cb in subscribers:
            try:
                cb(event)
            except Exception:
                pass

    def begin(self, name: str, category: str = "repro", **args: Any) -> None:
        """Open a span on the calling thread (Chrome ``B`` phase)."""
        self._emit("B", name, category, args)

    def end(self, name: str, category: str = "repro", **args: Any) -> None:
        """Close the innermost span of ``name`` on this thread (``E``)."""
        self._emit("E", name, category, args)

    def instant(self, name: str, category: str = "repro", **args: Any) -> None:
        """A point event (``i`` phase)."""
        self._emit("i", name, category, args)

    def flow(self, phase: str, name: str, category: str = "repro",
             flow_id: int = 0, **args: Any) -> None:
        """A Chrome flow event: ``s`` start, ``t`` step, ``f`` end.

        Flow events with the same ``flow_id`` are drawn as arrows between
        the slices enclosing them — across threads, and (in merged
        cluster traces) across node lanes.  Emit them *inside* an open
        span on the same thread.
        """
        if phase not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be s/t/f, not {phase!r}")
        self._emit(phase, name, category, dict(args, flow_id=flow_id))

    @contextmanager
    def span(self, name: str, category: str = "repro", **args: Any) -> Iterator[None]:
        self.begin(name, category, **args)
        try:
            yield
        finally:
            self.end(name, category)

    def subscribe(self, callback: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register ``callback`` for every subsequent event; returns it
        (handy for later :meth:`unsubscribe`)."""
        with self._lock:
            self._subscribers = self._subscribers + (callback,)
        return callback

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            self._subscribers = tuple(
                cb for cb in self._subscribers if cb is not callback)

    def events(self) -> List[Event]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # counters / histograms
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name`` with ``labels``."""
        if not self.enabled:
            return
        key = (name, _labels_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram ``name`` with ``labels``."""
        if not self.enabled:
            return
        key = (name, _labels_key(labels))
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = HistogramData()
            hist.observe(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` with ``labels`` (last write wins).

        Gauges are sampled values — channel occupancy, process
        utilization — where summing across scrapes would be meaningless.
        """
        if not self.enabled:
            return
        key = (name, _labels_key(labels))
        with self._lock:
            self._gauges[key] = value

    def gauges(self) -> Dict[str, float]:
        """Consistent flat snapshot: ``{rendered_key: value}``."""
        with self._lock:
            return {render_key(n, l): v for (n, l), v in self._gauges.items()}

    def counter(self, name: str, **labels: Any) -> float:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get((name, _labels_key(labels)), 0)

    def counters(self) -> Dict[str, float]:
        """Consistent flat snapshot: ``{rendered_key: value}``.

        Histograms are folded in as ``name.count`` / ``name.sum`` /
        ``name.max`` (picklable, so this is exactly what the compute
        server's ``metrics`` op returns).
        """
        with self._lock:
            out = {render_key(n, l): v for (n, l), v in self._counters.items()}
            for (n, l), h in self._hists.items():
                out[render_key(f"{n}.count", l)] = h.count
                out[render_key(f"{n}.sum", l)] = h.total
                out[render_key(f"{n}.max", l)] = h.max
        return out

    def histograms(self) -> Dict[str, HistogramData]:
        """Rendered-key snapshot of histogram objects (local use only)."""
        with self._lock:
            return {render_key(n, l): h for (n, l), h in self._hists.items()}

    def histogram_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Picklable histogram state incl. buckets (the ``metrics`` op's
        quantile-capable counterpart of :meth:`counters`)."""
        with self._lock:
            return {render_key(n, l): h.snapshot()
                    for (n, l), h in self._hists.items()}


#: the process-wide hub every instrumentation site uses
TELEMETRY = TelemetryHub()

if os.environ.get("REPRO_TELEMETRY", "0") not in ("", "0", "false", "no"):
    TELEMETRY.enable()
