"""Continuous KPN profiler: blocked-time attribution and capacity advice.

The paper's entire performance story is about *where processes wait* —
blocking reads (section 3.1), bounded blocking writes (3.5), and Parks'
capacity growth resolving artificial deadlocks — but raw ``block.read`` /
``block.write`` spans answer none of the operator's questions ("which
channel is the bottleneck, and what capacity should it have had?").  This
module turns the event stream into answers, in three pieces:

* :class:`Profiler` — an always-cheap accounting layer that subscribes to
  the telemetry hub and attributes each process's wall time to
  ``running`` / ``read-blocked-on-<channel>`` / ``write-blocked-on-<channel>``.
  It is a per-thread state machine over four event kinds (process span
  begin/end, block span begin/end, ``channel.grow`` and
  ``channel.created`` instants), so the cost per event is a category
  check plus a couple of dict updates under a leaf lock — safe under the
  buffer critical sections that emit block spans, because the profiler
  never touches channels or the hub from its callback.
* :func:`analyze` — the analyzer over a profile snapshot plus the
  ``Network`` graph: ranks bottleneck channels by total blocked time,
  computes per-process utilization, walks the backpressure chain from the
  hottest channel to the root cause, and attaches a **capacity advisor**
  recommendation per channel (channels that grew under Parks scheduling
  should be pre-sized to their final capacity; channels with sustained
  write pressure get doubled headroom).
* :func:`write_capacity_spec` — serializes the advisor's recommendations
  to a JSON spec file, the "initial buffer capacities from traced
  history" input the ROADMAP's graph compiler will consume.

Snapshots are plain picklable dicts, so the compute server's ``metrics``
RPC op ships them and :meth:`LocalCluster.merged_profile` merges per-node
attributions (:func:`merge_profiles`).  :func:`fold_stacks` renders a
snapshot as folded-stack lines for flamegraph tooling.

Enable with :data:`PROFILER` (``PROFILER.enable()`` — implies telemetry),
per server with ``--profile``, or process-wide via ``REPRO_PROFILE=1``.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.telemetry.core import TELEMETRY, Event, TelemetryHub

__all__ = [
    "Profiler", "PROFILER", "analyze", "fold_stacks", "merge_profiles",
    "process_utilization", "render_profile", "write_capacity_spec",
]

#: mirrors :data:`repro.kpn.buffers.DEFAULT_CAPACITY` (not imported: the
#: kpn layer imports telemetry, so importing it back would be circular)
_DEFAULT_CAPACITY = 1024

#: advisor threshold: writers blocked for more than this fraction of the
#: wall time marks a channel as under sustained write pressure
_PRESSURE_FRACTION = 0.02


class _ThreadState:
    """What one thread is doing right now, and since when."""

    __slots__ = ("process", "state", "channel", "since")

    def __init__(self, process: str, state: str, channel: Optional[str],
                 since: float) -> None:
        self.process = process
        self.state = state          # "running" | "read" | "write"
        self.channel = channel
        self.since = since


def _proc_entry() -> Dict[str, Any]:
    return {"kind": None, "state": "running", "channel": None,
            "running_s": 0.0, "blocked": {}, "started": None,
            "finished": None}


def _chan_entry() -> Dict[str, Any]:
    return {"initial_capacity": None, "grown_to": None, "grow_events": 0,
            "growers": []}


class Profiler:
    """Blocked-time accounting over the hub's event stream.

    One process-wide instance (:data:`PROFILER`) subscribes to the global
    hub; tests may build private instances and feed events directly via
    :meth:`_on_event` for deterministic timelines.
    """

    def __init__(self, hub: Optional[TelemetryHub] = None) -> None:
        self._hub = hub or TELEMETRY
        self._lock = threading.Lock()
        self.enabled = False
        self._subscribed = False
        #: tid -> current :class:`_ThreadState`
        self._threads: Dict[int, _ThreadState] = {}
        #: process name -> accumulated attribution
        self._procs: Dict[str, Dict[str, Any]] = {}
        #: channel name -> creation/growth facts
        self._channels: Dict[str, Dict[str, Any]] = {}
        #: events the state machine actually consumed (diagnostics)
        self.events_seen = 0

    # -- lifecycle ---------------------------------------------------------
    def enable(self, reset: bool = False) -> "Profiler":
        """Start accounting.  Implies enabling the telemetry hub: the
        profiler is fed by its events."""
        if reset:
            self.reset()
        self._hub.enable()
        if not self._subscribed:
            self._hub.subscribe(self._on_event)
            self._subscribed = True
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        """Stop accounting (leaves the telemetry hub as it is)."""
        if self._subscribed:
            self._hub.unsubscribe(self._on_event)
            self._subscribed = False
        self.enabled = False
        return self

    def reset(self) -> "Profiler":
        with self._lock:
            self._threads.clear()
            self._procs.clear()
            self._channels.clear()
            self.events_seen = 0
        return self

    # -- the state machine -------------------------------------------------
    def _proc(self, name: str) -> Dict[str, Any]:
        """Accumulator for ``name`` (atomic get-or-create under the GIL)."""
        proc = self._procs.get(name)
        if proc is None:
            proc = self._procs[name] = _proc_entry()
        return proc

    def _on_event(self, event: Event) -> None:
        # Hot path: every hub event lands here, including wire/rpc
        # traffic, often from inside a buffer critical section — so this
        # runs LOCK-FREE.  Correctness argument: every thread only ever
        # mutates its own _ThreadState and its own process's accumulator
        # (process names are unique per thread in a KPN), each dict
        # operation is atomic under the GIL, and :meth:`snapshot` reads
        # through atomic ``list(...)`` copies.  A concurrent snapshot may
        # catch one thread mid-transition — the error is bounded by a
        # single event interval, fine for a profiler.  A contended
        # threading.Lock here meant a futex wait inside the buffer lock,
        # which is exactly the overhead this layer must not add.
        cat = event.category
        if cat != "kpn.block" and cat != "kpn.process" and cat != "kpn.channel":
            return
        ts = event.ts
        phase = event.phase
        self.events_seen += 1  # approximate under concurrency: diagnostic only
        if cat == "kpn.block":
            if phase == "B":
                self._enter_block(event, ts)
            elif phase == "E":
                self._exit_block(event, ts)
        elif cat == "kpn.process":
            if phase == "B":
                self._enter_process(event, ts)
            elif phase == "E":
                self._exit_process(event, ts)
        else:  # kpn.channel instants
            args = event.args or {}
            name = args.get("channel")
            if not name:
                return
            chan = self._channels.get(name)
            if chan is None:
                chan = self._channels[name] = _chan_entry()
            if event.name == "channel.created":
                chan["initial_capacity"] = args.get("capacity")
            elif event.name == "channel.grow":
                chan["grown_to"] = args.get("new")
                chan["grow_events"] += 1
                grower = args.get("process")
                if grower and grower not in chan["growers"]:
                    chan["growers"].append(grower)

    def _enter_process(self, event: Event, ts: float) -> None:
        name = event.name
        proc = self._proc(name)
        if proc["started"] is None:
            proc["started"] = ts
        proc["kind"] = (event.args or {}).get("kind")
        proc["state"] = "running"
        self._threads[event.tid] = _ThreadState(name, "running", None, ts)

    def _exit_process(self, event: Event, ts: float) -> None:
        proc = self._procs.get(event.name)
        if proc is None:
            return
        state = self._threads.pop(event.tid, None)
        if state is not None and state.process == event.name:
            self._charge(state, ts)
        proc["finished"] = ts
        proc["state"] = "done"
        proc["channel"] = None

    # The two block handlers are the profiler's hottest code: they run
    # inside buffer critical sections (block.* events are emitted with
    # the buffer lock held), so the interval-charging from _charge() is
    # inlined here to touch the proc dict exactly once per event.
    def _enter_block(self, event: Event, ts: float) -> None:
        args = event.args or {}
        state = self._threads.get(event.tid)
        if state is None:
            # a thread we never saw a process span for (a pump, or the
            # profiler was enabled mid-run): attribute by thread name
            name = args.get("process") or event.thread_name
            state = self._threads[event.tid] = _ThreadState(
                name, "running", None, ts)
            proc = self._proc(name)
            if proc["started"] is None:
                proc["started"] = ts
        else:
            proc = self._proc(state.process)
            dt = ts - state.since
            if dt > 0:
                if state.state == "running":
                    proc["running_s"] += dt
                else:
                    key = state.state + ":" + (state.channel or "")
                    blocked = proc["blocked"]
                    blocked[key] = blocked.get(key, 0.0) + dt
        mode = "read" if event.name == "block.read" else "write"
        channel = args.get("channel") or ""
        state.state = mode
        state.channel = channel
        state.since = ts
        proc["state"] = mode + "-blocked"
        proc["channel"] = channel

    def _exit_block(self, event: Event, ts: float) -> None:
        state = self._threads.get(event.tid)
        if state is None or state.state == "running":
            return
        proc = self._proc(state.process)
        dt = ts - state.since
        if dt > 0:
            key = state.state + ":" + (state.channel or "")
            blocked = proc["blocked"]
            blocked[key] = blocked.get(key, 0.0) + dt
        state.state = "running"
        state.channel = None
        state.since = ts
        proc["state"] = "running"
        proc["channel"] = None

    def _charge(self, state: _ThreadState, ts: float) -> None:
        """Close the thread's open interval at ``ts``."""
        dt = ts - state.since
        if dt <= 0:
            return
        proc = self._proc(state.process)
        if state.state == "running":
            proc["running_s"] += dt
        else:
            key = f"{state.state}:{state.channel}"
            proc["blocked"][key] = proc["blocked"].get(key, 0.0) + dt

    # -- snapshots ---------------------------------------------------------
    def snapshot(self, network=None, now: Optional[float] = None) -> dict:
        """Picklable attribution snapshot, open intervals charged to now.

        ``network`` additionally samples every channel's live occupancy /
        capacity / high watermark into the snapshot and publishes the
        per-channel occupancy and per-process utilization gauges on the
        hub.  The channel sampling happens *outside* the profiler lock —
        buffer locks and the profiler lock must never nest in both
        orders.  ``now`` overrides the hub clock (deterministic tests).
        """
        t = self._hub.now() if now is None else now
        # the lock serializes concurrent snapshot/reset callers, not the
        # event path: _on_event is lock-free, so all reads below go
        # through list(...)/dict(...) copies (atomic under the GIL) and
        # tolerate one thread being caught mid-transition
        with self._lock:
            procs: Dict[str, Dict[str, Any]] = {}
            for name, p in list(self._procs.items()):
                procs[name] = {"kind": p["kind"], "state": p["state"],
                               "channel": p["channel"],
                               "running_s": p["running_s"],
                               "blocked": dict(p["blocked"]),
                               "started": p["started"],
                               "finished": p["finished"]}
            # charge open intervals up to t without closing them: a
            # currently-blocked process shows its blocked time still
            # accumulating, and it stops the moment the span ends
            for state in list(self._threads.values()):
                entry = procs.get(state.process)
                if entry is None:
                    continue
                dt = max(0.0, t - state.since)
                if state.state == "running":
                    entry["running_s"] += dt
                else:
                    key = f"{state.state}:{state.channel}"
                    entry["blocked"][key] = entry["blocked"].get(key, 0.0) + dt
            channels = {name: dict(c) for name, c in list(self._channels.items())}
        snap: Dict[str, Any] = {"node": self._hub.node, "pid": os.getpid(),
                                "t": t, "processes": procs,
                                "channels": channels}
        if network is not None:
            snap["network"] = network.name
            for ch in list(network.channels):
                entry = channels.setdefault(ch.name, _chan_entry())
                occ = ch.occupancy()
                entry["buffered"] = occ["buffered"]
                entry["capacity"] = occ["capacity"]
                entry["high_watermark"] = occ["high_watermark"]
                if occ.get("fused"):
                    entry["fused"] = True
                if self._hub.enabled:
                    self._hub.set_gauge("kpn.channel.occupancy_bytes",
                                        occ["buffered"], channel=ch.name)
                    self._hub.set_gauge("kpn.channel.capacity_bytes",
                                        occ["capacity"], channel=ch.name)
                    self._hub.set_gauge("kpn.channel.high_watermark_bytes",
                                        occ["high_watermark"], channel=ch.name)
            if self._hub.enabled:
                for name, util in process_utilization(snap).items():
                    self._hub.set_gauge("kpn.process.utilization",
                                        round(util, 4), process=name)
        return snap


#: the process-wide profiler over the global hub
PROFILER = Profiler(TELEMETRY)

if os.environ.get("REPRO_PROFILE", "0") not in ("", "0", "false", "no"):
    PROFILER.enable()


# ---------------------------------------------------------------------------
# snapshot arithmetic
# ---------------------------------------------------------------------------

def process_utilization(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """``{process: running / span}`` over one snapshot.

    The span is start to finish (or to the snapshot instant for live
    processes); when a process was never bracketed by a lifecycle span,
    the running/blocked split itself is the denominator.
    """
    t = snapshot.get("t")
    out: Dict[str, float] = {}
    for name, p in (snapshot.get("processes") or {}).items():
        started = p.get("started")
        end = p.get("finished")
        if end is None:
            end = t
        running = p.get("running_s", 0.0)
        blocked = sum((p.get("blocked") or {}).values())
        if started is not None and end is not None and end > started:
            out[name] = min(1.0, running / (end - started))
        elif running + blocked > 0:
            out[name] = running / (running + blocked)
        else:
            out[name] = 0.0
    return out


def merge_profiles(per_node: Mapping[str, Mapping[str, Any]]) -> dict:
    """Merge per-node snapshots into one cluster-wide attribution.

    ``per_node`` maps a node label to a :meth:`Profiler.snapshot` dict.
    Process names colliding across nodes are disambiguated as
    ``node/name``; channel facts merge (growth events sum, capacities and
    watermarks take the max — a channel stretched over a socket link has
    a buffer on each side).
    """
    merged: Dict[str, Any] = {"node": "cluster",
                              "nodes": sorted(per_node), "t": 0.0,
                              "processes": {}, "channels": {}}
    for label in sorted(per_node):
        snap = per_node[label] or {}
        merged["t"] = max(merged["t"], snap.get("t") or 0.0)
        if snap.get("network") and "network" not in merged:
            merged["network"] = snap["network"]
        node = snap.get("node") or label
        for name, p in (snap.get("processes") or {}).items():
            key = name if name not in merged["processes"] else f"{node}/{name}"
            entry = dict(p)
            entry["node"] = node
            merged["processes"][key] = entry
        for cname, c in (snap.get("channels") or {}).items():
            tgt = merged["channels"].setdefault(cname, _chan_entry())
            for field in ("initial_capacity", "grown_to", "capacity",
                          "high_watermark", "buffered"):
                value = c.get(field)
                if value is not None:
                    tgt[field] = max(tgt.get(field) or 0, value)
            tgt["grow_events"] = (tgt.get("grow_events", 0)
                                  + (c.get("grow_events") or 0))
            for grower in c.get("growers") or ():
                if grower not in tgt["growers"]:
                    tgt["growers"].append(grower)
    return merged


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------

def _pow2ceil(n: float) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def _wall_seconds(snapshot: Mapping[str, Any]) -> float:
    t = snapshot.get("t") or 0.0
    starts = [p["started"] for p in (snapshot.get("processes") or {}).values()
              if p.get("started") is not None]
    if not starts:
        return float(t)
    ends = [p.get("finished") if p.get("finished") is not None else t
            for p in (snapshot.get("processes") or {}).values()
            if p.get("started") is not None]
    return max(0.0, max(ends) - min(starts))


def _channel_stats(snapshot: Mapping[str, Any],
                   channel_map: Optional[Mapping[str, Mapping[str, Any]]]
                   ) -> Dict[str, Dict[str, Any]]:
    chans: Dict[str, Dict[str, Any]] = {}

    def entry(name: str) -> Dict[str, Any]:
        e = chans.get(name)
        if e is None:
            e = chans[name] = {"name": name, "read_blocked_s": 0.0,
                               "write_blocked_s": 0.0, "readers": {},
                               "writers": {}}
        return e

    for pname, p in (snapshot.get("processes") or {}).items():
        for key, secs in (p.get("blocked") or {}).items():
            mode, _, cname = key.partition(":")
            e = entry(cname)
            side = "readers" if mode == "read" else "writers"
            e[f"{mode}_blocked_s"] += secs
            e[side][pname] = e[side].get(pname, 0.0) + secs
    for cname, c in (snapshot.get("channels") or {}).items():
        e = entry(cname)
        for field in ("initial_capacity", "grown_to", "grow_events",
                      "growers", "capacity", "high_watermark", "buffered",
                      "fused"):
            if c.get(field) is not None:
                e[field] = c[field]
    for cname, e in chans.items():
        info = (channel_map or {}).get(cname) or {}
        e["producer"] = info.get("producer") or _top_key(e["writers"])
        e["consumer"] = info.get("consumer") or _top_key(e["readers"])
        if e.get("capacity") is None and info.get("capacity") is not None:
            e["capacity"] = info["capacity"]
        e["blocked_s"] = e["read_blocked_s"] + e["write_blocked_s"]
    return chans


def _top_key(scores: Mapping[str, float]) -> Optional[str]:
    return max(scores, key=lambda k: scores[k]) if scores else None


def _advise(ranked: List[Dict[str, Any]], wall: float,
            default_capacity: int) -> None:
    for e in ranked:
        if e.get("fused"):
            # the graph compiler bypassed this channel's ring with an
            # unbounded intra-chain pipe: capacity is moot, and its
            # occupancy reads zero by construction
            e["recommended_capacity"] = int(e.get("capacity")
                                            or default_capacity)
            e["reason"] = "fused into a chain by the graph compiler; keep"
            continue
        initial = e.get("initial_capacity") or default_capacity
        cap = e.get("capacity") or e.get("grown_to") or initial
        watermark = e.get("high_watermark") or 0
        grown = e.get("grown_to")
        if grown and grown > initial:
            e["recommended_capacity"] = int(grown)
            e["reason"] = (
                f"grew {initial}->{grown}B under Parks scheduling "
                f"({e.get('grow_events', 0)} deadlock resolution(s)); "
                f"pre-size to the final capacity")
        elif wall > 0 and e["write_blocked_s"] > _PRESSURE_FRACTION * wall:
            e["recommended_capacity"] = _pow2ceil(max(cap, watermark) * 2)
            share = e["write_blocked_s"] / wall
            e["reason"] = (
                f"writers blocked {e['write_blocked_s']:.3f}s "
                f"({share:.0%} of wall); double the headroom")
        else:
            e["recommended_capacity"] = int(cap)
            e["reason"] = "no sustained write pressure; keep"


def _backpressure_chain(ranked: List[Dict[str, Any]],
                        chans: Mapping[str, Mapping[str, Any]],
                        procs: Mapping[str, Mapping[str, Any]],
                        utils: Mapping[str, float]
                        ) -> Tuple[List[dict], Optional[dict]]:
    """Walk from the hottest channel to the process causing the pressure.

    Write-blocked on a full channel points *downstream* (the consumer is
    not draining it); read-blocked on an empty channel points *upstream*
    (the producer is not filling it).  The walk stops at a process that
    is mostly running — the compute-bound root cause — or when the chain
    cycles (a feedback loop: every member is part of the cause).
    """
    if not ranked or ranked[0]["blocked_s"] <= 0:
        return [], None
    top = ranked[0]
    mode = "write" if top["write_blocked_s"] >= top["read_blocked_s"] else "read"
    chain: List[dict] = []
    visited: set = set()
    current, root = top["name"], None
    for _ in range(64):
        chain.append({"kind": "channel", "name": current, "mode": mode})
        info = chans.get(current) or {}
        pname = info.get("consumer") if mode == "write" else info.get("producer")
        if not pname or pname in visited:
            break
        visited.add(pname)
        util = utils.get(pname, 0.0)
        chain.append({"kind": "process", "name": pname, "utilization": util})
        blocked = (procs.get(pname) or {}).get("blocked") or {}
        if util >= 0.5 or not blocked:
            root = {"process": pname, "utilization": util,
                    "why": "compute-bound" if util >= 0.5 else "terminal"}
            break
        key = max(blocked, key=lambda k: blocked[k])
        mode, _, current = key.partition(":")
    if root is None:
        members = [c for c in chain if c["kind"] == "process"]
        if members:
            root = {"process": members[-1]["name"],
                    "utilization": members[-1]["utilization"],
                    "why": "backpressure cycle"}
    return chain, root


def analyze(snapshot: Mapping[str, Any],
            channel_map: Optional[Mapping[str, Mapping[str, Any]]] = None,
            default_capacity: int = _DEFAULT_CAPACITY) -> dict:
    """Turn one snapshot (plus the graph's producer/consumer map) into a
    bottleneck report with a capacity-advisor spec attached.

    ``channel_map`` is :meth:`repro.kpn.network.Network.channel_map`
    output; without it, producers/consumers are inferred from who blocked
    on each channel (enough for merged cluster snapshots).
    """
    wall = _wall_seconds(snapshot)
    procs = snapshot.get("processes") or {}
    utils = process_utilization(snapshot)
    chans = _channel_stats(snapshot, channel_map)
    ranked = sorted(chans.values(), key=lambda e: -e["blocked_s"])
    _advise(ranked, wall, default_capacity)
    chain, root = _backpressure_chain(ranked, chans, procs, utils)
    processes = []
    for name in sorted(procs, key=lambda n: utils.get(n, 0.0)):
        p = procs[name]
        processes.append({
            "name": name, "node": p.get("node"), "kind": p.get("kind"),
            "utilization": utils.get(name, 0.0),
            "running_s": p.get("running_s", 0.0),
            "blocked_s": sum((p.get("blocked") or {}).values()),
            "state": p.get("state"), "channel": p.get("channel"),
        })
    spec = {
        "version": 1,
        "network": snapshot.get("network") or snapshot.get("node") or "network",
        "source": "repro.telemetry.profile capacity advisor",
        "wall_s": round(wall, 6),
        "default_capacity": default_capacity,
        "channels": {e["name"]: {"initial_capacity": e["recommended_capacity"],
                                 "reason": e["reason"]}
                     for e in ranked if not e.get("fused")},
    }
    return {"network": spec["network"], "node": snapshot.get("node"),
            "wall_s": wall, "processes": processes, "channels": ranked,
            "chain": chain, "root_cause": root, "spec": spec}


def write_capacity_spec(report: Mapping[str, Any], path: str) -> str:
    """Write the report's capacity-advisor spec as JSON; returns ``path``.

    The file is the graph compiler's future input: ``{"channels":
    {name: {"initial_capacity": bytes, "reason": ...}}}``.
    """
    with open(path, "w") as fh:
        json.dump(report["spec"], fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------

def fold_stacks(snapshot: Mapping[str, Any]) -> List[str]:
    """Folded-stack lines (``a;b;c <microseconds>``) for flamegraph tools.

    One frame chain per attribution bucket: ``node;process;running`` and
    ``node;process;<mode>-blocked;<channel>``.
    """
    node = snapshot.get("node") or "local"
    lines: List[str] = []
    for name, p in sorted((snapshot.get("processes") or {}).items()):
        usec = int(p.get("running_s", 0.0) * 1e6)
        if usec > 0:
            lines.append(f"{node};{name};running {usec}")
        for key, secs in sorted((p.get("blocked") or {}).items()):
            mode, _, cname = key.partition(":")
            usec = int(secs * 1e6)
            if usec > 0:
                lines.append(f"{node};{name};{mode}-blocked;{cname} {usec}")
    return lines


def render_profile(report: Mapping[str, Any], top: int = 10) -> str:
    """The ranked bottleneck report as text (``repro profile`` output)."""
    lines = [
        f"profile: {report.get('network')} — wall {report['wall_s']:.3f}s, "
        f"{len(report['processes'])} process(es), "
        f"{len(report['channels'])} channel(s)",
        "",
        "bottleneck channels (by blocked time):",
        f"  {'#':>2} {'CHANNEL':<22} {'PRODUCER->CONSUMER':<28} "
        f"{'RD-BLK':>8} {'WR-BLK':>8} {'CAP':>8} {'GROWN':>7} {'ADVISE':>8}",
    ]
    for i, e in enumerate(report["channels"][:top], start=1):
        pair = f"{e.get('producer') or '?'}->{e.get('consumer') or '?'}"
        grown = e.get("grown_to") or "-"
        cap = e.get("capacity") or e.get("initial_capacity") or "?"
        lines.append(
            f"  {i:>2} {e['name']:<22} {pair:<28} "
            f"{e['read_blocked_s']:>8.3f} {e['write_blocked_s']:>8.3f} "
            f"{str(cap):>8} {str(grown):>7} {e['recommended_capacity']:>8}")
    hidden = len(report["channels"]) - top
    if hidden > 0:
        lines.append(f"  ... {hidden} more channel(s) not shown")
    lines += ["", "process utilization:",
              f"  {'PROCESS':<22} {'UTIL':>6} {'RUN-s':>8} {'BLK-s':>8}  STATE"]
    for p in report["processes"]:
        state = p.get("state") or "?"
        if p.get("channel"):
            state = f"{state} on {p['channel']}"
        label = f"{p['node']}/{p['name']}" if p.get("node") else p["name"]
        lines.append(f"  {label:<22} {p['utilization']:>6.1%} "
                     f"{p['running_s']:>8.3f} {p['blocked_s']:>8.3f}  {state}")
    chain = report.get("chain") or []
    if chain:
        hops = []
        for item in chain:
            if item["kind"] == "channel":
                hops.append(f"[{item['name']} {item['mode']}-blocked]")
            else:
                hops.append(f"{item['name']}({item['utilization']:.0%})")
        lines += ["", f"backpressure chain: {' -> '.join(hops)}"]
    root = report.get("root_cause")
    if root:
        lines.append(f"root cause: {root['process']} "
                     f"({root['why']}, utilization {root['utilization']:.0%})")
    grows = [e for e in report["channels"]
             if e["recommended_capacity"] != (e.get("capacity")
                                              or e.get("initial_capacity")
                                              or _DEFAULT_CAPACITY)]
    lines.append(f"capacity advisor: {len(grows)} channel(s) should be "
                 f"pre-sized; see the spec file for all "
                 f"{len(report['channels'])} recommendation(s)")
    return "\n".join(lines)
