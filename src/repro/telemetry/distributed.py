"""Cluster-causal tracing: trace contexts, merged traces, live views.

The paper's headline mechanism — network connections established
automatically *during* object serialization — means the interesting
behaviour happens across machine boundaries, exactly where node-local
telemetry goes blind.  This module supplies the three distributed pieces
on top of :mod:`repro.telemetry.core`:

* :class:`TraceContext` — a compact trace/span-id pair that rides the
  wire protocol (an envelope on ``send_obj``, see
  :mod:`repro.distributed.wire`) so a Runnable or Task dispatched to a
  remote :class:`~repro.distributed.server.ComputeServer` continues the
  dispatching trace.  Chrome-trace *flow events* (phases ``s``/``t``/``f``)
  link the send span on one node to the execute span on another.
* :func:`merge_node_traces` — per-node event buffers (fetched with the
  ``trace`` RPC op), mapped onto a single timeline with the clock
  offsets :mod:`repro.telemetry.clock` estimates, rendered as one
  Perfetto-loadable document with one process lane per node.
* :func:`render_top` — the ``repro top`` screen: per-server stats,
  blocked reads/writes with buffer fill levels, and per-worker load
  shares, from the ``stats``/``wait_snapshot``/``metrics`` RPC ops.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.telemetry.core import Event, parse_key

__all__ = [
    "TraceContext", "current_context", "set_current_context", "activate",
    "event_to_dict", "merge_node_traces", "write_merged_trace", "render_top",
]


# ---------------------------------------------------------------------------
# trace-context propagation
# ---------------------------------------------------------------------------

_local = threading.local()


class TraceContext:
    """A (trace_id, span_id) pair identifying one causal chain.

    ``trace_id`` names the whole distributed run; ``span_id`` names one
    hop.  Both are 16-hex-digit strings, so a context costs ~32 bytes on
    the wire and pickles as a plain tuple.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def new_root(cls) -> "TraceContext":
        """A fresh trace (new trace id, new root span)."""
        return cls(os.urandom(8).hex(), os.urandom(8).hex())

    def child(self) -> "TraceContext":
        """A new span continuing this trace."""
        return TraceContext(self.trace_id, os.urandom(8).hex())

    @property
    def flow_id(self) -> int:
        """The span id as the integer Chrome flow-event ``id``."""
        return int(self.span_id, 16) & 0x7FFFFFFFFFFFFFFF

    # -- wire form ----------------------------------------------------------
    def to_wire(self) -> tuple:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, pair: Sequence[str]) -> "TraceContext":
        trace_id, span_id = pair
        return cls(str(trace_id), str(span_id))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceContext {self.trace_id}/{self.span_id}>"


def current_context() -> Optional[TraceContext]:
    """The calling thread's active trace context, if any."""
    return getattr(_local, "ctx", None)


def set_current_context(ctx: Optional[TraceContext]) -> None:
    """Set the thread's context *stickily* (until replaced).

    ``recv_obj`` uses this on server connection threads: each incoming
    envelope re-points the handler thread at the sender's context, which
    then covers everything the handler does for that request.
    """
    _local.ctx = ctx


class activate:
    """Scope a context to a ``with`` block, restoring the previous one.

    Usable as a context manager; also safe to hand the *enter/exit* pair
    to code that brackets work manually (the client request path).
    """

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx
        self._prev: Optional[TraceContext] = None

    def __enter__(self) -> Optional[TraceContext]:
        self._prev = current_context()
        set_current_context(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        set_current_context(self._prev)


# ---------------------------------------------------------------------------
# event serialization + merged multi-node traces
# ---------------------------------------------------------------------------

def event_to_dict(event: Event) -> Dict[str, Any]:
    """A picklable, JSON-able form of one hub event (the ``trace`` op)."""
    return {"ts": event.ts, "ph": event.phase, "name": event.name,
            "cat": event.category, "tid": event.tid,
            "thread": event.thread_name, "args": event.args}


def _trace_item(ev: Mapping[str, Any], pid: int, offset: float) -> Dict[str, Any]:
    """One Chrome trace-event item from an event dict, time-shifted."""
    item: Dict[str, Any] = {
        "name": ev["name"], "cat": ev.get("cat") or "repro",
        "ph": ev["ph"], "ts": (ev["ts"] + offset) * 1e6,
        "pid": pid, "tid": ev["tid"],
    }
    args = dict(ev.get("args") or {})
    phase = ev["ph"]
    if phase == "i":
        item["s"] = "t"
    elif phase in ("s", "t", "f"):
        item["id"] = args.pop("flow_id", 0)
        if phase == "f":
            item["bp"] = "e"  # bind the flow end to the enclosing slice
    if args:
        item["args"] = args
    return item


def merge_node_traces(nodes: Iterable[Mapping[str, Any]]) -> dict:
    """One Chrome trace document over several nodes' event buffers.

    ``nodes`` is an iterable of ``{"name", "events", "offset"}`` where
    ``events`` is a list of :func:`event_to_dict` dicts on that node's
    hub clock and ``offset`` is the seconds to add to land them on the
    merged timeline (see :mod:`repro.telemetry.clock`; the observer node
    passes 0.0).  Each node becomes one process lane, named and ordered
    as given, so a cluster run reads as one application: flow arrows
    drawn by matching ``s``/``f`` ids cross between the lanes.
    """
    trace: List[dict] = []
    for pid, node in enumerate(nodes, start=1):
        name = node.get("name") or f"node-{pid}"
        offset = float(node.get("offset", 0.0))
        trace.append({"name": "process_name", "ph": "M", "pid": pid,
                      "args": {"name": name}})
        trace.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                      "args": {"sort_index": pid}})
        seen_tids: set = set()
        for ev in node.get("events", ()):
            tid = ev["tid"]
            if tid not in seen_tids:
                seen_tids.add(tid)
                trace.append({"name": "thread_name", "ph": "M", "pid": pid,
                              "tid": tid,
                              "args": {"name": ev.get("thread", str(tid))}})
            trace.append(_trace_item(ev, pid, offset))
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_merged_trace(path: str, nodes: Iterable[Mapping[str, Any]]) -> str:
    """Write :func:`merge_node_traces` output to ``path``; returns it."""
    doc = merge_node_traces(nodes)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


# ---------------------------------------------------------------------------
# the `repro top` screen
# ---------------------------------------------------------------------------

_TOP_COLUMNS = ("SERVER", "UP", "BACK", "TASKS", "PROCS", "THR", "CHAN",
                "BLK-R", "BLK-W", "BUF-B", "TELEM")


def _fmt_uptime(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = int(seconds)
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def _worker_shares(counters: Mapping[str, float]) -> Dict[str, float]:
    """Per-worker load shares from ``parallel.tasks_processed`` counters."""
    per_worker: Dict[str, float] = {}
    for key, value in counters.items():
        name, labels = parse_key(key)
        if name != "parallel.tasks_processed":
            continue
        worker = dict(labels).get("worker", "?")
        per_worker[worker] = per_worker.get(worker, 0) + value
    total = sum(per_worker.values())
    if not total:
        return {}
    return {w: v / total for w, v in sorted(per_worker.items())}


def render_top(rows: Sequence[Mapping[str, Any]],
               show_blocked: bool = True) -> str:
    """The ``repro top`` screen as a string (pure; testable).

    Each row is ``{"name", "stats", "snapshot", "counters", "profile"}`` —
    the ``stats`` / ``wait_snapshot`` / ``metrics`` replies for one server
    (any of the last four may be None if the call failed).  ``profile`` is
    a :meth:`Profiler.snapshot` dict; when present, each hosted process
    gets a state line (running / read-blocked / write-blocked with the
    channel name, plus utilization) sourced from the profiler's
    accounting rather than the instantaneous wait snapshot.
    """
    widths = (14, 7, 6, 7, 7, 5, 5, 6, 6, 9, 6)
    header = " ".join(f"{c:>{w}}" for c, w in zip(_TOP_COLUMNS, widths))
    lines = [header, "-" * len(header)]
    details: List[str] = []
    for row in rows:
        name = row.get("name", "?")
        stats = row.get("stats") or {}
        snap = row.get("snapshot") or {}
        blocked = snap.get("blocked", [])
        blk_r = sum(1 for b in blocked if b.get("mode") == "read")
        blk_w = sum(1 for b in blocked if b.get("mode") == "write")
        buffered = sum(b.get("buffered", 0) for b in blocked)
        telem = stats.get("telemetry_enabled")
        cells = (
            name,
            _fmt_uptime(stats.get("uptime_seconds")),
            stats.get("backend") or snap.get("backend") or "?",
            stats.get("tasks_run", "?"),
            stats.get("processes_hosted", "?"),
            stats.get("live_threads", "?"),
            stats.get("channels", "?"),
            blk_r, blk_w, buffered,
            "on" if telem else ("off" if telem is not None else "?"),
        )
        lines.append(" ".join(f"{str(c):>{w}}" for c, w in zip(cells, widths)))
        if show_blocked:
            for b in blocked:
                fill = f"{b.get('buffered', 0)}/{b.get('capacity', '?')}B"
                # async-backend waiters are parked tasks, not threads —
                # tag them so a wait-graph reader knows what's suspended
                kind = " [task]" if b.get("kind") == "task" else ""
                details.append(f"  {name}: {b.get('thread')} blocked-"
                               f"{b.get('mode')} on {b.get('channel')} "
                               f"({fill}){kind}")
        profile = row.get("profile") or {}
        if profile.get("processes"):
            from repro.telemetry.profile import process_utilization

            utils = process_utilization(profile)
            for pname in sorted(profile["processes"]):
                p = profile["processes"][pname]
                state = p.get("state") or "?"
                if p.get("channel"):
                    state = f"{state} on {p['channel']}"
                details.append(f"  {name}: proc {pname:<18} {state:<32} "
                               f"util {utils.get(pname, 0.0):6.1%}")
        shares = _worker_shares(row.get("counters") or {})
        for worker, share in shares.items():
            details.append(f"  {name}: load {worker} "
                           f"{'#' * int(share * 20):<20} {share:5.1%}")
        for failure in stats.get("failures", []):
            details.append(f"  {name}: FAILED {failure.get('process')}: "
                           f"{failure.get('error')}")
    if details:
        lines.append("")
        lines.extend(details)
    return "\n".join(lines)
