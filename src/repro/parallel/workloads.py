"""Additional embarrassingly-parallel workloads (section 5's genre).

The paper names SETI@home, GIMPS, and Folding@home as the shape of
problem its framework targets; beyond the factorization experiment and
the imaging example, this module supplies three more classic instances,
each expressed purely through the Task protocol so every load-balancing
composition (pipeline / MetaStatic / MetaDynamic, local or distributed)
runs them unchanged:

* **Monte Carlo π** — independent pseudo-random batches; results are
  deterministic per task (seeded), so determinacy holds across modes.
* **Mandelbrot rows** — per-row escape-time counts with naturally
  *non-uniform* task costs (rows near the set take longer), the case the
  paper's dynamic balancing argument is about.
* **Block matrix multiply** — C = A·B tiled into output blocks; a
  numpy-backed compute-bound task with a verifiable exact result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "PiBatchTask", "PiProducerTask", "estimate_pi_from_results",
    "MandelbrotRowTask", "MandelbrotProducerTask", "assemble_mandelbrot",
    "MatmulBlockTask", "MatmulProducerTask", "assemble_matmul",
]


# ---------------------------------------------------------------------------
# Monte Carlo pi
# ---------------------------------------------------------------------------

@dataclass
class PiBatchResult:
    batch_index: int
    hits: int
    samples: int

    def run(self) -> "PiBatchResult":
        return self


class PiBatchTask:
    """Count dart hits inside the unit quarter-circle; seeded per batch."""

    def __init__(self, batch_index: int, samples: int, seed: int = 0) -> None:
        self.batch_index = batch_index
        self.samples = samples
        self.seed = seed

    def run(self) -> PiBatchResult:
        rng = random.Random((self.seed << 20) ^ self.batch_index)
        hits = 0
        for _ in range(self.samples):
            x = rng.random()
            y = rng.random()
            if x * x + y * y <= 1.0:
                hits += 1
        return PiBatchResult(self.batch_index, hits, self.samples)


class PiProducerTask:
    def __init__(self, n_batches: int, samples_per_batch: int = 10000,
                 seed: int = 0) -> None:
        self.n_batches = n_batches
        self.samples_per_batch = samples_per_batch
        self.seed = seed
        self.next_index = 0

    def run(self) -> Optional[PiBatchTask]:
        if self.next_index >= self.n_batches:
            return None
        task = PiBatchTask(self.next_index, self.samples_per_batch, self.seed)
        self.next_index += 1
        return task


def estimate_pi_from_results(results: List[PiBatchResult]) -> float:
    hits = sum(r.hits for r in results)
    samples = sum(r.samples for r in results)
    return 4.0 * hits / samples if samples else float("nan")


# ---------------------------------------------------------------------------
# Mandelbrot rows
# ---------------------------------------------------------------------------

@dataclass
class MandelbrotRow:
    row: int
    counts: Tuple[int, ...]

    def run(self) -> "MandelbrotRow":
        return self


class MandelbrotRowTask:
    """Escape-time counts for one image row (cost varies wildly by row)."""

    def __init__(self, row: int, width: int, height: int,
                 x_range: Tuple[float, float] = (-2.0, 0.6),
                 y_range: Tuple[float, float] = (-1.2, 1.2),
                 max_iter: int = 80) -> None:
        self.row = row
        self.width = width
        self.height = height
        self.x_range = x_range
        self.y_range = y_range
        self.max_iter = max_iter

    def run(self) -> MandelbrotRow:
        x0, x1 = self.x_range
        y0, y1 = self.y_range
        cy = y0 + (y1 - y0) * self.row / max(1, self.height - 1)
        counts = []
        for col in range(self.width):
            cx = x0 + (x1 - x0) * col / max(1, self.width - 1)
            zx = zy = 0.0
            n = 0
            while zx * zx + zy * zy <= 4.0 and n < self.max_iter:
                zx, zy = zx * zx - zy * zy + cx, 2 * zx * zy + cy
                n += 1
            counts.append(n)
        return MandelbrotRow(self.row, tuple(counts))


class MandelbrotProducerTask:
    def __init__(self, width: int, height: int, max_iter: int = 80) -> None:
        self.width = width
        self.height = height
        self.max_iter = max_iter
        self.next_row = 0

    def run(self) -> Optional[MandelbrotRowTask]:
        if self.next_row >= self.height:
            return None
        task = MandelbrotRowTask(self.next_row, self.width, self.height,
                                 max_iter=self.max_iter)
        self.next_row += 1
        return task


def assemble_mandelbrot(results: List[MandelbrotRow], width: int,
                        height: int) -> np.ndarray:
    image = np.zeros((height, width), dtype=np.int32)
    seen = set()
    for r in results:
        image[r.row, :] = r.counts
        seen.add(r.row)
    if seen != set(range(height)):
        raise AssertionError(f"missing rows: {sorted(set(range(height)) - seen)}")
    return image


# ---------------------------------------------------------------------------
# block matrix multiply
# ---------------------------------------------------------------------------

@dataclass
class MatmulBlock:
    block_row: int
    block_col: int
    data: np.ndarray

    def run(self) -> "MatmulBlock":
        return self


class MatmulBlockTask:
    """Compute one tile of C = A·B from a row-strip of A and a
    column-strip of B (the strips travel inside the task)."""

    def __init__(self, block_row: int, block_col: int,
                 a_strip: np.ndarray, b_strip: np.ndarray) -> None:
        self.block_row = block_row
        self.block_col = block_col
        self.a_strip = np.ascontiguousarray(a_strip)
        self.b_strip = np.ascontiguousarray(b_strip)

    def run(self) -> MatmulBlock:
        return MatmulBlock(self.block_row, self.block_col,
                           self.a_strip @ self.b_strip)


class MatmulProducerTask:
    def __init__(self, a: np.ndarray, b: np.ndarray, block: int = 32) -> None:
        if a.shape[1] != b.shape[0]:
            raise ValueError("inner dimensions must agree")
        self.a = a
        self.b = b
        self.block = block
        self.rows = (a.shape[0] + block - 1) // block
        self.cols = (b.shape[1] + block - 1) // block
        self.next_index = 0

    def run(self) -> Optional[MatmulBlockTask]:
        if self.next_index >= self.rows * self.cols:
            return None
        i, j = divmod(self.next_index, self.cols)
        self.next_index += 1
        blk = self.block
        return MatmulBlockTask(
            i, j,
            self.a[i * blk:(i + 1) * blk, :],
            self.b[:, j * blk:(j + 1) * blk])


def assemble_matmul(results: List[MatmulBlock], shape: Tuple[int, int],
                    block: int = 32) -> np.ndarray:
    c = np.zeros(shape, dtype=results[0].data.dtype if results else float)
    for r in results:
        i, j = r.block_row * block, r.block_col * block
        c[i:i + r.data.shape[0], j:j + r.data.shape[1]] = r.data
    return c
