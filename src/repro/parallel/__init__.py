"""Embarrassingly-parallel computing on process networks (paper section 5).

Generic Producer/Worker/Consumer processes move :class:`Task` objects;
:func:`~repro.parallel.meta.meta_static` and
:func:`~repro.parallel.meta.meta_dynamic` replace one worker with N under
static or on-demand load balancing; :func:`~repro.parallel.farm.run_farm`
wires a whole farm in one call.  Workloads: weak-RSA factorization
(:mod:`~repro.parallel.factor`, the paper's experiment) and block image
compression (:mod:`~repro.parallel.imaging`, the paper's motivating
example).
"""

from repro.parallel.factor import (DEFAULT_BATCH, FactorConsumerResult,
                                   FactorProducerTask, FactorResult,
                                   FactorWorkerTask, factor_search_sequential,
                                   is_probable_prime, make_weak_key,
                                   random_prime, solve_difference)
from repro.parallel.executor import (InlineExecutor, ProcessPool,
                                     TaskExecutor, ThreadExecutor,
                                     default_pool_size, resolve_executor,
                                     shared_executor,
                                     shutdown_shared_executors)
from repro.parallel.farm import FarmHandle, build_farm, run_farm
from repro.parallel.generic import Consumer, Producer, Worker
from repro.parallel.imaging import (BLOCK, BlockTask, CompressedBlock,
                                    ImageProducerTask, compress_block,
                                    decompress_block, join_blocks,
                                    random_image, reassemble, split_blocks)
from repro.parallel.meta import ParallelHarness, meta_dynamic, meta_static
from repro.parallel.tasks import (STOP, CallableTask, RangeProducerTask,
                                  ResultTask, Task)

__all__ = [
    "DEFAULT_BATCH", "FactorConsumerResult", "FactorProducerTask",
    "FactorResult", "FactorWorkerTask", "factor_search_sequential",
    "is_probable_prime", "make_weak_key", "random_prime", "solve_difference",
    "FarmHandle", "build_farm", "run_farm",
    "Consumer", "Producer", "Worker",
    "InlineExecutor", "ProcessPool", "TaskExecutor", "ThreadExecutor",
    "default_pool_size", "resolve_executor", "shared_executor",
    "shutdown_shared_executors",
    "BLOCK", "BlockTask", "CompressedBlock", "ImageProducerTask",
    "compress_block", "decompress_block", "join_blocks", "random_image",
    "reassemble", "split_blocks",
    "ParallelHarness", "meta_dynamic", "meta_static",
    "STOP", "CallableTask", "RangeProducerTask", "ResultTask", "Task",
]
