"""Weak-RSA-key factorization workload (paper section 5.2).

"A 'weak' key would be one for which the difference between P and Q is
relatively small.  A brute-force approach for finding such 'weak' keys
searches for a value of P such that N = P × (P + D) for small differences
D."  Each worker task tests a batch of even differences (the paper's
batch of 32 "struck a balance between computation and communication");
for a given D, ``N = P(P+D)`` has the closed-form candidate
``P = (−D + √(D² + 4N)) / 2``, integral exactly when ``D² + 4N`` is a
perfect square of the right parity — checked with exact integer
arithmetic, so arbitrarily large keys work.

:func:`make_weak_key` builds an experimental instance exactly as the
paper did: pick a random prime P of the requested size, add a small
difference D "chosen so that the factor P would be found after executing
<n> worker tasks".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.parallel.tasks import STOP

__all__ = [
    "FactorResult", "FactorWorkerTask", "FactorProducerTask",
    "FactorConsumerResult", "factor_search_sequential",
    "is_probable_prime", "random_prime", "make_weak_key",
    "solve_difference",
]

#: the paper's batch size: even differences tested per worker task
DEFAULT_BATCH = 32


# ---------------------------------------------------------------------------
# number theory
# ---------------------------------------------------------------------------

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rounds: int = 24,
                      rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test (deterministic for n < 3.3e24 bases
    aside, we use random bases + the small-prime screen)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or random.Random(0xC0FFEE ^ n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """A random prime with exactly ``bits`` bits."""
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def solve_difference(n: int, d: int) -> Optional[int]:
    """Return P if ``n == P * (P + d)`` for a positive integer P, else None."""
    disc = d * d + 4 * n
    s = math.isqrt(disc)
    if s * s != disc:
        return None
    if (s - d) % 2 != 0:
        return None
    p = (s - d) // 2
    if p <= 0 or p * (p + d) != n:
        return None
    return p


def make_weak_key(bits: int = 64, found_at_task: int = 16,
                  batch: int = DEFAULT_BATCH,
                  seed: Optional[int] = None) -> Tuple[int, int, int]:
    """Build (N, P, D): N = P(P+D) with D landing inside worker task
    ``found_at_task`` (0-based) when tasks test ``batch`` even differences
    each — the paper's construction with 512-bit P and 2048 tasks.
    """
    rng = random.Random(seed)
    p = random_prime(bits, rng)
    # task k covers even differences [2*batch*k, 2*batch*(k+1))
    d = 2 * batch * found_at_task + 2 * rng.randrange(batch)
    return p * (p + d), p, d


# ---------------------------------------------------------------------------
# tasks
# ---------------------------------------------------------------------------

@dataclass
class FactorResult:
    """Outcome of one worker task (also serves as its consumer task)."""

    task_index: int
    d_start: int
    d_count: int
    p: Optional[int] = None
    d: Optional[int] = None

    @property
    def found(self) -> bool:
        return self.p is not None

    def run(self) -> "FactorResult":
        """Consumer-task role: report the result value.

        Returning ``self`` lets a collecting Consumer keep the full
        per-task record; the stop predicate
        (:meth:`FactorConsumerResult.stop_when`) fires on ``found``.
        """
        return self


class FactorWorkerTask:
    """Tests ``d_count`` even differences starting at ``d_start``."""

    def __init__(self, n: int, task_index: int, d_start: int,
                 d_count: int = DEFAULT_BATCH) -> None:
        self.n = n
        self.task_index = task_index
        self.d_start = d_start
        self.d_count = d_count

    def run(self) -> FactorResult:
        d = self.d_start
        for _ in range(self.d_count):
            p = solve_difference(self.n, d)
            if p is not None:
                return FactorResult(self.task_index, self.d_start,
                                    self.d_count, p=p, d=d)
            d += 2
        return FactorResult(self.task_index, self.d_start, self.d_count)


class FactorProducerTask:
    """Emits FactorWorkerTasks covering differences 0, 2, 4, … in batches."""

    def __init__(self, n: int, batch: int = DEFAULT_BATCH,
                 max_tasks: Optional[int] = None) -> None:
        self.n = n
        self.batch = batch
        self.max_tasks = max_tasks
        self.next_index = 0

    def run(self) -> Optional[FactorWorkerTask]:
        if self.max_tasks is not None and self.next_index >= self.max_tasks:
            return None
        task = FactorWorkerTask(self.n, self.next_index,
                                d_start=2 * self.batch * self.next_index,
                                d_count=self.batch)
        self.next_index += 1
        return task


class FactorConsumerResult:
    """Predicate for the generic Consumer: stop once a factor is reported."""

    @staticmethod
    def stop_when(value) -> bool:
        return isinstance(value, FactorResult) and value.found


# ---------------------------------------------------------------------------
# sequential baseline (Table 1's "strictly sequential implementation ...
# directly invoking the run methods ... without the use of process networks")
# ---------------------------------------------------------------------------

def factor_search_sequential(n: int, batch: int = DEFAULT_BATCH,
                             max_tasks: Optional[int] = None) -> Optional[FactorResult]:
    """Run producer → worker → consumer task chain in a single loop."""
    producer = FactorProducerTask(n, batch=batch, max_tasks=max_tasks)
    while True:
        work = producer.run()
        if work is None:
            return None
        result = work.run()
        outcome = result.run()
        if isinstance(outcome, FactorResult) and outcome.found:
            return outcome
