"""MetaStatic and MetaDynamic: parallel worker compositions (Figures 16–18).

Both compositions replace a single Worker in the Figure-1 pipeline with N
workers while remaining, "from the point of view of the producer and
consumer processes, equivalent to a single worker" — same results, same
order.

* **MetaStatic** (Figure 16): Scatter deals tasks round-robin; Gather
  collects round-robin.  Equal task counts per worker → great on
  homogeneous machines, "limited by the rate at which the slowest worker
  can execute tasks" on heterogeneous ones.
* **MetaDynamic** (Figures 17–18): the Direct process dispatches each task
  to the worker named by the index stream; the indexed merge (Turnstile +
  Select) emits completion indices back to Direct — so "a new task is
  distributed to a Worker for every result collected from that Worker" —
  and re-sequences results into dispatch order for the consumer.  The
  initial index sequence 0..N−1 is inserted by a Cons process (the
  ``(n)`` bubble of Figure 18).

Builders return a :class:`ParallelHarness`, keeping the worker processes
individually addressable so callers can ship them to compute servers
before starting the network (``harness.distribute(cluster)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.kpn.channel import Channel
from repro.kpn.network import Network
from repro.kpn.process import Process
from repro.parallel.generic import Worker
from repro.processes.codecs import INT
from repro.processes.routing import Direct, Gather, Scatter, Select, Turnstile
from repro.processes.sources import Sequence
from repro.processes.transforms import Cons

__all__ = ["ParallelHarness", "meta_static", "meta_dynamic"]

WorkerFactory = Callable[[int, "object", "object"], Process]


@dataclass
class ParallelHarness:
    """Handle over a parallel composition's pieces.

    ``plumbing`` runs where the producer/consumer run; each entry of
    ``workers`` may run anywhere — ship them with :meth:`distribute`
    before starting the network.
    """

    plumbing: List[Process] = field(default_factory=list)
    workers: List[Process] = field(default_factory=list)
    #: names of the workers, kept after :meth:`distribute` ships the
    #: objects away, so load accounting can still address them
    worker_names: List[str] = field(default_factory=list)

    def all_processes(self) -> List[Process]:
        return [*self.plumbing, *self.workers]

    def add_to(self, network: Network) -> "ParallelHarness":
        for p in self.all_processes():
            network.add(p)
        return self

    def add_local_to(self, network: Network) -> "ParallelHarness":
        """Add only the plumbing (workers have been shipped elsewhere)."""
        for p in self.plumbing:
            network.add(p)
        return self

    def distribute(self, cluster, settle: float = 0.0) -> "ParallelHarness":
        """Ship worker i to cluster server ``i % n_servers``.

        Channel links between the local plumbing and each worker are
        established automatically during serialization (section 4.2).
        Workers share no channels with each other, so no settling delay
        is needed between shipments (``settle`` remains available for
        callers chaining dependent stages).
        """
        import time

        self.worker_names = [w.name for w in self.workers]
        for i, worker in enumerate(self.workers):
            cluster.client(i % len(cluster.clients)).run(worker)
            if settle:
                time.sleep(settle)
        self.workers = []
        return self

    # -- load accounting (the Table 2 / Figure 19-20 raw data) ---------------
    def task_counts(self, counters: Optional[Mapping[str, float]] = None
                    ) -> Dict[str, int]:
        """Tasks processed per worker.

        Resolution order: an explicit flat counter snapshot (pass
        ``LocalCluster.merged_metrics()`` after a distributed run), then
        live local worker objects, then the local telemetry hub.
        """
        from repro.telemetry.core import TELEMETRY, render_key

        names = self.worker_names or [w.name for w in self.workers]
        counts: Dict[str, int] = {n: 0 for n in names}
        local = {w.name: getattr(w, "tasks_processed", 0)
                 for w in self.workers}
        for name in counts:
            if counters is not None:
                key = render_key("parallel.tasks_processed",
                                 (("worker", name),))
                counts[name] = int(counters.get(key, 0))
            if not counts[name]:
                counts[name] = local.get(name, 0)
            if not counts[name]:
                counts[name] = int(TELEMETRY.counter(
                    "parallel.tasks_processed", worker=name))
        return counts

    def load_shares(self, counters: Optional[Mapping[str, float]] = None
                    ) -> Dict[str, float]:
        """Fraction of all processed tasks each worker handled.

        Under MetaStatic the shares are equal by construction; under
        MetaDynamic they skew toward the faster workers — the per-host
        load shares behind the paper's Figures 19/20.
        """
        counts = self.task_counts(counters)
        total = sum(counts.values())
        if not total:
            return {n: 0.0 for n in counts}
        return {n: c / total for n, c in counts.items()}

    def latency_report(self) -> Dict[str, Dict[str, float]]:
        """Per-worker task-latency summaries from the local telemetry hub.

        ``{worker: {count, sum, min, max, mean}}`` — empty when telemetry
        was disabled during the run.
        """
        from repro.telemetry.core import TELEMETRY, render_key

        names = self.worker_names or [w.name for w in self.workers]
        hists = TELEMETRY.histograms()
        out: Dict[str, Dict[str, float]] = {}
        for name in names:
            key = render_key("parallel.task_seconds", (("worker", name),))
            hist = hists.get(key)
            if hist is not None:
                out[name] = hist.as_dict()
        return out


def _default_worker_factory(slowdowns: Optional[List[float]] = None,
                            executor=None) -> WorkerFactory:
    def factory(i: int, source, out) -> Process:
        slow = slowdowns[i] if slowdowns else 0.0
        return Worker(source, out, slowdown=slow, name=f"Worker-{i}",
                      executor=executor)

    return factory


def meta_static(tasks_in, results_out, n_workers: int,
                network: Optional[Network] = None,
                worker_factory: Optional[WorkerFactory] = None,
                slowdowns: Optional[List[float]] = None,
                channel_capacity: Optional[int] = None,
                executor=None, prefix: str = "") -> ParallelHarness:
    """Build the statically balanced composition of Figure 16.

    ``tasks_in`` / ``results_out`` are the channel endpoints that would
    have fed a single worker; the composition is a drop-in replacement.
    ``executor`` is forwarded to the default worker factory (ignored when
    a custom ``worker_factory`` is supplied).
    """
    factory = worker_factory or _default_worker_factory(slowdowns, executor)
    mk = (network.channel if network is not None
          else lambda cap=None, name="": Channel(cap or 1024, name=name))
    # `prefix` (e.g. "farm-3-") keeps internal channel labels unique when
    # several farms share one telemetry stream — the profiler and trace
    # viewers join events on the channel name
    w_in = [mk(channel_capacity, name=f"{prefix}static-in-{i}")
            for i in range(n_workers)]
    w_out = [mk(channel_capacity, name=f"{prefix}static-out-{i}")
             for i in range(n_workers)]
    harness = ParallelHarness()
    harness.plumbing.append(
        Scatter(tasks_in, [c.get_output_stream() for c in w_in], name="Scatter"))
    for i in range(n_workers):
        harness.workers.append(
            factory(i, w_in[i].get_input_stream(), w_out[i].get_output_stream()))
    harness.plumbing.append(
        Gather([c.get_input_stream() for c in w_out], results_out, name="Gather"))
    harness.worker_names = [w.name for w in harness.workers]
    return harness


def meta_dynamic(tasks_in, results_out, n_workers: int,
                 network: Optional[Network] = None,
                 worker_factory: Optional[WorkerFactory] = None,
                 slowdowns: Optional[List[float]] = None,
                 channel_capacity: Optional[int] = None,
                 executor=None, prefix: str = "") -> ParallelHarness:
    """Build the dynamically balanced composition of Figures 17–18.

    Internal graph::

        tasks_in ─→ Direct ─→ worker[i] ─→ Turnstile ─→ (pairs) Select ─→ results_out
                      ↑                        │(index)
                      └── Cons ←─ Sequence(0..N−1)   (initial dispatch)

    The Turnstile is the composition's single non-determinate process;
    the Select re-sequences, so the consumer-visible stream is identical
    to MetaStatic's (the "well behaved" property, section 5).
    """
    factory = worker_factory or _default_worker_factory(slowdowns, executor)
    mk = (network.channel if network is not None
          else lambda cap=None, name="": Channel(cap or 1024, name=name))
    w_in = [mk(channel_capacity, name=f"{prefix}dyn-in-{i}")
            for i in range(n_workers)]
    w_out = [mk(channel_capacity, name=f"{prefix}dyn-out-{i}")
             for i in range(n_workers)]
    pairs = mk(channel_capacity, name=f"{prefix}dyn-pairs")
    idx_turn = mk(channel_capacity, name=f"{prefix}dyn-idx-turnstile")
    idx_seed = mk(max(channel_capacity or 1024, 4 * n_workers),
                  name=f"{prefix}dyn-idx-seed")
    idx_direct = mk(channel_capacity, name=f"{prefix}dyn-idx-direct")
    harness = ParallelHarness()
    # initial dispatch sequence 0..N-1, then completion order (process (n))
    harness.plumbing.append(
        Sequence(idx_seed.get_output_stream(), start=0, iterations=n_workers,
                 codec=INT, name="InitialIndices"))
    harness.plumbing.append(
        Cons(idx_seed.get_input_stream(), idx_turn.get_input_stream(),
             idx_direct.get_output_stream(), name="Cons-idx"))
    harness.plumbing.append(
        Direct(tasks_in, idx_direct.get_input_stream(),
               [c.get_output_stream() for c in w_in], name="Direct"))
    for i in range(n_workers):
        harness.workers.append(
            factory(i, w_in[i].get_input_stream(), w_out[i].get_output_stream()))
    harness.plumbing.append(
        Turnstile([c.get_input_stream() for c in w_out],
                  pairs.get_output_stream(), idx_turn.get_output_stream(),
                  name="Turnstile"))
    harness.plumbing.append(
        Select(pairs.get_input_stream(), results_out, n_workers, name="Select"))
    harness.worker_names = [w.name for w in harness.workers]
    return harness
