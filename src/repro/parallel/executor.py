"""Multicore compute plane: pluggable executors for ``task.run()``.

The paper's farm experiments (Figures 19/20, Table 2) measure wall-clock
speedup across 34 CPUs.  In this reproduction every process is a Python
*thread*, so a farm's workers share one GIL and a CPU-bound workload
gains almost nothing from extra workers on one host — the network is
parallel, the compute is not.  This module separates the two concerns
the way PaPy-style pipelines do: **KPN semantics stay on threads**
(blocking reads, bounded buffers, cascading termination are untouched),
while the *compute* inside ``task.run()`` is delegated to a pluggable
executor:

* ``"inline"`` — run the task on the worker's own thread (the original
  behaviour, and the default: zero new moving parts);
* ``"thread"``  — run on a shared :class:`ThreadPoolExecutor`.  Still
  GIL-bound, but submission-path-identical to the process pool, which
  makes it the honest baseline for the multicore benchmark;
* ``"process"`` — run on a shared :class:`ProcessPool` of warm child
  interpreters, one per CPU by default.  The KPN worker thread blocks on
  the future while the compute sidesteps the GIL entirely.

The process pool deliberately does **not** use :mod:`multiprocessing`
workers: children are plain ``python -m repro.parallel._pool_child``
subprocesses speaking a length-prefixed frame protocol over their
stdin/stdout pipes.  That is spawn-safe by construction (a fresh
interpreter imports this module; nothing ever re-imports the parent's
``__main__``), matches how :class:`~repro.distributed.cluster.LocalCluster`
launches compute servers, and lets a crashed child be respawned
individually.  Task and result transfer reuses the distributed layer's
machinery end to end: the :class:`SourceShippingPickler` (so tasks whose
classes live in the caller's ``__main__`` or a test module just work)
with pickle protocol-5 out-of-band buffer collection (so numpy blocks
and other large buffers ride behind the pickle stream, never copied
into it).

Crash semantics: if a child dies mid-task (OOM kill, segfault,
``os.kill`` in the tests), the pool respawns it and retries the task
**once** on the fresh child; a second failure raises
:class:`~repro.errors.RemoteError` to the submitting thread.  Respawns
are counted in the ``parallel.pool_respawns`` telemetry counter.

Selection: ``run_farm(..., executor="process")``, the ``REPRO_EXECUTOR``
environment variable (read where the worker actually *runs*, so a
Worker shipped to a compute server picks up that host's setting), and
``REPRO_POOL_SIZE`` for the pool width (default ``os.cpu_count()``).
One pool is shared per host: a :class:`~repro.distributed.server.ComputeServer`
hub and any number of hosted runnables submit to the same warm pool.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import deque
from typing import Any, List, Optional

from repro.errors import ChannelError, RemoteError
from repro.telemetry.core import TELEMETRY as _telemetry

__all__ = [
    "TaskExecutor", "InlineExecutor", "ThreadExecutor", "ProcessPool",
    "resolve_executor", "shared_executor", "shutdown_shared_executors",
    "default_pool_size", "EXECUTOR_KINDS",
]

#: the executor spec names ``resolve_executor`` accepts
EXECUTOR_KINDS = ("inline", "thread", "process")

_U32 = struct.Struct(">I")
_STATUS_OK = 0
_STATUS_TASK_ERROR = 1


def default_pool_size() -> int:
    """Pool width: ``REPRO_POOL_SIZE`` if set, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_POOL_SIZE", "").strip()
    if env:
        size = int(env)
        if size < 1:
            raise ValueError(f"REPRO_POOL_SIZE must be >= 1, got {size}")
        return size
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# the executor interface
# ---------------------------------------------------------------------------

class TaskExecutor:
    """Where a Worker's ``task.run()`` actually executes."""

    kind = "abstract"

    def run_task(self, task: Any) -> Any:
        """Execute ``task.run()`` and return its result (blocking)."""
        return self.submit(task).result()

    def submit(self, task: Any):
        """Start executing ``task``; returns an object with ``result()``."""
        raise NotImplementedError

    def stats(self) -> dict:
        return {"kind": self.kind}

    def close(self) -> None:
        """Release resources; idempotent."""


class _DoneFuture:
    """An already-resolved future (inline execution finished in submit)."""

    __slots__ = ("_value", "_error")

    def __init__(self, value: Any = None, error: Optional[BaseException] = None):
        self._value = value
        self._error = error

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


class InlineExecutor(TaskExecutor):
    """Runs the task on the calling thread — the paper's original shape."""

    kind = "inline"

    def run_task(self, task: Any) -> Any:
        return task.run()

    def submit(self, task: Any) -> _DoneFuture:
        try:
            return _DoneFuture(task.run())
        except BaseException as exc:  # noqa: BLE001 - future carries it
            return _DoneFuture(error=exc)


class ThreadExecutor(TaskExecutor):
    """A shared :class:`concurrent.futures.ThreadPoolExecutor` backend.

    GIL-bound like inline execution, but tasks travel the same
    submit/future path as the process pool — the apples-to-apples
    baseline the multicore benchmark compares against.
    """

    kind = "thread"

    def __init__(self, size: Optional[int] = None) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.size = size or default_pool_size()
        self._pool = ThreadPoolExecutor(max_workers=self.size,
                                        thread_name_prefix="repro-exec")
        self.tasks_completed = 0

    def submit(self, task: Any):
        future = self._pool.submit(task.run)
        future.add_done_callback(self._done)
        return future

    def _done(self, _future) -> None:
        self.tasks_completed += 1
        if _telemetry.enabled:
            _telemetry.inc("parallel.pool_tasks", 1, backend=self.kind)

    def stats(self) -> dict:
        return {"kind": self.kind, "size": self.size,
                "tasks_completed": self.tasks_completed}

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# task/result transfer (reuses the distributed serialization plane)
# ---------------------------------------------------------------------------

def _dumps_task(obj: Any) -> List[Any]:
    """Serialize for a pool child: source-shipping pickle + OOB buffers.

    Returns ``[pickle_bytes, raw_buffer, ...]`` — the protocol-5
    ``PickleBuffer`` views ride as separate frame parts, exactly like the
    RPC layer's ``OBJ_OOB`` frames, so large payloads are written to the
    pipe straight from their owning buffer.
    """
    from repro.distributed.codebase import SourceShippingPickler

    buffers: List[Any] = []

    def _collect(pb: pickle.PickleBuffer):
        try:
            buffers.append(pb.raw())
        except BufferError:        # non-contiguous: keep it in the stream
            return True
        return None

    buf = io.BytesIO()
    pickler = SourceShippingPickler(buf, buffer_callback=_collect)
    pickler.dump(obj)
    for action in pickler.post_actions:
        action()
    return [buf.getvalue(), *buffers]


def _loads_task(parts: List[bytes]) -> Any:
    from repro.distributed.migration import loads_migration

    return loads_migration(parts[0], buffers=parts[1:])


def _write_frame(fh, parts: List[Any], status: Optional[int] = None) -> None:
    header = bytearray()
    if status is not None:
        header.append(status)
    header += _U32.pack(len(parts))
    for p in parts:
        header += _U32.pack(len(p))
    fh.write(header)
    for p in parts:
        fh.write(p)
    fh.flush()


def _read_exact(fh, n: int) -> bytes:
    data = fh.read(n)
    if data is None or len(data) != n:
        raise EOFError("pool pipe closed")
    return data


def _read_frame(fh, with_status: bool = False):
    """Read one frame; returns ``None`` on clean EOF at a frame boundary."""
    first = fh.read(1)
    if not first:
        return None
    # without a status byte, ``first`` is already the nparts word's first
    # byte; with one, the whole 4-byte word is still unread
    status = first[0] if with_status else None
    rest = 4 if with_status else 3
    head = b"" if with_status else first
    (nparts,) = _U32.unpack(head + _read_exact(fh, rest))
    lens = _U32.iter_unpack(_read_exact(fh, 4 * nparts))
    parts = [_read_exact(fh, n) for (n,) in lens]
    return (status, parts) if with_status else parts


# ---------------------------------------------------------------------------
# the process pool
# ---------------------------------------------------------------------------

class _PoolChild:
    """One warm child interpreter and its pipe endpoints."""

    __slots__ = ("proc", "stdin", "stdout", "spawned_at")

    def __init__(self, proc: subprocess.Popen) -> None:
        self.proc = proc
        self.stdin = proc.stdin
        self.stdout = proc.stdout
        self.spawned_at = time.monotonic()

    @property
    def pid(self) -> int:
        return self.proc.pid

    def kill(self) -> None:
        for closer in (self.stdin.close, self.stdout.close):
            try:
                closer()
            except OSError:
                pass
        try:
            self.proc.kill()
        except OSError:
            pass
        self.proc.wait()


class _PoolFuture:
    """Handle for one in-flight pool task; ``result()`` blocks the caller.

    The task was already sent to a dedicated child when this future was
    created; ``result()`` reads the child's reply, transparently
    respawning the child and retrying the task once if the child died.
    """

    __slots__ = ("_pool", "_child", "_parts", "_t0")

    def __init__(self, pool: "ProcessPool", child: _PoolChild,
                 parts: List[Any]) -> None:
        self._pool = pool
        self._child = child
        self._parts = parts
        self._t0 = time.perf_counter()

    def result(self, timeout: Optional[float] = None) -> Any:
        pool = self._pool
        child = self._child
        attempts_left = pool.max_retries
        while True:
            try:
                reply = _read_frame(child.stdout, with_status=True)
                if reply is None:
                    raise EOFError("pool child exited mid-task")
            except (EOFError, OSError, ValueError) as exc:
                child = pool._replace_crashed(child)
                if child is None:
                    raise ChannelError("process pool closed") from exc
                if attempts_left <= 0:
                    pool._checkin(child)
                    raise RemoteError(
                        f"pool task failed {pool.max_retries + 1} times: "
                        f"child died while executing it ({exc})") from exc
                attempts_left -= 1
                try:
                    _write_frame(child.stdin, self._parts)
                except OSError:
                    continue       # the fresh child died too: loop retries
                continue
            break
        pool._checkin(child)
        pool.tasks_completed += 1
        if _telemetry.enabled:
            _telemetry.inc("parallel.pool_tasks", 1, backend="process")
            _telemetry.observe("parallel.pool_exec_seconds",
                               time.perf_counter() - self._t0)
        status, parts = reply
        if status == _STATUS_TASK_ERROR:
            message, remote_tb = pickle.loads(parts[0])
            raise RemoteError(message, remote_tb)
        return _loads_task(parts)


class ProcessPool(TaskExecutor):
    """A host-wide pool of warm child interpreters executing tasks.

    Parameters
    ----------
    size:
        Number of children (default: ``REPRO_POOL_SIZE`` or CPU count).
    max_retries:
        How many times a task whose child died is retried on a fresh
        child (default 1, per the crash-survival contract).
    """

    kind = "process"

    def __init__(self, size: Optional[int] = None, max_retries: int = 1) -> None:
        self.size = size or default_pool_size()
        self.max_retries = max_retries
        self.tasks_completed = 0
        self.respawns = 0
        self.children_spawned = 0
        self._closed = False
        self._cv = threading.Condition()
        self._idle: deque = deque()
        self._children: List[_PoolChild] = []
        for _ in range(self.size):      # warm start: pay spawn cost once
            child = self._spawn()
            self._children.append(child)
            self._idle.append(child)

    # -- child lifecycle ----------------------------------------------------
    def _spawn(self) -> _PoolChild:
        # make sure the child can import repro even when the parent added
        # it to sys.path programmatically (scripts, embedded use)
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (pkg_root + os.pathsep + existing
                                 if existing else pkg_root)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel._pool_child"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=None,
            env=env)
        self.children_spawned += 1
        return _PoolChild(proc)

    def _replace_crashed(self, child: _PoolChild) -> Optional[_PoolChild]:
        """Reap a dead child and hand back a fresh one (None if closed)."""
        child.kill()
        with self._cv:
            if self._closed:
                return None
            try:
                self._children.remove(child)
            except ValueError:
                pass
            fresh = self._spawn()
            self._children.append(fresh)
        self.respawns += 1
        if _telemetry.enabled:
            _telemetry.inc("parallel.pool_respawns")
        return fresh

    def child_pids(self) -> List[int]:
        with self._cv:
            return [c.pid for c in self._children]

    # -- checkout/checkin ---------------------------------------------------
    def _checkout(self) -> _PoolChild:
        t0 = time.perf_counter()
        with self._cv:
            while not self._idle and not self._closed:
                self._cv.wait()
            if self._closed:
                raise ChannelError("process pool closed")
            child = self._idle.popleft()
        if _telemetry.enabled:
            _telemetry.observe("parallel.pool_wait_seconds",
                               time.perf_counter() - t0)
        return child

    def _checkin(self, child: _PoolChild) -> None:
        with self._cv:
            if self._closed or child not in self._children:
                return
            self._idle.append(child)
            self._cv.notify()

    # -- the executor interface ---------------------------------------------
    def submit(self, task: Any) -> _PoolFuture:
        parts = _dumps_task(task)
        while True:
            child = self._checkout()
            try:
                _write_frame(child.stdin, parts)
            except OSError:
                # child died while idle (e.g. killed between tasks):
                # replace it and try the next one — nothing ran yet, so
                # this is a respawn, not a task retry.
                fresh = self._replace_crashed(child)
                if fresh is None:
                    raise ChannelError("process pool closed")
                self._checkin(fresh)
                continue
            return _PoolFuture(self, child, parts)

    def stats(self) -> dict:
        with self._cv:
            idle = len(self._idle)
            total = len(self._children)
        return {"kind": self.kind, "size": self.size,
                "busy": total - idle, "idle": idle,
                "tasks_completed": self.tasks_completed,
                "respawns": self.respawns,
                "children_spawned": self.children_spawned}

    def close(self) -> None:
        with self._cv:
            if self._closed:
                return
            self._closed = True
            children, self._children = self._children, []
            self._idle.clear()
            self._cv.notify_all()
        for child in children:
            child.kill()


# ---------------------------------------------------------------------------
# child main loop (``python -m repro.parallel._pool_child``)
# ---------------------------------------------------------------------------

def _child_serve() -> None:  # pragma: no cover - runs in subprocesses
    # Claim the stdout pipe for the frame protocol, then point fd 1 (and
    # sys.stdout) at stderr so a print() inside a task cannot corrupt it.
    proto_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    inp = os.fdopen(os.dup(0), "rb")
    while True:
        frame = _read_frame(inp)
        if frame is None:
            return
        try:
            task = _loads_task(frame)
            result = task.run()
            _write_frame(proto_out, _dumps_task(result), status=_STATUS_OK)
        except BaseException as exc:  # noqa: BLE001 - report to the parent
            payload = pickle.dumps(
                (f"{type(exc).__name__}: {exc}", traceback.format_exc()),
                protocol=pickle.HIGHEST_PROTOCOL)
            _write_frame(proto_out, [payload], status=_STATUS_TASK_ERROR)


# ---------------------------------------------------------------------------
# shared per-host executors and spec resolution
# ---------------------------------------------------------------------------

_shared_lock = threading.Lock()
_shared: dict = {}
_INLINE = InlineExecutor()


def shared_executor(kind: str, size: Optional[int] = None) -> TaskExecutor:
    """The host-wide executor of the given kind, created on first use.

    The pool is warm-started once and shared by every farm, hosted
    runnable, and compute-server hub in this interpreter; ``size`` only
    applies to the first call that actually creates it.
    """
    if kind == "inline":
        return _INLINE
    with _shared_lock:
        ex = _shared.get(kind)
        if ex is None:
            if kind == "thread":
                ex = ThreadExecutor(size)
            elif kind == "process":
                ex = ProcessPool(size)
            else:
                raise ValueError(
                    f"unknown executor kind {kind!r}; known: {EXECUTOR_KINDS}")
            _shared[kind] = ex
        return ex


def shutdown_shared_executors() -> None:
    """Close and forget the shared thread/process executors (idempotent)."""
    with _shared_lock:
        executors, _shared_state = list(_shared.values()), _shared.clear()
    for ex in executors:
        try:
            ex.close()
        except Exception:
            pass


atexit.register(shutdown_shared_executors)


def resolve_executor(spec: "str | TaskExecutor | None") -> TaskExecutor:
    """Resolve an executor spec to a live executor.

    ``None`` consults ``REPRO_EXECUTOR`` (default ``"inline"``) *at call
    time*, i.e. on the host where the worker runs — a Worker shipped to a
    compute server resolves against that server's environment.  Strings
    name the shared per-host executors; an executor instance passes
    through (caller owns its lifecycle).
    """
    if isinstance(spec, TaskExecutor):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_EXECUTOR", "").strip() or "inline"
    if spec not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {spec!r}; known: {EXECUTOR_KINDS}")
    return shared_executor(spec)


if __name__ == "__main__":  # pragma: no cover - child entry point
    _child_serve()
