"""The Task protocol and active-object conventions (paper section 5.1).

"The computation to be carried out on the data is defined not in the
processes, but in the objects containing the data itself."  A *task* is
any object with a no-argument ``run()`` method.  The three roles chain:

* a **producer task**'s ``run()`` returns the next *worker task* (or
  ``None`` when the supply is exhausted — our explicit end-of-supply
  signal, where the paper uses iteration limits);
* a **worker task**'s ``run()`` performs the actual computation and
  returns a *consumer task* (the result, itself runnable);
* a **consumer task**'s ``run()`` absorbs the result; it may raise
  :class:`~repro.kpn.process.StopProcess` (or return :data:`STOP`) to
  terminate the computation early — how the factorization demo stops once
  a factor is found.

Tasks are plain data + code: they pickle across servers (with source
shipping for client-defined classes), which is the whole point.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

__all__ = ["Task", "STOP", "CallableTask", "RangeProducerTask", "ResultTask"]

#: sentinel a consumer task may return to stop the consumer process
STOP = "__repro_stop__"


@runtime_checkable
class Task(Protocol):
    """Structural protocol: anything with a no-argument ``run``."""

    def run(self) -> Any: ...


class CallableTask:
    """Adapts a picklable callable (+ args) into a Task."""

    def __init__(self, fn, *args, **kwargs) -> None:
        self.fn = fn
        self.args = args
        self.kwargs = kwargs

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CallableTask({getattr(self.fn, '__name__', self.fn)!r}, …)"


class RangeProducerTask:
    """Producer task emitting ``make_task(i)`` for i in [0, count).

    A ready-made producer for index-parameterized workloads; ``run``
    returns ``None`` once the range is exhausted.
    """

    def __init__(self, count: int, make_task) -> None:
        self.count = count
        self.make_task = make_task
        self.next_index = 0

    def run(self) -> Optional[Any]:
        if self.next_index >= self.count:
            return None
        task = self.make_task(self.next_index)
        self.next_index += 1
        return task


class ResultTask:
    """The simplest consumer task: carries a value; ``run`` returns it.

    Worker tasks that have no side-effectful delivery step wrap their
    result in one of these; the generic Consumer runs it and can collect
    the returned value locally (results must not capture references to
    client-side state, since they are created on — possibly remote —
    workers).
    """

    def __init__(self, value: Any) -> None:
        self.value = value

    def run(self) -> Any:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultTask({self.value!r})"
