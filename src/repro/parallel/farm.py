"""One-call task farms: the Figure 1/16/17 pipelines, ready to run.

:func:`run_farm` assembles producer → (single worker | MetaStatic |
MetaDynamic) → consumer, runs the network, and returns what the consumer
collected.  It is the entry point the examples and the real-execution
benchmark use; everything it builds is also reachable piecemeal through
:mod:`repro.parallel.meta` for callers that want to distribute workers to
compute servers first.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from repro.kpn.network import Network
from repro.parallel.generic import Consumer, Producer, Worker
from repro.parallel.meta import ParallelHarness, meta_dynamic, meta_static

__all__ = ["build_farm", "run_farm", "FarmHandle"]

#: per-instance suffix for farm channel names — two farms sharing one
#: Network (or one telemetry hub) must not collide in trace/metric labels
_farm_ids = itertools.count()


class FarmHandle:
    """Everything :func:`build_farm` created, pre-run."""

    def __init__(self, network: Network, results: List[Any],
                 harness: Optional[ParallelHarness],
                 producer: Producer, consumer: Consumer) -> None:
        self.network = network
        self.results = results
        self.harness = harness
        self.producer = producer
        self.consumer = consumer

    def run(self, timeout: Optional[float] = None) -> List[Any]:
        """Run the farm; on timeout, tear the network down before returning.

        ``Network.run`` leaves threads parked on channel operations when
        the join times out; a farm is a self-contained pipeline, so the
        handle closes every channel (waking all of them into cascading
        termination) and re-joins briefly rather than leaking threads.
        Shared executors (the per-host pool) are left running — they
        outlive any one farm by design.
        """
        completed = self.network.run(timeout=timeout)
        if not completed:
            self.network.shutdown()
            self.network.join(timeout=5.0)
        return self.results


def build_farm(producer_task: Any, n_workers: int = 1, mode: str = "dynamic",
               stop_when: Optional[Callable[[Any], bool]] = None,
               producer_iterations: int = 0,
               consumer_iterations: int = 0,
               slowdowns: Optional[List[float]] = None,
               network: Optional[Network] = None,
               channel_capacity: Optional[int] = None,
               cluster=None, defer_workers: bool = False,
               executor: Any = None) -> FarmHandle:
    """Assemble a farm; ``mode`` ∈ {"pipeline", "static", "dynamic"}.

    ``cluster`` (a started :class:`~repro.distributed.LocalCluster`) ships
    the workers to compute servers before the network starts; plumbing and
    producer/consumer stay local, exactly the partitioning the paper's
    experiments used.

    ``defer_workers=True`` adds only the plumbing to the network and
    leaves the workers on the harness for the caller to place — the hook
    policy-driven placement (:func:`repro.distributed.balancer.place_workers`)
    uses.

    ``executor`` selects the compute backend for every worker:
    ``"inline"`` (default), ``"thread"``, ``"process"``, or a live
    :class:`~repro.parallel.executor.TaskExecutor` — see
    :mod:`repro.parallel.executor`.
    """
    if mode not in ("pipeline", "static", "dynamic"):
        raise ValueError("mode must be 'pipeline', 'static' or 'dynamic'")
    net = network or Network(name=f"farm-{mode}")
    # channel names carry a per-farm id: two farms on one Network (or one
    # telemetry hub) would otherwise collide in trace and metric labels
    fid = next(_farm_ids)
    tasks = net.channel(channel_capacity, name=f"farm-{fid}-tasks")
    results_ch = net.channel(channel_capacity, name=f"farm-{fid}-results")
    collected: List[Any] = []
    producer = Producer(producer_task, tasks.get_output_stream(),
                        iterations=producer_iterations, name="Producer")
    consumer = Consumer(results_ch.get_input_stream(),
                        iterations=consumer_iterations,
                        collect_into=collected, stop_when=stop_when,
                        name="Consumer")
    net.add(producer)
    harness: Optional[ParallelHarness] = None
    if mode == "pipeline":
        slow = slowdowns[0] if slowdowns else 0.0
        net.add(Worker(tasks.get_input_stream(),
                       results_ch.get_output_stream(), slowdown=slow,
                       name="Worker", executor=executor))
    else:
        build = meta_static if mode == "static" else meta_dynamic
        harness = build(tasks.get_input_stream(),
                        results_ch.get_output_stream(), n_workers,
                        network=net, slowdowns=slowdowns,
                        channel_capacity=channel_capacity,
                        executor=executor, prefix=f"farm-{fid}-")
        if cluster is not None:
            harness.distribute(cluster)
            harness.add_local_to(net)
        elif defer_workers:
            harness.add_local_to(net)
        else:
            harness.add_to(net)
    net.add(consumer)
    return FarmHandle(net, collected, harness, producer, consumer)


def run_farm(producer_task: Any, n_workers: int = 1, mode: str = "dynamic",
             timeout: Optional[float] = 300.0, **kwargs) -> List[Any]:
    """Build and run a farm; returns the consumer's collected values."""
    return build_farm(producer_task, n_workers=n_workers, mode=mode,
                      **kwargs).run(timeout=timeout)
