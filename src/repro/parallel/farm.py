"""One-call task farms: the Figure 1/16/17 pipelines, ready to run.

:func:`run_farm` assembles producer → (single worker | MetaStatic |
MetaDynamic) → consumer, runs the network, and returns what the consumer
collected.  It is the entry point the examples and the real-execution
benchmark use; everything it builds is also reachable piecemeal through
:mod:`repro.parallel.meta` for callers that want to distribute workers to
compute servers first.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.kpn.network import Network
from repro.parallel.generic import Consumer, Producer, Worker
from repro.parallel.meta import ParallelHarness, meta_dynamic, meta_static

__all__ = ["build_farm", "run_farm", "FarmHandle"]


class FarmHandle:
    """Everything :func:`build_farm` created, pre-run."""

    def __init__(self, network: Network, results: List[Any],
                 harness: Optional[ParallelHarness],
                 producer: Producer, consumer: Consumer) -> None:
        self.network = network
        self.results = results
        self.harness = harness
        self.producer = producer
        self.consumer = consumer

    def run(self, timeout: Optional[float] = None) -> List[Any]:
        self.network.run(timeout=timeout)
        return self.results


def build_farm(producer_task: Any, n_workers: int = 1, mode: str = "dynamic",
               stop_when: Optional[Callable[[Any], bool]] = None,
               producer_iterations: int = 0,
               consumer_iterations: int = 0,
               slowdowns: Optional[List[float]] = None,
               network: Optional[Network] = None,
               channel_capacity: Optional[int] = None,
               cluster=None, defer_workers: bool = False) -> FarmHandle:
    """Assemble a farm; ``mode`` ∈ {"pipeline", "static", "dynamic"}.

    ``cluster`` (a started :class:`~repro.distributed.LocalCluster`) ships
    the workers to compute servers before the network starts; plumbing and
    producer/consumer stay local, exactly the partitioning the paper's
    experiments used.

    ``defer_workers=True`` adds only the plumbing to the network and
    leaves the workers on the harness for the caller to place — the hook
    policy-driven placement (:func:`repro.distributed.balancer.place_workers`)
    uses.
    """
    if mode not in ("pipeline", "static", "dynamic"):
        raise ValueError("mode must be 'pipeline', 'static' or 'dynamic'")
    net = network or Network(name=f"farm-{mode}")
    tasks = net.channel(channel_capacity, name="farm-tasks")
    results_ch = net.channel(channel_capacity, name="farm-results")
    collected: List[Any] = []
    producer = Producer(producer_task, tasks.get_output_stream(),
                        iterations=producer_iterations, name="Producer")
    consumer = Consumer(results_ch.get_input_stream(),
                        iterations=consumer_iterations,
                        collect_into=collected, stop_when=stop_when,
                        name="Consumer")
    net.add(producer)
    harness: Optional[ParallelHarness] = None
    if mode == "pipeline":
        slow = slowdowns[0] if slowdowns else 0.0
        net.add(Worker(tasks.get_input_stream(),
                       results_ch.get_output_stream(), slowdown=slow,
                       name="Worker"))
    else:
        build = meta_static if mode == "static" else meta_dynamic
        harness = build(tasks.get_input_stream(),
                        results_ch.get_output_stream(), n_workers,
                        network=net, slowdowns=slowdowns,
                        channel_capacity=channel_capacity)
        if cluster is not None:
            harness.distribute(cluster)
            harness.add_local_to(net)
        elif defer_workers:
            harness.add_local_to(net)
        else:
            harness.add_to(net)
    net.add(consumer)
    return FarmHandle(net, collected, harness, producer, consumer)


def run_farm(producer_task: Any, n_workers: int = 1, mode: str = "dynamic",
             timeout: Optional[float] = 300.0, **kwargs) -> List[Any]:
    """Build and run a farm; returns the consumer's collected values."""
    return build_farm(producer_task, n_workers=n_workers, mode=mode,
                      **kwargs).run(timeout=timeout)
