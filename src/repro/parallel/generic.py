"""Generic Producer, Worker, and Consumer processes (paper section 5.1).

"The creation of a new application simply requires the implementation of
application-specific producer, worker, and consumer Tasks" — these three
processes are completely workload-agnostic and move :class:`Task` objects
over ordinary byte channels via the object codec.

Termination forms a clean cascade in both directions:

* supply exhausted (producer task returns ``None``, or the Producer hits
  its iteration limit) → Producer stops → workers drain and stop →
  consumer drains and stops;
* answer found (consumer task returns :data:`~repro.parallel.tasks.STOP`
  or raises StopProcess) → Consumer stops → broken channels propagate
  upstream, stopping workers and producer (the paper notes some
  already-produced tasks may go unconsumed in this mode — that is
  expected and harmless).
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from repro.kpn.process import IterativeProcess, StopProcess
from repro.kpn.streams import InputStream, OutputStream
from repro.parallel.tasks import STOP
from repro.processes.codecs import OBJECT
from repro.telemetry.core import TELEMETRY as _telemetry

__all__ = ["Producer", "Worker", "Consumer"]


class Producer(IterativeProcess):
    """Repeatedly runs one producer task; emits the tasks it returns.

    ``iterations`` bounds the number of emissions (the paper's
    mechanism); a producer task returning ``None`` ends the supply early.
    """

    #: user Task objects mutate their own (non-builtin) state in run() —
    #: e.g. RangeProducerTask.next_index — which the async backend's
    #: speculative replay cannot roll back; farms host on threads
    kpn_async = False

    def __init__(self, task: Any, out: OutputStream, iterations: int = 0,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.task = task
        self.out = out
        self.track(out)

    def step(self) -> None:
        work = self.task.run()
        if work is None:
            raise StopProcess
        if _telemetry.enabled:
            _telemetry.inc("parallel.tasks_produced", 1, producer=self.name)
        OBJECT.write(self.out, work)


class Worker(IterativeProcess):
    """Reads a task, runs it, writes the (task-shaped) result.

    ``slowdown`` adds a fixed per-task delay — used by tests and the
    real-execution benchmark to emulate heterogeneous CPU speeds on one
    machine (a class-C worker is a class-A worker with a bigger
    slowdown).

    ``executor`` selects where ``task.run()`` executes: ``None`` (the
    host's ``REPRO_EXECUTOR`` setting, default inline), ``"inline"``,
    ``"thread"``, ``"process"``, or a live
    :class:`~repro.parallel.executor.TaskExecutor`.  The spec is resolved
    lazily in ``on_start`` so a worker shipped to a compute server uses
    *that* host's shared pool, and the KPN thread's blocking-read /
    bounded-buffer semantics are untouched — it just blocks on the
    executor's future instead of the GIL.
    """

    #: runs arbitrary user tasks (and may time.sleep a slowdown): not
    #: replay-safe and must not stall a shared event-loop thread
    kpn_async = False

    def __init__(self, source: InputStream, out: OutputStream,
                 iterations: int = 0, slowdown: float = 0.0,
                 name: Optional[str] = None, executor: Any = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.out = out
        self.slowdown = slowdown
        self.executor = executor
        self.tasks_processed = 0
        self._exec: Any = None
        self.track(source, out)

    def on_start(self) -> None:
        from repro.parallel.executor import resolve_executor

        self._exec = resolve_executor(self.executor)

    def step(self) -> None:
        task = OBJECT.read(self.source)
        if self._exec is None:      # live-migrated workers skip on_start
            self.on_start()
        traced = _telemetry.enabled
        t0 = time.perf_counter() if traced else 0.0
        result = self._exec.run_task(task)
        if self.slowdown > 0.0:
            time.sleep(self.slowdown)
        self.tasks_processed += 1
        if traced:
            # latency includes the slowdown: it emulates a slower CPU, and
            # the per-worker distribution is exactly the heterogeneity the
            # MetaStatic-vs-MetaDynamic comparison (Table 2) hinges on.
            _telemetry.observe("parallel.task_seconds",
                               time.perf_counter() - t0, worker=self.name)
            _telemetry.inc("parallel.tasks_processed", 1, worker=self.name)
        OBJECT.write(self.out, result)

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["tasks_processed"] = 0
        # the resolved executor is host-local (threads, child processes);
        # only the spec travels, and re-resolves on the destination host.
        state["_exec"] = None
        if not isinstance(state.get("executor"), (str, type(None))):
            state["executor"] = getattr(state["executor"], "kind", None)
        return state


class Consumer(IterativeProcess):
    """Reads result tasks and runs them (paper: "discards the result").

    Pragmatic extensions for in-process use: ``collect_into`` records each
    run's return value, and ``stop_when`` stops the computation once a
    predicate on those values holds — both optional, neither changes the
    Task protocol.
    """

    #: consumer tasks are user code too (see Producer.kpn_async)
    kpn_async = False

    def __init__(self, source: InputStream, iterations: int = 0,
                 collect_into: Optional[List[Any]] = None,
                 stop_when: Optional[Callable[[Any], bool]] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(iterations=iterations, name=name)
        self.source = source
        self.collect_into = collect_into
        self.stop_when = stop_when
        self.track(source)

    def step(self) -> None:
        task = OBJECT.read(self.source)
        run = getattr(task, "run", None)
        # Plain values are their own result — lets workloads whose worker
        # tasks return bare data skip defining a consumer-task class.
        value = run() if callable(run) else task
        if _telemetry.enabled:
            _telemetry.inc("parallel.results_consumed", 1, consumer=self.name)
        if self.collect_into is not None:
            self.collect_into.append(value)
        if value == STOP:
            raise StopProcess
        if self.stop_when is not None and self.stop_when(value):
            raise StopProcess
