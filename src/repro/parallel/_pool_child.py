"""Entry point for process-pool children (``python -m repro.parallel._pool_child``).

Separate from :mod:`repro.parallel.executor` so runpy does not re-execute
a module the package ``__init__`` already imported (which double-runs the
module body and warns).  Keep this importable with no side effects.
"""

from repro.parallel.executor import _child_serve

if __name__ == "__main__":
    _child_serve()
