"""Block image compression: the motivating workload of section 5.

"An image can be divided into 16x16 blocks of pixels that are compressed
independently with the results collected and written in order to an image
file."  We implement exactly that shape with a lossless block codec
(delta-predictive transform + zlib), so correctness is checkable
bit-for-bit: compress in parallel, reassemble in consumer order, decode,
compare with the original.  Because the parallel compositions are
order-preserving, reassembly is a plain sequential append — no indices
needed — which is itself a meaningful test of the "equivalent to a single
worker" property.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "BLOCK", "split_blocks", "join_blocks", "compress_block",
    "decompress_block", "BlockTask", "CompressedBlock",
    "ImageProducerTask", "reassemble", "random_image",
]

#: the paper's block edge
BLOCK = 16


def random_image(height: int, width: int, seed: int = 0) -> np.ndarray:
    """A synthetic grayscale image with spatial correlation (so the codec
    has something to compress)."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, size=(height // 8 + 2, width // 8 + 2))
    # crude bilinear upsample for smooth regions + noise
    img = np.kron(base, np.ones((8, 8)))[:height, :width]
    img = img + rng.integers(-6, 7, size=(height, width))
    return np.clip(img, 0, 255).astype(np.uint8)


def split_blocks(image: np.ndarray, block: int = BLOCK) -> List[np.ndarray]:
    """Row-major 16×16 tiles; edge tiles are zero-padded to full size."""
    h, w = image.shape
    blocks = []
    for y in range(0, h, block):
        for x in range(0, w, block):
            tile = image[y:y + block, x:x + block]
            if tile.shape != (block, block):
                padded = np.zeros((block, block), dtype=image.dtype)
                padded[: tile.shape[0], : tile.shape[1]] = tile
                tile = padded
            blocks.append(np.ascontiguousarray(tile))
    return blocks


def join_blocks(blocks: List[np.ndarray], height: int, width: int,
                block: int = BLOCK) -> np.ndarray:
    """Inverse of :func:`split_blocks` (drops the padding)."""
    cols = (width + block - 1) // block
    out = np.zeros((height, width), dtype=blocks[0].dtype)
    for i, tile in enumerate(blocks):
        y = (i // cols) * block
        x = (i % cols) * block
        out[y:y + block, x:x + block] = tile[: min(block, height - y),
                                             : min(block, width - x)]
    return out


def compress_block(tile: np.ndarray) -> bytes:
    """Lossless: horizontal delta prediction, then zlib."""
    deltas = tile.astype(np.int16)
    deltas[:, 1:] -= tile[:, :-1].astype(np.int16)
    return zlib.compress(deltas.astype(np.int16).tobytes(), level=6)


def decompress_block(payload: bytes, block: int = BLOCK) -> np.ndarray:
    deltas = np.frombuffer(zlib.decompress(payload), dtype=np.int16)
    deltas = deltas.reshape(block, block).astype(np.int16)
    out = np.cumsum(deltas, axis=1, dtype=np.int64)
    return out.astype(np.uint8)


@dataclass
class CompressedBlock:
    """Worker output; its consumer-task ``run`` hands back (index, bytes)."""

    index: int
    payload: bytes

    def run(self) -> Tuple[int, bytes]:
        return self.index, self.payload


@dataclass
class BlockTask:
    """Worker task: compress one tile."""

    index: int
    tile: np.ndarray

    def run(self) -> CompressedBlock:
        return CompressedBlock(self.index, compress_block(self.tile))


class ImageProducerTask:
    """Producer task: emits one BlockTask per tile, in row-major order."""

    def __init__(self, image: np.ndarray, block: int = BLOCK) -> None:
        self.blocks = split_blocks(image, block)
        self.next_index = 0

    def run(self) -> Optional[BlockTask]:
        if self.next_index >= len(self.blocks):
            return None
        task = BlockTask(self.next_index, self.blocks[self.next_index])
        self.next_index += 1
        return task


def reassemble(collected: List[Tuple[int, bytes]], height: int, width: int,
               block: int = BLOCK) -> np.ndarray:
    """Rebuild an image from consumer-collected (index, payload) pairs.

    Asserts the pairs arrived in order — the determinacy property the
    parallel compositions guarantee (and the tests rely on).
    """
    indices = [i for i, _ in collected]
    if indices != sorted(indices):
        raise AssertionError(
            "blocks arrived out of order — order-preservation violated")
    tiles = [decompress_block(payload, block) for _, payload in collected]
    return join_blocks(tiles, height, width, block)
