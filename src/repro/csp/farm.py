"""The factorization farm, CSP style (the paper's planned comparison).

Section 6.2: "Work has begun on the implementation of a parallel
algorithm for factoring large numbers ... using both our implementation
of process networks and a Java implementation of CSP."  This module is
the CSP half: the same producer/worker/consumer Task objects as
:mod:`repro.parallel`, but moved over rendezvous channels with an
ALT-based on-demand distributor instead of the Direct/indexed-merge
composite.

Structural contrast with the KPN farm (measured in
``benchmarks/bench_ablation_csp.py``):

* no buffering — every hand-off synchronizes producer and worker, so
  there is no pipelining slack between stages;
* on-demand balancing falls out of ALT naturally (workers *request*
  work), at the cost of per-task request/response rendezvous;
* result order is restored by an explicit resequencer, since completion
  order is nondeterministic (the CSP analogue of the paper's Select);
* termination is poison propagation: each process poisons its outbound
  channels as it exits, per-worker result channels let the collector
  know when *all* workers are done.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.csp.channel import Alternation, PoisonError, SyncChannel
from repro.csp.process import CSPProcess, ParallelCSP

__all__ = ["csp_farm"]


class _Producer(CSPProcess):
    def __init__(self, task: Any, out: SyncChannel) -> None:
        super().__init__(poisons=[out], name="csp-producer")
        self.task = task
        self.out = out

    def body(self) -> None:
        while True:
            work = self.task.run()
            if work is None:
                return
            self.out.write(work)


class _Distributor(CSPProcess):
    """ALT over worker request channels; hands each requester a tagged
    task (the tag is the producer sequence number, for resequencing)."""

    def __init__(self, tasks_in: SyncChannel, requests: List[SyncChannel],
                 replies: List[SyncChannel]) -> None:
        # poisoning the request channels on exit releases workers blocked
        # mid-rendezvous offering their request token
        super().__init__(poisons=[tasks_in, *replies, *requests],
                         name="csp-distributor")
        self.tasks_in = tasks_in
        self.requests = requests
        self.replies = replies

    def body(self) -> None:
        alt = Alternation(self.requests)
        seq = 0
        try:
            while True:
                task = self.tasks_in.read()     # PoisonError ends us
                while True:
                    i = alt.select(timeout=10.0)
                    if i is not None:
                        break
                self.requests[i].read()          # consume the request token
                self.replies[i].write((seq, task))
                seq += 1
        finally:
            alt.close()


class _Worker(CSPProcess):
    def __init__(self, index: int, request: SyncChannel, reply: SyncChannel,
                 results: SyncChannel, slowdown: float = 0.0) -> None:
        super().__init__(poisons=[request, results],
                         name=f"csp-worker-{index}")
        self.index = index
        self.request = request
        self.reply = reply
        self.results = results
        self.slowdown = slowdown
        self.tasks_processed = 0

    def body(self) -> None:
        import time

        while True:
            self.request.write(self.index)      # "I'm free"
            seq, task = self.reply.read()
            value = task.run()
            if self.slowdown > 0:
                time.sleep(self.slowdown)
            self.tasks_processed += 1
            self.results.write((seq, value))


class _Collector(CSPProcess):
    """ALT over per-worker result channels; resequences by tag.

    Exits when every worker's channel is poisoned (all workers done) or
    when ``stop_when`` fires; poisons the reply channels on the way out
    so a stop cascades back through workers and distributor to the
    producer.
    """

    def __init__(self, results: List[SyncChannel], into: List[Any],
                 stop_when: Optional[Callable[[Any], bool]],
                 replies: List[SyncChannel]) -> None:
        super().__init__(poisons=[*results, *replies], name="csp-collector")
        self.results = results
        self.into = into
        self.stop_when = stop_when
        self._pending: dict = {}
        self._next_seq = 0

    def body(self) -> None:
        alt = Alternation(self.results)
        done = [False] * len(self.results)
        try:
            while not all(done):
                i = alt.select(timeout=10.0)
                if i is None:
                    continue
                if done[i]:
                    # poisoned channel keeps reporting ready; skip it
                    ready = [k for k, d in enumerate(done)
                             if not d and self.results[k].pending()]
                    if not ready:
                        import time

                        time.sleep(0.001)  # others are mid-shutdown
                        continue
                    i = ready[0]
                try:
                    seq, value = self.results[i].read()
                except PoisonError:
                    done[i] = True
                    continue
                self._pending[seq] = value
                if self._drain():
                    return
        finally:
            alt.close()

    def _drain(self) -> bool:
        """Emit in-order results; True if stop_when fired."""
        while self._next_seq in self._pending:
            emitted = self._pending.pop(self._next_seq)
            run = getattr(emitted, "run", None)
            value = run() if callable(run) else emitted
            self.into.append(value)
            self._next_seq += 1
            if self.stop_when is not None and self.stop_when(value):
                return True
        return False


def csp_farm(producer_task: Any, n_workers: int = 4,
             stop_when: Optional[Callable[[Any], bool]] = None,
             slowdowns: Optional[List[float]] = None,
             timeout: float = 300.0) -> List[Any]:
    """Run the farm to completion; returns collected results in order.

    Same contract as :func:`repro.parallel.run_farm` (dynamic mode) so
    the two implementations are drop-in comparable.
    """
    tasks = SyncChannel("csp-tasks")
    requests = [SyncChannel(f"csp-req-{i}") for i in range(n_workers)]
    replies = [SyncChannel(f"csp-rep-{i}") for i in range(n_workers)]
    results = [SyncChannel(f"csp-res-{i}") for i in range(n_workers)]
    out: List[Any] = []

    workers = [
        _Worker(i, requests[i], replies[i], results[i],
                slowdown=(slowdowns[i] if slowdowns else 0.0))
        for i in range(n_workers)
    ]
    network = ParallelCSP([
        _Producer(producer_task, tasks),
        _Distributor(tasks, requests, replies),
        *workers,
        _Collector(results, out, stop_when, replies),
    ])
    if not network.run(timeout=timeout):
        raise TimeoutError("CSP farm did not complete within the timeout")
    return out
