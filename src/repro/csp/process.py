"""CSP processes: threads communicating by rendezvous.

A deliberately small runtime — just enough to express the paper's planned
KPN-vs-CSP comparison workloads.  The shape mirrors JCSP: a
:class:`CSPProcess` has a ``run`` body using ``SyncChannel`` operations;
:class:`ParallelCSP` runs a set of processes to completion;
:class:`PoisonError` propagation replaces the KPN termination cascade
(each process poisons its channels on the way out).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence

from repro.csp.channel import PoisonError, SyncChannel

__all__ = ["CSPProcess", "InlineCSP", "ParallelCSP"]


class CSPProcess:
    """Base class: one thread, rendezvous I/O, poison-on-exit.

    Subclasses implement :meth:`body`; channels listed in ``poisons`` are
    poisoned when the process ends (for any reason), which is how
    termination propagates in a CSP network.
    """

    def __init__(self, poisons: Sequence[SyncChannel] = (),
                 name: Optional[str] = None) -> None:
        self.name = name or f"{type(self).__name__}-{id(self) & 0xFFFF:x}"
        self.poisons = list(poisons)
        self.failure: Optional[BaseException] = None

    def body(self) -> None:
        raise NotImplementedError

    def run(self) -> None:
        try:
            self.body()
        except PoisonError:
            pass
        except Exception as exc:  # noqa: BLE001
            self.failure = exc
        finally:
            for ch in self.poisons:
                ch.poison()


class InlineCSP(CSPProcess):
    """Adapts a plain callable into a CSP process."""

    def __init__(self, fn: Callable[[], None],
                 poisons: Sequence[SyncChannel] = (),
                 name: Optional[str] = None) -> None:
        super().__init__(poisons=poisons, name=name)
        self.fn = fn

    def body(self) -> None:
        self.fn()


class ParallelCSP:
    """Run CSP processes concurrently; join; surface failures."""

    def __init__(self, processes: Iterable[CSPProcess]) -> None:
        self.processes: List[CSPProcess] = list(processes)
        self._threads: List[threading.Thread] = []

    def start(self) -> "ParallelCSP":
        for p in self.processes:
            t = threading.Thread(target=p.run, name=p.name, daemon=True)
            self._threads.append(t)
            t.start()
        return self

    def join(self, timeout: Optional[float] = None) -> bool:
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            t.join(remaining)
            if t.is_alive():
                return False
        for p in self.processes:
            if p.failure is not None:
                raise p.failure
        return True

    def run(self, timeout: Optional[float] = None) -> bool:
        return self.start().join(timeout)
