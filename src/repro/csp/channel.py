"""Synchronous (rendezvous) channels — the CSP communication primitive.

The paper closes by planning a factorization shoot-out "using both our
implementation of process networks and a Java implementation of CSP"
(section 6.2).  This package supplies the CSP side of that comparison:
where Kahn channels are buffered FIFOs with blocking reads, CSP channels
are **unbuffered rendezvous points** — a write completes only when a read
takes the value, synchronizing the two processes.

:class:`SyncChannel` implements one-to-one rendezvous with JCSP-style
*poisoning* for termination: poisoning a channel makes every current and
future operation on it raise :class:`PoisonError`, which CSP processes
treat the way KPN processes treat channel EOF — propagate and stop.

:class:`Alternation` is CSP's guarded choice (ALT): wait until any of
several channels has a committed writer, then pick one (fair rotation).
ALT is the expressiveness CSP buys with its non-determinism — and exactly
what Kahn forbids to keep networks determinate; the Turnstile of the
paper's Figure 18 is the KPN-side cousin, quarantined inside a
well-behaved composite.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Sequence

__all__ = ["SyncChannel", "PoisonError", "Alternation"]


class PoisonError(Exception):
    """The channel was poisoned: the CSP termination signal."""


_EMPTY = object()


class SyncChannel:
    """One-to-one synchronous channel.

    ``write`` blocks until a reader takes the value; ``read`` blocks until
    a writer offers one.  The rendezvous is a total synchronization: both
    sides proceed together, so there is never buffered data to manage —
    the opposite end of the design space from the paper's growable FIFOs.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._slot_filled = threading.Condition(self._lock)
        self._slot_taken = threading.Condition(self._lock)
        self._slot: Any = _EMPTY
        self._poisoned = False
        #: ALT wakeup hooks (called under the lock; must be lock-free)
        self._alt_listeners: List = []
        #: a writer is committed (value deposited, awaiting a reader)
        self._writer_waiting = False
        self.transfers = 0

    # -- data plane ---------------------------------------------------------
    def write(self, value: Any) -> None:
        with self._lock:
            if self._poisoned:
                raise PoisonError(self.name)
            while self._slot is not _EMPTY:
                self._slot_taken.wait()
                if self._poisoned:
                    raise PoisonError(self.name)
            self._slot = value
            self._writer_waiting = True
            self._slot_filled.notify()
            for listener in self._alt_listeners:
                listener()
            # rendezvous: wait for the reader to take it
            while self._slot is not _EMPTY:
                self._slot_taken.wait()
                if self._poisoned and self._slot is not _EMPTY:
                    raise PoisonError(self.name)
            self._writer_waiting = False

    def read(self) -> Any:
        with self._lock:
            while True:
                if self._slot is not _EMPTY:
                    value = self._slot
                    self._slot = _EMPTY
                    self._writer_waiting = False
                    self.transfers += 1
                    self._slot_taken.notify_all()
                    return value
                if self._poisoned:
                    raise PoisonError(self.name)
                self._slot_filled.wait()

    # -- control plane --------------------------------------------------------
    def poison(self) -> None:
        """Terminally poison the channel (idempotent)."""
        with self._lock:
            self._poisoned = True
            self._slot_filled.notify_all()
            self._slot_taken.notify_all()
            for listener in self._alt_listeners:
                listener()

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    # -- ALT support -----------------------------------------------------------
    def pending(self) -> bool:
        """A committed writer is waiting (an ALT guard would fire)."""
        with self._lock:
            return self._slot is not _EMPTY or self._poisoned

    def _add_alt_listener(self, listener) -> None:
        with self._lock:
            self._alt_listeners.append(listener)

    def _remove_alt_listener(self, listener) -> None:
        with self._lock:
            try:
                self._alt_listeners.remove(listener)
            except ValueError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SyncChannel {self.name!r}>"


class Alternation:
    """Guarded choice over several input channels (JCSP's ALT).

    ``select()`` blocks until at least one channel has a committed writer
    and returns that channel's index; the caller then reads from it.
    Fair: the search origin rotates, so a chatty channel cannot starve
    the others.  A poisoned channel counts as ready — its read raises
    :class:`PoisonError`, letting termination flow through ALT loops.
    """

    def __init__(self, channels: Sequence[SyncChannel]) -> None:
        if not channels:
            raise ValueError("Alternation needs at least one channel")
        self.channels = list(channels)
        self._event = threading.Event()
        self._next_start = 0
        for ch in self.channels:
            ch._add_alt_listener(self._event.set)

    def select(self, timeout: Optional[float] = None) -> Optional[int]:
        """Index of a ready channel, or None on timeout."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            n = len(self.channels)
            for offset in range(n):
                i = (self._next_start + offset) % n
                if self.channels[i].pending():
                    self._next_start = (i + 1) % n
                    return i
            self._event.clear()
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
            self._event.wait(remaining if remaining is not None else 0.1)

    def close(self) -> None:
        for ch in self.channels:
            ch._remove_alt_listener(self._event.set)
