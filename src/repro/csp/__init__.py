"""A minimal CSP runtime for the paper's planned comparison (§6.2).

Rendezvous channels (:class:`~repro.csp.channel.SyncChannel`), guarded
choice (:class:`~repro.csp.channel.Alternation`), threaded processes with
poison-propagation termination (:mod:`~repro.csp.process`), and the
factorization farm rebuilt on them (:func:`~repro.csp.farm.csp_farm`) so
the KPN and CSP styles can be benchmarked against each other on identical
Task objects.
"""

from repro.csp.channel import Alternation, PoisonError, SyncChannel
from repro.csp.farm import csp_farm
from repro.csp.process import CSPProcess, InlineCSP, ParallelCSP

__all__ = ["Alternation", "PoisonError", "SyncChannel", "csp_farm",
           "CSPProcess", "InlineCSP", "ParallelCSP"]
