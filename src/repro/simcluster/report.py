"""One-shot evaluation report: every regenerated artifact as markdown.

``generate_report()`` reruns the whole simulated evaluation — Table 1,
Table 2, the Figure 19/20 sweeps, the homogeneous and variance ablations
— and renders a single markdown document with the paper's published
numbers alongside the model's.  Used by ``python -m repro.cli experiment
report`` and by tests that pin the report's claims to the simulator's
actual output (documentation that cannot rot).
"""

from __future__ import annotations

from typing import List, Optional

from repro.simcluster.experiment import (homogeneous_control, ideal_speed,
                                         ideal_time, run_parallel,
                                         sequential_times, sweep_workers,
                                         table2_rows)
from repro.simcluster.paperdata import TABLE2, table2_by_workers
from repro.simcluster.workload import variance_experiment

__all__ = ["generate_report"]


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def generate_report(sweep: bool = True) -> str:
    """The full evaluation as a markdown string."""
    parts: List[str] = ["# Regenerated evaluation report", ""]

    # Table 1
    parts.append("## Table 1 — sequential execution (minutes)")
    rows = [[r["class"], f"{r['speed']:.2f}", f"{r['time_model']:.2f}",
             f"{r['time_paper']:.2f}",
             f"{(r['time_model'] / r['time_paper'] - 1) * 100:+.1f}%"]
            for r in sequential_times()]
    parts += _md_table(["class", "speed", "model", "paper", "Δ"], rows)
    parts.append("")

    # Table 2
    parts.append("## Table 2 — parallel execution (minutes)")
    paper = table2_by_workers()
    rows = []
    for row in table2_rows():
        p = paper[row.workers]
        rows.append([str(row.workers), f"{row.ideal_time:.2f}",
                     f"{row.static_time:.2f}", f"{p.static_time:.2f}",
                     f"{row.dynamic_time:.2f}", f"{p.dynamic_time:.2f}"])
    parts += _md_table(["W", "ideal", "static (model)", "static (paper)",
                        "dynamic (model)", "dynamic (paper)"], rows)
    parts.append("")

    # headline claims
    t7 = run_parallel(7, "static").elapsed
    t8 = run_parallel(8, "static").elapsed
    overhead = run_parallel(1, "dynamic").elapsed / ideal_time(1) - 1
    control = homogeneous_control(8)
    parts += [
        "## Section 5.2 claims",
        "",
        f"* static elapsed time *increases* at the 7→8 worker transition: "
        f"{t7:.2f} → {t8:.2f} minutes (paper: same direction);",
        f"* dynamic overhead at one worker: {overhead:.1%} "
        f"(paper: \"no more than 6% to 7%\");",
        f"* homogeneous control: static {control['static']:.2f} vs dynamic "
        f"{control['dynamic']:.2f} minutes — the disciplines tie without "
        "heterogeneity.",
        "",
    ]

    if sweep:
        parts.append("## Figures 19–20 — full worker sweep")
        rows = []
        for r in sweep_workers(range(1, 33)):
            rows.append([str(r.workers), f"{r.ideal_time:.2f}",
                         f"{r.static_time:.2f}", f"{r.dynamic_time:.2f}",
                         f"{r.ideal_speed:.2f}", f"{r.static_speed:.2f}",
                         f"{r.dynamic_speed:.2f}"])
        parts += _md_table(["W", "t ideal", "t static", "t dynamic",
                            "s ideal", "s static", "s dynamic"], rows)
        increments = [ideal_speed(w + 1) - ideal_speed(w)
                      for w in range(1, 34)]
        parts += [
            "",
            f"Ideal-speed inflections: worker 8 adds {increments[6]:.2f} "
            f"(was {increments[5]:.2f}) — first class-C CPU; worker 27 adds "
            f"{increments[25]:.2f} (was {increments[24]:.2f}) — first "
            "class-E CPU.",
            "",
        ]

    parts.append("## Task-variance ablation (8 identical CPUs)")
    rows = []
    for cv in (0.0, 0.5, 1.0, 2.0):
        r = variance_experiment(cv, n_workers=8, n_tasks=512, seed=17)
        rows.append([f"{cv:.1f}", f"{r['static']:.2f}", f"{r['dynamic']:.2f}",
                     f"{r['ratio']:.2f}"])
    parts += _md_table(["cv", "static", "dynamic", "static/dynamic"], rows)
    parts.append("")
    return "\n".join(parts)
