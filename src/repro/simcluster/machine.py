"""The paper's machine inventory (section 5.2, Table 1).

"A total of 25 computers with 34 CPUs were used in our experiments: 1 in
class A, 6 in class B, 15 in class C, 2 in class D, and 1 in class E."
Class E is the 8-way Xeon box; to reach 34 CPUs the two class-D machines
must be dual-CPU (1 + 6 + 15 + 2·2 + 8 = 34).  The D row of Table 1 lost
its speed/CPU text in the paper scan; its time (22.78 min) puts its speed
at 22.50/22.78 ≈ 0.99, i.e. a 1 GHz-class Pentium III pair — we document
that reconstruction here and in EXPERIMENTS.md.

Speeds are normalized to a 1 GHz Pentium III (class C = 1.00), exactly as
in the paper.  Worker ordering follows the paper: "CPUs in the fastest
categories, classes A and B, are used first and CPUs from slower
categories, classes C through E, are used as additional workers are
needed" — giving the ideal-speed curve its inflection points at workers
7→8 (first class-C CPU) and 26→27 (first class-E CPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["CpuClass", "Cpu", "PAPER_CLASSES", "paper_cpu_inventory",
           "workers_fastest_first", "homogeneous_inventory"]


@dataclass(frozen=True)
class CpuClass:
    """One row of Table 1."""

    name: str
    #: speed normalized to a 1 GHz Pentium III
    speed: float
    #: the paper's CPU description
    description: str
    #: computers of this class × CPUs per computer
    computers: int
    cpus_per_computer: int

    @property
    def total_cpus(self) -> int:
        return self.computers * self.cpus_per_computer


@dataclass(frozen=True)
class Cpu:
    """One schedulable CPU in the simulated lab."""

    index: int
    cpu_class: CpuClass

    @property
    def speed(self) -> float:
        return self.cpu_class.speed


#: Table 1, with the reconstructed class-D row.
PAPER_CLASSES: List[CpuClass] = [
    CpuClass("A", 1.93, "2.4 GHz Pentium 4", computers=1, cpus_per_computer=1),
    CpuClass("B", 1.71, "2.2 GHz Pentium 4", computers=6, cpus_per_computer=1),
    CpuClass("C", 1.00, "1.0 GHz Pentium III", computers=15, cpus_per_computer=1),
    CpuClass("D", 0.99, "2 x 1.0 GHz Pentium III (reconstructed)",
             computers=2, cpus_per_computer=2),
    CpuClass("E", 0.80, "8 x 700 MHz Pentium III Xeon",
             computers=1, cpus_per_computer=8),
]


def paper_cpu_inventory() -> List[Cpu]:
    """All 34 CPUs, grouped by class in A→E order."""
    cpus: List[Cpu] = []
    for cls in PAPER_CLASSES:
        for _ in range(cls.total_cpus):
            cpus.append(Cpu(len(cpus), cls))
    assert len(cpus) == 34, "inventory must match the paper's 34 CPUs"
    return cpus


def workers_fastest_first(n_workers: int) -> List[Cpu]:
    """The first ``n_workers`` CPUs in the paper's allocation order.

    PAPER_CLASSES is already sorted fastest-first, so the inventory order
    *is* the allocation order: worker 1 = the class-A CPU, workers 2–7 =
    class B, 8–22 = class C, 23–26 = class D, 27–34 = class E.
    """
    inventory = paper_cpu_inventory()
    if not 1 <= n_workers <= len(inventory):
        raise ValueError(f"n_workers must be in 1..{len(inventory)}")
    return inventory[:n_workers]


def homogeneous_inventory(n: int, speed: float = 1.0) -> List[Cpu]:
    """A control inventory: n identical CPUs (for the static=dynamic
    ablation — dynamic balancing's advantage should vanish)."""
    cls = CpuClass("H", speed, f"homogeneous x{n}", computers=n,
                   cpus_per_computer=1)
    return [Cpu(i, cls) for i in range(n)]
